file(REMOVE_RECURSE
  "CMakeFiles/dfault.dir/dfault_cli.cpp.o"
  "CMakeFiles/dfault.dir/dfault_cli.cpp.o.d"
  "dfault"
  "dfault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
