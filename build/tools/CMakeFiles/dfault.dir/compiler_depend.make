# Empty compiler generated dependencies file for dfault.
# This may be replaced when dependencies are built.
