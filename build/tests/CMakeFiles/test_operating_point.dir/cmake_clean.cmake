file(REMOVE_RECURSE
  "CMakeFiles/test_operating_point.dir/dram/test_operating_point.cpp.o"
  "CMakeFiles/test_operating_point.dir/dram/test_operating_point.cpp.o.d"
  "test_operating_point"
  "test_operating_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_operating_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
