# Empty dependencies file for test_operating_point.
# This may be replaced when dependencies are built.
