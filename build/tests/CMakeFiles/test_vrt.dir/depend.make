# Empty dependencies file for test_vrt.
# This may be replaced when dependencies are built.
