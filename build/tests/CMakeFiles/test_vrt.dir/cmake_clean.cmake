file(REMOVE_RECURSE
  "CMakeFiles/test_vrt.dir/dram/test_vrt.cpp.o"
  "CMakeFiles/test_vrt.dir/dram/test_vrt.cpp.o.d"
  "test_vrt"
  "test_vrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
