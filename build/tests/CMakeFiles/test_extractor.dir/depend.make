# Empty dependencies file for test_extractor.
# This may be replaced when dependencies are built.
