# Empty dependencies file for test_profile_separability.
# This may be replaced when dependencies are built.
