file(REMOVE_RECURSE
  "CMakeFiles/test_profile_separability.dir/integration/test_profile_separability.cpp.o"
  "CMakeFiles/test_profile_separability.dir/integration/test_profile_separability.cpp.o.d"
  "test_profile_separability"
  "test_profile_separability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_separability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
