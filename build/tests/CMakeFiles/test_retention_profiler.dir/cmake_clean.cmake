file(REMOVE_RECURSE
  "CMakeFiles/test_retention_profiler.dir/core/test_retention_profiler.cpp.o"
  "CMakeFiles/test_retention_profiler.dir/core/test_retention_profiler.cpp.o.d"
  "test_retention_profiler"
  "test_retention_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
