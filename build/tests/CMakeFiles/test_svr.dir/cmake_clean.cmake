file(REMOVE_RECURSE
  "CMakeFiles/test_svr.dir/ml/test_svr.cpp.o"
  "CMakeFiles/test_svr.dir/ml/test_svr.cpp.o.d"
  "test_svr"
  "test_svr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
