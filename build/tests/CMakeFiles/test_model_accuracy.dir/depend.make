# Empty dependencies file for test_model_accuracy.
# This may be replaced when dependencies are built.
