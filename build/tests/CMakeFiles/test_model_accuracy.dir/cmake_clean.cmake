file(REMOVE_RECURSE
  "CMakeFiles/test_model_accuracy.dir/integration/test_model_accuracy.cpp.o"
  "CMakeFiles/test_model_accuracy.dir/integration/test_model_accuracy.cpp.o.d"
  "test_model_accuracy"
  "test_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
