file(REMOVE_RECURSE
  "CMakeFiles/test_input_sets.dir/core/test_input_sets.cpp.o"
  "CMakeFiles/test_input_sets.dir/core/test_input_sets.cpp.o.d"
  "test_input_sets"
  "test_input_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
