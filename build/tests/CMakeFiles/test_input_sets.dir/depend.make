# Empty dependencies file for test_input_sets.
# This may be replaced when dependencies are built.
