file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_tracker.dir/trace/test_reuse_tracker.cpp.o"
  "CMakeFiles/test_reuse_tracker.dir/trace/test_reuse_tracker.cpp.o.d"
  "test_reuse_tracker"
  "test_reuse_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
