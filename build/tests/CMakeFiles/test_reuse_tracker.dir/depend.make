# Empty dependencies file for test_reuse_tracker.
# This may be replaced when dependencies are built.
