# Empty dependencies file for test_cache_oracle.
# This may be replaced when dependencies are built.
