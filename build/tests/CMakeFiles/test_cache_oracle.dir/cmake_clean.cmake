file(REMOVE_RECURSE
  "CMakeFiles/test_cache_oracle.dir/mem/test_cache_oracle.cpp.o"
  "CMakeFiles/test_cache_oracle.dir/mem/test_cache_oracle.cpp.o.d"
  "test_cache_oracle"
  "test_cache_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
