# Empty dependencies file for test_grid_search.
# This may be replaced when dependencies are built.
