
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_correlation.cpp" "tests/CMakeFiles/test_correlation.dir/stats/test_correlation.cpp.o" "gcc" "tests/CMakeFiles/test_correlation.dir/stats/test_correlation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dfault_core.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/dfault_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dfault_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dfault_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/dfault_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dfault_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dfault_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dfault_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dfault_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfault_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
