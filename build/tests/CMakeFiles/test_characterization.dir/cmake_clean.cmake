file(REMOVE_RECURSE
  "CMakeFiles/test_characterization.dir/core/test_characterization.cpp.o"
  "CMakeFiles/test_characterization.dir/core/test_characterization.cpp.o.d"
  "test_characterization"
  "test_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
