file(REMOVE_RECURSE
  "CMakeFiles/test_error_integrator.dir/core/test_error_integrator.cpp.o"
  "CMakeFiles/test_error_integrator.dir/core/test_error_integrator.cpp.o.d"
  "test_error_integrator"
  "test_error_integrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
