# Empty compiler generated dependencies file for test_error_integrator.
# This may be replaced when dependencies are built.
