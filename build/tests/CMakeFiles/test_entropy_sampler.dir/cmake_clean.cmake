file(REMOVE_RECURSE
  "CMakeFiles/test_entropy_sampler.dir/trace/test_entropy_sampler.cpp.o"
  "CMakeFiles/test_entropy_sampler.dir/trace/test_entropy_sampler.cpp.o.d"
  "test_entropy_sampler"
  "test_entropy_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_entropy_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
