# Empty dependencies file for test_entropy_sampler.
# This may be replaced when dependencies are built.
