file(REMOVE_RECURSE
  "CMakeFiles/maintenance_advisor.dir/maintenance_advisor.cpp.o"
  "CMakeFiles/maintenance_advisor.dir/maintenance_advisor.cpp.o.d"
  "maintenance_advisor"
  "maintenance_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
