# Empty compiler generated dependencies file for maintenance_advisor.
# This may be replaced when dependencies are built.
