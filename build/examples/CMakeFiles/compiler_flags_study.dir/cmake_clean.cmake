file(REMOVE_RECURSE
  "CMakeFiles/compiler_flags_study.dir/compiler_flags_study.cpp.o"
  "CMakeFiles/compiler_flags_study.dir/compiler_flags_study.cpp.o.d"
  "compiler_flags_study"
  "compiler_flags_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_flags_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
