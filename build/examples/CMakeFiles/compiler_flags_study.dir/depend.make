# Empty dependencies file for compiler_flags_study.
# This may be replaced when dependencies are built.
