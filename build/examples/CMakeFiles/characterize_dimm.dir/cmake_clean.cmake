file(REMOVE_RECURSE
  "CMakeFiles/characterize_dimm.dir/characterize_dimm.cpp.o"
  "CMakeFiles/characterize_dimm.dir/characterize_dimm.cpp.o.d"
  "characterize_dimm"
  "characterize_dimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_dimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
