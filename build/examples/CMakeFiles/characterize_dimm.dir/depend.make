# Empty dependencies file for characterize_dimm.
# This may be replaced when dependencies are built.
