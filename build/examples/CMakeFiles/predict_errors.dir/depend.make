# Empty dependencies file for predict_errors.
# This may be replaced when dependencies are built.
