file(REMOVE_RECURSE
  "CMakeFiles/predict_errors.dir/predict_errors.cpp.o"
  "CMakeFiles/predict_errors.dir/predict_errors.cpp.o.d"
  "predict_errors"
  "predict_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
