# Empty compiler generated dependencies file for fig02_wer_over_time.
# This may be replaced when dependencies are built.
