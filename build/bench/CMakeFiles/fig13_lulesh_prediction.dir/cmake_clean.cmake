file(REMOVE_RECURSE
  "CMakeFiles/fig13_lulesh_prediction.dir/fig13_lulesh_prediction.cpp.o"
  "CMakeFiles/fig13_lulesh_prediction.dir/fig13_lulesh_prediction.cpp.o.d"
  "fig13_lulesh_prediction"
  "fig13_lulesh_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_lulesh_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
