# Empty compiler generated dependencies file for fig13_lulesh_prediction.
# This may be replaced when dependencies are built.
