file(REMOVE_RECURSE
  "CMakeFiles/abl_mechanisms.dir/abl_mechanisms.cpp.o"
  "CMakeFiles/abl_mechanisms.dir/abl_mechanisms.cpp.o.d"
  "abl_mechanisms"
  "abl_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
