# Empty compiler generated dependencies file for abl_mechanisms.
# This may be replaced when dependencies are built.
