file(REMOVE_RECURSE
  "CMakeFiles/fig09_ue_probability.dir/fig09_ue_probability.cpp.o"
  "CMakeFiles/fig09_ue_probability.dir/fig09_ue_probability.cpp.o.d"
  "fig09_ue_probability"
  "fig09_ue_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ue_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
