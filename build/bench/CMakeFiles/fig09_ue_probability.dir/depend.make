# Empty dependencies file for fig09_ue_probability.
# This may be replaced when dependencies are built.
