# Empty dependencies file for fig12_pue_accuracy.
# This may be replaced when dependencies are built.
