# Empty compiler generated dependencies file for micro_vs_reality.
# This may be replaced when dependencies are built.
