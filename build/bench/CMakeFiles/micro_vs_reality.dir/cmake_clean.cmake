file(REMOVE_RECURSE
  "CMakeFiles/micro_vs_reality.dir/micro_vs_reality.cpp.o"
  "CMakeFiles/micro_vs_reality.dir/micro_vs_reality.cpp.o.d"
  "micro_vs_reality"
  "micro_vs_reality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vs_reality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
