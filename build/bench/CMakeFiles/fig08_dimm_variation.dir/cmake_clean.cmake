file(REMOVE_RECURSE
  "CMakeFiles/fig08_dimm_variation.dir/fig08_dimm_variation.cpp.o"
  "CMakeFiles/fig08_dimm_variation.dir/fig08_dimm_variation.cpp.o.d"
  "fig08_dimm_variation"
  "fig08_dimm_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dimm_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
