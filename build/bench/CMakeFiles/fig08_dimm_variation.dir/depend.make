# Empty dependencies file for fig08_dimm_variation.
# This may be replaced when dependencies are built.
