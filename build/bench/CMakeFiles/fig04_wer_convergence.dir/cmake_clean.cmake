file(REMOVE_RECURSE
  "CMakeFiles/fig04_wer_convergence.dir/fig04_wer_convergence.cpp.o"
  "CMakeFiles/fig04_wer_convergence.dir/fig04_wer_convergence.cpp.o.d"
  "fig04_wer_convergence"
  "fig04_wer_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_wer_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
