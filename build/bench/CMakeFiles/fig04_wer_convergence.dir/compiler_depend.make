# Empty compiler generated dependencies file for fig04_wer_convergence.
# This may be replaced when dependencies are built.
