file(REMOVE_RECURSE
  "CMakeFiles/fig07_wer_sweep.dir/fig07_wer_sweep.cpp.o"
  "CMakeFiles/fig07_wer_sweep.dir/fig07_wer_sweep.cpp.o.d"
  "fig07_wer_sweep"
  "fig07_wer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_wer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
