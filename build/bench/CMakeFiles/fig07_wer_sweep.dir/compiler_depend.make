# Empty compiler generated dependencies file for fig07_wer_sweep.
# This may be replaced when dependencies are built.
