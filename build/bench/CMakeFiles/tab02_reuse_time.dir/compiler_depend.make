# Empty compiler generated dependencies file for tab02_reuse_time.
# This may be replaced when dependencies are built.
