file(REMOVE_RECURSE
  "CMakeFiles/tab02_reuse_time.dir/tab02_reuse_time.cpp.o"
  "CMakeFiles/tab02_reuse_time.dir/tab02_reuse_time.cpp.o.d"
  "tab02_reuse_time"
  "tab02_reuse_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_reuse_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
