# Empty dependencies file for sdc_study.
# This may be replaced when dependencies are built.
