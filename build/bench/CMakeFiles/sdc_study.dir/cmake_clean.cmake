file(REMOVE_RECURSE
  "CMakeFiles/sdc_study.dir/sdc_study.cpp.o"
  "CMakeFiles/sdc_study.dir/sdc_study.cpp.o.d"
  "sdc_study"
  "sdc_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
