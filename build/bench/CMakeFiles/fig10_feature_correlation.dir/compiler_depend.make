# Empty compiler generated dependencies file for fig10_feature_correlation.
# This may be replaced when dependencies are built.
