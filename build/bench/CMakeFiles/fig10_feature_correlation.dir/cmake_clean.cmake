file(REMOVE_RECURSE
  "CMakeFiles/fig10_feature_correlation.dir/fig10_feature_correlation.cpp.o"
  "CMakeFiles/fig10_feature_correlation.dir/fig10_feature_correlation.cpp.o.d"
  "fig10_feature_correlation"
  "fig10_feature_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_feature_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
