file(REMOVE_RECURSE
  "libdfault_sys.a"
)
