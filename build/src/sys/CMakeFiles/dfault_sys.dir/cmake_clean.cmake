file(REMOVE_RECURSE
  "CMakeFiles/dfault_sys.dir/execution.cc.o"
  "CMakeFiles/dfault_sys.dir/execution.cc.o.d"
  "CMakeFiles/dfault_sys.dir/platform.cc.o"
  "CMakeFiles/dfault_sys.dir/platform.cc.o.d"
  "CMakeFiles/dfault_sys.dir/thermal.cc.o"
  "CMakeFiles/dfault_sys.dir/thermal.cc.o.d"
  "libdfault_sys.a"
  "libdfault_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
