# Empty compiler generated dependencies file for dfault_sys.
# This may be replaced when dependencies are built.
