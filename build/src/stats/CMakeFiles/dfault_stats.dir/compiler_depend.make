# Empty compiler generated dependencies file for dfault_stats.
# This may be replaced when dependencies are built.
