file(REMOVE_RECURSE
  "CMakeFiles/dfault_stats.dir/bootstrap.cc.o"
  "CMakeFiles/dfault_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/dfault_stats.dir/correlation.cc.o"
  "CMakeFiles/dfault_stats.dir/correlation.cc.o.d"
  "CMakeFiles/dfault_stats.dir/distributions.cc.o"
  "CMakeFiles/dfault_stats.dir/distributions.cc.o.d"
  "CMakeFiles/dfault_stats.dir/entropy.cc.o"
  "CMakeFiles/dfault_stats.dir/entropy.cc.o.d"
  "CMakeFiles/dfault_stats.dir/histogram.cc.o"
  "CMakeFiles/dfault_stats.dir/histogram.cc.o.d"
  "CMakeFiles/dfault_stats.dir/summary.cc.o"
  "CMakeFiles/dfault_stats.dir/summary.cc.o.d"
  "libdfault_stats.a"
  "libdfault_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
