file(REMOVE_RECURSE
  "libdfault_stats.a"
)
