file(REMOVE_RECURSE
  "libdfault_core.a"
)
