file(REMOVE_RECURSE
  "CMakeFiles/dfault_core.dir/characterization.cc.o"
  "CMakeFiles/dfault_core.dir/characterization.cc.o.d"
  "CMakeFiles/dfault_core.dir/dataset_builder.cc.o"
  "CMakeFiles/dfault_core.dir/dataset_builder.cc.o.d"
  "CMakeFiles/dfault_core.dir/error_integrator.cc.o"
  "CMakeFiles/dfault_core.dir/error_integrator.cc.o.d"
  "CMakeFiles/dfault_core.dir/error_model.cc.o"
  "CMakeFiles/dfault_core.dir/error_model.cc.o.d"
  "CMakeFiles/dfault_core.dir/input_sets.cc.o"
  "CMakeFiles/dfault_core.dir/input_sets.cc.o.d"
  "CMakeFiles/dfault_core.dir/report.cc.o"
  "CMakeFiles/dfault_core.dir/report.cc.o.d"
  "CMakeFiles/dfault_core.dir/retention_profiler.cc.o"
  "CMakeFiles/dfault_core.dir/retention_profiler.cc.o.d"
  "CMakeFiles/dfault_core.dir/trainer.cc.o"
  "CMakeFiles/dfault_core.dir/trainer.cc.o.d"
  "libdfault_core.a"
  "libdfault_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
