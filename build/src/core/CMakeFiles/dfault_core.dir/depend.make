# Empty dependencies file for dfault_core.
# This may be replaced when dependencies are built.
