
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterization.cc" "src/core/CMakeFiles/dfault_core.dir/characterization.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/characterization.cc.o.d"
  "/root/repo/src/core/dataset_builder.cc" "src/core/CMakeFiles/dfault_core.dir/dataset_builder.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/dataset_builder.cc.o.d"
  "/root/repo/src/core/error_integrator.cc" "src/core/CMakeFiles/dfault_core.dir/error_integrator.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/error_integrator.cc.o.d"
  "/root/repo/src/core/error_model.cc" "src/core/CMakeFiles/dfault_core.dir/error_model.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/error_model.cc.o.d"
  "/root/repo/src/core/input_sets.cc" "src/core/CMakeFiles/dfault_core.dir/input_sets.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/input_sets.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/dfault_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/report.cc.o.d"
  "/root/repo/src/core/retention_profiler.cc" "src/core/CMakeFiles/dfault_core.dir/retention_profiler.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/retention_profiler.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/dfault_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/dfault_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfault_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dfault_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/dfault_features.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dfault_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/dfault_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dfault_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dfault_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dfault_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dfault_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
