# Empty dependencies file for dfault_ml.
# This may be replaced when dependencies are built.
