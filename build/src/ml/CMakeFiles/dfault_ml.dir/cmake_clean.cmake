file(REMOVE_RECURSE
  "CMakeFiles/dfault_ml.dir/cross_validation.cc.o"
  "CMakeFiles/dfault_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/dfault_ml.dir/dataset.cc.o"
  "CMakeFiles/dfault_ml.dir/dataset.cc.o.d"
  "CMakeFiles/dfault_ml.dir/forest.cc.o"
  "CMakeFiles/dfault_ml.dir/forest.cc.o.d"
  "CMakeFiles/dfault_ml.dir/grid_search.cc.o"
  "CMakeFiles/dfault_ml.dir/grid_search.cc.o.d"
  "CMakeFiles/dfault_ml.dir/importance.cc.o"
  "CMakeFiles/dfault_ml.dir/importance.cc.o.d"
  "CMakeFiles/dfault_ml.dir/io.cc.o"
  "CMakeFiles/dfault_ml.dir/io.cc.o.d"
  "CMakeFiles/dfault_ml.dir/knn.cc.o"
  "CMakeFiles/dfault_ml.dir/knn.cc.o.d"
  "CMakeFiles/dfault_ml.dir/metrics.cc.o"
  "CMakeFiles/dfault_ml.dir/metrics.cc.o.d"
  "CMakeFiles/dfault_ml.dir/scaler.cc.o"
  "CMakeFiles/dfault_ml.dir/scaler.cc.o.d"
  "CMakeFiles/dfault_ml.dir/selection.cc.o"
  "CMakeFiles/dfault_ml.dir/selection.cc.o.d"
  "CMakeFiles/dfault_ml.dir/svr.cc.o"
  "CMakeFiles/dfault_ml.dir/svr.cc.o.d"
  "libdfault_ml.a"
  "libdfault_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
