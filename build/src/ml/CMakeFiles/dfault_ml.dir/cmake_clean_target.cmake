file(REMOVE_RECURSE
  "libdfault_ml.a"
)
