
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/dfault_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/dfault_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/forest.cc" "src/ml/CMakeFiles/dfault_ml.dir/forest.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/forest.cc.o.d"
  "/root/repo/src/ml/grid_search.cc" "src/ml/CMakeFiles/dfault_ml.dir/grid_search.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/grid_search.cc.o.d"
  "/root/repo/src/ml/importance.cc" "src/ml/CMakeFiles/dfault_ml.dir/importance.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/importance.cc.o.d"
  "/root/repo/src/ml/io.cc" "src/ml/CMakeFiles/dfault_ml.dir/io.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/io.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/dfault_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/dfault_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/dfault_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/scaler.cc.o.d"
  "/root/repo/src/ml/selection.cc" "src/ml/CMakeFiles/dfault_ml.dir/selection.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/selection.cc.o.d"
  "/root/repo/src/ml/svr.cc" "src/ml/CMakeFiles/dfault_ml.dir/svr.cc.o" "gcc" "src/ml/CMakeFiles/dfault_ml.dir/svr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfault_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dfault_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
