file(REMOVE_RECURSE
  "CMakeFiles/dfault_workloads.dir/backprop.cc.o"
  "CMakeFiles/dfault_workloads.dir/backprop.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/detail.cc.o"
  "CMakeFiles/dfault_workloads.dir/detail.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/fmm.cc.o"
  "CMakeFiles/dfault_workloads.dir/fmm.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/graph.cc.o"
  "CMakeFiles/dfault_workloads.dir/graph.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/kmeans.cc.o"
  "CMakeFiles/dfault_workloads.dir/kmeans.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/lulesh.cc.o"
  "CMakeFiles/dfault_workloads.dir/lulesh.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/memcached.cc.o"
  "CMakeFiles/dfault_workloads.dir/memcached.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/nw.cc.o"
  "CMakeFiles/dfault_workloads.dir/nw.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/random_pattern.cc.o"
  "CMakeFiles/dfault_workloads.dir/random_pattern.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/registry.cc.o"
  "CMakeFiles/dfault_workloads.dir/registry.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/srad.cc.o"
  "CMakeFiles/dfault_workloads.dir/srad.cc.o.d"
  "CMakeFiles/dfault_workloads.dir/workload.cc.o"
  "CMakeFiles/dfault_workloads.dir/workload.cc.o.d"
  "libdfault_workloads.a"
  "libdfault_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
