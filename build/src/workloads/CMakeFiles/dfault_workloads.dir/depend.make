# Empty dependencies file for dfault_workloads.
# This may be replaced when dependencies are built.
