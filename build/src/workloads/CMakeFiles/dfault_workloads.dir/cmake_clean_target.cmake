file(REMOVE_RECURSE
  "libdfault_workloads.a"
)
