
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backprop.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/backprop.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/backprop.cc.o.d"
  "/root/repo/src/workloads/detail.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/detail.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/detail.cc.o.d"
  "/root/repo/src/workloads/fmm.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/fmm.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/fmm.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/kmeans.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/kmeans.cc.o.d"
  "/root/repo/src/workloads/lulesh.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/lulesh.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/lulesh.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/memcached.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/memcached.cc.o.d"
  "/root/repo/src/workloads/nw.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/nw.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/nw.cc.o.d"
  "/root/repo/src/workloads/random_pattern.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/random_pattern.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/random_pattern.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/srad.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/srad.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/srad.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/dfault_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/dfault_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfault_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/dfault_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dfault_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dfault_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dfault_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dfault_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
