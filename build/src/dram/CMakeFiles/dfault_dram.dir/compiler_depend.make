# Empty compiler generated dependencies file for dfault_dram.
# This may be replaced when dependencies are built.
