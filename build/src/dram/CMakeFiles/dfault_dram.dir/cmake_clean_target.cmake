file(REMOVE_RECURSE
  "libdfault_dram.a"
)
