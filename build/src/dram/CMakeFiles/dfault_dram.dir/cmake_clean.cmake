file(REMOVE_RECURSE
  "CMakeFiles/dfault_dram.dir/controller.cc.o"
  "CMakeFiles/dfault_dram.dir/controller.cc.o.d"
  "CMakeFiles/dfault_dram.dir/device.cc.o"
  "CMakeFiles/dfault_dram.dir/device.cc.o.d"
  "CMakeFiles/dfault_dram.dir/ecc.cc.o"
  "CMakeFiles/dfault_dram.dir/ecc.cc.o.d"
  "CMakeFiles/dfault_dram.dir/error_log.cc.o"
  "CMakeFiles/dfault_dram.dir/error_log.cc.o.d"
  "CMakeFiles/dfault_dram.dir/geometry.cc.o"
  "CMakeFiles/dfault_dram.dir/geometry.cc.o.d"
  "CMakeFiles/dfault_dram.dir/interference.cc.o"
  "CMakeFiles/dfault_dram.dir/interference.cc.o.d"
  "CMakeFiles/dfault_dram.dir/operating_point.cc.o"
  "CMakeFiles/dfault_dram.dir/operating_point.cc.o.d"
  "CMakeFiles/dfault_dram.dir/power.cc.o"
  "CMakeFiles/dfault_dram.dir/power.cc.o.d"
  "CMakeFiles/dfault_dram.dir/refresh.cc.o"
  "CMakeFiles/dfault_dram.dir/refresh.cc.o.d"
  "CMakeFiles/dfault_dram.dir/retention.cc.o"
  "CMakeFiles/dfault_dram.dir/retention.cc.o.d"
  "CMakeFiles/dfault_dram.dir/vrt.cc.o"
  "CMakeFiles/dfault_dram.dir/vrt.cc.o.d"
  "libdfault_dram.a"
  "libdfault_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
