
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/controller.cc" "src/dram/CMakeFiles/dfault_dram.dir/controller.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/controller.cc.o.d"
  "/root/repo/src/dram/device.cc" "src/dram/CMakeFiles/dfault_dram.dir/device.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/device.cc.o.d"
  "/root/repo/src/dram/ecc.cc" "src/dram/CMakeFiles/dfault_dram.dir/ecc.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/ecc.cc.o.d"
  "/root/repo/src/dram/error_log.cc" "src/dram/CMakeFiles/dfault_dram.dir/error_log.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/error_log.cc.o.d"
  "/root/repo/src/dram/geometry.cc" "src/dram/CMakeFiles/dfault_dram.dir/geometry.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/geometry.cc.o.d"
  "/root/repo/src/dram/interference.cc" "src/dram/CMakeFiles/dfault_dram.dir/interference.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/interference.cc.o.d"
  "/root/repo/src/dram/operating_point.cc" "src/dram/CMakeFiles/dfault_dram.dir/operating_point.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/operating_point.cc.o.d"
  "/root/repo/src/dram/power.cc" "src/dram/CMakeFiles/dfault_dram.dir/power.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/power.cc.o.d"
  "/root/repo/src/dram/refresh.cc" "src/dram/CMakeFiles/dfault_dram.dir/refresh.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/refresh.cc.o.d"
  "/root/repo/src/dram/retention.cc" "src/dram/CMakeFiles/dfault_dram.dir/retention.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/retention.cc.o.d"
  "/root/repo/src/dram/vrt.cc" "src/dram/CMakeFiles/dfault_dram.dir/vrt.cc.o" "gcc" "src/dram/CMakeFiles/dfault_dram.dir/vrt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfault_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dfault_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
