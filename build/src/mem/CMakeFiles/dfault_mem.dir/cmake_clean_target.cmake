file(REMOVE_RECURSE
  "libdfault_mem.a"
)
