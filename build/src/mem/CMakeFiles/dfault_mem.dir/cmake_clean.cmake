file(REMOVE_RECURSE
  "CMakeFiles/dfault_mem.dir/cache.cc.o"
  "CMakeFiles/dfault_mem.dir/cache.cc.o.d"
  "CMakeFiles/dfault_mem.dir/hierarchy.cc.o"
  "CMakeFiles/dfault_mem.dir/hierarchy.cc.o.d"
  "libdfault_mem.a"
  "libdfault_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
