# Empty dependencies file for dfault_mem.
# This may be replaced when dependencies are built.
