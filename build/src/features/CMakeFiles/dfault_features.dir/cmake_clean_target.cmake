file(REMOVE_RECURSE
  "libdfault_features.a"
)
