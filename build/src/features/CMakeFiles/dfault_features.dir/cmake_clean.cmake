file(REMOVE_RECURSE
  "CMakeFiles/dfault_features.dir/catalog.cc.o"
  "CMakeFiles/dfault_features.dir/catalog.cc.o.d"
  "CMakeFiles/dfault_features.dir/extractor.cc.o"
  "CMakeFiles/dfault_features.dir/extractor.cc.o.d"
  "libdfault_features.a"
  "libdfault_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
