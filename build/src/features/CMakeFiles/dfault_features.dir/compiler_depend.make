# Empty compiler generated dependencies file for dfault_features.
# This may be replaced when dependencies are built.
