# Empty compiler generated dependencies file for dfault_common.
# This may be replaced when dependencies are built.
