file(REMOVE_RECURSE
  "CMakeFiles/dfault_common.dir/config.cc.o"
  "CMakeFiles/dfault_common.dir/config.cc.o.d"
  "CMakeFiles/dfault_common.dir/logging.cc.o"
  "CMakeFiles/dfault_common.dir/logging.cc.o.d"
  "CMakeFiles/dfault_common.dir/rng.cc.o"
  "CMakeFiles/dfault_common.dir/rng.cc.o.d"
  "libdfault_common.a"
  "libdfault_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
