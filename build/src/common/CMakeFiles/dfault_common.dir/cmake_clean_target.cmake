file(REMOVE_RECURSE
  "libdfault_common.a"
)
