file(REMOVE_RECURSE
  "CMakeFiles/dfault_trace.dir/access.cc.o"
  "CMakeFiles/dfault_trace.dir/access.cc.o.d"
  "CMakeFiles/dfault_trace.dir/entropy_sampler.cc.o"
  "CMakeFiles/dfault_trace.dir/entropy_sampler.cc.o.d"
  "CMakeFiles/dfault_trace.dir/reuse_tracker.cc.o"
  "CMakeFiles/dfault_trace.dir/reuse_tracker.cc.o.d"
  "libdfault_trace.a"
  "libdfault_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfault_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
