# Empty compiler generated dependencies file for dfault_trace.
# This may be replaced when dependencies are built.
