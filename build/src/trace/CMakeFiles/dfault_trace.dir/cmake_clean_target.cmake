file(REMOVE_RECURSE
  "libdfault_trace.a"
)
