
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/access.cc" "src/trace/CMakeFiles/dfault_trace.dir/access.cc.o" "gcc" "src/trace/CMakeFiles/dfault_trace.dir/access.cc.o.d"
  "/root/repo/src/trace/entropy_sampler.cc" "src/trace/CMakeFiles/dfault_trace.dir/entropy_sampler.cc.o" "gcc" "src/trace/CMakeFiles/dfault_trace.dir/entropy_sampler.cc.o.d"
  "/root/repo/src/trace/reuse_tracker.cc" "src/trace/CMakeFiles/dfault_trace.dir/reuse_tracker.cc.o" "gcc" "src/trace/CMakeFiles/dfault_trace.dir/reuse_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfault_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dfault_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
