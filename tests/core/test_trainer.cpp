/**
 * @file
 * Unit tests for model construction and LOBO evaluation on synthetic
 * datasets.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "core/trainer.hh"

namespace dfault::core {
namespace {

/**
 * Synthetic "campaign": groups are pseudo-benchmarks; the target is a
 * smooth function of two features, so leave-one-group-out predictions
 * should generalize well.
 */
ml::Dataset
smoothDataset()
{
    ml::Dataset d({"f1", "f2"});
    Rng rng(21);
    for (int g = 0; g < 8; ++g) {
        const double base = 0.1 * g;
        for (int i = 0; i < 12; ++i) {
            const double a = base + rng.uniform() * 0.1;
            const double b = rng.uniform();
            const double target = std::exp(2.0 * a) * (1.0 + 0.2 * b);
            d.addSample({a, b}, target, "bench" + std::to_string(g));
        }
    }
    return d;
}

TEST(Trainer, ModelKindNames)
{
    EXPECT_EQ(modelKindName(ModelKind::Svm), "SVM");
    EXPECT_EQ(modelKindName(ModelKind::Knn), "KNN");
    EXPECT_EQ(modelKindName(ModelKind::Rdf), "RDF");
}

TEST(Trainer, MakeModelInstantiatesAllKinds)
{
    for (const ModelKind kind : kAllModelKinds) {
        const ml::RegressorPtr model = makeModel(kind);
        ASSERT_NE(model, nullptr);
        EXPECT_EQ(model->name(), modelKindName(kind));
    }
}

TEST(Trainer, EvaluationProducesPerGroupErrors)
{
    const auto result =
        evaluateModel(smoothDataset(), ModelKind::Knn, false);
    EXPECT_EQ(result.mpePerGroup.size(), 8u);
    EXPECT_GT(result.mpe, 0.0);
    double sum = 0.0;
    for (const auto &kv : result.mpePerGroup)
        sum += kv.second;
    EXPECT_NEAR(result.mpe, sum / 8.0, 1e-9);
}

TEST(Trainer, KnnGeneralizesOnSmoothData)
{
    const auto result =
        evaluateModel(smoothDataset(), ModelKind::Knn, false);
    EXPECT_LT(result.mpe, 25.0); // percent
}

TEST(Trainer, AllModelsBeatNoise)
{
    for (const ModelKind kind : kAllModelKinds) {
        const auto result =
            evaluateModel(smoothDataset(), kind, false);
        EXPECT_LT(result.mpe, 60.0) << modelKindName(kind);
    }
}

TEST(Trainer, LogTargetHelpsWideDynamicRange)
{
    // Targets spanning 6 decades: log-space training must not be
    // wildly worse, and typically wins for KNN-style models.
    ml::Dataset d({"x"});
    for (int g = 0; g < 6; ++g)
        for (int i = 0; i < 8; ++i) {
            const double x = g + i / 8.0;
            d.addSample({x}, std::pow(10.0, -x), "g" + std::to_string(g));
        }
    const auto lin = evaluateModel(d, ModelKind::Knn, false);
    const auto log = evaluateModel(d, ModelKind::Knn, true);
    EXPECT_LT(log.mpe, lin.mpe * 2.0);
    EXPECT_LT(log.mpe, 200.0);
}

TEST(Trainer, AllZeroGroupIsSkipped)
{
    ml::Dataset d({"x"});
    d.addSample({0.0}, 0.0, "zeros");
    d.addSample({0.5}, 0.0, "zeros");
    d.addSample({1.0}, 1.0, "ones");
    d.addSample({1.5}, 1.0, "ones");
    const auto result = evaluateModel(d, ModelKind::Knn, false);
    EXPECT_EQ(result.mpePerGroup.count("zeros"), 0u);
    EXPECT_EQ(result.mpePerGroup.count("ones"), 1u);
}

TEST(TrainerDeath, EmptyDatasetPanics)
{
    ml::Dataset d({"x"});
    EXPECT_DEATH((void)evaluateModel(d, ModelKind::Knn, false),
                 "empty dataset");
}

} // namespace
} // namespace dfault::core
