/**
 * @file
 * Unit and property tests for the error-manifestation engine.
 */

#include <gtest/gtest.h>

#include "core/error_integrator.hh"
#include "features/extractor.hh"
#include "sys/platform.hh"

namespace dfault::core {
namespace {

sys::Platform &
sharedPlatform()
{
    // Scaled platform: keep the footprint-to-L2 ratio and wall-clock
    // invariants of the standard 16 MiB configuration at the test's
    // 2 MiB footprint (DESIGN.md 4).
    static sys::Platform platform([] {
        sys::Platform::Params p;
        p.hierarchy.l1.sizeBytes = 16 * 1024;
        p.hierarchy.l2.sizeBytes = 1 << 20;
        p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
        return p;
    }());
    return platform;
}

/** A cached profile of one small workload used across the tests. */
const features::WorkloadProfile &
profileOf(const char *kernel, int threads)
{
    workloads::Workload::Params p;
    p.footprintBytes = 2 << 20;
    p.workScale = 0.5;
    return features::ProfileCache::instance().get(
        sharedPlatform(),
        {kernel, threads, std::string(kernel) + "@t" +
                              std::to_string(threads)},
        p);
}

RunResult
runAt(const dram::OperatingPoint &op, std::uint64_t seed = 0,
      dram::ErrorLog *log = nullptr)
{
    auto &platform = sharedPlatform();
    ErrorIntegrator integrator;
    return integrator.run(profileOf("srad", 8), op,
                          platform.geometry(), platform.devices(),
                          seed, log);
}

TEST(Integrator, NominalOperatingPointIsErrorFree)
{
    const RunResult r = runAt(dram::OperatingPoint{});
    EXPECT_DOUBLE_EQ(r.wer(), 0.0);
    EXPECT_FALSE(r.crashed);
    EXPECT_LT(r.expectedSdc, 1e-6);
}

TEST(Integrator, RelaxedPointManifestsCorrectableErrors)
{
    const RunResult r =
        runAt({dram::kMaxTrefp, dram::kMinVdd, 50.0});
    EXPECT_GT(r.wer(), 1e-10);
    EXPECT_LT(r.wer(), 1e-4);
    EXPECT_FALSE(r.crashed);
}

TEST(Integrator, WerGrowsWithRefreshPeriod)
{
    double prev = -1.0;
    for (const Seconds trefp : {0.618, 1.173, 1.727, 2.283}) {
        const RunResult r = runAt({trefp, dram::kMinVdd, 60.0});
        EXPECT_GE(r.wer(), prev) << trefp;
        prev = r.wer();
    }
    EXPECT_GT(prev, 0.0);
}

TEST(Integrator, WerGrowsWithTemperature)
{
    const double cold =
        runAt({dram::kMaxTrefp, dram::kMinVdd, 50.0}).wer();
    const double warm =
        runAt({dram::kMaxTrefp, dram::kMinVdd, 60.0}).wer();
    EXPECT_GT(warm, cold * 3.0);
}

TEST(Integrator, ExtremePointCrashesWithUe)
{
    // 2.283 s at 70 C crashes every benchmark in the paper (Fig 9a);
    // backprop is the most UE-prone kernel in this model.
    auto &platform = sharedPlatform();
    const RunResult r = ErrorIntegrator().run(
        profileOf("backprop", 8),
        {dram::kMaxTrefp, dram::kMinVdd, 70.0}, platform.geometry(),
        platform.devices());
    EXPECT_TRUE(r.crashed);
    EXPECT_GE(r.crashEpoch, 1);
    EXPECT_GE(r.crashDevice, 0);
    // The run stops at the crash.
    EXPECT_EQ(r.werSeries.size(),
              static_cast<std::size_t>(r.crashEpoch));
}

TEST(Integrator, WerSeriesIsMonotoneAndConverging)
{
    const RunResult r =
        runAt({dram::kMaxTrefp, dram::kMinVdd, 60.0});
    ASSERT_EQ(r.werSeries.size(), 120u);
    for (std::size_t i = 1; i < r.werSeries.size(); ++i)
        EXPECT_GE(r.werSeries[i], r.werSeries[i - 1]);
    // Paper Fig 4: the last 10 minutes change WER by < ~3%.
    const double at110 = r.werSeries[109];
    const double at120 = r.werSeries[119];
    ASSERT_GT(at120, 0.0);
    EXPECT_LT((at120 - at110) / at120, 0.05);
}

TEST(Integrator, DeterministicForSeedAndVariedAcrossRuns)
{
    const dram::OperatingPoint op{1.727, dram::kMinVdd, 60.0};
    const RunResult a = runAt(op, 1);
    const RunResult b = runAt(op, 1);
    const RunResult c = runAt(op, 2);
    EXPECT_EQ(a.werSeries, b.werSeries);
    EXPECT_NE(a.werSeries, c.werSeries); // run-to-run VRT variation
}

TEST(Integrator, WerIsExposureScaleInvariant)
{
    // WER is a density: emulating a larger footprint must not shift it
    // beyond sampling noise.
    auto &platform = sharedPlatform();
    const auto &profile = profileOf("srad", 8);
    const dram::OperatingPoint op{dram::kMaxTrefp, dram::kMinVdd, 60.0};

    ErrorIntegrator::Params small;
    small.exposureWords = 64.0 * (1 << 20);
    ErrorIntegrator::Params large;
    large.exposureWords = 1024.0 * (1 << 20);
    const RunResult a = ErrorIntegrator(small).run(
        profile, op, platform.geometry(), platform.devices());
    const RunResult b = ErrorIntegrator(large).run(
        profile, op, platform.geometry(), platform.devices());
    ASSERT_GT(a.wer(), 0.0);
    EXPECT_NEAR(b.wer() / a.wer(), 1.0, 0.35);
}

TEST(Integrator, DeviceWerSpreadIsLarge)
{
    // Paper Fig 8: WER varies up to ~188x across DIMM/rank devices.
    const RunResult r =
        runAt({dram::kMaxTrefp, dram::kMinVdd, 60.0});
    double lo = 1e300, hi = 0.0;
    for (int d = 0; d < 8; ++d) {
        const double w = r.werForDevice(d);
        if (w > 0.0) {
            lo = std::min(lo, w);
            hi = std::max(hi, w);
        }
    }
    EXPECT_GT(hi / lo, 10.0);
}

TEST(Integrator, HigherPueAtLongerRefresh)
{
    // Estimate PUE over repeats at two TREFP levels (paper Fig 9a).
    int crashes_short = 0, crashes_long = 0;
    for (int rep = 0; rep < 8; ++rep) {
        crashes_short +=
            runAt({1.45, dram::kMinVdd, 70.0}, rep).crashed;
        crashes_long +=
            runAt({2.283, dram::kMinVdd, 70.0}, rep).crashed;
    }
    EXPECT_LE(crashes_short, crashes_long);
    EXPECT_GE(crashes_long, 6); // near-certain at the max TREFP (paper: 100%)
}

TEST(Integrator, LogReceivesRealEccExercisedRecords)
{
    auto &platform = sharedPlatform();
    dram::ErrorLog log(platform.geometry());
    const RunResult r =
        runAt({dram::kMaxTrefp, dram::kMinVdd, 60.0}, 0, &log);
    ASSERT_GT(r.wer(), 0.0);
    EXPECT_GT(log.records().size(), 0u);
    for (const auto &rec : log.records()) {
        EXPECT_LT(rec.bank, 8);
        EXPECT_LT(rec.row, platform.geometry().params().rowsPerBank);
    }
}

TEST(Integrator, CrashLogsUeRecord)
{
    auto &platform = sharedPlatform();
    dram::ErrorLog log(platform.geometry());
    // Record sampling consumes RNG draws, so a specific seed may or
    // may not crash; across several repeats at the extreme point a
    // crash is near certain and must log a UE record when it happens.
    bool crashed = false;
    for (std::uint64_t seed = 0; seed < 8 && !crashed; ++seed) {
        log.clear();
        const RunResult r = ErrorIntegrator().run(
            profileOf("backprop", 8),
            {dram::kMaxTrefp, dram::kMinVdd, 70.0},
            platform.geometry(), platform.devices(), seed, &log);
        crashed = r.crashed;
    }
    ASSERT_TRUE(crashed);
    EXPECT_GE(log.ueCountTotal(), 1u);
}

TEST(Integrator, NoSdcInThePaperEnvelope)
{
    // The paper observed zero SDCs across the whole study; expected
    // miscorrection counts must be far below one event.
    for (const Seconds trefp : {1.173, 2.283}) {
        for (const Celsius temp : {50.0, 70.0}) {
            const RunResult r =
                runAt({trefp, dram::kMinVdd, temp});
            // Far below one event per 8 GiB 2-hour run.
            EXPECT_LT(r.expectedSdc, 0.1)
                << trefp << "s " << temp << "C";
        }
    }
}

TEST(IntegratorDeath, MismatchedDevicePopulationPanics)
{
    auto &platform = sharedPlatform();
    ErrorIntegrator integrator;
    std::vector<dram::DramDevice> too_few;
    EXPECT_DEATH(integrator.run(profileOf("srad", 8),
                                dram::OperatingPoint{},
                                platform.geometry(), too_few),
                 "device population");
}

} // namespace
} // namespace dfault::core
