/**
 * @file
 * Unit tests for the trained DRAM error model (Eq. 1) and the
 * conventional workload-unaware baseline.
 */

#include <gtest/gtest.h>

#include "core/error_model.hh"

namespace dfault::core {
namespace {

struct MiniCampaign
{
    sys::Platform platform;
    CharacterizationCampaign campaign;
    std::vector<Measurement> measurements;
    std::vector<workloads::WorkloadConfig> suite;

    MiniCampaign() : campaign(platform, params())
    {
        suite = {{"srad", 8, "srad(par)"},
                 {"kmeans", 8, "kmeans(par)"},
                 {"memcached", 8, "memcached"},
                 {"random", 8, "random"}};
        const std::vector<dram::OperatingPoint> points{
            {1.173, dram::kMinVdd, 50.0},
            {2.283, dram::kMinVdd, 50.0},
            {1.173, dram::kMinVdd, 60.0},
            {2.283, dram::kMinVdd, 60.0},
        };
        measurements = campaign.sweep(suite, points);
    }

    static CharacterizationCampaign::Params
    params()
    {
        CharacterizationCampaign::Params p;
        p.workload.footprintBytes = 2 << 20;
        p.workload.workScale = 0.5;
        p.integrator.epochs = 40;
        p.useThermalLoop = false; // speed; thermal tested elsewhere
        return p;
    }
};

MiniCampaign &
mini()
{
    static MiniCampaign campaign;
    return campaign;
}

TEST(ErrorModel, TrainsAndPredictsPositiveWer)
{
    auto &m = mini();
    const auto model = DramErrorModel::trainWer(
        m.measurements, m.platform.geometry().deviceCount(),
        DramErrorModel::Options{});
    const auto &profile = *m.measurements.front().profile;
    const dram::OperatingPoint op{2.283, dram::kMinVdd, 60.0};
    for (int d = 0; d < 8; ++d)
        EXPECT_GE(model.predictWer(profile, op, d), 0.0);
    EXPECT_GT(model.predictWerAggregate(profile, op), 0.0);
}

TEST(ErrorModel, TrainingPointIsRecalledAccurately)
{
    // KNN with an exact feature match must return the measured value.
    auto &m = mini();
    const auto model = DramErrorModel::trainWer(
        m.measurements, m.platform.geometry().deviceCount(),
        DramErrorModel::Options{});
    const Measurement &sample = m.measurements.back();
    ASSERT_FALSE(sample.run.crashed);
    for (int d = 0; d < 8; ++d) {
        const double measured = sample.run.werForDevice(d);
        if (measured <= 0.0)
            continue;
        const double predicted =
            model.predictWer(*sample.profile, sample.requested, d);
        EXPECT_NEAR(predicted / measured, 1.0, 0.05) << "device " << d;
    }
}

TEST(ErrorModel, PredictionRisesWithTemperature)
{
    auto &m = mini();
    const auto model = DramErrorModel::trainWer(
        m.measurements, m.platform.geometry().deviceCount(),
        DramErrorModel::Options{});
    const auto &profile = *m.measurements.front().profile;
    const double cold = model.predictWerAggregate(
        profile, {2.283, dram::kMinVdd, 50.0});
    const double warm = model.predictWerAggregate(
        profile, {2.283, dram::kMinVdd, 60.0});
    EXPECT_GT(warm, cold);
}

TEST(ErrorModel, PueModelPredictsProbabilities)
{
    auto &m = mini();
    const std::vector<dram::OperatingPoint> points{
        {1.45, dram::kMinVdd, 70.0}, {2.283, dram::kMinVdd, 70.0}};
    const auto samples =
        collectPueSamples(m.campaign, m.suite, points, 3);
    ASSERT_EQ(samples.size(), m.suite.size() * 2);

    DramErrorModel::Options options;
    options.inputSet = InputSet::Set2; // the paper's best PUE set
    const auto model =
        DramErrorModel::trainPue(m.campaign, samples, options);
    const auto &profile = *m.measurements.front().profile;
    for (const auto &point : points) {
        const double pue = model.predictPue(profile, point);
        EXPECT_GE(pue, 0.0);
        EXPECT_LE(pue, 1.0);
    }
}

TEST(ErrorModel, ConventionalModelIsWorkloadUnaware)
{
    auto &m = mini();
    const std::vector<dram::OperatingPoint> points{
        {1.173, dram::kMinVdd, 50.0}, {2.283, dram::kMinVdd, 60.0}};
    const ConventionalModel conventional(m.campaign, points);
    // Same operating point -> same prediction, whatever the workload.
    const double a = conventional.predictWer(points[0]);
    const double b = conventional.predictWer(points[0]);
    EXPECT_DOUBLE_EQ(a, b);
    // Interpolates to the nearest characterized point.
    const double near_first =
        conventional.predictWer({1.2, dram::kMinVdd, 51.0});
    EXPECT_DOUBLE_EQ(near_first, a);
    EXPECT_NE(conventional.predictWer(points[1]), a);
}

TEST(ErrorModelDeath, PredictWithoutTrainingPanics)
{
    auto &m = mini();
    const auto wer_model = DramErrorModel::trainWer(
        m.measurements, 8, DramErrorModel::Options{});
    const auto &profile = *m.measurements.front().profile;
    EXPECT_DEATH((void)wer_model.predictPue(profile,
                                            dram::OperatingPoint{}),
                 "not trained for PUE");
    EXPECT_DEATH((void)wer_model.predictWer(profile,
                                            dram::OperatingPoint{}, 9),
                 "out of range");
}

} // namespace
} // namespace dfault::core
