/**
 * @file
 * Unit tests for per-row intensity analysis and the conventional
 * retention profiler (paper §II-C).
 */

#include <gtest/gtest.h>

#include "core/retention_profiler.hh"
#include "features/extractor.hh"

namespace dfault::core {
namespace {

struct Fixture
{
    sys::Platform platform;
    CharacterizationCampaign campaign;

    Fixture()
        : platform([] {
              sys::Platform::Params p;
              p.hierarchy.l1.sizeBytes = 16 * 1024;
              p.hierarchy.l2.sizeBytes = 1 << 20;
              p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
              return p;
          }()),
          campaign(platform, [] {
              CharacterizationCampaign::Params p;
              p.workload.footprintBytes = 2 << 20;
              p.workload.workScale = 0.5;
              p.useThermalLoop = false;
              return p;
          }())
    {
    }

    int
    weakestDevice() const
    {
        int weakest = 0;
        for (int d = 1; d < platform.geometry().deviceCount(); ++d)
            if (platform.devices()[d].retentionScale() <
                platform.devices()[weakest].retentionScale())
                weakest = d;
        return weakest;
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(AnalyzeRows, CoversTouchedRowsWithFiniteIntensities)
{
    auto &f = fixture();
    const auto &profile = features::ProfileCache::instance().get(
        f.platform, {"srad", 8, "srad(par)"},
        f.campaign.params().workload);
    const dram::OperatingPoint op{2.283, dram::kMinVdd, 60.0};
    const int dev = f.weakestDevice();
    const auto rows = f.campaign.integrator().analyzeRows(
        profile, op, f.platform.geometry(), f.platform.devices()[dev],
        dev);
    ASSERT_EQ(rows.size(), profile.deviceRows[dev].size());
    double total = 0.0;
    for (const auto &row : rows) {
        EXPECT_GE(row.ceLambda, 0.0);
        EXPECT_GT(row.suppression, 0.0);
        EXPECT_LE(row.suppression, 1.0);
        EXPECT_GE(row.interferenceDelta, 0.0);
        total += row.ceLambda;
    }
    EXPECT_GT(total, 0.0);
}

TEST(AnalyzeRows, IntensityGrowsWithTrefp)
{
    auto &f = fixture();
    const auto &profile = features::ProfileCache::instance().get(
        f.platform, {"random", 8, "random"},
        f.campaign.params().workload);
    const int dev = f.weakestDevice();
    double prev = 0.0;
    for (const Seconds trefp : {0.618, 1.173, 2.283}) {
        const dram::OperatingPoint op{trefp, dram::kMinVdd, 60.0};
        double total = 0.0;
        for (const auto &row : f.campaign.integrator().analyzeRows(
                 profile, op, f.platform.geometry(),
                 f.platform.devices()[dev], dev))
            total += row.ceLambda;
        EXPECT_GT(total, prev);
        prev = total;
    }
}

TEST(Profiler, WeakDeviceGetsFlaggedRows)
{
    auto &f = fixture();
    RetentionProfiler profiler(f.campaign);
    const auto profile = profiler.profileDevice(f.weakestDevice());
    EXPECT_GT(profile.firstFailingTrefp.size(), 0u);
    // First-failing levels must come from the configured ladder and be
    // recorded at the shortest level that fails.
    for (const auto &[row, level] : profile.firstFailingTrefp) {
        bool known = false;
        for (const Seconds l : profiler.params().levels)
            known = known || l == level;
        EXPECT_TRUE(known) << level;
    }
}

TEST(Profiler, CompareProducesConsistentCounts)
{
    auto &f = fixture();
    RetentionProfiler profiler(f.campaign);
    const int dev = f.weakestDevice();
    const auto profile = profiler.profileDevice(dev);
    const auto mismatch = profiler.compare(
        profile, {"srad", 8, "srad(par)"}, 2.283, dev);
    EXPECT_LE(mismatch.missedByProfile, mismatch.appErrorRows);
    EXPECT_LE(mismatch.falseAlarms, mismatch.flaggedRows);
    EXPECT_GE(mismatch.missRate(), 0.0);
    EXPECT_LE(mismatch.missRate(), 1.0);
    EXPECT_GE(mismatch.falseAlarmRate(), 0.0);
    EXPECT_LE(mismatch.falseAlarmRate(), 1.0);
}

TEST(Profiler, RealAppsEscapeTheMicroProfileSomewhere)
{
    // The paper's §II-C claim: across devices, real workloads manifest
    // errors in rows the micro-benchmark profile does not flag (the
    // interference effect), or leave flagged rows clean (implicit
    // refresh). At least one direction must be observable.
    auto &f = fixture();
    RetentionProfiler profiler(f.campaign);
    std::uint64_t missed = 0, false_alarms = 0;
    for (int dev = 0; dev < f.platform.geometry().deviceCount();
         ++dev) {
        const auto profile = profiler.profileDevice(dev);
        for (const char *kernel : {"backprop", "memcached"}) {
            const auto mismatch = profiler.compare(
                profile, {kernel, 8, kernel}, 2.283, dev);
            missed += mismatch.missedByProfile;
            false_alarms += mismatch.falseAlarms;
        }
    }
    EXPECT_GT(missed + false_alarms, 0u);
}

TEST(ProfilerDeath, BadParamsAreFatal)
{
    auto &f = fixture();
    RetentionProfiler::Params p;
    p.levels = {};
    EXPECT_EXIT(RetentionProfiler(f.campaign, p),
                ::testing::ExitedWithCode(1), "at least one");
    RetentionProfiler::Params q;
    q.levels = {2.0, 1.0};
    EXPECT_EXIT(RetentionProfiler(f.campaign, q),
                ::testing::ExitedWithCode(1), "ascending");
    RetentionProfiler::Params r;
    r.detectionLambda = 0.0;
    EXPECT_EXIT(RetentionProfiler(f.campaign, r),
                ::testing::ExitedWithCode(1), "positive");
}

} // namespace
} // namespace dfault::core
