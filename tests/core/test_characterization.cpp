/**
 * @file
 * Unit tests for the characterization campaign driver: thermal-loop
 * coupling, sweep bookkeeping, and the operating-point grids.
 */

#include <gtest/gtest.h>

#include "core/characterization.hh"

namespace dfault::core {
namespace {

sys::Platform &
sharedPlatform()
{
    static sys::Platform platform([] {
        sys::Platform::Params p;
        p.hierarchy.l1.sizeBytes = 16 * 1024;
        p.hierarchy.l2.sizeBytes = 1 << 20;
        p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
        return p;
    }());
    return platform;
}

CharacterizationCampaign::Params
smallParams(bool thermal)
{
    CharacterizationCampaign::Params p;
    p.workload.footprintBytes = 2 << 20;
    p.workload.workScale = 0.5;
    p.integrator.epochs = 30;
    p.useThermalLoop = thermal;
    return p;
}

TEST(Campaign, ThermalLoopCompensatesSelfHeating)
{
    // A busy workload dissipates DRAM power; the PID loop must still
    // regulate each DIMM to the requested temperature.
    CharacterizationCampaign campaign(sharedPlatform(),
                                      smallParams(true));
    const Measurement m = campaign.measure(
        {"srad", 8, "srad(par)"}, {1.173, dram::kMinVdd, 60.0});
    EXPECT_NEAR(m.achieved.temperature, 60.0, 0.6);
}

TEST(Campaign, ThermalLoopOffUsesRequestedTemperature)
{
    CharacterizationCampaign campaign(sharedPlatform(),
                                      smallParams(false));
    const Measurement m = campaign.measure(
        {"srad", 8, "srad(par)"}, {1.173, dram::kMinVdd, 60.0});
    EXPECT_DOUBLE_EQ(m.achieved.temperature, 60.0);
}

TEST(Campaign, SweepCoversTheGrid)
{
    CharacterizationCampaign campaign(sharedPlatform(),
                                      smallParams(false));
    const std::vector<workloads::WorkloadConfig> suite{
        {"kmeans", 8, "kmeans(par)"}, {"srad", 1, "srad"}};
    const std::vector<dram::OperatingPoint> points{
        {1.173, dram::kMinVdd, 50.0}, {2.283, dram::kMinVdd, 50.0}};
    const auto measurements = campaign.sweep(suite, points);
    ASSERT_EQ(measurements.size(), 4u);
    EXPECT_EQ(measurements[0].label, "kmeans(par)");
    EXPECT_EQ(measurements[1].requested.trefp, 2.283);
    EXPECT_EQ(measurements[3].label, "srad");
}

TEST(Campaign, MeasurePueCountsCrashes)
{
    CharacterizationCampaign campaign(sharedPlatform(),
                                      smallParams(false));
    const double mild = campaign.measurePue(
        {"kmeans", 8, "kmeans(par)"}, {0.618, dram::kMinVdd, 50.0}, 3);
    EXPECT_DOUBLE_EQ(mild, 0.0);
}

TEST(Campaign, OperatingPointGridsMatchThePaper)
{
    const auto wer_points = werOperatingPoints();
    // 4 TREFP levels x {50, 60} C plus the two UE-free 70 C points.
    EXPECT_EQ(wer_points.size(), 10u);
    for (const auto &op : wer_points) {
        EXPECT_DOUBLE_EQ(op.vdd, dram::kMinVdd);
        if (op.temperature >= 70.0)
            EXPECT_LE(op.trefp, 1.2);
    }

    const auto pue_points = pueOperatingPoints();
    ASSERT_EQ(pue_points.size(), 3u);
    for (const auto &op : pue_points)
        EXPECT_DOUBLE_EQ(op.temperature, 70.0);
}

TEST(Campaign, DilationRuleIsInverseInFootprint)
{
    EXPECT_DOUBLE_EQ(sys::dilationForFootprint(16 << 20), 200.0);
    EXPECT_DOUBLE_EQ(sys::dilationForFootprint(8 << 20), 400.0);
    EXPECT_DOUBLE_EQ(sys::dilationForFootprint(32 << 20), 100.0);
}

TEST(Campaign, DataPatternAblationToggleWorks)
{
    // With the vulnerability gate off, rows of both orientations see
    // the same v = 0.5; the aggregate WER must still be positive and
    // deterministic.
    CharacterizationCampaign::Params p = smallParams(false);
    p.integrator.dataPatternVulnerability = false;
    CharacterizationCampaign campaign(sharedPlatform(), p);
    const Measurement a = campaign.measure(
        {"srad", 8, "srad(par)"}, {2.283, dram::kMinVdd, 60.0});
    const Measurement b = campaign.measure(
        {"srad", 8, "srad(par)"}, {2.283, dram::kMinVdd, 60.0});
    EXPECT_GT(a.run.wer(), 0.0);
    EXPECT_DOUBLE_EQ(a.run.wer(), b.run.wer());
}

} // namespace
} // namespace dfault::core
