/**
 * @file
 * Unit tests for campaign reporting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hh"

namespace dfault::core {
namespace {

/** Hand-built measurements; no simulation needed for format tests. */
std::vector<Measurement>
fakeMeasurements(const dram::Geometry &geometry)
{
    std::vector<Measurement> out;
    for (int i = 0; i < 2; ++i) {
        Measurement m;
        m.label = i == 0 ? "alpha" : "beta";
        m.threads = 8;
        m.requested = {1.0 + i, 1.428, 50.0};
        m.run.cePerDevice.assign(geometry.deviceCount(), 10.0 * (i + 1));
        m.run.wordsPerDevice.assign(geometry.deviceCount(), 1e6);
        m.run.allocatedWords = 8e6;
        m.run.crashed = i == 1;
        out.push_back(std::move(m));
    }
    return out;
}

TEST(Report, CsvHasOneRowPerDevicePlusAggregate)
{
    dram::Geometry geometry;
    const auto measurements = fakeMeasurements(geometry);
    std::stringstream out;
    writeMeasurementsCsv(measurements, geometry, out);

    std::string line;
    std::getline(out, line);
    EXPECT_EQ(line,
              "benchmark,threads,trefp_s,vdd_v,temp_c,device,wer,"
              "crashed");
    int rows = 0, aggregates = 0, crashed = 0;
    while (std::getline(out, line)) {
        ++rows;
        if (line.find(",all,") != std::string::npos)
            ++aggregates;
        if (line.back() == '1')
            ++crashed;
    }
    EXPECT_EQ(rows, 2 * (geometry.deviceCount() + 1));
    EXPECT_EQ(aggregates, 2);
    EXPECT_EQ(crashed, geometry.deviceCount() + 1); // all beta rows
}

TEST(Report, CsvValuesRoundTripNumerically)
{
    dram::Geometry geometry;
    const auto measurements = fakeMeasurements(geometry);
    std::stringstream out;
    writeMeasurementsCsv(measurements, geometry, out);
    // alpha's per-device WER is 10 / 1e6.
    EXPECT_NE(out.str().find("1e-05"), std::string::npos);
}

TEST(Report, WerTableLayout)
{
    dram::Geometry geometry;
    const auto measurements = fakeMeasurements(geometry);
    std::stringstream out;
    printWerTable(measurements, out);
    const std::string text = out.str();
    // One row per benchmark; crashed runs print UE.
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
    EXPECT_NE(text.find("UE"), std::string::npos);
    EXPECT_NE(text.find("TREFP=1.000s"), std::string::npos);
    EXPECT_NE(text.find("TREFP=2.000s"), std::string::npos);
}

TEST(ReportDeath, UnwritablePathIsFatal)
{
    dram::Geometry geometry;
    EXPECT_EXIT(writeMeasurementsCsvFile(fakeMeasurements(geometry),
                                         geometry,
                                         "/no/such/dir/report.csv"),
                ::testing::ExitedWithCode(1), "write to");
}

} // namespace
} // namespace dfault::core
