/**
 * @file
 * Unit tests for the Table III input sets.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/input_sets.hh"
#include "features/catalog.hh"

namespace dfault::core {
namespace {

TEST(InputSets, Names)
{
    EXPECT_EQ(inputSetName(InputSet::Set1), "Input set 1");
    EXPECT_EQ(inputSetName(InputSet::Set2), "Input set 2");
    EXPECT_EQ(inputSetName(InputSet::Set3), "Input set 3");
}

TEST(InputSets, Set1HasTheFourStrongFeatures)
{
    const auto f = inputSetFeatures(InputSet::Set1);
    ASSERT_EQ(f.size(), 4u);
    EXPECT_NE(std::find(f.begin(), f.end(), "wait_cycles_ratio"),
              f.end());
    EXPECT_NE(std::find(f.begin(), f.end(), "mem_accesses_per_cycle"),
              f.end());
    EXPECT_NE(std::find(f.begin(), f.end(), "hdp_entropy"), f.end());
    EXPECT_NE(std::find(f.begin(), f.end(), "treuse_seconds"), f.end());
}

TEST(InputSets, Set2DropsHdpAndTreuse)
{
    const auto f = inputSetFeatures(InputSet::Set2);
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(std::find(f.begin(), f.end(), "hdp_entropy"), f.end());
    EXPECT_EQ(std::find(f.begin(), f.end(), "treuse_seconds"), f.end());
}

TEST(InputSets, Set3IsTheFullCatalog)
{
    const auto f = inputSetFeatures(InputSet::Set3);
    EXPECT_EQ(f.size(), features::kFeatureCount);
}

TEST(InputSets, AllFeatureNamesAreValid)
{
    const auto &catalog = features::FeatureCatalog::instance();
    for (const InputSet set : kAllInputSets)
        for (const auto &name : inputSetFeatures(set))
            EXPECT_TRUE(catalog.contains(name)) << name;
}

TEST(InputSets, SetsAreNested)
{
    // Set2 subset of Set1 subset of Set3 (paper's construction).
    const auto s1 = inputSetFeatures(InputSet::Set1);
    const auto s2 = inputSetFeatures(InputSet::Set2);
    const auto s3 = inputSetFeatures(InputSet::Set3);
    for (const auto &f : s2)
        EXPECT_NE(std::find(s1.begin(), s1.end(), f), s1.end());
    for (const auto &f : s1)
        EXPECT_NE(std::find(s3.begin(), s3.end(), f), s3.end());
}

} // namespace
} // namespace dfault::core
