/**
 * @file
 * Circuit breaker state machine tests: consecutive-failure and rolling
 * error-rate trips, tick-based cooldown into half-open, probe-driven
 * recovery, and probe-failure reopen — all driven by the deterministic
 * serve.error fault schedule (below= keys a burst by submission id).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "fi/injector.hh"
#include "obs/stats.hh"
#include "serve/service.hh"

namespace dfault::serve {
namespace {

struct CountingModel : ml::Regressor
{
    void fit(const ml::Matrix &, std::span<const double>) override {}
    double predict(std::span<const double>) const override
    {
        ++calls;
        return 1.0;
    }
    void predictMany(const ml::Matrix &rows,
                     std::vector<double> &out) const override
    {
        out.assign(rows.size(), 1.0);
    }
    std::string name() const override { return "counting"; }
    mutable std::atomic<int> calls{0};
};

struct BreakerTest : ::testing::Test
{
    void TearDown() override { fi::Injector::instance().disarm(); }

    Request req(std::uint64_t key)
    {
        Request r;
        r.key = key;
        r.features = {1.0};
        return r;
    }

    /** One tick's worth of fresh keys, then tick. */
    void submitAndTick(PredictionService &svc, int n)
    {
        for (int i = 0; i < n; ++i)
            svc.submit(req(nextKey++));
        svc.tick();
    }

    Params params()
    {
        Params p;
        p.registry = &reg;
        p.maxRetries = 0; // one attempt per request: failures are crisp
        p.breaker.consecutiveFailures = 3;
        p.breaker.cooldownTicks = 2;
        p.breaker.halfOpenProbes = 2;
        return p;
    }

    CountingModel primary;
    obs::Registry reg;
    std::uint64_t nextKey = 0;
};

TEST_F(BreakerTest, ConsecutiveFailuresOpenTheBreaker)
{
    // Submission ids 0..2 fail: exactly the consecutive threshold.
    fi::Injector::instance().arm("serve.error:below=3");
    PredictionService svc(primary, params());
    submitAndTick(svc, 3);
    EXPECT_EQ(svc.breakerState(0), BreakerState::Open);
    EXPECT_EQ(reg.value("serve.breaker.opened"), 1.0);
    // All three failing requests had no LKG and no fallback: shed with
    // the primary failure recorded in the reason.
    for (const Response &r : svc.takeResponses()) {
        EXPECT_EQ(r.disposition, Disposition::Shed);
        EXPECT_NE(r.reason.find("primary failure"), std::string::npos);
        EXPECT_NE(r.reason.find("serve.error"), std::string::npos);
    }
}

TEST_F(BreakerTest, OpenBreakerAnswersWithoutTouchingThePrimary)
{
    fi::Injector::instance().arm("serve.error:below=3");
    PredictionService svc(primary, params());
    submitAndTick(svc, 3);
    ASSERT_EQ(svc.breakerState(0), BreakerState::Open);
    svc.takeResponses();

    const int callsBefore = primary.calls.load();
    // Give key 99 an LKG entry? No — use the breaker-open degrade
    // path with no LKG and no fallback: honest shed, primary untouched.
    submitAndTick(svc, 2);
    EXPECT_EQ(primary.calls.load(), callsBefore);
    for (const Response &r : svc.takeResponses())
        EXPECT_NE(r.reason.find("breaker open"), std::string::npos);
}

TEST_F(BreakerTest, CooldownProbesAndRecovers)
{
    fi::Injector::instance().arm("serve.error:below=3");
    PredictionService svc(primary, params());
    submitAndTick(svc, 3); // tick 1: opens
    ASSERT_EQ(svc.breakerState(0), BreakerState::Open);

    svc.tick();            // tick 2: still cooling down
    EXPECT_EQ(svc.breakerState(0), BreakerState::Open);
    svc.tick();            // tick 3 = openedTick(1) + cooldown(2)
    EXPECT_EQ(svc.breakerState(0), BreakerState::HalfOpen);
    EXPECT_EQ(reg.value("serve.breaker.half_open"), 1.0);

    // Ids 3+ succeed; two probe successes close the breaker.
    submitAndTick(svc, 2);
    EXPECT_EQ(svc.breakerState(0), BreakerState::Closed);
    EXPECT_EQ(reg.value("serve.breaker.closed"), 1.0);
    svc.takeResponses();

    // Fully recovered: normal service resumes.
    submitAndTick(svc, 4);
    for (const Response &r : svc.takeResponses())
        EXPECT_EQ(r.disposition, Disposition::Served);
}

TEST_F(BreakerTest, HalfOpenAdmitsOnlyTheProbeTrickle)
{
    fi::Injector::instance().arm("serve.error:below=3");
    PredictionService svc(primary, params());
    submitAndTick(svc, 3);
    svc.tick();
    svc.tick();
    ASSERT_EQ(svc.breakerState(0), BreakerState::HalfOpen);
    svc.takeResponses();

    // Five waiting requests, but only halfOpenProbes=2 run this tick.
    for (int i = 0; i < 5; ++i)
        svc.submit(req(nextKey++));
    svc.tick();
    EXPECT_EQ(svc.queueDepth(), 3u);
    EXPECT_EQ(svc.takeResponses().size(), 2u);
    // The probes succeeded, the breaker closed: the rest drains.
    EXPECT_EQ(svc.breakerState(0), BreakerState::Closed);
    svc.drain();
    EXPECT_EQ(svc.takeResponses().size(), 3u);
}

TEST_F(BreakerTest, FailedProbeReopensAndRestartsCooldown)
{
    // Ids 0..3 fail: the three that open the breaker plus the first
    // probe after cooldown.
    fi::Injector::instance().arm("serve.error:below=4");
    PredictionService svc(primary, params());
    submitAndTick(svc, 3);
    svc.tick();
    svc.tick();
    ASSERT_EQ(svc.breakerState(0), BreakerState::HalfOpen);

    submitAndTick(svc, 1); // probe id 3: fails
    EXPECT_EQ(svc.breakerState(0), BreakerState::Open);
    EXPECT_EQ(reg.value("serve.breaker.opened"), 2.0);

    // Second cooldown elapses; ids 4+ succeed and it closes for good.
    svc.tick();
    svc.tick();
    ASSERT_EQ(svc.breakerState(0), BreakerState::HalfOpen);
    submitAndTick(svc, 2);
    EXPECT_EQ(svc.breakerState(0), BreakerState::Closed);
}

TEST_F(BreakerTest, RollingErrorRateTripsWithoutConsecutiveRun)
{
    // Alternating failures (even ids) never run 2 consecutive, but
    // hold a 4-wide window at 50% failure — the rate threshold. The
    // trip is evaluated when a *failure* commits into a full window,
    // so the fifth request (id 4, a failure) is the one that opens.
    fi::Injector::instance().arm("serve.error:every=2");
    Params p = params();
    p.breaker.consecutiveFailures = 100; // only the rate can trip
    p.breaker.errorRateWindow = 4;
    p.breaker.errorRateThreshold = 0.5;
    PredictionService svc(primary, p);
    submitAndTick(svc, 8);
    EXPECT_EQ(svc.breakerState(0), BreakerState::Open);
    EXPECT_EQ(reg.value("serve.breaker.opened"), 1.0);
}

TEST_F(BreakerTest, ShardsFailIndependently)
{
    // The burst covers ids 0..2 and exactly those route to shard 0:
    // its breaker opens while shard 1 keeps serving.
    fi::Injector::instance().arm("serve.error:below=3");
    Params p = params();
    p.shards = 2;
    PredictionService svc(primary, p);
    for (int i = 0; i < 3; ++i) { // ids 0..2 -> shard 0: all fail
        Request r = req(nextKey++);
        r.shard = 0;
        svc.submit(r);
    }
    for (int i = 0; i < 3; ++i) { // ids 3..5 -> shard 1: all succeed
        Request r = req(nextKey++);
        r.shard = 1;
        svc.submit(r);
    }
    svc.tick();
    EXPECT_EQ(svc.breakerState(0), BreakerState::Open);
    EXPECT_EQ(svc.breakerState(1), BreakerState::Closed);
}

} // namespace
} // namespace dfault::serve
