/**
 * @file
 * Unit tests for serve::PredictionService: admission control,
 * priority-aware shedding, degraded-mode fallback, the disposition
 * conservation law, and bit-identical replay across thread counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "fi/injector.hh"
#include "ml/forest.hh"
#include "obs/manifest.hh"
#include "par/pool.hh"
#include "serve/service.hh"

namespace dfault::serve {
namespace {

/** Deterministic primary: predicts the sum of the features. */
struct SumModel : ml::Regressor
{
    void fit(const ml::Matrix &, std::span<const double>) override {}
    double predict(std::span<const double> row) const override
    {
        ++calls;
        return std::accumulate(row.begin(), row.end(), 0.0);
    }
    void predictMany(const ml::Matrix &rows,
                     std::vector<double> &out) const override
    {
        out.resize(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i)
            out[i] = predict(rows[i]);
    }
    std::string name() const override { return "sum"; }
    mutable std::atomic<int> calls{0};
};

/** Deterministic fallback: always the same sentinel value. */
struct ConstModel : ml::Regressor
{
    explicit ConstModel(double v) : value(v) {}
    void fit(const ml::Matrix &, std::span<const double>) override {}
    double predict(std::span<const double>) const override
    {
        return value;
    }
    void predictMany(const ml::Matrix &rows,
                     std::vector<double> &out) const override
    {
        out.assign(rows.size(), value);
    }
    std::string name() const override { return "const"; }
    double value;
};

struct ServiceTest : ::testing::Test
{
    void TearDown() override { fi::Injector::instance().disarm(); }

    Request req(std::uint64_t key, Priority pri = Priority::Bulk)
    {
        Request r;
        r.key = key;
        r.priority = pri;
        r.features = {static_cast<double>(key), 1.0};
        return r;
    }

    SumModel primary;
    ConstModel fallback{-42.0};
    obs::Registry reg;
};

TEST_F(ServiceTest, ServesEverythingUnderCapacity)
{
    Params p;
    p.registry = &reg;
    PredictionService svc(primary, p);
    for (std::uint64_t k = 0; k < 10; ++k)
        svc.submit(req(k));
    EXPECT_EQ(svc.queueDepth(), 10u);
    EXPECT_EQ(svc.tick(), 10u);
    EXPECT_EQ(svc.queueDepth(), 0u);

    const auto responses = svc.takeResponses();
    ASSERT_EQ(responses.size(), 10u);
    for (const Response &r : responses) {
        EXPECT_EQ(r.disposition, Disposition::Served);
        EXPECT_FALSE(r.degraded);
        EXPECT_TRUE(r.reason.empty());
        EXPECT_DOUBLE_EQ(r.prediction,
                         static_cast<double>(r.key) + 1.0);
    }
    EXPECT_EQ(reg.value("serve.submitted"), 10.0);
    EXPECT_EQ(reg.value("serve.served"), 10.0);
    EXPECT_EQ(reg.value("serve.degraded"), 0.0);
    EXPECT_EQ(reg.value("serve.shed"), 0.0);
    // The served answers populate the last-known-good cache.
    ASSERT_TRUE(svc.lastKnownGood(3).has_value());
    EXPECT_DOUBLE_EQ(*svc.lastKnownGood(3), 4.0);
}

TEST_F(ServiceTest, FullQueueEvictsBulkForCriticalArrival)
{
    Params p;
    p.registry = &reg;
    p.queueCapacity = 4;
    PredictionService svc(primary, p);
    for (std::uint64_t k = 0; k < 4; ++k)
        svc.submit(req(k, Priority::Bulk));
    // The arrival is more important than queued bulk: the *newest*
    // bulk request (key 3) is evicted to make room.
    svc.submit(req(100, Priority::Critical));
    EXPECT_EQ(svc.queueDepth(), 4u);

    const auto responses = svc.takeResponses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].key, 3u);
    EXPECT_EQ(responses[0].disposition, Disposition::Shed);
    EXPECT_NE(responses[0].reason.find("evicted"), std::string::npos);
    EXPECT_TRUE(std::isnan(responses[0].prediction));
    EXPECT_EQ(reg.value("serve.shed.bulk"), 1.0);
    EXPECT_EQ(reg.value("serve.shed.critical"), 0.0);
}

TEST_F(ServiceTest, ArrivalShedsItselfBelowQueuedImportance)
{
    Params p;
    p.registry = &reg;
    p.queueCapacity = 2;
    PredictionService svc(primary, p);
    svc.submit(req(0, Priority::Critical));
    svc.submit(req(1, Priority::Critical));
    // Nothing queued is less important than bulk: the arrival sheds.
    svc.submit(req(2, Priority::Bulk));
    const auto responses = svc.takeResponses();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].key, 2u);
    EXPECT_EQ(responses[0].reason, "queue full");
    EXPECT_EQ(reg.value("serve.shed.bulk"), 1.0);
}

TEST_F(ServiceTest, InjectedRejectShedsAtAdmission)
{
    fi::Injector::instance().arm("serve.reject:below=1");
    Params p;
    p.registry = &reg;
    PredictionService svc(primary, p);
    svc.submit(req(7));
    svc.submit(req(8));
    svc.drain();
    const auto responses = svc.takeResponses();
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].disposition, Disposition::Shed);
    EXPECT_NE(responses[0].reason.find("serve.reject"),
              std::string::npos);
    EXPECT_EQ(responses[1].disposition, Disposition::Served);
}

TEST_F(ServiceTest, DeadlinePressureDegradesFromLastKnownGood)
{
    Params p;
    p.registry = &reg;
    p.budgetPerTick = 1;
    p.degradeAfterTicks = 2;
    PredictionService svc(primary, p);
    // Serve key 5 once so its LKG entry exists.
    svc.submit(req(5));
    svc.tick();
    // Now swamp the 1-per-tick budget with more work on the same key.
    for (int i = 0; i < 4; ++i)
        svc.submit(req(5));
    svc.drain();

    const auto responses = svc.takeResponses();
    ASSERT_EQ(responses.size(), 5u);
    bool sawDegraded = false;
    for (const Response &r : responses)
        if (r.disposition == Disposition::Degraded) {
            sawDegraded = true;
            EXPECT_NE(r.reason.find("deadline pressure"),
                      std::string::npos);
            EXPECT_NE(r.reason.find("last-known-good"),
                      std::string::npos);
            EXPECT_DOUBLE_EQ(r.prediction, 6.0); // the cached answer
        }
    EXPECT_TRUE(sawDegraded);
    EXPECT_EQ(reg.value("serve.shed"), 0.0); // degraded, never dropped
}

TEST_F(ServiceTest, DegradedPathUsesFallbackModelForUnseenKeys)
{
    Params p;
    p.registry = &reg;
    p.budgetPerTick = 1;
    p.degradeAfterTicks = 1;
    PredictionService svc(primary, p, &fallback);
    for (std::uint64_t k = 0; k < 4; ++k)
        svc.submit(req(k));
    svc.drain();
    const auto responses = svc.takeResponses();
    ASSERT_EQ(responses.size(), 4u);
    bool sawFallback = false;
    for (const Response &r : responses)
        if (r.degraded) {
            sawFallback = true;
            EXPECT_NE(r.reason.find("fallback model"),
                      std::string::npos);
            EXPECT_DOUBLE_EQ(r.prediction, -42.0);
        }
    EXPECT_TRUE(sawFallback);
}

TEST_F(ServiceTest, NoDegradedPathMeansHonestShed)
{
    Params p;
    p.registry = &reg;
    p.budgetPerTick = 1;
    p.degradeAfterTicks = 1;
    PredictionService svc(primary, p); // no fallback, empty LKG
    for (std::uint64_t k = 0; k < 4; ++k)
        svc.submit(req(k));
    svc.drain();
    bool sawShed = false;
    for (const Response &r : svc.takeResponses())
        if (r.disposition == Disposition::Shed) {
            sawShed = true;
            EXPECT_NE(r.reason.find("no degraded path"),
                      std::string::npos);
        }
    EXPECT_TRUE(sawShed);
}

TEST_F(ServiceTest, ForestSliceIsACheapConsistentFallback)
{
    ml::RandomForestRegressor::Params fp;
    fp.trees = 10;
    fp.maxDepth = 4;
    ml::RandomForestRegressor forest(fp);
    ml::Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 64; ++i) {
        x.push_back({static_cast<double>(i), static_cast<double>(i % 7)});
        y.push_back(2.0 * i);
    }
    forest.fit(x, y);
    EXPECT_EQ(forest.treeCount(), 10u);

    ml::ForestSliceRegressor slice(forest, 3);
    EXPECT_EQ(slice.trees(), 3u);
    EXPECT_DOUBLE_EQ(slice.predict(x[5]),
                     forest.predictFirstTrees(x[5], 3));
    // The full-ensemble prefix equals the ensemble prediction.
    EXPECT_DOUBLE_EQ(forest.predictFirstTrees(x[5], 10),
                     forest.predict(x[5]));
    std::vector<double> many;
    slice.predictMany(x, many);
    ASSERT_EQ(many.size(), x.size());
    EXPECT_DOUBLE_EQ(many[5], slice.predict(x[5]));
}

/**
 * The acceptance criterion behind the whole tick-driven design: a
 * faulted serving run (errors, stalls, rejects, shedding, breaker
 * trips) commits the identical disposition sequence and stats digest
 * at 1, 2 and 8 threads.
 */
TEST_F(ServiceTest, FaultedRunIsBitIdenticalAcrossThreadCounts)
{
    const int original = par::Pool::global().threads();
    std::vector<std::string> transcripts;
    std::vector<std::uint64_t> digests;
    for (const int threads : {1, 2, 8}) {
        par::Pool::setGlobalThreads(threads);
        fi::Injector::instance().arm(
            "serve.error:below=20;serve.reject:every=13");
        obs::Registry local;
        SumModel model;
        Params p;
        p.registry = &local;
        p.budgetPerTick = 8;
        p.queueCapacity = 24;
        p.degradeAfterTicks = 2;
        p.shards = 2;
        p.breaker.consecutiveFailures = 3;
        p.breaker.cooldownTicks = 2;
        PredictionService svc(model, p, &fallback);
        for (std::uint64_t k = 0; k < 96; ++k) {
            Request r = req(k, k % 11 == 0 ? Priority::Critical
                                           : Priority::Bulk);
            r.shard = static_cast<int>(k % 2);
            svc.submit(r);
            if (k % 16 == 15)
                svc.tick();
        }
        svc.drain();
        fi::Injector::instance().disarm();

        std::string transcript;
        for (const Response &r : svc.takeResponses())
            transcript += std::to_string(r.id) + ":" +
                          dispositionName(r.disposition) + ":" +
                          r.reason + "\n";
        transcripts.push_back(std::move(transcript));
        digests.push_back(obs::statsDigest(&local));
    }
    par::Pool::setGlobalThreads(original);
    EXPECT_EQ(transcripts[0], transcripts[1]);
    EXPECT_EQ(transcripts[0], transcripts[2]);
    EXPECT_EQ(digests[0], digests[1]);
    EXPECT_EQ(digests[0], digests[2]);
}

/** serve.live.* must stay out of the digest; serve.* must be in it. */
TEST_F(ServiceTest, LiveStateIsDigestExcluded)
{
    EXPECT_TRUE(obs::digestExcludes("serve.live.queue_depth"));
    EXPECT_TRUE(obs::digestExcludes("serve.live.breaker_state.shard0"));
    EXPECT_FALSE(obs::digestExcludes("serve.submitted"));
    EXPECT_FALSE(obs::digestExcludes("serve.shed.bulk"));
    EXPECT_FALSE(obs::digestExcludes("serve.breaker.opened"));
}

} // namespace
} // namespace dfault::serve
