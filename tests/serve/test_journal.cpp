/**
 * @file
 * Unit tests for the prediction service's write-ahead journal
 * (serve/journal.hh): record JSON round trips, the config digest
 * guard, restore-to-exact-pre-crash-state, quarantine of torn /
 * garbage / mismatched records, snapshot fallback and compaction, and
 * the tentpole acceptance claim — a killed-and-resumed serving run
 * reaches the bit-identical transcript and stats digest of a run that
 * never died, at 1, 2 and 8 threads, including under armed journal.*
 * faults.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "fi/durable.hh"
#include "fi/injector.hh"
#include "obs/manifest.hh"
#include "par/pool.hh"
#include "serve/journal.hh"
#include "serve/service.hh"

namespace dfault::serve {
namespace {

/** Deterministic primary: predicts the sum of the features. */
struct SumModel : ml::Regressor
{
    void fit(const ml::Matrix &, std::span<const double>) override {}
    double predict(std::span<const double> row) const override
    {
        return std::accumulate(row.begin(), row.end(), 0.0);
    }
    void predictMany(const ml::Matrix &rows,
                     std::vector<double> &out) const override
    {
        out.resize(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i)
            out[i] = predict(rows[i]);
    }
    std::string name() const override { return "sum"; }
};

/** Deterministic fallback: always the same sentinel value. */
struct ConstModel : ml::Regressor
{
    void fit(const ml::Matrix &, std::span<const double>) override {}
    double predict(std::span<const double>) const override
    {
        return -42.0;
    }
    void predictMany(const ml::Matrix &rows,
                     std::vector<double> &out) const override
    {
        out.assign(rows.size(), -42.0);
    }
    std::string name() const override { return "const"; }
};

/** One canonical line per response; NaN prints as "nan" everywhere. */
std::string
responseLine(const Response &r)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%llu:%llu:%s:%s:%d:%.17g:",
                  static_cast<unsigned long long>(r.id),
                  static_cast<unsigned long long>(r.key),
                  priorityName(r.priority),
                  dispositionName(r.disposition), r.degraded ? 1 : 0,
                  r.prediction);
    return std::string(buf) + r.reason + "\n";
}

std::string
transcriptOf(const std::vector<Response> &responses)
{
    std::string out;
    for (const Response &r : responses)
        out += responseLine(r);
    return out;
}

/**
 * The deterministic driver the tests replay: round r submits
 * kPerRound requests (mixed priorities, two shards) and runs one
 * tick, so 0-based round r commits as journal tick r + 1.
 */
constexpr std::size_t kPerRound = 8;
constexpr std::size_t kRounds = 12;

Request
makeReq(std::uint64_t k)
{
    Request r;
    r.key = k % 19;
    r.priority = k % 11 == 0 ? Priority::Critical
                 : k % 7 == 0 ? Priority::Health
                              : Priority::Bulk;
    r.shard = static_cast<int>(k % 2);
    r.features = {static_cast<double>(k % 19), 1.0};
    return r;
}

void
runRounds(PredictionService &svc, std::size_t from, std::size_t to)
{
    for (std::size_t round = from; round < to; ++round) {
        for (std::size_t i = 0; i < kPerRound; ++i)
            svc.submit(makeReq(round * kPerRound + i));
        svc.tick();
    }
}

struct RunResult
{
    std::string transcript;
    std::uint64_t digest = 0;
};

struct JournalTest : ::testing::Test
{
    std::string dir = ::testing::TempDir() + "dfault_wal_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();

    void SetUp() override { std::filesystem::remove_all(dir); }
    void TearDown() override
    {
        fi::Injector::instance().disarm();
        std::filesystem::remove_all(dir);
    }

    /** Pressure tuning: backlog, deadlines, breakers all in play. */
    Params baseParams(obs::Registry *reg) const
    {
        Params p;
        p.registry = reg;
        p.queueCapacity = 24;
        p.budgetPerTick = 5;
        p.degradeAfterTicks = 2;
        p.shards = 2;
        p.maxRetries = 1;
        p.breaker.consecutiveFailures = 3;
        p.breaker.cooldownTicks = 2;
        p.journalSalt = 77;
        return p;
    }

    /** The golden: same schedule, no journal, never killed. */
    RunResult cleanRun()
    {
        obs::Registry reg;
        PredictionService svc(primary, baseParams(&reg), &fallback);
        runRounds(svc, 0, kRounds);
        svc.drain();
        return {transcriptOf(svc.takeResponses()),
                obs::statsDigest(&reg)};
    }

    /**
     * Run with the journal, "crash" (destroy the service — nothing
     * past the last durable record survives) after @p crashRound full
     * rounds plus half a round of uncommitted submissions, then
     * restore into a fresh service and registry and finish the
     * schedule from resumedFromTick().
     */
    RunResult crashAndResume(std::size_t crashRound,
                             std::uint64_t snapshotEvery = 4)
    {
        {
            obs::Registry crashed;
            Params p = baseParams(&crashed);
            p.journalDir = dir;
            p.snapshotEveryTicks = snapshotEvery;
            PredictionService svc(primary, p, &fallback);
            runRounds(svc, 0, crashRound);
            // Half a round submitted but never ticked: lost with the
            // crash, re-submitted by the resumed driver below.
            for (std::size_t i = 0; i < kPerRound / 2; ++i)
                svc.submit(makeReq(crashRound * kPerRound + i));
        }
        obs::Registry reg;
        Params p = baseParams(&reg);
        p.journalDir = dir;
        p.snapshotEveryTicks = snapshotEvery;
        PredictionService svc(primary, p, &fallback);
        EXPECT_EQ(svc.resumedFromTick(),
                  static_cast<std::int64_t>(crashRound));
        runRounds(svc, static_cast<std::size_t>(svc.resumedFromTick()),
                  kRounds);
        svc.drain();
        return {transcriptOf(svc.takeResponses()),
                obs::statsDigest(&reg)};
    }

    SumModel primary;
    ConstModel fallback;
};

TEST_F(JournalTest, CounterBlockRoundTripsThroughStatOps)
{
    CounterBlock block;
    block.submitted = 10;
    block.served = 6;
    block.degraded = 3;
    block.shed = 1;
    block.shedBulk = 1;
    block.breakerOpened = 2;
    block.ticks = 4;

    const std::vector<obs::StatOp> ops = counterBlockOps(block);
    // Zero fields are omitted: 7 non-zero fields above.
    EXPECT_EQ(ops.size(), 7u);
    for (const obs::StatOp &op : ops)
        EXPECT_EQ(op.kind, obs::StatOp::Kind::CounterInc);

    CounterBlock back;
    counterBlockAdd(back, ops);
    EXPECT_EQ(back.submitted, 10u);
    EXPECT_EQ(back.served, 6u);
    EXPECT_EQ(back.degraded, 3u);
    EXPECT_EQ(back.shed, 1u);
    EXPECT_EQ(back.shedBulk, 1u);
    EXPECT_EQ(back.shedCritical, 0u);
    EXPECT_EQ(back.breakerOpened, 2u);
    EXPECT_EQ(back.ticks, 4u);

    // Applying the ops to a registry lands on the real serve.* names.
    obs::Registry reg;
    obs::applyStatOps(ops, &reg);
    EXPECT_EQ(reg.value("serve.submitted"), 10.0);
    EXPECT_EQ(reg.value("serve.breaker.opened"), 2.0);
}

TEST_F(JournalTest, SegmentJsonRoundTripsIncludingNaNPrediction)
{
    JournalSegment seg;
    seg.tick = 7;
    seg.nextId = 42;
    JournalRequest rq;
    rq.id = 40;
    rq.key = 5;
    rq.priority = 2;
    rq.shard = 1;
    rq.enqueueTick = 7;
    rq.features = {5.0, 1.0, 0.25};
    seg.admitted.push_back(rq);

    Response served;
    served.id = 38;
    served.key = 3;
    served.priority = Priority::Critical;
    served.disposition = Disposition::Served;
    served.prediction = 4.0;
    seg.responses.push_back(served);
    Response shed;
    shed.id = 39;
    shed.key = 9;
    shed.priority = Priority::Bulk;
    shed.disposition = Disposition::Shed;
    shed.prediction = std::nan("");
    shed.reason = "queue full";
    seg.responses.push_back(shed);

    JournalBreaker b;
    b.state = 1;
    b.consecutive = 3;
    b.window = "0011";
    b.windowFailures = 2;
    b.openedTick = 7;
    seg.breakers.push_back(b);
    seg.statOps = counterBlockOps([] {
        CounterBlock c;
        c.submitted = 1;
        c.served = 1;
        c.shed = 1;
        c.shedBulk = 1;
        c.ticks = 1;
        return c;
    }());

    const std::uint64_t digest = 0xabcdefu;
    const std::string json = journalSegmentJson(seg, digest);
    JournalSegment out;
    std::string error;
    ASSERT_TRUE(journalSegmentFromJson(json, digest, out, &error))
        << error;
    EXPECT_EQ(out.tick, 7u);
    EXPECT_EQ(out.nextId, 42u);
    ASSERT_EQ(out.admitted.size(), 1u);
    EXPECT_EQ(out.admitted[0].id, 40u);
    EXPECT_EQ(out.admitted[0].features, rq.features);
    ASSERT_EQ(out.responses.size(), 2u);
    EXPECT_EQ(responseLine(out.responses[0]), responseLine(served));
    // The shed response's NaN survives the trip (JSON null).
    EXPECT_TRUE(std::isnan(out.responses[1].prediction));
    EXPECT_EQ(out.responses[1].reason, "queue full");
    ASSERT_EQ(out.breakers.size(), 1u);
    EXPECT_EQ(out.breakers[0].window, "0011");
    EXPECT_EQ(out.statOps.size(), seg.statOps.size());
}

TEST_F(JournalTest, SnapshotJsonRoundTrips)
{
    JournalSnapshot snap;
    snap.tick = 12;
    snap.nextId = 99;
    JournalRequest rq;
    rq.id = 97;
    rq.key = 2;
    rq.features = {2.0, 1.0};
    snap.queued.push_back(rq);
    Response r;
    r.id = 96;
    r.key = 1;
    r.disposition = Disposition::Degraded;
    r.degraded = true;
    r.prediction = -42.0;
    r.reason = "breaker open; fallback model";
    snap.responses.push_back(r);
    snap.breakers.push_back(JournalBreaker{});
    snap.lastKnownGood = {{1, 2.0}, {5, 6.0}};
    CounterBlock totals;
    totals.submitted = 99;
    totals.ticks = 12;
    snap.statOps = counterBlockOps(totals);

    const std::string json = journalSnapshotJson(snap, 7u);
    JournalSnapshot out;
    std::string error;
    ASSERT_TRUE(journalSnapshotFromJson(json, 7u, out, &error)) << error;
    EXPECT_EQ(out.tick, 12u);
    EXPECT_EQ(out.nextId, 99u);
    ASSERT_EQ(out.queued.size(), 1u);
    EXPECT_EQ(out.queued[0].id, 97u);
    ASSERT_EQ(out.responses.size(), 1u);
    EXPECT_EQ(responseLine(out.responses[0]), responseLine(r));
    EXPECT_EQ(out.lastKnownGood, snap.lastKnownGood);
}

TEST_F(JournalTest, ParserRejectsTruncatedGarbageAndForeignRecords)
{
    JournalSegment seg;
    seg.tick = 3;
    const std::string good = journalSegmentJson(seg, 1u);

    JournalSegment out;
    std::string error;
    // Truncated mid-document (the torn-write shape).
    EXPECT_FALSE(journalSegmentFromJson(
        good.substr(0, good.size() / 2), 1u, out, &error));
    EXPECT_FALSE(error.empty());
    // Garbage bytes.
    EXPECT_FALSE(journalSegmentFromJson("not json at all", 1u, out,
                                        &error));
    // A valid record from a different configuration.
    EXPECT_FALSE(journalSegmentFromJson(good, 2u, out, &error));
    EXPECT_NE(error.find("config"), std::string::npos);
    // A snapshot is not a segment (kind mismatch).
    JournalSnapshot snap;
    snap.tick = 3;
    EXPECT_FALSE(journalSegmentFromJson(journalSnapshotJson(snap, 1u),
                                        1u, out, &error));
}

TEST_F(JournalTest, ConfigDigestCoversResultKnobsOnly)
{
    Params a;
    const std::uint64_t base = journalConfigDigest(a);
    EXPECT_EQ(base, journalConfigDigest(a));

    // Every result-bearing knob moves the digest...
    Params b = a;
    b.budgetPerTick = 7;
    EXPECT_NE(journalConfigDigest(b), base);
    b = a;
    b.queueCapacity = 9;
    EXPECT_NE(journalConfigDigest(b), base);
    b = a;
    b.degradeAfterTicks = 3;
    EXPECT_NE(journalConfigDigest(b), base);
    b = a;
    b.shards = 4;
    EXPECT_NE(journalConfigDigest(b), base);
    b = a;
    b.maxRetries = 5;
    EXPECT_NE(journalConfigDigest(b), base);
    b = a;
    b.breaker.consecutiveFailures = 9;
    EXPECT_NE(journalConfigDigest(b), base);
    b = a;
    b.journalSalt = 1;
    EXPECT_NE(journalConfigDigest(b), base);

    // ...while resilience/cadence knobs deliberately do not: changing
    // them on resume must not invalidate an existing journal.
    b = a;
    b.journalDir = "/somewhere/else";
    b.snapshotEveryTicks = 999;
    EXPECT_EQ(journalConfigDigest(b), base);
}

TEST_F(JournalTest, RestoreReachesExactPreCrashState)
{
    fi::Injector::instance().arm(
        "serve.error:below=20;serve.reject:every=13");

    obs::Registry crashed;
    std::vector<double> before;
    std::vector<BreakerState> breakersBefore;
    std::vector<std::pair<std::uint64_t, double>> lkgBefore;
    std::uint64_t tickBefore = 0;
    std::size_t depthBefore = 0;
    const char *const counters[] = {
        "serve.submitted",      "serve.served",
        "serve.degraded",       "serve.shed",
        "serve.shed.critical",  "serve.shed.health",
        "serve.shed.bulk",      "serve.breaker.opened",
        "serve.breaker.half_open", "serve.breaker.closed",
        "serve.ticks"};
    {
        Params p = baseParams(&crashed);
        p.journalDir = dir;
        p.snapshotEveryTicks = 4;
        PredictionService svc(primary, p, &fallback);
        runRounds(svc, 0, 9); // crash on a round boundary: all durable
        tickBefore = svc.ticks();
        depthBefore = svc.queueDepth();
        for (const char *name : counters)
            before.push_back(crashed.value(name));
        for (int shard = 0; shard < 2; ++shard)
            breakersBefore.push_back(svc.breakerState(shard));
        for (std::uint64_t key = 0; key < 19; ++key)
            if (const auto v = svc.lastKnownGood(key))
                lkgBefore.emplace_back(key, *v);
    }

    obs::Registry reg;
    Params p = baseParams(&reg);
    p.journalDir = dir;
    p.snapshotEveryTicks = 4;
    PredictionService svc(primary, p, &fallback);

    // Same tick, same queue depth, same serve.* counters, same
    // breaker phase, same last-known-good cache — the exact state the
    // crashed process held after its last durable record.
    EXPECT_EQ(svc.resumedFromTick(), 9);
    EXPECT_EQ(svc.ticks(), tickBefore);
    EXPECT_EQ(svc.queueDepth(), depthBefore);
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(reg.value(counters[i]), before[i]) << counters[i];
    for (int shard = 0; shard < 2; ++shard)
        EXPECT_EQ(svc.breakerState(shard), breakersBefore[shard])
            << "shard " << shard;
    std::vector<std::pair<std::uint64_t, double>> lkgAfter;
    for (std::uint64_t key = 0; key < 19; ++key)
        if (const auto v = svc.lastKnownGood(key))
            lkgAfter.emplace_back(key, *v);
    EXPECT_EQ(lkgAfter, lkgBefore);
}

/**
 * The tentpole acceptance claim: a run killed mid-flight (losing a
 * half-submitted round) and resumed from its journal reaches the
 * bit-identical transcript and stats digest of a run that never died
 * — at 1, 2 and 8 threads, with serving faults armed throughout.
 */
TEST_F(JournalTest, KillResumeIsBitIdenticalAcrossThreadCounts)
{
    const int original = par::Pool::global().threads();
    fi::Injector::instance().arm(
        "serve.error:below=20;serve.reject:every=13");
    const RunResult golden = cleanRun();
    ASSERT_FALSE(golden.transcript.empty());

    for (const int threads : {1, 2, 8}) {
        par::Pool::setGlobalThreads(threads);
        std::filesystem::remove_all(dir);
        const RunResult resumed = crashAndResume(7);
        EXPECT_EQ(resumed.transcript, golden.transcript)
            << "threads " << threads;
        EXPECT_EQ(resumed.digest, golden.digest)
            << "threads " << threads;
    }
    par::Pool::setGlobalThreads(original);
}

/**
 * journal.write makes record writes fail outright: nothing lands and
 * the delta folds into the next successful record. A crash right
 * after a failed write loses those ticks — and the resumed driver
 * re-executes them to the same transcript.
 */
TEST_F(JournalTest, ResumesCorrectlyUnderArmedJournalWriteFaults)
{
    const RunResult golden = cleanRun();
    fi::Injector::instance().arm("journal.write:every=3");
    {
        obs::Registry crashed;
        Params p = baseParams(&crashed);
        p.journalDir = dir;
        p.snapshotEveryTicks = 4;
        PredictionService svc(primary, p, &fallback);
        runRounds(svc, 0, 9);
        // Ticks 3, 6, 9 never landed; tick 9's delta is still pending
        // when the crash hits, so the journal ends at tick 8.
    }
    fi::Injector::instance().disarm();

    obs::Registry reg;
    Params p = baseParams(&reg);
    p.journalDir = dir;
    p.snapshotEveryTicks = 4;
    PredictionService svc(primary, p, &fallback);
    EXPECT_EQ(svc.resumedFromTick(), 8);
    runRounds(svc, 8, kRounds);
    svc.drain();
    EXPECT_EQ(transcriptOf(svc.takeResponses()), golden.transcript);
    EXPECT_EQ(obs::statsDigest(&reg), golden.digest);
}

/**
 * journal.torn_segment makes a write land half a body — the torn
 * write the loader's quarantine path exists for. Replay must stop at
 * the record before the torn one (its delta is lost), re-serving
 * everything from there, and still converge on the golden.
 */
TEST_F(JournalTest, TornSegmentIsQuarantinedAndReServed)
{
    const RunResult golden = cleanRun();
    fi::Injector::instance().arm("journal.torn_segment:every=6,count=1");
    {
        obs::Registry crashed;
        Params p = baseParams(&crashed);
        p.journalDir = dir;
        p.snapshotEveryTicks = 0; // segments only
        PredictionService svc(primary, p, &fallback);
        runRounds(svc, 0, 9); // tick 6's segment lands torn
    }
    fi::Injector::instance().disarm();

    obs::Registry reg;
    Params p = baseParams(&reg);
    p.journalDir = dir;
    p.snapshotEveryTicks = 0;
    PredictionService svc(primary, p, &fallback);
    // Stops *before* the torn tick even though ticks 7..9 have valid
    // segments on disk: their deltas assume tick 6 was applied.
    EXPECT_EQ(svc.resumedFromTick(), 5);
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/seg-00000006.json.quarantined"));
    EXPECT_GE(reg.value("journal.quarantined_files"), 1.0);
    runRounds(svc, 5, kRounds);
    svc.drain();
    EXPECT_EQ(transcriptOf(svc.takeResponses()), golden.transcript);
    EXPECT_EQ(obs::statsDigest(&reg), golden.digest);
}

/**
 * A corrupted *newest snapshot* must fall back to the retained older
 * snapshot — but segment replay still stops before the corrupt
 * snapshot's tick, whose delta lived only in that snapshot.
 */
TEST_F(JournalTest, CorruptNewestSnapshotFallsBackToOlderOne)
{
    const RunResult golden = cleanRun();
    {
        obs::Registry crashed;
        Params p = baseParams(&crashed);
        p.journalDir = dir;
        p.snapshotEveryTicks = 3;
        PredictionService svc(primary, p, &fallback);
        runRounds(svc, 0, 10); // snaps at 3, 6, 9; 6 and 9 retained
    }
    ASSERT_TRUE(fi::atomicWriteFile(dir + "/snap-00000009.json",
                                    "{\"definitely\": \"garbage\""));

    obs::Registry reg;
    Params p = baseParams(&reg);
    p.journalDir = dir;
    p.snapshotEveryTicks = 3;
    PredictionService svc(primary, p, &fallback);
    // snap-6 + segments 7 and 8; tick 9 is lost with its snapshot and
    // tick 10's segment must not be replayed across the gap.
    EXPECT_EQ(svc.resumedFromTick(), 8);
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/snap-00000009.json.quarantined"));
    runRounds(svc, 8, kRounds);
    svc.drain();
    EXPECT_EQ(transcriptOf(svc.takeResponses()), golden.transcript);
    EXPECT_EQ(obs::statsDigest(&reg), golden.digest);
}

/** A journal from a different configuration never silently replays. */
TEST_F(JournalTest, ConfigDigestMismatchQuarantinesAndStartsFresh)
{
    const RunResult golden = cleanRun();
    {
        obs::Registry crashed;
        Params p = baseParams(&crashed);
        p.journalDir = dir;
        p.journalSalt = 1000; // a different traffic configuration
        PredictionService svc(primary, p, &fallback);
        runRounds(svc, 0, 6);
    }

    obs::Registry reg;
    Params p = baseParams(&reg); // salt 77 again
    p.journalDir = dir;
    PredictionService svc(primary, p, &fallback);
    EXPECT_EQ(svc.resumedFromTick(), -1); // fresh start, no replay
    runRounds(svc, 0, kRounds);
    svc.drain();
    EXPECT_EQ(transcriptOf(svc.takeResponses()), golden.transcript);
    EXPECT_EQ(obs::statsDigest(&reg), golden.digest);
}

/**
 * Compaction keeps exactly two snapshots plus the segments after the
 * older one; everything the older snapshot subsumes is deleted.
 */
TEST_F(JournalTest, CompactionRetainsTwoSnapshotsAndTrailingSegments)
{
    obs::Registry reg;
    Params p = baseParams(&reg);
    p.journalDir = dir;
    p.snapshotEveryTicks = 3;
    p.budgetPerTick = 64; // no backlog: exactly one tick per round
    p.degradeAfterTicks = 0;
    PredictionService svc(primary, p, &fallback);
    runRounds(svc, 0, kRounds); // ticks 1..12, snaps at 3, 6, 9, 12

    std::set<std::string> names;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        names.insert(entry.path().filename().string());
    const std::set<std::string> expected = {
        "snap-00000009.json", "snap-00000012.json",
        "seg-00000010.json", "seg-00000011.json"};
    EXPECT_EQ(names, expected);
}

/**
 * Graceful-interrupt coverage (the SIGTERM drain path): a cancelled
 * service sheds every queued request, the conservation law holds over
 * its counters, and the final state is durable — a restore lands on
 * the same accounted-for totals.
 */
TEST_F(JournalTest, CancelledDrainIsConservedAndDurable)
{
    const auto conserved = [](const obs::Registry &reg) {
        return reg.value("serve.submitted") ==
               reg.value("serve.served") + reg.value("serve.degraded") +
                   reg.value("serve.shed");
    };
    std::vector<double> finalCounters;
    {
        obs::Registry reg;
        Params p = baseParams(&reg);
        p.journalDir = dir;
        p.token = par::CancelToken::make();
        PredictionService svc(primary, p, &fallback);
        runRounds(svc, 0, 5);
        ASSERT_GT(svc.queueDepth(), 0u); // backlog to be shed
        p.token.cancel("test drain", "test");
        svc.drain();
        EXPECT_EQ(svc.queueDepth(), 0u);
        EXPECT_TRUE(conserved(reg));
        finalCounters = {reg.value("serve.submitted"),
                         reg.value("serve.served"),
                         reg.value("serve.degraded"),
                         reg.value("serve.shed")};
    }
    obs::Registry reg;
    Params p = baseParams(&reg);
    p.journalDir = dir;
    PredictionService svc(primary, p, &fallback);
    EXPECT_GE(svc.resumedFromTick(), 5);
    EXPECT_TRUE(conserved(reg));
    EXPECT_EQ(reg.value("serve.submitted"), finalCounters[0]);
    EXPECT_EQ(reg.value("serve.served"), finalCounters[1]);
    EXPECT_EQ(reg.value("serve.degraded"), finalCounters[2]);
    EXPECT_EQ(reg.value("serve.shed"), finalCounters[3]);
}

/** journal.* is operational history, digest-excluded like fi.*. */
TEST_F(JournalTest, JournalStatsAreDigestExcluded)
{
    EXPECT_TRUE(obs::digestExcludes("journal.segments_written"));
    EXPECT_TRUE(obs::digestExcludes("journal.replayed_segments"));
    EXPECT_TRUE(obs::digestExcludes("journal.quarantined_files"));
    EXPECT_FALSE(obs::digestExcludes("serve.submitted"));
}

} // namespace
} // namespace dfault::serve
