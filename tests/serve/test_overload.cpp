/**
 * @file
 * Overload and concurrency tests: graceful degradation under 4x
 * sustained over-capacity, multi-producer submission racing the tick
 * driver (the TSan target), and cancellation racing a full bounded
 * queue. The invariant under test everywhere: the queue stays bounded
 * and every submission gets exactly one served / degraded / shed
 * disposition — nothing is silently dropped.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fi/injector.hh"
#include "obs/stats.hh"
#include "par/cancel.hh"
#include "serve/service.hh"

namespace dfault::serve {
namespace {

struct EchoModel : ml::Regressor
{
    void fit(const ml::Matrix &, std::span<const double>) override {}
    double predict(std::span<const double> row) const override
    {
        return row.empty() ? 0.0 : row[0];
    }
    void predictMany(const ml::Matrix &rows,
                     std::vector<double> &out) const override
    {
        out.resize(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i)
            out[i] = predict(rows[i]);
    }
    std::string name() const override { return "echo"; }
};

struct OverloadTest : ::testing::Test
{
    void TearDown() override { fi::Injector::instance().disarm(); }

    Request req(std::uint64_t key, Priority pri)
    {
        Request r;
        r.key = key;
        r.priority = pri;
        r.features = {static_cast<double>(key)};
        return r;
    }

    EchoModel primary;
    EchoModel fallbackModel;
    obs::Registry reg;
};

TEST_F(OverloadTest, GracefulDegradationAtFourTimesCapacity)
{
    Params p;
    p.registry = &reg;
    p.budgetPerTick = 8;
    p.queueCapacity = 32;
    p.degradeAfterTicks = 2;
    PredictionService svc(primary, p, &fallbackModel);

    // 4x over-capacity for 12 rounds: 32 arrivals per 8-budget tick.
    std::uint64_t submitted = 0;
    for (int round = 0; round < 12; ++round) {
        for (int i = 0; i < 32; ++i) {
            const Priority pri = i % 8 == 0 ? Priority::Critical
                                 : i % 8 == 1 ? Priority::Health
                                              : Priority::Bulk;
            svc.submit(req(submitted++, pri));
            // The queue is *bounded*: admission control holds the line
            // at every single submission, not just between ticks.
            ASSERT_LE(svc.queueDepth(), p.queueCapacity);
        }
        svc.tick();
    }
    svc.drain();
    EXPECT_EQ(svc.queueDepth(), 0u);

    // No silent drops: every submission id has exactly one response.
    const auto responses = svc.takeResponses();
    ASSERT_EQ(responses.size(), submitted);
    std::set<std::uint64_t> ids;
    for (const Response &r : responses)
        EXPECT_TRUE(ids.insert(r.id).second) << "duplicate id " << r.id;
    EXPECT_EQ(*ids.rbegin(), submitted - 1);

    // Conservation over the counters, and shedding hit bulk only:
    // critical and health survived a 4x overload untouched.
    EXPECT_EQ(reg.value("serve.submitted"),
              static_cast<double>(submitted));
    EXPECT_EQ(reg.value("serve.submitted"),
              reg.value("serve.served") + reg.value("serve.degraded") +
                  reg.value("serve.shed"));
    EXPECT_GT(reg.value("serve.shed"), 0.0);
    EXPECT_EQ(reg.value("serve.shed.critical"), 0.0);
    EXPECT_EQ(reg.value("serve.shed.health"), 0.0);
    for (const Response &r : responses)
        if (r.priority == Priority::Critical) {
            EXPECT_NE(r.disposition, Disposition::Shed);
        }
}

TEST_F(OverloadTest, ConcurrentSubmittersRaceTheTickDriver)
{
    Params p;
    p.registry = &reg;
    p.budgetPerTick = 16;
    p.queueCapacity = 64;
    p.degradeAfterTicks = 3;
    PredictionService svc(primary, p, &fallbackModel);

    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    std::atomic<int> running{kProducers};
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int t = 0; t < kProducers; ++t)
        producers.emplace_back([&, t] {
            for (int i = 0; i < kPerProducer; ++i)
                svc.submit(req(static_cast<std::uint64_t>(t) * 1000 + i,
                               i % 3 == 0 ? Priority::Health
                                          : Priority::Bulk));
            --running;
        });
    // The tick driver runs concurrently with the submission storm.
    while (running.load() > 0)
        svc.tick();
    for (std::thread &t : producers)
        t.join();
    svc.drain();

    const auto responses = svc.takeResponses();
    EXPECT_EQ(responses.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
    std::set<std::uint64_t> ids;
    for (const Response &r : responses)
        EXPECT_TRUE(ids.insert(r.id).second);
    EXPECT_EQ(reg.value("serve.submitted"),
              reg.value("serve.served") + reg.value("serve.degraded") +
                  reg.value("serve.shed"));
}

TEST_F(OverloadTest, CancellationRacingAFullQueue)
{
    par::CancelToken token = par::CancelToken::make();
    Params p;
    p.registry = &reg;
    p.budgetPerTick = 4;
    p.queueCapacity = 16;
    p.token = token;
    PredictionService svc(primary, p, &fallbackModel);

    // A producer keeps the bounded queue saturated while the token is
    // cancelled from outside mid-storm: in-flight batch tasks are
    // cancelled by the pool, queued requests are shed at the next
    // tick, and late submissions are shed at admission. Either way the
    // disposition ledger stays complete and drain() terminates.
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> submitted{0};
    std::thread producer([&] {
        std::uint64_t key = 0;
        while (!stop.load()) {
            svc.submit(req(key++, Priority::Bulk));
            ++submitted;
        }
    });
    // Let the storm saturate the queue before serving starts.
    while (submitted.load() < 64)
        std::this_thread::yield();
    for (int i = 0; i < 5; ++i)
        svc.tick();
    token.cancel("load test teardown", "test");
    // Keep the race going: the producer must observably submit against
    // the cancelled token before the storm stops.
    const std::uint64_t afterCancel = submitted.load();
    while (submitted.load() < afterCancel + 64)
        std::this_thread::yield();
    for (int i = 0; i < 3; ++i)
        svc.tick();
    stop.store(true);
    producer.join();
    svc.drain();
    EXPECT_EQ(svc.queueDepth(), 0u);

    const auto responses = svc.takeResponses();
    EXPECT_EQ(responses.size(), submitted.load());
    std::size_t cancelled = 0;
    for (const Response &r : responses)
        if (r.reason.find("cancelled") != std::string::npos) {
            ++cancelled;
            EXPECT_EQ(r.disposition, Disposition::Shed);
        }
    EXPECT_GT(cancelled, 0u);
    EXPECT_EQ(reg.value("serve.submitted"),
              static_cast<double>(submitted.load()));
    EXPECT_EQ(reg.value("serve.submitted"),
              reg.value("serve.served") + reg.value("serve.degraded") +
                  reg.value("serve.shed"));
}

} // namespace
} // namespace dfault::serve
