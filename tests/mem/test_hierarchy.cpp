/**
 * @file
 * Unit tests for the L1/L2/MCU memory hierarchy wiring.
 */

#include <gtest/gtest.h>

#include "dram/geometry.hh"
#include "mem/hierarchy.hh"

namespace dfault::mem {
namespace {

MemoryHierarchy::Params
smallParams()
{
    MemoryHierarchy::Params p;
    p.cores = 2;
    p.l1.sizeBytes = 1024;
    p.l1.ways = 2;
    p.l1.hitLatency = 2;
    p.l2.sizeBytes = 4096;
    p.l2.ways = 4;
    p.l2.hitLatency = 12;
    return p;
}

TEST(Hierarchy, L1HitIsCheapest)
{
    dram::Geometry g;
    MemoryHierarchy h(g, smallParams());
    const Cycles miss = h.access(0, 0x0, false, 0);
    const Cycles hit = h.access(0, 0x0, false, 1000);
    EXPECT_EQ(hit, 2u);
    EXPECT_GT(miss, 12u); // went through L2 and DRAM
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    dram::Geometry g;
    MemoryHierarchy h(g, smallParams());
    h.access(0, 0x0, false, 0); // fills L1 and L2
    // Evict from tiny L1 by filling its set, then re-access: the line
    // should still hit in L2 (latency = L1 + L2, no DRAM).
    for (int i = 1; i <= 2; ++i)
        h.access(0, 0x0 + i * 8 * 64, false, 0);
    const Cycles latency = h.access(0, 0x0, false, 5000);
    EXPECT_EQ(latency, 2u + 12u);
}

TEST(Hierarchy, PerCoreL1sAreIndependent)
{
    dram::Geometry g;
    MemoryHierarchy h(g, smallParams());
    h.access(0, 0x0, false, 0);
    // Core 1 misses its own L1 but hits the shared L2.
    const Cycles latency = h.access(1, 0x0, false, 100);
    EXPECT_EQ(latency, 2u + 12u);
    EXPECT_EQ(h.l1Counters(0).misses(), 1u);
    EXPECT_EQ(h.l1Counters(1).misses(), 1u);
}

TEST(Hierarchy, DramSeesOnlyL2Misses)
{
    dram::Geometry g;
    MemoryHierarchy h(g, smallParams());
    h.access(0, 0x0, false, 0);
    h.access(0, 0x0, false, 1);
    h.access(0, 0x8, false, 2); // same line
    EXPECT_EQ(h.dramCommandsTotal(), 1u);
}

TEST(Hierarchy, DirtyL2EvictionReachesDram)
{
    dram::Geometry g;
    auto params = smallParams();
    MemoryHierarchy h(g, params);
    // Dirty a line in L1, evict it into L2 via L1 set conflicts (the
    // dirty copy lives in L1 until then), then evict it from L2 via L2
    // set conflicts; the final eviction must emit a DRAM write.
    h.access(0, 0x0, true, 0);
    h.access(0, 0x200, false, 1); // L1 set 0 conflict
    h.access(0, 0x400, false, 2); // evicts dirty 0x0 into L2
    for (std::uint64_t i = 2; i <= 4; ++i)
        h.access(0, i * 0x400, false, 2 + i); // fill L2 set 0
    std::uint64_t writes = 0;
    for (int ch = 0; ch < h.mcuCount(); ++ch)
        writes += h.mcu(ch).counters().writeCmds;
    EXPECT_GE(writes, 1u);
}

TEST(Hierarchy, L1CountersTotalSums)
{
    dram::Geometry g;
    MemoryHierarchy h(g, smallParams());
    h.access(0, 0x0, false, 0);
    h.access(1, 0x1000, true, 0);
    const auto total = h.l1CountersTotal();
    EXPECT_EQ(total.readAccesses, 1u);
    EXPECT_EQ(total.writeAccesses, 1u);
    EXPECT_EQ(total.misses(), 2u);
}

TEST(Hierarchy, ResetClearsState)
{
    dram::Geometry g;
    MemoryHierarchy h(g, smallParams());
    h.access(0, 0x0, false, 0);
    h.reset();
    EXPECT_EQ(h.l1CountersTotal().accesses(), 0u);
    EXPECT_EQ(h.l2Counters().accesses(), 0u);
    EXPECT_EQ(h.dramCommandsTotal(), 0u);
    // Contents flushed: the access misses all the way again.
    h.access(0, 0x0, false, 0);
    EXPECT_EQ(h.dramCommandsTotal(), 1u);
}

TEST(Hierarchy, DefaultParamsMatchPlatform)
{
    dram::Geometry g;
    MemoryHierarchy h(g);
    EXPECT_EQ(h.cores(), 8);
    EXPECT_EQ(h.mcuCount(), 4);
}

TEST(HierarchyDeath, BadCoreId)
{
    dram::Geometry g;
    MemoryHierarchy h(g, smallParams());
    EXPECT_DEATH(h.access(7, 0x0, false, 0), "core id");
}

} // namespace
} // namespace dfault::mem
