/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace dfault::mem {
namespace {

Cache::Params
tinyCache(std::uint32_t ways = 2)
{
    Cache::Params p;
    p.sizeBytes = 1024; // 16 lines
    p.lineBytes = 64;
    p.ways = ways;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x13f, false).hit); // same 64 B line
    EXPECT_FALSE(c.access(0x140, false).hit); // next line
    EXPECT_EQ(c.counters().readMisses, 2u);
    EXPECT_EQ(c.counters().readAccesses, 4u);
}

TEST(Cache, WriteAllocateAndDirtyWriteback)
{
    Cache c(tinyCache(/*ways=*/1)); // direct mapped: 16 sets
    // Write installs the line dirty.
    EXPECT_FALSE(c.access(0x000, true).hit);
    // Conflicting line in the same set (16 lines apart).
    const auto res = c.access(0x000 + 16 * 64, false);
    EXPECT_FALSE(res.hit);
    ASSERT_TRUE(res.writebackAddr.has_value());
    EXPECT_EQ(*res.writebackAddr, 0x000u);
    EXPECT_EQ(c.counters().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache c(tinyCache(/*ways=*/1));
    c.access(0x000, false); // clean line
    const auto res = c.access(0x000 + 16 * 64, false);
    EXPECT_FALSE(res.writebackAddr.has_value());
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tinyCache(/*ways=*/2)); // 8 sets
    const Addr set_stride = 8 * 64;
    // Fill both ways of set 0.
    c.access(0 * set_stride, false);
    c.access(1 * set_stride, false);
    // Touch the first line so the second becomes LRU.
    c.access(0 * set_stride, false);
    // Install a third line: way holding the second must be evicted.
    c.access(2 * set_stride, false);
    EXPECT_TRUE(c.access(0 * set_stride, false).hit);
    EXPECT_FALSE(c.access(1 * set_stride, false).hit);
}

TEST(Cache, ReadDoesNotCleanDirtyLine)
{
    Cache c(tinyCache(/*ways=*/1));
    c.access(0x000, true);
    c.access(0x000, false); // read hit keeps it dirty
    const auto res = c.access(0x000 + 16 * 64, false);
    EXPECT_TRUE(res.writebackAddr.has_value());
}

TEST(Cache, CountersSplitReadsWrites)
{
    Cache c(tinyCache());
    c.access(0x000, false);
    c.access(0x040, true);
    c.access(0x040, true);
    const auto &k = c.counters();
    EXPECT_EQ(k.readAccesses, 1u);
    EXPECT_EQ(k.writeAccesses, 2u);
    EXPECT_EQ(k.readMisses, 1u);
    EXPECT_EQ(k.writeMisses, 1u);
    EXPECT_NEAR(k.missRatio(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, FlushInvalidatesWithoutWriteback)
{
    Cache c(tinyCache());
    c.access(0x000, true);
    c.flush();
    EXPECT_FALSE(c.access(0x000, false).hit);
    // The dirty line was dropped, not written back (model choice for
    // run isolation).
    EXPECT_EQ(c.counters().writebacks, 0u);
}

TEST(Cache, ResetCountersKeepsContents)
{
    Cache c(tinyCache());
    c.access(0x000, false);
    c.resetCounters();
    EXPECT_EQ(c.counters().accesses(), 0u);
    EXPECT_TRUE(c.access(0x000, false).hit);
}

TEST(Cache, SetCountMatchesParams)
{
    Cache c(tinyCache(/*ways=*/4));
    EXPECT_EQ(c.sets(), 4u);
}

TEST(CacheDeath, BadGeometry)
{
    Cache::Params p = tinyCache();
    p.lineBytes = 48;
    EXPECT_EXIT(Cache{p}, ::testing::ExitedWithCode(1),
                "power of two");
    Cache::Params q = tinyCache();
    q.ways = 0;
    EXPECT_EXIT(Cache{q}, ::testing::ExitedWithCode(1), "ways");
    Cache::Params r = tinyCache();
    r.sizeBytes = 1000; // not divisible into lines*ways
    EXPECT_EXIT(Cache{r}, ::testing::ExitedWithCode(1), "divide");
}

} // namespace
} // namespace dfault::mem
