/**
 * @file
 * Property test: the cache model against a straightforward reference
 * implementation over long random access sequences.
 *
 * The oracle tracks per-set LRU order and dirty bits with plain
 * std::vector bookkeeping; every hit/miss decision and every writeback
 * address of the production cache must match it exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "mem/cache.hh"

namespace dfault::mem {
namespace {

/** Minimal but obviously-correct set-associative LRU cache. */
class OracleCache
{
  public:
    OracleCache(std::uint64_t size, std::uint32_t line,
                std::uint32_t ways)
        : line_(line), ways_(ways), sets_(size / line / ways),
          sets_state_(sets_)
    {
    }

    CacheAccessResult
    access(Addr addr, bool is_write)
    {
        const std::uint64_t line_no = addr / line_;
        const std::uint64_t set = line_no % sets_;
        const std::uint64_t tag = line_no / sets_;
        auto &entries = sets_state_[set];

        // Hit: move to MRU position.
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].tag == tag) {
                Entry e = entries[i];
                e.dirty |= is_write;
                entries.erase(entries.begin() + i);
                entries.push_back(e);
                return {true, std::nullopt};
            }
        }

        // Miss: evict LRU (front) when full.
        CacheAccessResult result{false, std::nullopt};
        if (entries.size() == ways_) {
            const Entry victim = entries.front();
            entries.erase(entries.begin());
            if (victim.dirty)
                result.writebackAddr =
                    (victim.tag * sets_ + set) * line_;
        }
        entries.push_back({tag, is_write});
        return result;
    }

  private:
    struct Entry
    {
        std::uint64_t tag;
        bool dirty;
    };

    std::uint64_t line_;
    std::uint32_t ways_;
    std::uint64_t sets_;
    std::vector<std::vector<Entry>> sets_state_;
};

struct OracleCase
{
    std::uint64_t size;
    std::uint32_t ways;
    std::uint64_t addr_space;
};

class CacheOracleTest : public ::testing::TestWithParam<OracleCase>
{
};

TEST_P(CacheOracleTest, MatchesReferenceOverRandomTraffic)
{
    const auto param = GetParam();
    Cache::Params p;
    p.sizeBytes = param.size;
    p.lineBytes = 64;
    p.ways = param.ways;
    Cache cache(p);
    OracleCache oracle(param.size, 64, param.ways);

    Rng rng(param.size ^ param.ways);
    for (int i = 0; i < 50000; ++i) {
        const Addr addr = rng.uniformInt(param.addr_space / 8) * 8;
        const bool is_write = rng.bernoulli(0.3);
        const auto got = cache.access(addr, is_write);
        const auto want = oracle.access(addr, is_write);
        ASSERT_EQ(got.hit, want.hit) << "access " << i;
        ASSERT_EQ(got.writebackAddr.has_value(),
                  want.writebackAddr.has_value())
            << "access " << i;
        if (got.writebackAddr)
            ASSERT_EQ(*got.writebackAddr, *want.writebackAddr)
                << "access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheOracleTest,
    ::testing::Values(OracleCase{1024, 1, 16384},   // direct mapped
                      OracleCase{2048, 2, 16384},   // small 2-way
                      OracleCase{8192, 8, 65536},   // L1-ish
                      OracleCase{32768, 4, 32768},  // low pressure
                      OracleCase{4096, 64, 65536}), // fully associative
    [](const ::testing::TestParamInfo<OracleCase> &info) {
        return "size" + std::to_string(info.param.size) + "_ways" +
               std::to_string(info.param.ways);
    });

} // namespace
} // namespace dfault::mem
