/**
 * @file
 * Unit tests for LOGO grid search.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/grid_search.hh"
#include "ml/knn.hh"

namespace dfault::ml {
namespace {

Dataset
smoothData()
{
    Dataset d({"x"});
    Rng rng(7);
    for (int g = 0; g < 6; ++g)
        for (int i = 0; i < 10; ++i) {
            const double x = g / 6.0 + rng.uniform() / 6.0;
            d.addSample({x}, x * x, "g" + std::to_string(g));
        }
    return d;
}

std::vector<GridCandidate>
knnGrid()
{
    std::vector<GridCandidate> grid;
    for (const int k : {1, 3, 25}) {
        KnnRegressor::Params p;
        p.k = k;
        grid.push_back({"knn_k" + std::to_string(k), [p] {
                            return std::make_unique<KnnRegressor>(p);
                        }});
    }
    return grid;
}

TEST(GridSearch, EvaluatesEveryCandidate)
{
    const auto results = gridSearch(smoothData(), knnGrid());
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].label, "knn_k1");
    for (const auto &r : results)
        EXPECT_GT(r.meanRmse, 0.0);
}

TEST(GridSearch, PrefersSensibleK)
{
    // k=25 averages over nearly the whole 50-sample training set and
    // must lose to small k on a smooth function.
    const auto results = gridSearch(smoothData(), knnGrid());
    const std::size_t best = bestCandidate(results);
    EXPECT_NE(results[best].label, "knn_k25");
    EXPECT_LT(results[best].meanRmse, results[2].meanRmse);
}

TEST(GridSearch, DeterministicResults)
{
    const auto a = gridSearch(smoothData(), knnGrid());
    const auto b = gridSearch(smoothData(), knnGrid());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].meanRmse, b[i].meanRmse);
}

TEST(GridSearchDeath, BadInputsAreFatal)
{
    Dataset empty({"x"});
    EXPECT_DEATH((void)gridSearch(empty, knnGrid()), "needs data");
    EXPECT_DEATH((void)gridSearch(smoothData(), {}),
                 "needs candidates");
    EXPECT_DEATH((void)bestCandidate({}), "no grid results");

    // A single group cannot be cross-validated.
    Dataset one_group({"x"});
    one_group.addSample({0.0}, 0.0, "only");
    one_group.addSample({1.0}, 1.0, "only");
    EXPECT_DEATH((void)gridSearch(one_group, knnGrid()),
                 "two groups");
}

} // namespace
} // namespace dfault::ml
