/**
 * @file
 * Unit tests for the Leave-One-Benchmark-Out protocol (paper §III-F).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/cross_validation.hh"

namespace dfault::ml {
namespace {

Dataset
threeGroups()
{
    Dataset d({"f"});
    d.addSample({1.0}, 0.1, "a");
    d.addSample({2.0}, 0.2, "b");
    d.addSample({3.0}, 0.3, "a");
    d.addSample({4.0}, 0.4, "c");
    d.addSample({5.0}, 0.5, "b");
    return d;
}

TEST(Logo, OneFoldPerGroup)
{
    const auto folds = leaveOneGroupOut(threeGroups());
    ASSERT_EQ(folds.size(), 3u);
    EXPECT_EQ(folds[0].heldOutGroup, "a");
    EXPECT_EQ(folds[1].heldOutGroup, "b");
    EXPECT_EQ(folds[2].heldOutGroup, "c");
}

TEST(Logo, TestRowsAreExactlyTheGroup)
{
    const Dataset d = threeGroups();
    for (const auto &fold : leaveOneGroupOut(d)) {
        for (const std::size_t r : fold.testRows)
            EXPECT_EQ(d.groups()[r], fold.heldOutGroup);
        for (const std::size_t r : fold.trainRows)
            EXPECT_NE(d.groups()[r], fold.heldOutGroup);
    }
}

TEST(Logo, SplitsPartitionTheDataset)
{
    const Dataset d = threeGroups();
    for (const auto &fold : leaveOneGroupOut(d)) {
        EXPECT_EQ(fold.trainRows.size() + fold.testRows.size(),
                  d.size());
        std::vector<std::size_t> all = fold.trainRows;
        all.insert(all.end(), fold.testRows.begin(),
                   fold.testRows.end());
        std::sort(all.begin(), all.end());
        for (std::size_t i = 0; i < all.size(); ++i)
            EXPECT_EQ(all[i], i);
    }
}

TEST(Logo, SingleGroupYieldsEmptyTraining)
{
    Dataset d({"f"});
    d.addSample({1.0}, 0.1, "only");
    d.addSample({2.0}, 0.2, "only");
    const auto folds = leaveOneGroupOut(d);
    ASSERT_EQ(folds.size(), 1u);
    EXPECT_TRUE(folds[0].trainRows.empty());
    EXPECT_EQ(folds[0].testRows.size(), 2u);
}

TEST(Logo, EmptyDatasetYieldsNoFolds)
{
    Dataset d({"f"});
    EXPECT_TRUE(leaveOneGroupOut(d).empty());
}

} // namespace
} // namespace dfault::ml
