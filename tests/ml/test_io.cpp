/**
 * @file
 * Unit tests for dataset CSV serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ml/io.hh"

namespace dfault::ml {
namespace {

Dataset
sample()
{
    Dataset d({"alpha", "beta"});
    d.addSample({1.5, -2.25}, 1e-7, "backprop");
    d.addSample({0.0, 1e-300}, 0.0, "memcached");
    d.addSample({3.14159265358979, 42.0}, 0.5, "srad(par)");
    return d;
}

TEST(CsvIo, RoundTripPreservesEverything)
{
    const Dataset original = sample();
    std::stringstream buffer;
    writeCsv(original, buffer);
    const Dataset loaded = readCsv(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    ASSERT_EQ(loaded.featureNames(), original.featureNames());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.groups()[i], original.groups()[i]);
        EXPECT_DOUBLE_EQ(loaded.y()[i], original.y()[i]);
        for (std::size_t j = 0; j < original.featureCount(); ++j)
            EXPECT_DOUBLE_EQ(loaded.x()[i][j], original.x()[i][j]);
    }
}

TEST(CsvIo, HeaderLayout)
{
    std::stringstream buffer;
    writeCsv(sample(), buffer);
    std::string header;
    std::getline(buffer, header);
    EXPECT_EQ(header, "alpha,beta,target,group");
}

TEST(CsvIo, EmptyDatasetRoundTrips)
{
    Dataset empty({"x"});
    std::stringstream buffer;
    writeCsv(empty, buffer);
    const Dataset loaded = readCsv(buffer);
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.featureCount(), 1u);
}

TEST(CsvIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "dfault_io.csv";
    writeCsvFile(sample(), path);
    const Dataset loaded = readCsvFile(path);
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.groups()[2], "srad(par)");
}

TEST(CsvIo, SkipsBlankLines)
{
    std::stringstream buffer("x,target,group\n1,2,g\n\n3,4,h\n");
    const Dataset loaded = readCsv(buffer);
    EXPECT_EQ(loaded.size(), 2u);
}

TEST(CsvIoDeath, MalformedInputsAreFatal)
{
    {
        std::stringstream missing_header("");
        EXPECT_EXIT((void)readCsv(missing_header),
                    ::testing::ExitedWithCode(1), "header");
    }
    {
        std::stringstream bad_header("a,b\n");
        EXPECT_EXIT((void)readCsv(bad_header),
                    ::testing::ExitedWithCode(1), "target,group");
    }
    {
        std::stringstream short_row("x,target,group\n1,2\n");
        EXPECT_EXIT((void)readCsv(short_row),
                    ::testing::ExitedWithCode(1), "fields");
    }
    {
        std::stringstream bad_number("x,target,group\nnope,2,g\n");
        EXPECT_EXIT((void)readCsv(bad_number),
                    ::testing::ExitedWithCode(1), "bad number");
    }
}

TEST(CsvIoDeath, UnserializableLabelsAreFatal)
{
    Dataset d({"x"});
    d.addSample({1.0}, 0.0, "has,comma");
    std::stringstream buffer;
    EXPECT_EXIT(writeCsv(d, buffer), ::testing::ExitedWithCode(1),
                "separator");
    EXPECT_EXIT(writeCsvFile(sample(), "/no/such/dir/file.csv"),
                ::testing::ExitedWithCode(1), "write to");
}

} // namespace
} // namespace dfault::ml
