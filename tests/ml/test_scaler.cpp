/**
 * @file
 * Unit tests for feature standardization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/scaler.hh"

namespace dfault::ml {
namespace {

TEST(Scaler, StandardizesToZeroMeanUnitVariance)
{
    const Matrix x{{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
    StandardScaler s;
    s.fit(x);
    const Matrix t = s.transform(x);

    for (std::size_t j = 0; j < 2; ++j) {
        double mean = 0.0, var = 0.0;
        for (const auto &row : t)
            mean += row[j];
        mean /= 3.0;
        for (const auto &row : t)
            var += (row[j] - mean) * (row[j] - mean);
        var /= 3.0;
        EXPECT_NEAR(mean, 0.0, 1e-12);
        EXPECT_NEAR(var, 1.0, 1e-12);
    }
}

TEST(Scaler, ConstantColumnCentersToZero)
{
    const Matrix x{{5.0}, {5.0}, {5.0}};
    StandardScaler s;
    s.fit(x);
    for (const auto &row : s.transform(x))
        EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(Scaler, TransformUnseenRowUsesTrainStatistics)
{
    const Matrix train{{0.0}, {10.0}};
    StandardScaler s;
    s.fit(train);
    const std::vector<double> row{5.0};
    EXPECT_NEAR(s.transform(row)[0], 0.0, 1e-12); // at the train mean
    const std::vector<double> outlier{20.0};
    EXPECT_GT(s.transform(outlier)[0], 2.0);
}

TEST(Scaler, FittedFlag)
{
    StandardScaler s;
    EXPECT_FALSE(s.fitted());
    s.fit(Matrix{{1.0}});
    EXPECT_TRUE(s.fitted());
}

TEST(ScalerDeath, UseBeforeFitPanics)
{
    StandardScaler s;
    const std::vector<double> row{1.0};
    EXPECT_DEATH((void)s.transform(row), "before fit");
}

TEST(ScalerDeath, WidthMismatchPanics)
{
    StandardScaler s;
    s.fit(Matrix{{1.0, 2.0}});
    const std::vector<double> row{1.0};
    EXPECT_DEATH((void)s.transform(row), "width mismatch");
}

TEST(ScalerDeath, EmptyFitPanics)
{
    StandardScaler s;
    EXPECT_DEATH(s.fit(Matrix{}), "empty");
}

} // namespace
} // namespace dfault::ml
