/**
 * @file
 * Unit tests for the KNN regressor — the paper's most accurate model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/knn.hh"

namespace dfault::ml {
namespace {

TEST(Knn, ExactMatchReturnsStoredTarget)
{
    KnnRegressor knn;
    const Matrix x{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
    const std::vector<double> y{10.0, 20.0, 30.0};
    knn.fit(x, y);
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{1.0, 0.0}), 20.0);
}

TEST(Knn, UnweightedAveragesNeighbours)
{
    KnnRegressor::Params p;
    p.k = 2;
    p.distanceWeighted = false;
    KnnRegressor knn(p);
    const Matrix x{{0.0}, {1.0}, {100.0}};
    const std::vector<double> y{10.0, 20.0, 500.0};
    knn.fit(x, y);
    // Nearest two of 0.4 are x=0 and x=1.
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.4}), 15.0);
}

TEST(Knn, DistanceWeightingFavoursCloserNeighbour)
{
    KnnRegressor::Params p;
    p.k = 2;
    KnnRegressor knn(p);
    const Matrix x{{0.0}, {1.0}};
    const std::vector<double> y{10.0, 20.0};
    knn.fit(x, y);
    const double pred = knn.predict(std::vector<double>{0.1});
    EXPECT_GT(pred, 10.0);
    EXPECT_LT(pred, 15.0); // closer to y(0)=10 than the midpoint
}

TEST(Knn, KLargerThanTrainingSetClamps)
{
    KnnRegressor::Params p;
    p.k = 10;
    p.distanceWeighted = false;
    KnnRegressor knn(p);
    const Matrix x{{0.0}, {2.0}};
    const std::vector<double> y{1.0, 3.0};
    knn.fit(x, y);
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{1.0}), 2.0);
}

TEST(Knn, RecoversSmoothFunction)
{
    // Dense 1-D samples of a smooth function: interpolation error must
    // be small, which is exactly why KNN wins on the paper's dataset.
    KnnRegressor knn;
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i <= 100; ++i) {
        const double v = i / 100.0;
        x.push_back({v});
        y.push_back(v * v);
    }
    knn.fit(x, y);
    for (const double q : {0.105, 0.333, 0.777}) {
        EXPECT_NEAR(knn.predict(std::vector<double>{q}), q * q, 0.01);
    }
}

TEST(Knn, ExactDistanceTiesBreakByLowestIndex)
{
    // Four training points all exactly distance 1 from the query, but
    // k = 2: the selection must keep the two with the lowest training
    // indices, not whichever pair nth_element happens to leave in
    // place. This pins the (distance, index) tiebreak the campaign
    // stats depend on for bit-identical outputs.
    KnnRegressor::Params p;
    p.k = 2;
    p.distanceWeighted = false;
    KnnRegressor knn(p);
    const Matrix x{{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};
    const std::vector<double> y{10.0, 20.0, 40.0, 80.0};
    knn.fit(x, y);
    // Neighbours must be rows 0 and 1 -> mean(10, 20).
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.0, 0.0}), 15.0);
}

TEST(Knn, PartialTiesStillPreferStrictlyCloser)
{
    // Row 2 is strictly closer than the tied pair at distance 1; with
    // k = 2 the pick is row 2 plus the lower-indexed tied row (row 0).
    KnnRegressor::Params p;
    p.k = 2;
    p.distanceWeighted = false;
    KnnRegressor knn(p);
    const Matrix x{{1.0, 0.0}, {-1.0, 0.0}, {0.2, 0.0}};
    const std::vector<double> y{10.0, 100.0, 30.0};
    knn.fit(x, y);
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.0, 0.0}), 20.0);
}

TEST(Knn, RefitReplacesModel)
{
    KnnRegressor knn;
    knn.fit(Matrix{{0.0}}, std::vector<double>{5.0});
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.0}), 5.0);
    knn.fit(Matrix{{0.0}}, std::vector<double>{9.0});
    EXPECT_DOUBLE_EQ(knn.predict(std::vector<double>{0.0}), 9.0);
}

TEST(Knn, Name)
{
    EXPECT_EQ(KnnRegressor().name(), "KNN");
}

TEST(KnnDeath, PredictBeforeFitPanics)
{
    KnnRegressor knn;
    EXPECT_DEATH((void)knn.predict(std::vector<double>{1.0}),
                 "before fit");
}

TEST(KnnDeath, MismatchedTrainingDataPanics)
{
    KnnRegressor knn;
    EXPECT_DEATH(knn.fit(Matrix{{1.0}}, std::vector<double>{1.0, 2.0}),
                 "size mismatch");
}

TEST(KnnDeath, BadKIsFatal)
{
    KnnRegressor::Params p;
    p.k = 0;
    EXPECT_EXIT(KnnRegressor{p}, ::testing::ExitedWithCode(1),
                "k must be positive");
}

} // namespace
} // namespace dfault::ml
