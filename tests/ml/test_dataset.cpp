/**
 * @file
 * Unit tests for the ML dataset container.
 */

#include <gtest/gtest.h>

#include "ml/dataset.hh"

namespace dfault::ml {
namespace {

Dataset
sample()
{
    Dataset d({"a", "b"});
    d.addSample({1.0, 10.0}, 0.1, "g1");
    d.addSample({2.0, 20.0}, 0.2, "g2");
    d.addSample({3.0, 30.0}, 0.3, "g1");
    return d;
}

TEST(Dataset, BasicAccessors)
{
    const Dataset d = sample();
    EXPECT_EQ(d.size(), 3u);
    EXPECT_EQ(d.featureCount(), 2u);
    EXPECT_FALSE(d.empty());
    EXPECT_DOUBLE_EQ(d.x()[1][0], 2.0);
    EXPECT_DOUBLE_EQ(d.y()[2], 0.3);
    EXPECT_EQ(d.groups()[0], "g1");
}

TEST(Dataset, ColumnExtraction)
{
    const Dataset d = sample();
    const auto col = d.column(1);
    ASSERT_EQ(col.size(), 3u);
    EXPECT_DOUBLE_EQ(col[0], 10.0);
    EXPECT_DOUBLE_EQ(col[2], 30.0);
}

TEST(Dataset, ColumnIntoMatchesColumn)
{
    // columnInto is the copy-free gather used once per feature by the
    // selection loop; reused buffers must not leak previous contents.
    const Dataset d = sample();
    std::vector<double> col{99.0, 99.0, 99.0, 99.0, 99.0};
    d.columnInto(1, col);
    EXPECT_EQ(col, d.column(1));
    d.columnInto(0, col);
    EXPECT_EQ(col, d.column(0));
}

TEST(Dataset, DistinctGroupsInAppearanceOrder)
{
    const Dataset d = sample();
    const auto groups = d.distinctGroups();
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], "g1");
    EXPECT_EQ(groups[1], "g2");
}

TEST(Dataset, SubsetByRows)
{
    const Dataset d = sample();
    const std::vector<std::size_t> rows{2, 0};
    const Dataset s = d.subset(rows);
    ASSERT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s.y()[0], 0.3);
    EXPECT_DOUBLE_EQ(s.y()[1], 0.1);
    EXPECT_EQ(s.featureNames(), d.featureNames());
}

TEST(Dataset, ProjectColumns)
{
    const Dataset d = sample();
    const std::vector<std::size_t> cols{1};
    const Dataset p = d.project(cols);
    EXPECT_EQ(p.featureCount(), 1u);
    EXPECT_EQ(p.featureNames()[0], "b");
    EXPECT_DOUBLE_EQ(p.x()[0][0], 10.0);
    EXPECT_EQ(p.size(), 3u);
    EXPECT_EQ(p.groups(), d.groups());
}

TEST(DatasetDeath, SchemaMismatchPanics)
{
    Dataset d({"a", "b"});
    EXPECT_DEATH(d.addSample({1.0}, 0.0, "g"), "schema");
}

TEST(DatasetDeath, BadIndicesPanic)
{
    const Dataset d = sample();
    EXPECT_DEATH((void)d.column(5), "out of range");
    const std::vector<std::size_t> bad{9};
    EXPECT_DEATH((void)d.subset(bad), "out of range");
    EXPECT_DEATH((void)d.project(bad), "out of range");
}

} // namespace
} // namespace dfault::ml
