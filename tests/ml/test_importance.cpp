/**
 * @file
 * Unit tests for permutation feature importance.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ml/forest.hh"
#include "ml/importance.hh"
#include "ml/knn.hh"

namespace dfault::ml {
namespace {

/** target = 3*informative + noise; "noise" column is pure noise. */
Dataset
twoFeatureData(std::uint64_t seed, int n = 200)
{
    Dataset d({"informative", "noise"});
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        d.addSample({a, b}, 3.0 * a + 0.01 * rng.normal(),
                    "g" + std::to_string(i % 4));
    }
    return d;
}

TEST(Importance, InformativeFeatureDominates)
{
    const Dataset train = twoFeatureData(1);
    const Dataset eval = twoFeatureData(2, 100);
    RandomForestRegressor model;
    model.fit(train.x(), train.y());

    const auto importances = permutationImportance(model, eval);
    ASSERT_EQ(importances.size(), 2u);
    EXPECT_GT(importances[0].rmseIncrease, 0.3);
    EXPECT_LT(std::abs(importances[1].rmseIncrease),
              0.3 * importances[0].rmseIncrease);
    EXPECT_EQ(importances[0].name, "informative");
}

TEST(Importance, RankingSortsDescending)
{
    const Dataset train = twoFeatureData(3);
    const Dataset eval = twoFeatureData(4, 100);
    KnnRegressor model;
    model.fit(train.x(), train.y());
    const auto ranked = rankImportance(model, eval);
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_GE(ranked[0].rmseIncrease, ranked[1].rmseIncrease);
    EXPECT_EQ(ranked[0].name, "informative");
}

TEST(Importance, DeterministicForSeed)
{
    const Dataset train = twoFeatureData(5);
    const Dataset eval = twoFeatureData(6, 60);
    KnnRegressor model;
    model.fit(train.x(), train.y());
    const auto a = permutationImportance(model, eval, 3, 99);
    const auto b = permutationImportance(model, eval, 3, 99);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].rmseIncrease, b[i].rmseIncrease);
}

TEST(ImportanceDeath, EmptyEvalPanics)
{
    KnnRegressor model;
    model.fit(Matrix{{0.0}}, std::vector<double>{0.0});
    Dataset empty({"x"});
    EXPECT_DEATH((void)permutationImportance(model, empty),
                 "evaluation samples");
}

} // namespace
} // namespace dfault::ml
