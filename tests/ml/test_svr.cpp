/**
 * @file
 * Unit tests for the epsilon-SVR with RBF kernel.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/svr.hh"

namespace dfault::ml {
namespace {

TEST(Svr, FitsConstantTarget)
{
    SvrRegressor svr;
    const Matrix x{{0.0}, {1.0}, {2.0}, {3.0}};
    const std::vector<double> y{5.0, 5.0, 5.0, 5.0};
    svr.fit(x, y);
    EXPECT_NEAR(svr.predict(std::vector<double>{1.5}), 5.0, 0.1);
}

TEST(Svr, FitsLinearTrendWithinTube)
{
    SvrRegressor::Params p;
    p.epsilon = 0.01;
    p.c = 100.0;
    SvrRegressor svr(p);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i <= 20; ++i) {
        x.push_back({i / 20.0});
        y.push_back(2.0 * i / 20.0 - 0.5);
    }
    svr.fit(x, y);
    for (const auto &row : x) {
        const double target = 2.0 * row[0] - 0.5;
        EXPECT_NEAR(svr.predict(row), target, 0.1);
    }
}

TEST(Svr, FitsNonlinearFunction)
{
    SvrRegressor::Params p;
    p.epsilon = 0.02;
    p.c = 50.0;
    SvrRegressor svr(p);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i <= 40; ++i) {
        const double v = i / 40.0 * 3.0;
        x.push_back({v});
        y.push_back(std::sin(v));
    }
    svr.fit(x, y);
    for (const double q : {0.5, 1.5, 2.5})
        EXPECT_NEAR(svr.predict(std::vector<double>{q}), std::sin(q),
                    0.15);
}

TEST(Svr, EpsilonTubeSparsifiesSupports)
{
    // With a wide tube around constant-ish data, almost no sample
    // should become a support vector.
    SvrRegressor::Params wide;
    wide.epsilon = 1.0;
    SvrRegressor svr(wide);
    Matrix x;
    std::vector<double> y;
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        x.push_back({rng.uniform()});
        y.push_back(0.1 * rng.uniform());
    }
    svr.fit(x, y);
    EXPECT_EQ(svr.supportVectorCount(), 0u);

    SvrRegressor::Params narrow;
    narrow.epsilon = 0.0001;
    SvrRegressor svr2(narrow);
    svr2.fit(x, y);
    EXPECT_GT(svr2.supportVectorCount(), 10u);
}

TEST(Svr, BoxConstraintLimitsInfluence)
{
    // A single wild outlier must not dominate with a small C.
    SvrRegressor::Params p;
    p.c = 0.1;
    p.epsilon = 0.01;
    SvrRegressor svr(p);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 20; ++i) {
        x.push_back({i / 20.0});
        y.push_back(0.0);
    }
    x.push_back({0.5});
    y.push_back(100.0); // outlier
    svr.fit(x, y);
    EXPECT_LT(svr.predict(std::vector<double>{0.5}), 10.0);
}

TEST(Svr, ExplicitGammaAccepted)
{
    SvrRegressor::Params p;
    p.gamma = 2.0;
    SvrRegressor svr(p);
    svr.fit(Matrix{{0.0}, {1.0}}, std::vector<double>{0.0, 1.0});
    const double mid = svr.predict(std::vector<double>{0.5});
    EXPECT_GT(mid, 0.1);
    EXPECT_LT(mid, 0.9);
}

TEST(Svr, Name)
{
    EXPECT_EQ(SvrRegressor().name(), "SVM");
}

TEST(SvrDeath, InvalidParamsAreFatal)
{
    SvrRegressor::Params p;
    p.c = 0.0;
    EXPECT_EXIT(SvrRegressor{p}, ::testing::ExitedWithCode(1), "C");
    SvrRegressor::Params q;
    q.epsilon = -1.0;
    EXPECT_EXIT(SvrRegressor{q}, ::testing::ExitedWithCode(1),
                "epsilon");
}

TEST(SvrDeath, PredictBeforeFitPanics)
{
    SvrRegressor svr;
    EXPECT_DEATH((void)svr.predict(std::vector<double>{0.0}),
                 "before fit");
}

} // namespace
} // namespace dfault::ml
