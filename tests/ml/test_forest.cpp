/**
 * @file
 * Unit tests for the random-forest regressor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/forest.hh"

namespace dfault::ml {
namespace {

TEST(Forest, FitsStepFunction)
{
    RandomForestRegressor::Params p;
    p.trees = 30;
    RandomForestRegressor rf(p);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        const double v = i / 100.0;
        x.push_back({v});
        y.push_back(v < 0.5 ? 1.0 : 5.0);
    }
    rf.fit(x, y);
    EXPECT_NEAR(rf.predict(std::vector<double>{0.2}), 1.0, 0.3);
    EXPECT_NEAR(rf.predict(std::vector<double>{0.8}), 5.0, 0.3);
}

TEST(Forest, ConstantTargetExactly)
{
    RandomForestRegressor rf;
    const Matrix x{{0.0}, {1.0}, {2.0}, {3.0}};
    const std::vector<double> y{7.0, 7.0, 7.0, 7.0};
    rf.fit(x, y);
    EXPECT_DOUBLE_EQ(rf.predict(std::vector<double>{1.5}), 7.0);
}

TEST(Forest, UsesMultipleFeatures)
{
    RandomForestRegressor::Params p;
    p.trees = 50;
    p.maxFeatures = 2;
    RandomForestRegressor rf(p);
    Rng rng(4);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 300; ++i) {
        const double a = rng.uniform();
        const double b = rng.uniform();
        x.push_back({a, b});
        y.push_back(a > 0.5 && b > 0.5 ? 10.0 : 0.0);
    }
    rf.fit(x, y);
    EXPECT_GT(rf.predict(std::vector<double>{0.9, 0.9}), 6.0);
    EXPECT_LT(rf.predict(std::vector<double>{0.1, 0.1}), 2.0);
}

TEST(Forest, DeterministicForSeed)
{
    Rng rng(5);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 50; ++i) {
        x.push_back({rng.uniform()});
        y.push_back(rng.uniform());
    }
    RandomForestRegressor a, b;
    a.fit(x, y);
    b.fit(x, y);
    for (const double q : {0.1, 0.5, 0.9})
        EXPECT_DOUBLE_EQ(a.predict(std::vector<double>{q}),
                         b.predict(std::vector<double>{q}));
}

TEST(Forest, DepthLimitCoarsensFit)
{
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 64; ++i) {
        x.push_back({static_cast<double>(i)});
        y.push_back(static_cast<double>(i));
    }
    RandomForestRegressor::Params shallow;
    shallow.maxDepth = 1;
    shallow.trees = 10;
    RandomForestRegressor rf(shallow);
    rf.fit(x, y);
    // A depth-1 tree can produce at most two distinct leaf values, so
    // the fit must be visibly coarse at the extremes.
    const double low = rf.predict(std::vector<double>{0.0});
    const double high = rf.predict(std::vector<double>{63.0});
    EXPECT_GT(low, 5.0);
    EXPECT_LT(high, 58.0);
    EXPECT_LT(low, high);
}

TEST(Forest, MinSamplesLeafRespected)
{
    RandomForestRegressor::Params p;
    p.minSamplesLeaf = 50; // larger than half the data -> no split
    p.trees = 5;
    RandomForestRegressor rf(p);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 60; ++i) {
        x.push_back({static_cast<double>(i)});
        y.push_back(i < 30 ? 0.0 : 10.0);
    }
    rf.fit(x, y);
    // With no split possible every prediction is near the global mean
    // of the bootstrap samples.
    EXPECT_NEAR(rf.predict(std::vector<double>{0.0}), 5.0, 2.0);
    EXPECT_NEAR(rf.predict(std::vector<double>{59.0}), 5.0, 2.0);
}

TEST(Forest, PredictManyMatchesPredictBitForBit)
{
    // predictMany's batched, interleaved traversal must reproduce the
    // per-row predict() exactly — same per-row tree sum order — or
    // campaign prediction and bootstrap scoring would drift from the
    // golden stats.
    RandomForestRegressor::Params p;
    p.trees = 40;
    RandomForestRegressor rf(p);
    Rng rng(6);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        x.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
        y.push_back(x.back()[0] + 2.0 * x.back()[1] + rng.uniform());
    }
    rf.fit(x, y);

    // An odd batch size exercises the 4-wide interleave plus the
    // scalar remainder lanes.
    Matrix queries;
    for (int i = 0; i < 11; ++i)
        queries.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    std::vector<double> batched;
    rf.predictMany(queries, batched);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_DOUBLE_EQ(batched[i], rf.predict(queries[i])) << "row " << i;
}

TEST(Forest, PredictManyEmptyBatch)
{
    RandomForestRegressor rf;
    rf.fit(Matrix{{0.0}, {1.0}}, std::vector<double>{1.0, 2.0});
    std::vector<double> out{99.0};
    rf.predictMany(Matrix{}, out);
    EXPECT_TRUE(out.empty());
}

TEST(Forest, Name)
{
    EXPECT_EQ(RandomForestRegressor().name(), "RDF");
}

TEST(ForestSlice, OverWideSliceClampsToWholeForest)
{
    RandomForestRegressor::Params p;
    p.trees = 8;
    RandomForestRegressor rf(p);
    Rng rng(7);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 80; ++i) {
        x.push_back({rng.uniform(), rng.uniform()});
        y.push_back(3.0 * x.back()[0] - x.back()[1]);
    }
    rf.fit(x, y);

    // N past the tree count clamps to the whole forest: the slice's
    // answer is exactly the ensemble's, never an error and never junk.
    ForestSliceRegressor wide(rf, 1000);
    for (const auto &row : {x[0], x[10], x[79]}) {
        EXPECT_DOUBLE_EQ(wide.predict(row), rf.predict(row));
        EXPECT_DOUBLE_EQ(rf.predictFirstTrees(row, 1000),
                         rf.predict(row));
    }
}

TEST(ForestSlice, PredictManyMatchesPredictRowByRow)
{
    RandomForestRegressor::Params p;
    p.trees = 12;
    RandomForestRegressor rf(p);
    Rng rng(8);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 100; ++i) {
        x.push_back({rng.uniform(), rng.uniform()});
        y.push_back(x.back()[0] + rng.uniform());
    }
    rf.fit(x, y);

    ForestSliceRegressor slice(rf, 5);
    std::vector<double> batched;
    slice.predictMany(x, batched);
    ASSERT_EQ(batched.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_DOUBLE_EQ(batched[i], slice.predict(x[i])) << "row " << i;
}

TEST(ForestSliceDeath, ZeroTreeSliceIsFatal)
{
    RandomForestRegressor rf;
    rf.fit(Matrix{{0.0}, {1.0}}, std::vector<double>{1.0, 2.0});
    // A 0-tree slice has no prediction; the old silent clamp-to-1
    // would answer with a single tree while claiming to be empty.
    EXPECT_EXIT((ForestSliceRegressor{rf, 0}),
                ::testing::ExitedWithCode(1), "trees must be >= 1");
    EXPECT_EXIT((void)rf.predictFirstTrees(std::vector<double>{0.0}, 0),
                ::testing::ExitedWithCode(1), "trees >= 1");
}

TEST(ForestDeath, InvalidParamsAreFatal)
{
    RandomForestRegressor::Params p;
    p.trees = 0;
    EXPECT_EXIT(RandomForestRegressor{p}, ::testing::ExitedWithCode(1),
                "tree count");
    RandomForestRegressor::Params q;
    q.minSamplesLeaf = 0;
    EXPECT_EXIT(RandomForestRegressor{q}, ::testing::ExitedWithCode(1),
                "minSamplesLeaf");
}

TEST(ForestDeath, PredictBeforeFitPanics)
{
    RandomForestRegressor rf;
    EXPECT_DEATH((void)rf.predict(std::vector<double>{0.0}),
                 "before fit");
}

} // namespace
} // namespace dfault::ml
