/**
 * @file
 * Unit tests for the accuracy metrics (MPE as reported in Figs 11/12,
 * multiplicative error factor as in Fig 13).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hh"

namespace dfault::ml {
namespace {

TEST(Metrics, PercentageError)
{
    EXPECT_DOUBLE_EQ(percentageError(10.0, 11.0), 10.0);
    EXPECT_DOUBLE_EQ(percentageError(10.0, 9.0), 10.0);
    EXPECT_DOUBLE_EQ(percentageError(10.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(percentageError(-4.0, -6.0), 50.0);
}

TEST(Metrics, MeanPercentageError)
{
    const std::vector<double> measured{10.0, 20.0};
    const std::vector<double> predicted{11.0, 16.0};
    // 10% and 20% -> 15%.
    EXPECT_DOUBLE_EQ(meanPercentageError(measured, predicted), 15.0);
}

TEST(Metrics, MpeSkipsZeroBaselines)
{
    const std::vector<double> measured{0.0, 10.0};
    const std::vector<double> predicted{5.0, 12.0};
    EXPECT_DOUBLE_EQ(meanPercentageError(measured, predicted), 20.0);
}

TEST(Metrics, MpeAllZerosIsZero)
{
    const std::vector<double> measured{0.0, 0.0};
    const std::vector<double> predicted{1.0, 2.0};
    EXPECT_DOUBLE_EQ(meanPercentageError(measured, predicted), 0.0);
}

TEST(Metrics, Rmse)
{
    const std::vector<double> measured{1.0, 2.0, 3.0};
    const std::vector<double> predicted{2.0, 2.0, 5.0};
    EXPECT_NEAR(rmse(measured, predicted), std::sqrt(5.0 / 3.0),
                1e-12);
    EXPECT_DOUBLE_EQ(rmse({}, {}), 0.0);
}

TEST(Metrics, ErrorFactorMultiplicative)
{
    // A uniform 2.9x over/under-estimate gives factor 2.9 — the
    // conventional-model error the paper quotes.
    const std::vector<double> measured{1e-7, 2e-7, 5e-8};
    std::vector<double> predicted;
    for (const double m : measured)
        predicted.push_back(m * 2.9);
    EXPECT_NEAR(errorFactor(measured, predicted), 2.9, 1e-9);

    std::vector<double> under;
    for (const double m : measured)
        under.push_back(m / 2.9);
    EXPECT_NEAR(errorFactor(measured, under), 2.9, 1e-9);
}

TEST(Metrics, ErrorFactorPerfect)
{
    const std::vector<double> v{1.0, 2.0};
    EXPECT_DOUBLE_EQ(errorFactor(v, v), 1.0);
}

TEST(Metrics, ErrorFactorSkipsNonPositive)
{
    const std::vector<double> measured{0.0, 1.0};
    const std::vector<double> predicted{5.0, 2.0};
    EXPECT_NEAR(errorFactor(measured, predicted), 2.0, 1e-12);
}

TEST(MetricsDeath, LengthMismatchPanics)
{
    const std::vector<double> a{1.0};
    const std::vector<double> b{1.0, 2.0};
    EXPECT_DEATH((void)meanPercentageError(a, b), "length");
    EXPECT_DEATH((void)rmse(a, b), "length");
    EXPECT_DEATH((void)errorFactor(a, b), "length");
}

TEST(MetricsDeath, ZeroBaselinePanicsInPointForm)
{
    EXPECT_DEATH((void)percentageError(0.0, 1.0), "zero baseline");
}

} // namespace
} // namespace dfault::ml
