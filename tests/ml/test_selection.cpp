/**
 * @file
 * Unit tests for Spearman-based feature selection (paper Fig 10).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "ml/selection.hh"

namespace dfault::ml {
namespace {

Dataset
syntheticFeatures()
{
    // Feature 0: monotone with target (rs = 1).
    // Feature 1: anti-monotone (rs = -1).
    // Feature 2: independent noise (rs ~ 0).
    Dataset d({"monotone", "anti", "noise"});
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const double t = i / 200.0;
        d.addSample({std::exp(t), 1.0 / (1.0 + t), rng.uniform()},
                    t * t, "g" + std::to_string(i % 5));
    }
    return d;
}

TEST(Selection, CorrelationsInFeatureOrder)
{
    const auto cors = correlateFeatures(syntheticFeatures());
    ASSERT_EQ(cors.size(), 3u);
    EXPECT_EQ(cors[0].name, "monotone");
    EXPECT_NEAR(cors[0].rs, 1.0, 1e-9);
    EXPECT_NEAR(cors[1].rs, -1.0, 1e-9);
    EXPECT_NEAR(cors[2].rs, 0.0, 0.15);
    EXPECT_EQ(cors[0].featureIndex, 0u);
    EXPECT_EQ(cors[2].featureIndex, 2u);
}

TEST(Selection, RankingSortsByAbsoluteRs)
{
    const auto ranked = rankFeatures(syntheticFeatures());
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[2].name, "noise");
    EXPECT_GE(std::abs(ranked[0].rs), std::abs(ranked[1].rs));
    EXPECT_GE(std::abs(ranked[1].rs), std::abs(ranked[2].rs));
}

TEST(Selection, ConstantFeatureScoresZero)
{
    Dataset d({"constant"});
    for (int i = 0; i < 10; ++i)
        d.addSample({5.0}, static_cast<double>(i), "g");
    const auto cors = correlateFeatures(d);
    EXPECT_DOUBLE_EQ(cors[0].rs, 0.0);
}

} // namespace
} // namespace dfault::ml
