/**
 * @file
 * Integration tests of the paper's workload-level claims on the scaled
 * platform: Table II reuse-time orderings, the entropy spectrum, and
 * the serial-vs-parallel contrasts of §V-A.
 */

#include <gtest/gtest.h>

#include "dram/operating_point.hh"
#include "features/extractor.hh"
#include "sys/platform.hh"

namespace dfault::features {
namespace {

constexpr std::uint64_t kFootprint = 4 << 20;

sys::Platform &
sharedPlatform()
{
    static sys::Platform platform([] {
        sys::Platform::Params p;
        p.hierarchy.l1.sizeBytes = 16 * 1024;
        p.hierarchy.l2.sizeBytes = 1 << 20;
        p.exec.timeDilation = sys::dilationForFootprint(kFootprint);
        return p;
    }());
    return platform;
}

const WorkloadProfile &
profileOf(const char *kernel, int threads)
{
    workloads::Workload::Params p;
    p.footprintBytes = kFootprint;
    p.workScale = 1.0;
    return ProfileCache::instance().get(
        sharedPlatform(),
        {kernel, threads,
         std::string(kernel) + (threads == 1 ? "" : "(par)")},
        p);
}

TEST(PaperClaims, ReuseTimeOrderingMatchesTableII)
{
    // Table II (1 thread): nw 10.93 > fmm 8.88 > srad 2.82 >
    // backprop 1.61 > kmeans 0.17; memcached 0.09 lowest overall.
    const double nw = profileOf("nw", 1).treuse;
    const double fmm = profileOf("fmm", 1).treuse;
    const double kmeans = profileOf("kmeans", 1).treuse;
    const double memcached = profileOf("memcached", 8).treuse;

    EXPECT_GT(nw, fmm * 0.8);     // the two long-reuse kernels lead
    EXPECT_GT(fmm, kmeans);       // compute-heavy above centroid-hot
    EXPECT_GT(kmeans, memcached); // kmeans above the caching workload
    EXPECT_LT(memcached, 0.25 * nw);
}

TEST(PaperClaims, ParallelReuseTimeIsShorterForComputeKernels)
{
    // §V-A: backprop/srad parallel versions implicitly refresh memory
    // more frequently -> smaller Treuse than their serial versions.
    EXPECT_LT(profileOf("backprop", 8).treuse,
              profileOf("backprop", 1).treuse);
    EXPECT_LT(profileOf("srad", 8).treuse,
              profileOf("srad", 1).treuse);
}

TEST(PaperClaims, EntropySpectrumSpansTheSuite)
{
    // HDP varies across workloads: integer DP kernels (nw) carry far
    // less write entropy than float kernels, and the random pattern
    // micro-benchmark sits near the top of the spectrum.
    const double nw = profileOf("nw", 8).entropy;
    const double srad = profileOf("srad", 8).entropy;
    const double random = profileOf("random", 8).entropy;
    EXPECT_LT(nw, 0.6 * srad);
    EXPECT_GT(random, 15.0);
    EXPECT_LE(random, 32.0);
    EXPECT_GT(srad, 15.0); // double-precision payloads
}

TEST(PaperClaims, MemcachedHasTheLowestReuseTime)
{
    const double memcached = profileOf("memcached", 8).treuse;
    for (const char *kernel : {"backprop", "nw", "srad", "fmm"})
        EXPECT_LT(memcached, profileOf(kernel, 8).treuse) << kernel;
}

TEST(PaperClaims, AggressiveBuildRaisesMemoryRate)
{
    // Fig 13's premise: the -F build has a higher memory-access rate
    // per cycle than -O2 (fewer compute instructions in between).
    const auto &o2 = profileOf("lulesh_o2", 8);
    const auto &f = profileOf("lulesh_f", 8);
    EXPECT_GT(f.features[kMemAccessesPerCycle],
              o2.features[kMemAccessesPerCycle]);
    EXPECT_GT(f.features.get("loads_per_cycle"),
              o2.features.get("loads_per_cycle"));
}

TEST(PaperClaims, RandomMicroBenchmarkIsIdle)
{
    // The conventional profiling workload touches memory at a far
    // lower rate than any real application (paper §II-C discussion).
    const auto &random = profileOf("random", 8);
    const auto &srad = profileOf("srad", 8);
    EXPECT_LT(random.features[kMemAccessesPerCycle],
              0.5 * srad.features[kMemAccessesPerCycle]);
    // ... and its reuse gaps exceed the largest TREFP.
    EXPECT_GT(random.treuse, dram::kMaxTrefp);
}

} // namespace
} // namespace dfault::features
