/**
 * @file
 * Integration test of the full ML pipeline on a reduced campaign: the
 * paper's qualitative accuracy findings must hold — the workload-aware
 * model predicts held-out benchmarks far better than the conventional
 * workload-unaware baseline, and KNN is competitive.
 */

#include <gtest/gtest.h>

#include "core/dataset_builder.hh"
#include "core/error_model.hh"
#include "core/trainer.hh"
#include "ml/metrics.hh"
#include "ml/selection.hh"

namespace dfault::core {
namespace {

sys::Platform::Params
scaledPlatform()
{
    sys::Platform::Params p;
    p.hierarchy.l1.sizeBytes = 16 * 1024;
    p.hierarchy.l2.sizeBytes = 1 << 20;
    p.exec.timeDilation = sys::dilationForFootprint(4 << 20);
    return p;
}

struct PipelineFixture
{
    sys::Platform platform{scaledPlatform()};
    CharacterizationCampaign campaign;
    std::vector<Measurement> measurements;

    PipelineFixture() : campaign(platform, params())
    {
        const std::vector<workloads::WorkloadConfig> suite{
            {"backprop", 8, "backprop(par)"},
            {"srad", 8, "srad(par)"},
            {"srad", 1, "srad"},
            {"kmeans", 8, "kmeans(par)"},
            {"memcached", 8, "memcached"},
            {"pagerank", 8, "pagerank"},
        };
        const std::vector<dram::OperatingPoint> points{
            {1.173, dram::kMinVdd, 50.0},
            {2.283, dram::kMinVdd, 50.0},
            {1.173, dram::kMinVdd, 60.0},
            {2.283, dram::kMinVdd, 60.0},
        };
        measurements = campaign.sweep(suite, points);
    }

    static CharacterizationCampaign::Params
    params()
    {
        CharacterizationCampaign::Params p;
        p.workload.footprintBytes = 4 << 20;
        p.workload.workScale = 0.5;
        p.integrator.epochs = 60;
        p.useThermalLoop = false;
        return p;
    }
};

PipelineFixture &
fixture()
{
    static PipelineFixture f;
    return f;
}

TEST(Pipeline, DatasetsHaveOneSamplePerExperiment)
{
    auto &f = fixture();
    const auto data = makeWerDataset(f.measurements, 0, InputSet::Set1);
    EXPECT_EQ(data.size(), 24u); // 6 workloads x 4 points
    EXPECT_EQ(data.featureCount(), 4u + 3u); // program + op features
    EXPECT_EQ(data.distinctGroups().size(), 6u);
}

TEST(Pipeline, MemoryAccessRateCorrelatesPositivelyWithWer)
{
    // Paper Fig 10: the memory access rate is the strongest positively
    // correlated program feature.
    auto &f = fixture();
    const auto data = makeWerDataset(f.measurements, 0, InputSet::Set3);
    const auto cors = ml::correlateFeatures(data);
    double rs_access = 0.0, rs_act = 0.0;
    for (const auto &c : cors) {
        if (c.name == "mem_accesses_per_cycle")
            rs_access = c.rs;
        if (c.name == "row_activation_rate_mean")
            rs_act = c.rs;
    }
    EXPECT_GT(rs_access, 0.0);
    EXPECT_GT(rs_act, 0.0);
}

TEST(Pipeline, KnnLoboAccuracyIsUsable)
{
    // On the reduced campaign the per-device KNN error averaged across
    // devices must stay well below the conventional model's 2.9x
    // (=190%) error; the paper's full campaign reaches ~10%.
    auto &f = fixture();
    double mpe_sum = 0.0;
    for (int dev = 0; dev < 8; ++dev) {
        const auto data =
            makeWerDataset(f.measurements, dev, InputSet::Set1);
        mpe_sum += evaluateModel(data, ModelKind::Knn, true).mpe;
    }
    // The reduced campaign (6 workloads, 4 points) generalizes far
    // less well than the paper's full 14x10 campaign; the full-scale
    // fig11 bench reports the headline accuracy.
    EXPECT_LT(mpe_sum / 8.0, 500.0);
}

TEST(Pipeline, WorkloadAwareModelBeatsConventionalBaseline)
{
    auto &f = fixture();
    // Conventional baseline: the random micro-benchmark's WER at each
    // operating point, applied to every workload.
    const std::vector<dram::OperatingPoint> points{
        {1.173, dram::kMinVdd, 50.0},
        {2.283, dram::kMinVdd, 50.0},
        {1.173, dram::kMinVdd, 60.0},
        {2.283, dram::kMinVdd, 60.0},
    };
    const ConventionalModel conventional(f.campaign, points);

    const auto model = DramErrorModel::trainWer(
        f.measurements, 8, DramErrorModel::Options{});

    std::vector<double> measured, aware, unaware;
    for (const auto &m : f.measurements) {
        if (m.run.crashed || m.run.wer() <= 0.0)
            continue;
        measured.push_back(m.run.wer());
        aware.push_back(
            model.predictWerAggregate(*m.profile, m.requested));
        unaware.push_back(conventional.predictWer(m.requested));
    }
    ASSERT_GT(measured.size(), 10u);
    const double factor_aware = ml::errorFactor(measured, aware);
    const double factor_unaware = ml::errorFactor(measured, unaware);
    EXPECT_LT(factor_aware, factor_unaware);
    EXPECT_GT(factor_unaware, 1.5); // the baseline really is off
}

TEST(Pipeline, AllThreeModelsTrainOnTheCampaign)
{
    auto &f = fixture();
    const auto data = makeWerDataset(f.measurements, 2, InputSet::Set1);
    for (const ModelKind kind : kAllModelKinds) {
        const auto result = evaluateModel(data, kind, true);
        EXPECT_GT(result.mpePerGroup.size(), 0u)
            << modelKindName(kind);
    }
}

} // namespace
} // namespace dfault::core
