/**
 * @file
 * Integration test: a miniature end-to-end characterization campaign
 * reproducing the paper's §V claims in scaled form.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/characterization.hh"

namespace dfault::core {
namespace {

sys::Platform::Params
scaledPlatform()
{
    // Keep the footprint-to-L2 ratio of the real setup (8 GiB vs 8 MiB)
    // at the test's 4 MiB footprint: a 1 MiB L2.
    sys::Platform::Params p;
    p.hierarchy.l1.sizeBytes = 16 * 1024;
    p.hierarchy.l2.sizeBytes = 1 << 20;
    p.exec.timeDilation = sys::dilationForFootprint(4 << 20);
    return p;
}

struct CampaignFixture
{
    sys::Platform platform{scaledPlatform()};
    CharacterizationCampaign campaign;
    std::map<std::string, std::map<std::string, Measurement>> table;
    std::vector<workloads::WorkloadConfig> suite;

    CampaignFixture() : campaign(platform, params())
    {
        suite = {{"backprop", 8, "backprop(par)"},
                 {"memcached", 8, "memcached"},
                 {"random", 8, "random"}};
        for (const auto &config : suite) {
            for (const auto &op :
                 {dram::OperatingPoint{0.618, dram::kMinVdd, 50.0},
                  dram::OperatingPoint{2.283, dram::kMinVdd, 50.0},
                  dram::OperatingPoint{2.283, dram::kMinVdd, 60.0}}) {
                table[config.label][op.label()] =
                    campaign.measure(config, op);
            }
        }
    }

    static CharacterizationCampaign::Params
    params()
    {
        CharacterizationCampaign::Params p;
        p.workload.footprintBytes = 4 << 20;
        p.workload.workScale = 0.5;
        return p;
    }

    double
    wer(const std::string &label, const dram::OperatingPoint &op)
    {
        return table.at(label).at(op.label()).run.wer();
    }
};

CampaignFixture &
fixture()
{
    static CampaignFixture f;
    return f;
}

const dram::OperatingPoint kShort50{0.618, dram::kMinVdd, 50.0};
const dram::OperatingPoint kLong50{2.283, dram::kMinVdd, 50.0};
const dram::OperatingPoint kLong60{2.283, dram::kMinVdd, 60.0};

TEST(Campaign, ThermalLoopReachesRequestedTemperature)
{
    auto &f = fixture();
    const auto &m = f.table["random"][kLong60.label()];
    EXPECT_NEAR(m.achieved.temperature, 60.0, 0.6);
}

TEST(Campaign, WerVariesSubstantiallyAcrossWorkloads)
{
    // Paper headline: up to ~8x spread across workloads at one
    // operating point.
    auto &f = fixture();
    double lo = 1e300, hi = 0.0;
    for (const auto &config : f.suite) {
        const double w = f.wer(config.label, kLong60);
        ASSERT_GT(w, 0.0) << config.label;
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    // (The full-scale fig07 bench shows the paper's ~8x; the reduced
    // 4 MiB campaign compresses the spread.)
    EXPECT_GT(hi / lo, 2.0);
}

TEST(Campaign, BackpropExceedsRandomMicrobenchmark)
{
    // Paper Fig 2: real applications can trigger *more* errors than the
    // worst-case data-pattern micro-benchmark (backprop ~3.5x random).
    auto &f = fixture();
    const double backprop = f.wer("backprop(par)", kLong60);
    const double random = f.wer("random", kLong60);
    EXPECT_GT(backprop, 1.5 * random);
}

TEST(Campaign, MemcachedIsFarBelowTheWorstWorkload)
{
    // Paper: memcached manifests the fewest errors of the suite.
    auto &f = fixture();
    EXPECT_LT(f.wer("memcached", kLong60),
              0.5 * f.wer("backprop(par)", kLong60));
}

TEST(Campaign, WerGrowsStronglyWithTrefp)
{
    auto &f = fixture();
    for (const auto &config : f.suite) {
        const double short_t = f.wer(config.label, kShort50);
        const double long_t = f.wer(config.label, kLong50);
        EXPECT_GT(long_t, short_t) << config.label;
    }
}

TEST(Campaign, WerGrowsWithTemperature)
{
    auto &f = fixture();
    for (const auto &config : f.suite)
        EXPECT_GT(f.wer(config.label, kLong60),
                  f.wer(config.label, kLong50))
            << config.label;
}

TEST(Campaign, NoUncorrectableErrorsBelow70C)
{
    auto &f = fixture();
    for (const auto &[label, by_op] : f.table)
        for (const auto &[op, m] : by_op)
            EXPECT_FALSE(m.run.crashed) << label << " " << op;
}

TEST(Campaign, PueIsZeroAtMildAndOneAtExtreme)
{
    auto &f = fixture();
    const workloads::WorkloadConfig backprop{"backprop", 8,
                                             "backprop(par)"};
    const double mild = f.campaign.measurePue(
        backprop, {0.618, dram::kMinVdd, 50.0}, 4);
    const double extreme = f.campaign.measurePue(
        backprop, {2.283, dram::kMinVdd, 70.0}, 4);
    EXPECT_DOUBLE_EQ(mild, 0.0);
    EXPECT_GE(extreme, 0.75); // paper: 1.0 at full scale
}

TEST(Campaign, MeasurementsCarryProfilesAndDeviceBreakdown)
{
    auto &f = fixture();
    const auto &m = f.table["backprop(par)"][kLong50.label()];
    ASSERT_NE(m.profile, nullptr);
    EXPECT_EQ(m.profile->label, "backprop(par)");
    ASSERT_EQ(m.run.cePerDevice.size(), 8u);
    ASSERT_EQ(m.run.wordsPerDevice.size(), 8u);
    double words = 0.0;
    for (const double w : m.run.wordsPerDevice)
        words += w;
    EXPECT_GT(words, 0.0);
}

} // namespace
} // namespace dfault::core
