/**
 * @file
 * Integration test of the fidelity-scaling assumptions (DESIGN.md §4):
 * WER is a density and must be approximately invariant to the scaled
 * footprint, and the characterization window length only matters
 * through VRT convergence.
 */

#include <gtest/gtest.h>

#include "core/characterization.hh"

namespace dfault::core {
namespace {

double
werAtFootprint(std::uint64_t footprint_bytes)
{
    sys::Platform::Params pp;
    pp.hierarchy.l1.sizeBytes = 16 * 1024;
    pp.hierarchy.l2.sizeBytes = 1 << 20;
    pp.exec.timeDilation = sys::dilationForFootprint(footprint_bytes);
    sys::Platform platform(pp);
    CharacterizationCampaign::Params params;
    params.workload.footprintBytes = footprint_bytes;
    params.workload.workScale = 0.5;
    params.useThermalLoop = false;
    CharacterizationCampaign campaign(platform, params);
    const Measurement m = campaign.measure(
        {"srad", 8, "srad(par)"}, {2.283, dram::kMinVdd, 60.0});
    return m.run.wer();
}

TEST(Scaling, WerIsFootprintInvariantWithinTolerance)
{
    const double at2 = werAtFootprint(2 << 20);
    const double at8 = werAtFootprint(8 << 20);
    ASSERT_GT(at2, 0.0);
    ASSERT_GT(at8, 0.0);
    // Density metric: a 4x footprint change must stay within ~2.5x
    // (sampling noise + cache-pressure effects are real but bounded).
    const double ratio = at8 / at2;
    EXPECT_GT(ratio, 0.4);
    EXPECT_LT(ratio, 2.5);
}

TEST(Scaling, LongerWindowsOnlyAddVrtTail)
{
    sys::Platform platform;
    CharacterizationCampaign::Params params;
    params.workload.footprintBytes = 2 << 20;
    params.workload.workScale = 0.5;
    params.useThermalLoop = false;

    params.integrator.epochs = 60;
    CharacterizationCampaign one_hour(platform, params);
    params.integrator.epochs = 120;
    CharacterizationCampaign two_hours(platform, params);

    const dram::OperatingPoint op{2.283, dram::kMinVdd, 60.0};
    const double wer60 =
        one_hour.measure({"srad", 8, "srad(par)"}, op).run.wer();
    const double wer120 =
        two_hours.measure({"srad", 8, "srad(par)"}, op).run.wer();
    ASSERT_GT(wer60, 0.0);
    EXPECT_GE(wer120, wer60 * 0.95);
    // The second hour finds only the VRT tail: < 35% more locations.
    EXPECT_LT(wer120 / wer60, 1.35);
}

TEST(Scaling, ExposureDefaultsToPaperFootprint)
{
    // The default integrator emulates the paper's 8 GiB allocation for
    // absolute counts.
    ErrorIntegrator integrator;
    EXPECT_LE(integrator.params().exposureWords, 0.0); // auto
}

} // namespace
} // namespace dfault::core
