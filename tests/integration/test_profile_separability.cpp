/**
 * @file
 * Integration test: the 14-benchmark suite produces separable feature
 * vectors — the precondition for the paper's ML study. Two benchmarks
 * with identical features would be indistinguishable to any model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "features/extractor.hh"
#include "sys/platform.hh"

namespace dfault::features {
namespace {

constexpr std::uint64_t kFootprint = 4 << 20;

std::vector<const WorkloadProfile *>
suiteProfiles()
{
    static sys::Platform platform([] {
        sys::Platform::Params p;
        p.hierarchy.l1.sizeBytes = 16 * 1024;
        p.hierarchy.l2.sizeBytes = 1 << 20;
        p.exec.timeDilation = sys::dilationForFootprint(kFootprint);
        return p;
    }());
    workloads::Workload::Params wp;
    wp.footprintBytes = kFootprint;
    wp.workScale = 0.5;

    std::vector<const WorkloadProfile *> profiles;
    for (const auto &config : workloads::standardSuite())
        profiles.push_back(
            &ProfileCache::instance().get(platform, config, wp));
    return profiles;
}

/** Euclidean distance over the headline (input set 1) features. */
double
set1Distance(const WorkloadProfile &a, const WorkloadProfile &b)
{
    double d2 = 0.0;
    for (const std::size_t idx :
         {kMemAccessesPerCycle, kWaitCyclesRatio, kHdpEntropy,
          kTreuseSeconds}) {
        // Relative difference keeps the scales comparable.
        const double va = a.features[idx];
        const double vb = b.features[idx];
        const double scale = std::max({std::abs(va), std::abs(vb),
                                       1e-9});
        const double d = (va - vb) / scale;
        d2 += d * d;
    }
    return std::sqrt(d2);
}

TEST(Separability, SuiteProfilesArePairwiseDistinct)
{
    const auto profiles = suiteProfiles();
    ASSERT_EQ(profiles.size(), 14u);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        for (std::size_t j = i + 1; j < profiles.size(); ++j) {
            EXPECT_GT(set1Distance(*profiles[i], *profiles[j]), 1e-3)
                << profiles[i]->label << " vs " << profiles[j]->label;
        }
    }
}

TEST(Separability, SerialAndParallelVariantsDiffer)
{
    const auto profiles = suiteProfiles();
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const std::string &label = profiles[i]->label;
        if (label.find("(par)") == std::string::npos)
            continue;
        const std::string serial = label.substr(0, label.find('('));
        for (std::size_t j = 0; j < profiles.size(); ++j) {
            if (profiles[j]->label != serial)
                continue;
            // Utilization alone must already separate 1 vs 8 threads.
            EXPECT_GT(profiles[i]->features[kCpuUtilization],
                      2.0 * profiles[j]->features[kCpuUtilization])
                << label;
        }
    }
}

TEST(Separability, FootprintsAreComparableAcrossTheSuite)
{
    // The paper fixes the allocation size for every benchmark to
    // exclude the data-size factor; the kernels must respect that.
    const auto profiles = suiteProfiles();
    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto *p : profiles) {
        lo = std::min(lo, p->footprintWords);
        hi = std::max(hi, p->footprintWords);
    }
    EXPECT_LT(static_cast<double>(hi) / lo, 1.5);
}

} // namespace
} // namespace dfault::features
