/**
 * @file
 * Behavioural tests for every workload kernel: each must run within its
 * footprint, generate memory traffic, and be deterministic in its seed.
 * Parameterized over the registry so new kernels are covered
 * automatically.
 */

#include <gtest/gtest.h>

#include "sys/platform.hh"
#include "workloads/registry.hh"

namespace dfault::workloads {
namespace {

sys::Platform &
sharedPlatform()
{
    static sys::Platform platform;
    return platform;
}

Workload::Params
smallParams()
{
    Workload::Params p;
    p.footprintBytes = 2 << 20; // 2 MiB keeps each kernel fast
    p.workScale = 0.5;
    return p;
}

struct KernelCase
{
    std::string kernel;
    int threads;
};

class KernelTest : public ::testing::TestWithParam<KernelCase>
{
};

TEST_P(KernelTest, RunsWithinFootprintAndTouchesMemory)
{
    auto &platform = sharedPlatform();
    const auto params = smallParams();
    auto w = createWorkload(GetParam().kernel, params);
    sys::ExecutionContext ctx = platform.startRun(GetParam().threads);
    w->run(ctx);

    // Footprint: allocated within the requested budget (+ rounding).
    EXPECT_GT(ctx.footprintBytes(), params.footprintBytes / 4);
    EXPECT_LE(ctx.footprintBytes(), params.footprintBytes * 5 / 4);

    // Real work happened on every configured thread granularity.
    const auto totals = ctx.totalStats();
    EXPECT_GT(totals.memInstructions(), 10000u);
    EXPECT_GT(totals.instructions, totals.memInstructions());
    EXPECT_GT(ctx.wallCycles(), 0u);

    // The kernel must actually reach DRAM (the error model needs row
    // activity).
    EXPECT_GT(platform.hierarchy().dramCommandsTotal(), 0u);
}

TEST_P(KernelTest, DeterministicCountsForSameSeed)
{
    auto &platform = sharedPlatform();
    const auto params = smallParams();

    std::uint64_t instr[2];
    for (int round = 0; round < 2; ++round) {
        auto w = createWorkload(GetParam().kernel, params);
        sys::ExecutionContext ctx =
            platform.startRun(GetParam().threads);
        w->run(ctx);
        instr[round] = ctx.totalStats().instructions;
    }
    EXPECT_EQ(instr[0], instr[1]);
}

std::vector<KernelCase>
allCases()
{
    std::vector<KernelCase> cases;
    for (const std::string &kernel : workloadKernels()) {
        cases.push_back({kernel, 1});
        cases.push_back({kernel, 8});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<KernelCase> &info)
{
    std::string name = info.param.kernel + "_t" +
                       std::to_string(info.param.threads);
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(WorkloadBehaviour, ParallelUsesAllThreads)
{
    auto &platform = sharedPlatform();
    auto w = createWorkload("srad", smallParams());
    sys::ExecutionContext ctx = platform.startRun(8);
    w->run(ctx);
    for (int t = 0; t < 8; ++t)
        EXPECT_GT(ctx.coreStats(t).instructions, 0u) << "thread " << t;
}

TEST(WorkloadBehaviour, SerialUsesOneThread)
{
    auto &platform = sharedPlatform();
    auto w = createWorkload("kmeans", smallParams());
    sys::ExecutionContext ctx = platform.startRun(1);
    w->run(ctx);
    EXPECT_GT(ctx.coreStats(0).instructions, 0u);
}

TEST(WorkloadBehaviour, MemcachedWritesTextLikeData)
{
    auto &platform = sharedPlatform();
    auto w = createWorkload("memcached", smallParams());
    sys::ExecutionContext ctx = platform.startRun(8);
    w->run(ctx);
    // Peek a few slab words: lowercase ASCII payloads.
    bool found_ascii = false;
    for (Addr a = 64 * 1024; a < 128 * 1024 && !found_ascii; a += 8) {
        const std::uint64_t v = ctx.peek(a);
        const unsigned char byte = v & 0xff;
        found_ascii = byte >= 'a' && byte <= 'z';
    }
    EXPECT_TRUE(found_ascii);
}

TEST(WorkloadBehaviour, LuleshVariantsDifferInMemoryRate)
{
    // The aggressive build must execute fewer instructions per memory
    // access (paper Fig 13's compiler-flag effect).
    auto &platform = sharedPlatform();
    double rate[2];
    int i = 0;
    for (const char *kernel : {"lulesh_o2", "lulesh_f"}) {
        auto w = createWorkload(kernel, smallParams());
        sys::ExecutionContext ctx = platform.startRun(8);
        w->run(ctx);
        const auto totals = ctx.totalStats();
        rate[i++] = static_cast<double>(totals.memInstructions()) /
                    static_cast<double>(totals.instructions);
    }
    EXPECT_GT(rate[1], rate[0]);
}

TEST(WorkloadBehaviour, RandomMicroHasLowAccessRate)
{
    // The data-pattern micro-benchmark idles between scans; its memory
    // access rate per cycle must be far below a streaming kernel's.
    auto &platform = sharedPlatform();
    double rates[2];
    int i = 0;
    for (const char *kernel : {"random", "srad"}) {
        auto w = createWorkload(kernel, smallParams());
        sys::ExecutionContext ctx = platform.startRun(8);
        w->run(ctx);
        rates[i++] =
            static_cast<double>(ctx.totalStats().memInstructions()) /
            static_cast<double>(ctx.wallCycles());
    }
    EXPECT_LT(rates[0], rates[1]);
}

} // namespace
} // namespace dfault::workloads
