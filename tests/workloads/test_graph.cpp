/**
 * @file
 * Unit tests for the RMAT graph generator behind the analytics
 * workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workloads/graph.hh"

namespace dfault::workloads {
namespace {

TEST(Rmat, CsrIsWellFormed)
{
    const RmatGraph g = RmatGraph::generate(256, 2048, 7);
    EXPECT_EQ(g.vertices, 256u);
    EXPECT_EQ(g.edges(), 2048u);
    ASSERT_EQ(g.offsets.size(), 257u);
    EXPECT_EQ(g.offsets.front(), 0u);
    EXPECT_EQ(g.offsets.back(), 2048u);
    for (std::size_t i = 0; i + 1 < g.offsets.size(); ++i)
        EXPECT_LE(g.offsets[i], g.offsets[i + 1]);
    for (const std::uint32_t src : g.targets)
        EXPECT_LT(src, g.vertices);
}

TEST(Rmat, DeterministicForSeed)
{
    const RmatGraph a = RmatGraph::generate(128, 512, 42);
    const RmatGraph b = RmatGraph::generate(128, 512, 42);
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.targets, b.targets);
}

TEST(Rmat, SeedChangesStructure)
{
    const RmatGraph a = RmatGraph::generate(128, 512, 1);
    const RmatGraph b = RmatGraph::generate(128, 512, 2);
    EXPECT_NE(a.targets, b.targets);
}

TEST(Rmat, DegreeDistributionIsSkewed)
{
    // RMAT's defining property: a heavy-tailed in-degree distribution
    // with hub vertices, which is what makes hub state cache-hot in
    // pagerank/bfs/bc.
    const RmatGraph g = RmatGraph::generate(1024, 16384, 3);
    std::vector<std::uint32_t> degree(g.vertices);
    for (std::uint32_t v = 0; v < g.vertices; ++v)
        degree[v] = g.offsets[v + 1] - g.offsets[v];
    std::sort(degree.rbegin(), degree.rend());
    const double mean = static_cast<double>(g.edges()) / g.vertices;
    EXPECT_GT(degree[0], 10 * mean); // hubs far above the mean
    // And a large fraction of low-degree vertices.
    const auto low = std::count_if(degree.begin(), degree.end(),
                                   [&](std::uint32_t d) {
                                       return d < mean;
                                   });
    EXPECT_GT(low, static_cast<long>(g.vertices / 2));
}

TEST(RmatDeath, RequiresPowerOfTwoVertices)
{
    EXPECT_DEATH((void)RmatGraph::generate(100, 500, 1),
                 "power of two");
}

} // namespace
} // namespace dfault::workloads
