/**
 * @file
 * Unit tests for the workload registry and the paper's suite layout.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/registry.hh"

namespace dfault::workloads {
namespace {

TEST(Registry, CreatesEveryKernel)
{
    Workload::Params params;
    params.footprintBytes = 1 << 20;
    for (const std::string &kernel : workloadKernels()) {
        const WorkloadPtr w = createWorkload(kernel, params);
        ASSERT_NE(w, nullptr) << kernel;
        EXPECT_FALSE(w->name().empty());
    }
}

TEST(Registry, KernelNamesAreUnique)
{
    const auto kernels = workloadKernels();
    const std::set<std::string> unique(kernels.begin(), kernels.end());
    EXPECT_EQ(unique.size(), kernels.size());
}

TEST(Registry, StandardSuiteMatchesPaper)
{
    const auto suite = standardSuite();
    // 5 compute kernels x {1, 8 threads} + 4 cloud workloads.
    ASSERT_EQ(suite.size(), 14u);

    int serial = 0, parallel = 0;
    std::set<std::string> labels;
    for (const auto &config : suite) {
        labels.insert(config.label);
        if (config.threads == 1)
            ++serial;
        else if (config.threads == 8)
            ++parallel;
    }
    EXPECT_EQ(serial, 5);
    EXPECT_EQ(parallel, 9);
    EXPECT_EQ(labels.size(), 14u); // no duplicate figure labels
    EXPECT_TRUE(labels.count("backprop"));
    EXPECT_TRUE(labels.count("backprop(par)"));
    EXPECT_TRUE(labels.count("memcached"));
    EXPECT_TRUE(labels.count("bc"));
}

TEST(Registry, ParallelLabelsUseParSuffix)
{
    for (const auto &config : standardSuite()) {
        if (config.threads == 1) {
            EXPECT_EQ(config.label.find("(par)"), std::string::npos);
        }
    }
}

TEST(Registry, ExtendedSuiteHasLuleshAndMicro)
{
    const auto extended = extendedSuite();
    ASSERT_EQ(extended.size(), 3u);
    EXPECT_EQ(extended[0].label, "lulesh(O2)");
    EXPECT_EQ(extended[1].label, "lulesh(F)");
    EXPECT_EQ(extended[2].label, "random");
}

TEST(RegistryDeath, UnknownKernelIsFatal)
{
    Workload::Params params;
    EXPECT_EXIT((void)createWorkload("quicksort", params),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(RegistryDeath, BadWorkloadParamsAreFatal)
{
    Workload::Params params;
    params.footprintBytes = 0;
    EXPECT_EXIT((void)createWorkload("backprop", params),
                ::testing::ExitedWithCode(1), "footprint");
    Workload::Params scale;
    scale.workScale = 0.0;
    EXPECT_EXIT((void)createWorkload("backprop", scale),
                ::testing::ExitedWithCode(1), "workScale");
}

} // namespace
} // namespace dfault::workloads
