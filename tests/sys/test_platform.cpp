/**
 * @file
 * Unit tests for the assembled platform.
 */

#include <gtest/gtest.h>

#include "sys/platform.hh"

namespace dfault::sys {
namespace {

TEST(Platform, DefaultAssemblyMatchesPaperServer)
{
    Platform p;
    EXPECT_EQ(p.geometry().params().channels, 4);
    EXPECT_EQ(p.devices().size(), 8u);
    EXPECT_EQ(p.hierarchy().cores(), 8);
    EXPECT_EQ(p.thermal().dimms(), 4);
}

TEST(Platform, SameSeedSameHardware)
{
    Platform a, b;
    for (std::size_t i = 0; i < a.devices().size(); ++i)
        EXPECT_DOUBLE_EQ(a.devices()[i].retentionScale(),
                         b.devices()[i].retentionScale());
}

TEST(Platform, DeviceLookupByIdentity)
{
    Platform p;
    const auto &dev = p.device(dram::DeviceId{2, 1});
    EXPECT_EQ(dev.id().dimm, 2);
    EXPECT_EQ(dev.id().rank, 1);
}

TEST(Platform, StartRunResetsHierarchy)
{
    Platform p;
    {
        ExecutionContext ctx = p.startRun(1);
        const Addr a = ctx.allocate(4096);
        ctx.load(0, a);
        EXPECT_GT(p.hierarchy().l1CountersTotal().accesses(), 0u);
    }
    ExecutionContext fresh = p.startRun(2);
    EXPECT_EQ(p.hierarchy().l1CountersTotal().accesses(), 0u);
    EXPECT_EQ(fresh.threads(), 2);
    EXPECT_EQ(fresh.footprintBytes(), 0u);
}

TEST(Platform, ThermalDimmCountFollowsGeometry)
{
    Platform::Params params;
    params.geometry.channels = 2;
    params.geometry.ranksPerDimm = 2;
    Platform p(params);
    EXPECT_EQ(p.thermal().dimms(), 2);
    EXPECT_EQ(p.devices().size(), 4u);
}

TEST(Platform, CloneReplicatesTheSimulatedHardware)
{
    Platform::Params params;
    params.geometry.channels = 2;
    params.geometry.ranksPerDimm = 2;
    Platform p(params);
    const auto c = p.clone();
    ASSERT_EQ(c->devices().size(), p.devices().size());
    for (std::size_t i = 0; i < p.devices().size(); ++i)
        EXPECT_DOUBLE_EQ(c->devices()[i].retentionScale(),
                         p.devices()[i].retentionScale());
    EXPECT_EQ(c->thermal().dimms(), p.thermal().dimms());
    EXPECT_EQ(c->hierarchy().cores(), p.hierarchy().cores());
}

TEST(PlatformDeath, ZeroThreadRunPanics)
{
    Platform p;
    EXPECT_DEATH((void)p.startRun(0), "at least one thread");
}

} // namespace
} // namespace dfault::sys
