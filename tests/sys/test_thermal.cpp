/**
 * @file
 * Unit tests for the thermal testbed: heater plant + PID control loop
 * (paper §IV-A).
 */

#include <gtest/gtest.h>

#include "sys/thermal.hh"

namespace dfault::sys {
namespace {

TEST(Pid, DrivesTowardSetpoint)
{
    PidController pid({2.0, 0.1, 0.0}, 0.0, 100.0);
    double command = pid.step(10.0, 0.0, 0.1);
    EXPECT_GT(command, 0.0);
    command = pid.step(10.0, 20.0, 0.1); // overshoot -> back off
    EXPECT_DOUBLE_EQ(command, 0.0);      // clamped at the low bound
}

TEST(Pid, OutputClamped)
{
    PidController pid({1000.0, 0.0, 0.0}, 0.0, 40.0);
    EXPECT_DOUBLE_EQ(pid.step(100.0, 0.0, 0.1), 40.0);
}

TEST(Pid, ResetClearsIntegral)
{
    PidController pid({0.0, 10.0, 0.0}, -100.0, 100.0);
    for (int i = 0; i < 10; ++i)
        pid.step(1.0, 0.0, 0.1);
    const double wound = pid.step(1.0, 0.0, 0.1);
    pid.reset();
    const double fresh = pid.step(1.0, 0.0, 0.1);
    EXPECT_GT(wound, fresh);
}

/** The testbed must settle at every temperature the paper uses. */
class ThermalSettle : public ::testing::TestWithParam<double>
{
};

TEST_P(ThermalSettle, ReachesTarget)
{
    ThermalTestbed bed;
    bed.setTargetAll(GetParam());
    ASSERT_TRUE(bed.stepUntilSettled());
    for (int d = 0; d < bed.dimms(); ++d)
        EXPECT_NEAR(bed.temperature(d), GetParam(), 0.6);
}

INSTANTIATE_TEST_SUITE_P(PaperLevels, ThermalSettle,
                         ::testing::Values(50.0, 60.0, 70.0));

TEST(Thermal, StartsAtAmbient)
{
    ThermalTestbed::Params p;
    p.ambient = 30.0;
    ThermalTestbed bed(p);
    for (int d = 0; d < bed.dimms(); ++d)
        EXPECT_DOUBLE_EQ(bed.temperature(d), 30.0);
}

TEST(Thermal, PerDimmTargets)
{
    ThermalTestbed bed;
    bed.setTarget(0, 50.0);
    bed.setTarget(1, 60.0);
    bed.setTarget(2, 70.0);
    bed.setTarget(3, 55.0);
    ASSERT_TRUE(bed.stepUntilSettled());
    EXPECT_NEAR(bed.temperature(0), 50.0, 0.6);
    EXPECT_NEAR(bed.temperature(1), 60.0, 0.6);
    EXPECT_NEAR(bed.temperature(2), 70.0, 0.6);
    EXPECT_NEAR(bed.temperature(3), 55.0, 0.6);
}

TEST(Thermal, DramSelfHeatingRaisesEquilibrium)
{
    // With the heater off, DRAM activity alone warms the DIMM above
    // ambient (and the controller must compensate when targeting).
    ThermalTestbed::Params p;
    ThermalTestbed bed(p);
    bed.setDramPower(0, 8.0);
    for (int i = 0; i < 4000; ++i)
        bed.step();
    EXPECT_GT(bed.temperature(0), p.ambient + 5.0);
    EXPECT_NEAR(bed.temperature(1), p.ambient, 1.0);
}

TEST(Thermal, CoolsBackAfterTargetLowered)
{
    ThermalTestbed bed;
    bed.setTargetAll(70.0);
    ASSERT_TRUE(bed.stepUntilSettled());
    bed.setTargetAll(50.0);
    ASSERT_TRUE(bed.stepUntilSettled(100000));
    EXPECT_NEAR(bed.temperature(0), 50.0, 0.6);
}

TEST(Thermal, ResetRestoresConstructedState)
{
    ThermalTestbed bed;
    bed.setDramPower(0, 8.0);
    bed.setTargetAll(70.0);
    ASSERT_TRUE(bed.stepUntilSettled());
    bed.reset();
    for (int d = 0; d < bed.dimms(); ++d) {
        EXPECT_DOUBLE_EQ(bed.temperature(d), 35.0);
        EXPECT_DOUBLE_EQ(bed.target(d), 35.0);
    }
}

TEST(Thermal, ResetMakesSettlingHistoryIndependent)
{
    // A reset testbed must follow the exact trajectory of a fresh one:
    // the property campaign measurements rely on to be order- (and
    // schedule-) independent.
    ThermalTestbed fresh, reused;
    reused.setDramPower(1, 6.0);
    reused.setTargetAll(70.0);
    ASSERT_TRUE(reused.stepUntilSettled());
    reused.reset();

    fresh.setTargetAll(60.0);
    reused.setTargetAll(60.0);
    ASSERT_TRUE(fresh.stepUntilSettled());
    ASSERT_TRUE(reused.stepUntilSettled());
    for (int d = 0; d < fresh.dimms(); ++d)
        EXPECT_DOUBLE_EQ(fresh.temperature(d), reused.temperature(d));
}

TEST(ThermalDeath, UnreachableTargetIsFatal)
{
    ThermalTestbed bed; // max ~ ambient + 40W/0.8W/K = 85 C
    EXPECT_EXIT(bed.setTarget(0, 200.0), ::testing::ExitedWithCode(1),
                "unreachable");
}

TEST(ThermalDeath, BadDimmIndexPanics)
{
    ThermalTestbed bed;
    EXPECT_DEATH((void)bed.temperature(4), "out of range");
    EXPECT_DEATH(bed.setDramPower(-1, 1.0), "out of range");
}

} // namespace
} // namespace dfault::sys
