/**
 * @file
 * Unit tests for the execution context (core model + simulated memory).
 */

#include <gtest/gtest.h>

#include "dram/geometry.hh"
#include "mem/hierarchy.hh"
#include "sys/execution.hh"
#include "trace/access.hh"

namespace dfault::sys {
namespace {

struct Fixture
{
    dram::Geometry geometry;
    mem::MemoryHierarchy hierarchy{geometry};
    trace::InstrumentationBus bus;
};

TEST(Execution, AllocateIsAlignedAndMonotone)
{
    Fixture f;
    ExecutionContext ctx(f.hierarchy, f.bus);
    const Addr a = ctx.allocate(100);
    const Addr b = ctx.allocate(1);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_EQ(ctx.footprintBytes(), b + 64);
}

TEST(Execution, StoreLoadRoundTrip)
{
    Fixture f;
    ExecutionContext ctx(f.hierarchy, f.bus);
    const Addr base = ctx.allocate(1024);
    ctx.store(0, base + 8, 0xdeadbeefULL);
    EXPECT_EQ(ctx.load(0, base + 8), 0xdeadbeefULL);
    EXPECT_EQ(ctx.peek(base + 8), 0xdeadbeefULL);
    EXPECT_EQ(ctx.peek(base), 0u); // zero initialized
}

TEST(Execution, CountersTrackInstructionMix)
{
    Fixture f;
    ExecutionContext ctx(f.hierarchy, f.bus);
    const Addr base = ctx.allocate(1024);
    ctx.load(0, base);
    ctx.store(0, base, 1);
    ctx.compute(0, 10);
    ctx.computeFp(0, 5);
    ctx.branch(0, true);
    const CoreStats &s = ctx.coreStats(0);
    EXPECT_EQ(s.loads, 1u);
    EXPECT_EQ(s.stores, 1u);
    EXPECT_EQ(s.intOps, 10u);
    EXPECT_EQ(s.fpOps, 5u);
    EXPECT_EQ(s.branches, 1u);
    EXPECT_EQ(s.branchMisses, 1u);
    EXPECT_EQ(s.instructions, 18u);
    EXPECT_EQ(ctx.globalInstructions(), 18u);
}

TEST(Execution, ThreadsHaveIndependentClocks)
{
    Fixture f;
    ExecutionContext::Params p;
    p.threads = 2;
    ExecutionContext ctx(f.hierarchy, f.bus, p);
    ctx.compute(0, 100);
    ctx.compute(1, 30);
    EXPECT_EQ(ctx.coreStats(0).cycles, 100u);
    EXPECT_EQ(ctx.coreStats(1).cycles, 30u);
    EXPECT_EQ(ctx.wallCycles(), 100u);
    EXPECT_EQ(ctx.totalStats().cycles, 130u);
}

TEST(Execution, MemoryStallsAccrueWaitCycles)
{
    Fixture f;
    ExecutionContext ctx(f.hierarchy, f.bus);
    const Addr base = ctx.allocate(1024);
    ctx.load(0, base); // cold miss all the way to DRAM
    EXPECT_GT(ctx.coreStats(0).waitCycles, 0u);
    EXPECT_GT(ctx.coreStats(0).cycles, 1u);
}

TEST(Execution, MlpDiscountsStall)
{
    Fixture a, b;
    ExecutionContext::Params p1;
    p1.memoryLevelParallelism = 1.0;
    ExecutionContext slow(a.hierarchy, a.bus, p1);
    ExecutionContext::Params p8;
    p8.memoryLevelParallelism = 8.0;
    ExecutionContext fast(b.hierarchy, b.bus, p8);
    const Addr x = slow.allocate(64);
    const Addr y = fast.allocate(64);
    slow.load(0, x);
    fast.load(0, y);
    EXPECT_GT(slow.coreStats(0).waitCycles,
              fast.coreStats(0).waitCycles);
}

TEST(Execution, WallSecondsUsesDilation)
{
    Fixture f;
    ExecutionContext::Params p;
    p.clockHz = 1e9;
    p.timeDilation = 100.0;
    ExecutionContext ctx(f.hierarchy, f.bus, p);
    ctx.compute(0, 1000000); // 1e6 cycles
    EXPECT_NEAR(ctx.wallSeconds(), 1e6 * 100.0 / 1e9, 1e-12);
}

TEST(Execution, CpiAndPerInstructionTime)
{
    Fixture f;
    ExecutionContext ctx(f.hierarchy, f.bus);
    ctx.compute(0, 500); // pure ALU: CPI = 1
    EXPECT_DOUBLE_EQ(ctx.cpi(), 1.0);
    EXPECT_GT(ctx.wallSecondsPerInstruction(), 0.0);
}

TEST(Execution, EventsReachInstrumentationBus)
{
    Fixture f;
    struct Counter : trace::AccessSink
    {
        int events = 0;
        std::uint64_t lastValue = 0;
        void
        onAccess(const trace::AccessEvent &e) override
        {
            ++events;
            if (e.isWrite)
                lastValue = e.value;
        }
    } counter;
    f.bus.attach(&counter);
    ExecutionContext ctx(f.hierarchy, f.bus);
    const Addr base = ctx.allocate(64);
    ctx.load(0, base);
    ctx.store(0, base, 42);
    EXPECT_EQ(counter.events, 2);
    EXPECT_EQ(counter.lastValue, 42u);
    f.bus.detach(&counter);
    ctx.load(0, base);
    EXPECT_EQ(counter.events, 2);
}

TEST(ExecutionDeath, OutOfBoundsAccessPanics)
{
    Fixture f;
    ExecutionContext ctx(f.hierarchy, f.bus);
    ctx.allocate(64);
    EXPECT_DEATH(ctx.store(0, 4096, 1), "beyond allocated");
}

TEST(ExecutionDeath, CapacityExhaustionIsFatal)
{
    Fixture f;
    ExecutionContext ctx(f.hierarchy, f.bus);
    EXPECT_EXIT(ctx.allocate(f.geometry.capacityBytes() + 64),
                ::testing::ExitedWithCode(1), "exceeds DRAM capacity");
}

TEST(ExecutionDeath, BadThreadPanics)
{
    Fixture f;
    ExecutionContext::Params p;
    p.threads = 2;
    ExecutionContext ctx(f.hierarchy, f.bus, p);
    EXPECT_DEATH(ctx.compute(2, 1), "thread id");
}

} // namespace
} // namespace dfault::sys
