/**
 * @file
 * Unit tests for per-device manufacturing variation (DIMM-to-DIMM
 * spread, row scrambling, true-/anti-cell organization).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dram/device.hh"

namespace dfault::dram {
namespace {

TEST(DeviceFactory, DeterministicForSeed)
{
    Geometry g;
    DeviceFactory f1(g), f2(g);
    const auto a = f1.buildAll();
    const auto b = f2.buildAll();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].retentionScale(), b[i].retentionScale());
        EXPECT_EQ(a[i].variation().rowScrambleKey,
                  b[i].variation().rowScrambleKey);
    }
}

TEST(DeviceFactory, DifferentSeedDifferentHardware)
{
    Geometry g;
    DeviceFactory::Params p;
    p.masterSeed = 0xabcd;
    const auto a = DeviceFactory(g).buildAll();
    const auto b = DeviceFactory(g, p).buildAll();
    int equal = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        equal += a[i].retentionScale() == b[i].retentionScale();
    EXPECT_EQ(equal, 0);
}

TEST(DeviceFactory, BuildSingleMatchesPopulation)
{
    Geometry g;
    DeviceFactory f(g);
    const auto all = f.buildAll();
    const DramDevice one = f.build(DeviceId{2, 1});
    const int idx = g.deviceIndex(DeviceId{2, 1});
    EXPECT_DOUBLE_EQ(one.retentionScale(), all[idx].retentionScale());
}

TEST(DeviceFactory, PopulationShowsSpread)
{
    // The 188x WER spread of paper Fig 8 requires a real scale spread.
    Geometry g;
    const auto devices = DeviceFactory(g).buildAll();
    double lo = 1e300, hi = 0.0;
    for (const auto &d : devices) {
        lo = std::min(lo, d.retentionScale());
        hi = std::max(hi, d.retentionScale());
        EXPECT_GT(d.retentionScale(), 0.0);
    }
    EXPECT_GT(hi / lo, 1.5);
}

TEST(Device, ScrambleIsBijectiveInvolution)
{
    Geometry g;
    const DramDevice dev = DeviceFactory(g).build(DeviceId{1, 0});
    for (std::uint32_t row = 0; row < g.params().rowsPerBank; ++row) {
        const std::uint32_t phys = dev.physicalRow(row);
        EXPECT_LT(phys, g.params().rowsPerBank);
        EXPECT_EQ(dev.physicalRow(phys), row); // XOR is an involution
    }
}

TEST(Device, TrueCellFractionApproximatesParameter)
{
    Geometry g;
    const DramDevice dev = DeviceFactory(g).build(DeviceId{0, 0});
    const double target = dev.variation().trueCellFraction;
    int true_rows = 0;
    const int n = static_cast<int>(g.params().rowsPerBank);
    for (int r = 0; r < n; ++r)
        true_rows += dev.rowIsTrueCell(static_cast<std::uint32_t>(r));
    EXPECT_NEAR(static_cast<double>(true_rows) / n, target, 0.05);
}

TEST(Device, TrueCellAssignmentIsDeterministic)
{
    Geometry g;
    const DramDevice dev = DeviceFactory(g).build(DeviceId{3, 1});
    for (std::uint32_t r = 0; r < 64; ++r)
        EXPECT_EQ(dev.rowIsTrueCell(r), dev.rowIsTrueCell(r));
}

TEST(Device, ChipScalesCoverAllBits)
{
    Geometry g;
    const DramDevice dev = DeviceFactory(g).build(DeviceId{0, 1});
    EXPECT_EQ(dev.variation().chipScales.size(), 9u); // 8 data + 1 ECC
    for (int bit = 0; bit < 72; ++bit)
        EXPECT_GT(dev.chipScaleForBit(bit), 0.0);
    // Bits of the same x8 chip share a scale.
    EXPECT_DOUBLE_EQ(dev.chipScaleForBit(0), dev.chipScaleForBit(7));
    EXPECT_DOUBLE_EQ(dev.chipScaleForBit(64), dev.chipScaleForBit(71));
}

TEST(DeviceDeath, InvalidVariationPanics)
{
    DramDevice::Variation v;
    v.retentionScale = 0.0;
    EXPECT_DEATH(DramDevice(DeviceId{0, 0}, v), "positive");
    DramDevice::Variation w;
    w.trueCellFraction = 1.5;
    EXPECT_DEATH(DramDevice(DeviceId{0, 0}, w), "probability");
}

TEST(DeviceFactoryDeath, BadPopulationParams)
{
    Geometry g;
    DeviceFactory::Params p;
    p.trueCellMin = 0.8;
    p.trueCellMax = 0.2;
    EXPECT_EXIT(DeviceFactory(g, p), ::testing::ExitedWithCode(1),
                "true-cell");
}

} // namespace
} // namespace dfault::dram
