/**
 * @file
 * Unit tests for the SLIMpro-style error log and its unique-location
 * WER accounting.
 */

#include <gtest/gtest.h>

#include "dram/error_log.hh"

namespace dfault::dram {
namespace {

ErrorRecord
makeCe(int dimm, int rank, std::uint32_t row, std::uint32_t col)
{
    ErrorRecord r;
    r.device = DeviceId{dimm, rank};
    r.bank = 0;
    r.row = row;
    r.column = col;
    r.type = ErrorType::CE;
    return r;
}

TEST(ErrorLog, CountsUniqueCeWords)
{
    Geometry g;
    ErrorLog log(g);
    EXPECT_TRUE(log.report(makeCe(0, 0, 1, 2)));
    EXPECT_TRUE(log.report(makeCe(0, 0, 1, 3)));
    // Same word again: deduplicated (paper Eq. 2 counts unique words).
    EXPECT_FALSE(log.report(makeCe(0, 0, 1, 2)));
    EXPECT_EQ(log.uniqueCeWords(DeviceId{0, 0}), 2u);
    EXPECT_EQ(log.records().size(), 2u);
}

TEST(ErrorLog, SeparatesDevices)
{
    Geometry g;
    ErrorLog log(g);
    log.report(makeCe(0, 0, 5, 5));
    log.report(makeCe(2, 1, 5, 5)); // same coordinates, other device
    EXPECT_EQ(log.uniqueCeWords(DeviceId{0, 0}), 1u);
    EXPECT_EQ(log.uniqueCeWords(DeviceId{2, 1}), 1u);
    EXPECT_EQ(log.uniqueCeWords(DeviceId{1, 0}), 0u);
    EXPECT_EQ(log.uniqueCeWordsTotal(), 2u);
}

TEST(ErrorLog, UeCountsAreNotDeduplicated)
{
    Geometry g;
    ErrorLog log(g);
    ErrorRecord ue = makeCe(1, 1, 9, 0);
    ue.type = ErrorType::UE;
    EXPECT_TRUE(log.report(ue));
    EXPECT_TRUE(log.report(ue));
    EXPECT_EQ(log.ueCount(DeviceId{1, 1}), 2u);
    EXPECT_EQ(log.ueCountTotal(), 2u);
}

TEST(ErrorLog, SdcCounting)
{
    Geometry g;
    ErrorLog log(g);
    ErrorRecord sdc = makeCe(0, 1, 3, 1);
    sdc.type = ErrorType::SDC;
    log.report(sdc);
    EXPECT_EQ(log.sdcCountTotal(), 1u);
}

TEST(ErrorLog, ClearResetsEverything)
{
    Geometry g;
    ErrorLog log(g);
    log.report(makeCe(0, 0, 1, 1));
    ErrorRecord ue = makeCe(0, 0, 2, 2);
    ue.type = ErrorType::UE;
    log.report(ue);
    log.clear();
    EXPECT_EQ(log.uniqueCeWordsTotal(), 0u);
    EXPECT_EQ(log.ueCountTotal(), 0u);
    EXPECT_TRUE(log.records().empty());
    // A cleared location counts as new again.
    EXPECT_TRUE(log.report(makeCe(0, 0, 1, 1)));
}

TEST(ErrorLog, DifferentBanksAreDistinctWords)
{
    Geometry g;
    ErrorLog log(g);
    ErrorRecord a = makeCe(0, 0, 1, 1);
    ErrorRecord b = makeCe(0, 0, 1, 1);
    b.bank = 1;
    EXPECT_TRUE(log.report(a));
    EXPECT_TRUE(log.report(b));
    EXPECT_EQ(log.uniqueCeWords(DeviceId{0, 0}), 2u);
}

} // namespace
} // namespace dfault::dram
