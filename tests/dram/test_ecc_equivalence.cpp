/**
 * @file
 * Exhaustive equivalence of the bit-parallel SECDED codec against the
 * original positional implementation.
 *
 * The production EccSecded was rewritten to fold seven precomputed
 * parity masks with popcount and decode through a syndrome lookup
 * table. That rewrite claims bit-identical behaviour; this suite holds
 * it to that claim by keeping the pre-rewrite decoder alive as
 * EccSecdedReference (verbatim, per-position loops) and comparing the
 * two over every single-bit flip (72 positions) and every double-bit
 * flip (C(72,2) = 2556 pairs) across a spread of data words — not just
 * matching outcomes, but matching corrected data and corrected-bit
 * indices too.
 */

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>

#include "common/rng.hh"
#include "dram/ecc.hh"

namespace dfault::dram {
namespace {

constexpr int kParityBit = 71;      ///< Codeword bit index of overall parity.
constexpr int kFirstCheckBit = 64;  ///< Codeword index of Hamming check 0.

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/**
 * The seed implementation of EccSecded, kept verbatim (modulo the
 * class name and DFAULT_ASSERT, which a test binary replaces with
 * gtest checks). Walks Hamming positions bit by bit: O(64) per check
 * bit, O(7*64) per encode. Slow and obviously correct — the oracle.
 */
class EccSecdedReference
{
  public:
    EccSecdedReference()
    {
        posToData_.fill(-1);
        int data_bit = 0;
        int check_bit = 0;
        for (int pos = 1; pos <= 71; ++pos) {
            if (isPowerOfTwo(pos)) {
                checkPos_[check_bit++] = pos;
            } else {
                dataPos_[data_bit] = pos;
                posToData_[pos] = data_bit;
                ++data_bit;
            }
        }
        EXPECT_TRUE(data_bit == 64 && check_bit == 7)
            << "SECDED position table construction broken";
    }

    Codeword encode(std::uint64_t data) const
    {
        return Codeword{data, computeCheck(data)};
    }

    DecodeResult decode(const Codeword &received) const
    {
        const std::uint8_t expected = computeCheck(received.data);

        const int syndrome = (expected ^ received.check) & 0x7f;
        int parity = std::popcount(received.data) & 1;
        parity ^= std::popcount(static_cast<unsigned>(received.check)) & 1;

        DecodeResult res;
        res.data = received.data;

        if (syndrome == 0 && parity == 0) {
            res.outcome = EccOutcome::NoError;
            return res;
        }
        if (syndrome == 0 && parity != 0) {
            res.outcome = EccOutcome::Corrected;
            res.correctedBit = kParityBit;
            return res;
        }
        if (parity != 0) {
            if (syndrome <= 71) {
                const int data_bit = posToData_[syndrome];
                if (data_bit >= 0) {
                    res.data ^= (1ULL << data_bit);
                    res.correctedBit = data_bit;
                } else {
                    for (int j = 0; j < 7; ++j) {
                        if (checkPos_[j] == syndrome)
                            res.correctedBit = kFirstCheckBit + j;
                    }
                }
                res.outcome = EccOutcome::Corrected;
                return res;
            }
            res.outcome = EccOutcome::Uncorrectable;
            return res;
        }
        res.outcome = EccOutcome::Uncorrectable;
        return res;
    }

  private:
    std::array<int, 64> dataPos_;
    std::array<int, 7> checkPos_;
    std::array<int, 72> posToData_;

    std::uint8_t computeCheck(std::uint64_t data) const
    {
        std::uint8_t check = 0;
        for (int j = 0; j < 7; ++j) {
            int parity = 0;
            for (int i = 0; i < 64; ++i) {
                if ((dataPos_[i] & (1 << j)) && ((data >> i) & 1))
                    parity ^= 1;
            }
            check |= static_cast<std::uint8_t>(parity << j);
        }
        int overall = std::popcount(data) & 1;
        overall ^= std::popcount(static_cast<unsigned>(check & 0x7f)) & 1;
        check |= static_cast<std::uint8_t>(overall << 7);
        return check;
    }
};

/** Edge words plus seeded random draws; shared by every test below. */
std::array<std::uint64_t, 16>
testWords()
{
    std::array<std::uint64_t, 16> words{
        0ULL,
        ~0ULL,
        0x5555555555555555ULL,
        0xaaaaaaaaaaaaaaaaULL,
        1ULL,
        0x8000000000000000ULL,
    };
    Rng rng(0xecc5);
    for (std::size_t i = 6; i < words.size(); ++i)
        words[i] = rng.next();
    return words;
}

void
expectSameDecode(const DecodeResult &ref, const DecodeResult &fast,
                 const char *what, int a, int b)
{
    ASSERT_EQ(ref.outcome, fast.outcome)
        << what << " flip(s) " << a << "," << b;
    ASSERT_EQ(ref.data, fast.data) << what << " flip(s) " << a << "," << b;
    ASSERT_EQ(ref.correctedBit, fast.correctedBit)
        << what << " flip(s) " << a << "," << b;
}

TEST(EccEquivalence, EncodeMatchesReference)
{
    EccSecded fast;
    EccSecdedReference ref;
    for (const std::uint64_t data : testWords()) {
        const Codeword rw = ref.encode(data);
        const Codeword fw = fast.encode(data);
        ASSERT_EQ(rw.data, fw.data);
        ASSERT_EQ(rw.check, fw.check) << "data " << std::hex << data;
    }
    // A denser sweep of the check computation alone: walking words
    // exercises every parity mask bit several times over.
    Rng rng(0xecc6);
    for (int trial = 0; trial < 4096; ++trial) {
        const std::uint64_t data = rng.next();
        ASSERT_EQ(ref.encode(data).check, fast.encode(data).check)
            << "data " << std::hex << data;
    }
}

TEST(EccEquivalence, CleanDecodeMatchesReference)
{
    EccSecded fast;
    EccSecdedReference ref;
    for (const std::uint64_t data : testWords()) {
        const Codeword w = ref.encode(data);
        expectSameDecode(ref.decode(w), fast.decode(w), "clean", -1, -1);
    }
}

TEST(EccEquivalence, AllSingleFlipsMatchReference)
{
    // Every one of the 72 single-bit flips, on every test word: same
    // outcome, same recovered data, same corrected-bit index.
    EccSecded fast;
    EccSecdedReference ref;
    for (const std::uint64_t data : testWords()) {
        const Codeword clean = ref.encode(data);
        for (int a = 0; a < 72; ++a) {
            Codeword w = clean;
            EccSecded::flipBit(w, a);
            expectSameDecode(ref.decode(w), fast.decode(w), "single",
                             a, -1);
        }
    }
}

TEST(EccEquivalence, AllDoubleFlipsMatchReference)
{
    // Every one of the C(72,2) = 2556 double-bit flips, on every test
    // word. The decoders must agree they are all uncorrectable, and
    // agree on the (unmodified) data they hand back.
    EccSecded fast;
    EccSecdedReference ref;
    for (const std::uint64_t data : testWords()) {
        const Codeword clean = ref.encode(data);
        int pairs = 0;
        for (int a = 0; a < 72; ++a) {
            for (int b = a + 1; b < 72; ++b) {
                Codeword w = clean;
                EccSecded::flipBit(w, a);
                EccSecded::flipBit(w, b);
                expectSameDecode(ref.decode(w), fast.decode(w),
                                 "double", a, b);
                ++pairs;
            }
        }
        ASSERT_EQ(pairs, 2556);
    }
}

TEST(EccEquivalence, CorruptCheckBytesMatchReference)
{
    // Beyond injected flips: any received check byte at all (including
    // ones no flip pattern produces from this data word) must classify
    // identically. 256 check values x test words covers the syndrome
    // table's 72..127 "impossible position" rows too.
    EccSecded fast;
    EccSecdedReference ref;
    for (const std::uint64_t data : testWords()) {
        for (int check = 0; check < 256; ++check) {
            const Codeword w{data, static_cast<std::uint8_t>(check)};
            expectSameDecode(ref.decode(w), fast.decode(w), "check byte",
                             check, -1);
        }
    }
}

} // namespace
} // namespace dfault::dram
