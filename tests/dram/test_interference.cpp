/**
 * @file
 * Unit tests for the cell-to-cell interference (disturbance) model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dram/interference.hh"

namespace dfault::dram {
namespace {

TEST(Interference, NoAggressorNoWidening)
{
    InterferenceModel m;
    EXPECT_DOUBLE_EQ(m.thresholdWidening(0.0, 2.283), 0.0);
    EXPECT_DOUBLE_EQ(m.thresholdWidening(-5.0, 2.283), 0.0);
    EXPECT_DOUBLE_EQ(m.thresholdWidening(100.0, 0.0), 0.0);
}

TEST(Interference, MonotoneInAggressorRate)
{
    InterferenceModel m;
    double prev = 0.0;
    for (const double rate : {1.0, 10.0, 100.0, 1000.0}) {
        const double d = m.thresholdWidening(rate, 2.283);
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST(Interference, MonotoneInRefreshPeriod)
{
    // A longer refresh period exposes the victim to more aggressor
    // activations before its charge is restored.
    InterferenceModel m;
    EXPECT_LT(m.thresholdWidening(100.0, 0.618),
              m.thresholdWidening(100.0, 2.283));
}

TEST(Interference, SaturatesAtMaxDelta)
{
    InterferenceModel::Params p;
    p.maxDelta = 0.4;
    InterferenceModel m(p);
    EXPECT_DOUBLE_EQ(m.thresholdWidening(1e12, 2.283), 0.4);
}

TEST(Interference, ReferencePointValue)
{
    InterferenceModel::Params p;
    p.strength = 1.0;
    p.refActivations = 100.0;
    p.maxDelta = 10.0;
    InterferenceModel m(p);
    // acts/window = 100 -> log1p(1) = ln 2.
    EXPECT_NEAR(m.thresholdWidening(100.0, 1.0), std::log(2.0), 1e-12);
}

TEST(Interference, LogarithmicCompression)
{
    // Doubling an already-high rate must add less than the first
    // doubling did (sub-linear accumulation of disturbance).
    InterferenceModel m;
    const double d1 = m.thresholdWidening(200.0, 1.0);
    const double d2 = m.thresholdWidening(400.0, 1.0);
    const double d3 = m.thresholdWidening(800.0, 1.0);
    EXPECT_GT(d2 - d1, d3 - d2);
}

TEST(InterferenceDeath, BadParamsAreFatal)
{
    InterferenceModel::Params p;
    p.strength = -1.0;
    EXPECT_EXIT(InterferenceModel{p}, ::testing::ExitedWithCode(1),
                "strength");
    InterferenceModel::Params q;
    q.refActivations = 0.0;
    EXPECT_EXIT(InterferenceModel{q}, ::testing::ExitedWithCode(1),
                "refActivations");
}

} // namespace
} // namespace dfault::dram
