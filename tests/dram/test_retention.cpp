/**
 * @file
 * Unit tests for the retention-time model: the physics that makes the
 * nominal DDR3 point error-free and the relaxed points error-prone.
 */

#include <gtest/gtest.h>

#include "dram/retention.hh"

namespace dfault::dram {
namespace {

TEST(Retention, NominalPointIsEffectivelyErrorFree)
{
    RetentionModel model;
    const OperatingPoint nominal{}; // 64 ms, 1.5 V, 50 C
    const double p = model.weakProbability(kNominalTrefp, nominal);
    EXPECT_LT(p, 1e-15); // far below one failing cell per 8 GiB
}

TEST(Retention, RelaxedPointInPaperBand)
{
    RetentionModel model;
    const OperatingPoint relaxed{kMaxTrefp, kMinVdd, 50.0};
    const double p = model.weakProbability(kMaxTrefp, relaxed);
    // Per-cell weak probability that yields the paper's 1e-8..1e-6
    // per-word WER band once multiplied by 72 bits and vulnerability.
    EXPECT_GT(p, 1e-11);
    EXPECT_LT(p, 1e-6);
}

TEST(Retention, MonotoneInExposureTime)
{
    RetentionModel model;
    const OperatingPoint op{1.0, kMinVdd, 60.0};
    double prev = 0.0;
    for (const Seconds t : {0.1, 0.5, 1.0, 2.0, 4.0}) {
        const double p = model.weakProbability(t, op);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(Retention, MonotoneInTemperature)
{
    RetentionModel model;
    double prev = 0.0;
    for (const Celsius temp : {40.0, 50.0, 60.0, 70.0, 80.0}) {
        const OperatingPoint op{kMaxTrefp, kMinVdd, temp};
        const double p = model.weakProbability(kMaxTrefp, op);
        EXPECT_GT(p, prev) << temp;
        prev = p;
    }
}

TEST(Retention, TemperatureAccelerationIsOrdersOfMagnitude)
{
    // Paper §V: 50 -> 70 C inflates error rates by orders of magnitude.
    RetentionModel model;
    const OperatingPoint cold{kMaxTrefp, kMinVdd, 50.0};
    const OperatingPoint hot{kMaxTrefp, kMinVdd, 70.0};
    const double ratio = model.weakProbability(kMaxTrefp, hot) /
                         model.weakProbability(kMaxTrefp, cold);
    EXPECT_GT(ratio, 100.0);
    EXPECT_LT(ratio, 1e6);
}

TEST(Retention, VddReductionHasMildEffect)
{
    // Paper §V: lowering VDD by 5% alone is near error-free; the effect
    // must be small compared to temperature.
    RetentionModel model;
    const OperatingPoint nominal_v{kMaxTrefp, kNominalVdd, 50.0};
    const OperatingPoint low_v{kMaxTrefp, kMinVdd, 50.0};
    const double ratio = model.weakProbability(kMaxTrefp, low_v) /
                         model.weakProbability(kMaxTrefp, nominal_v);
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 10.0);
}

TEST(Retention, DeviceScaleShiftsTail)
{
    RetentionModel model;
    const OperatingPoint op{kMaxTrefp, kMinVdd, 50.0};
    const double weak_dev = model.weakProbability(kMaxTrefp, op, 0.5);
    const double strong_dev = model.weakProbability(kMaxTrefp, op, 2.0);
    // A device whose cells retain half as long fails far more often.
    EXPECT_GT(weak_dev / strong_dev, 100.0);
}

TEST(Retention, QuantileInvertsCdf)
{
    RetentionModel model;
    const OperatingPoint op{kMaxTrefp, kMinVdd, 60.0};
    for (const double p : {1e-9, 1e-6, 1e-3, 0.5}) {
        const Seconds t = model.weakQuantile(p, op);
        EXPECT_NEAR(model.weakProbability(t, op), p, p * 1e-6);
    }
}

TEST(Retention, TauScaleNominalIsUnity)
{
    RetentionModel model;
    const OperatingPoint ref{kNominalTrefp, kNominalVdd, 50.0};
    EXPECT_NEAR(model.tauScale(ref), 1.0, 1e-12);
}

TEST(Retention, ZeroExposureHasZeroProbability)
{
    RetentionModel model;
    EXPECT_DOUBLE_EQ(model.weakProbability(0.0, OperatingPoint{}), 0.0);
    EXPECT_DOUBLE_EQ(model.weakProbability(-1.0, OperatingPoint{}), 0.0);
}

TEST(RetentionDeath, BadParamsAreFatal)
{
    RetentionModel::Params p;
    p.sigma = 0.0;
    EXPECT_EXIT(RetentionModel{p}, ::testing::ExitedWithCode(1),
                "sigma");
    RetentionModel::Params q;
    q.tempAlpha = -0.1;
    EXPECT_EXIT(RetentionModel{q}, ::testing::ExitedWithCode(1),
                "tempAlpha");
}

} // namespace
} // namespace dfault::dram
