/**
 * @file
 * Unit tests for the SECDED (72,64) codec: the CE/UE/SDC taxonomy of
 * paper Table I is decided by this decoder.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/ecc.hh"

namespace dfault::dram {
namespace {

TEST(Ecc, CleanWordDecodesClean)
{
    EccSecded ecc;
    for (const std::uint64_t data :
         {0ULL, ~0ULL, 0xdeadbeefcafebabeULL, 1ULL, 0x8000000000000000ULL}) {
        const Codeword w = ecc.encode(data);
        const DecodeResult r = ecc.decode(w);
        EXPECT_EQ(r.outcome, EccOutcome::NoError);
        EXPECT_EQ(r.data, data);
    }
}

/** Every single-bit flip (all 72 positions) must be corrected. */
class SingleFlip : public ::testing::TestWithParam<int>
{
};

TEST_P(SingleFlip, Corrected)
{
    EccSecded ecc;
    Rng rng(77);
    for (int trial = 0; trial < 16; ++trial) {
        const std::uint64_t data = rng.next();
        Codeword w = ecc.encode(data);
        EccSecded::flipBit(w, GetParam());
        const DecodeResult r = ecc.decode(w);
        EXPECT_EQ(r.outcome, EccOutcome::Corrected);
        EXPECT_EQ(r.data, data) << "bit " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(AllBits, SingleFlip, ::testing::Range(0, 72));

TEST(Ecc, AllDoubleFlipsDetectedExhaustively)
{
    // The SECDED guarantee: every one of the C(72,2) = 2556 possible
    // double flips must be detected (never miscorrected or accepted).
    EccSecded ecc;
    Rng rng(78);
    for (const std::uint64_t data :
         {std::uint64_t{0}, ~std::uint64_t{0}, rng.next()}) {
        for (int a = 0; a < 72; ++a) {
            for (int b = a + 1; b < 72; ++b) {
                Codeword w = ecc.encode(data);
                EccSecded::flipBit(w, a);
                EccSecded::flipBit(w, b);
                const DecodeResult r = ecc.decode(w);
                ASSERT_EQ(r.outcome, EccOutcome::Uncorrectable)
                    << "bits " << a << "," << b;
            }
        }
    }
}

TEST(Ecc, TripleFlipsNeverSilentlyAccepted)
{
    // A triple flip may alias to a "corrected" single-bit error (that is
    // the SDC case), but decodeKnownFlips must then flag Miscorrected;
    // with ground truth no >2-bit error may pass as NoError/Corrected
    // with intact data.
    EccSecded ecc;
    Rng rng(79);
    int miscorrected = 0, detected = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        const std::uint64_t data = rng.next();
        Codeword w = ecc.encode(data);
        int bits[3];
        bits[0] = static_cast<int>(rng.uniformInt(std::uint64_t{72}));
        do {
            bits[1] = static_cast<int>(rng.uniformInt(std::uint64_t{72}));
        } while (bits[1] == bits[0]);
        do {
            bits[2] = static_cast<int>(rng.uniformInt(std::uint64_t{72}));
        } while (bits[2] == bits[0] || bits[2] == bits[1]);
        for (const int b : bits)
            EccSecded::flipBit(w, b);

        const DecodeResult r = ecc.decodeKnownFlips(w, 3, data);
        if (r.outcome == EccOutcome::Miscorrected)
            ++miscorrected;
        else if (r.outcome == EccOutcome::Uncorrectable)
            ++detected;
        else
            FAIL() << "triple flip classified as "
                   << static_cast<int>(r.outcome);
    }
    // Odd flip counts look like single-bit errors to SECDED, so the
    // decoder is fooled often; both buckets must be populated.
    EXPECT_GT(miscorrected, 0);
    EXPECT_GT(detected, 0);
}

TEST(Ecc, FlipBitIsInvolution)
{
    Codeword w{0x1234, 0x7};
    Codeword orig = w;
    for (int b = 0; b < 72; ++b) {
        EccSecded::flipBit(w, b);
        EXPECT_NE(w, orig);
        EccSecded::flipBit(w, b);
        EXPECT_EQ(w, orig);
    }
}

TEST(Ecc, CheckBitsDifferAcrossData)
{
    EccSecded ecc;
    // Adjacent data words must not share check bits systematically.
    int same = 0;
    for (std::uint64_t d = 0; d < 64; ++d)
        same += ecc.encode(d).check == ecc.encode(d + 1).check;
    EXPECT_LT(same, 8);
}

TEST(Ecc, ParityBitOnlyFlipCorrected)
{
    EccSecded ecc;
    Codeword w = ecc.encode(0xabcdef);
    EccSecded::flipBit(w, 71); // overall parity bit
    const DecodeResult r = ecc.decode(w);
    EXPECT_EQ(r.outcome, EccOutcome::Corrected);
    EXPECT_EQ(r.data, 0xabcdefULL);
    EXPECT_EQ(r.correctedBit, 71);
}

TEST(EccDeath, FlipBitRangeChecked)
{
    Codeword w;
    EXPECT_DEATH(EccSecded::flipBit(w, 72), "out of range");
    EXPECT_DEATH(EccSecded::flipBit(w, -1), "out of range");
}

TEST(Ecc, SingleFlipKnownGroundTruthConsistency)
{
    EccSecded ecc;
    const std::uint64_t data = 0x5555aaaa5555aaaaULL;
    Codeword w = ecc.encode(data);
    EccSecded::flipBit(w, 13);
    const DecodeResult r = ecc.decodeKnownFlips(w, 1, data);
    EXPECT_EQ(r.outcome, EccOutcome::Corrected);
    EXPECT_EQ(r.data, data);
}

} // namespace
} // namespace dfault::dram
