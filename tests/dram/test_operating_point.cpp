/**
 * @file
 * Unit tests for operating-point validation and the paper's sweep
 * levels.
 */

#include <gtest/gtest.h>

#include "dram/operating_point.hh"

namespace dfault::dram {
namespace {

TEST(OperatingPoint, DefaultsAreNominal)
{
    OperatingPoint op;
    EXPECT_DOUBLE_EQ(op.trefp, kNominalTrefp);
    EXPECT_DOUBLE_EQ(op.vdd, kNominalVdd);
    EXPECT_DOUBLE_EQ(op.temperature, 50.0);
    op.validate(); // must not exit
}

TEST(OperatingPoint, LabelFormat)
{
    OperatingPoint op{2.283, 1.428, 70.0};
    EXPECT_EQ(op.label(), "TREFP=2.283s VDD=1.428V T=70C");
}

TEST(OperatingPoint, Equality)
{
    OperatingPoint a{1.0, 1.5, 50.0};
    OperatingPoint b{1.0, 1.5, 50.0};
    OperatingPoint c{1.0, 1.5, 60.0};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(OperatingPoint, PaperSweepLevels)
{
    // Fig 7 uses four TREFP levels; Fig 9 uses three at 70 C.
    EXPECT_EQ(std::size(kWerTrefpLevels), 4u);
    EXPECT_EQ(std::size(kUeTrefpLevels), 3u);
    EXPECT_DOUBLE_EQ(kWerTrefpLevels[3], kMaxTrefp);
    EXPECT_DOUBLE_EQ(kUeTrefpLevels[0], 1.450);
    EXPECT_EQ(std::size(kTemperatureLevels), 3u);
}

TEST(OperatingPointDeath, InvalidValuesAreFatal)
{
    OperatingPoint bad_trefp{-1.0, 1.5, 50.0};
    EXPECT_EXIT(bad_trefp.validate(), ::testing::ExitedWithCode(1),
                "TREFP");
    OperatingPoint bad_vdd{1.0, 0.0, 50.0};
    EXPECT_EXIT(bad_vdd.validate(), ::testing::ExitedWithCode(1),
                "VDD");
    OperatingPoint bad_temp{1.0, 1.5, 300.0};
    EXPECT_EXIT(bad_temp.validate(), ::testing::ExitedWithCode(1),
                "temperature");
}

} // namespace
} // namespace dfault::dram
