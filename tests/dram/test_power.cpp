/**
 * @file
 * Unit tests for the DRAM power model behind the paper's energy
 * motivation (refresh-power scaling with TREFP and VDD).
 */

#include <gtest/gtest.h>

#include "dram/power.hh"

namespace dfault::dram {
namespace {

TEST(Power, NominalIdleBreakdown)
{
    PowerModel model;
    const OperatingPoint nominal{};
    const PowerBreakdown p = model.rankPower(nominal, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(p.background, model.params().backgroundWatts);
    EXPECT_DOUBLE_EQ(p.refresh, model.params().refreshWattsNominal);
    EXPECT_DOUBLE_EQ(p.activate, 0.0);
    EXPECT_DOUBLE_EQ(p.readWrite, 0.0);
    EXPECT_DOUBLE_EQ(p.total(), p.background + p.refresh);
}

TEST(Power, RefreshInverselyProportionalToTrefp)
{
    PowerModel model;
    const OperatingPoint nominal{};
    const OperatingPoint relaxed{kNominalTrefp * 10.0, kNominalVdd,
                                 50.0};
    const double r_nominal = model.rankPower(nominal, 0, 0).refresh;
    const double r_relaxed = model.rankPower(relaxed, 0, 0).refresh;
    EXPECT_NEAR(r_nominal / r_relaxed, 10.0, 1e-9);
}

TEST(Power, MaxTrefpNearlyEliminatesRefreshPower)
{
    // The paper's point: at TREFP = 2.283 s the refresh rate is ~36x
    // below nominal, making refresh power negligible.
    PowerModel model;
    const OperatingPoint op{kMaxTrefp, kMinVdd, 50.0};
    const PowerBreakdown p = model.rankPower(op, 0, 0);
    EXPECT_LT(p.refresh, 0.05 * model.params().refreshWattsNominal);
}

TEST(Power, VddScalesQuadratically)
{
    PowerModel model;
    const OperatingPoint high{kNominalTrefp, 1.5, 50.0};
    const OperatingPoint low{kNominalTrefp, 1.428, 50.0};
    const double ratio = model.rankPower(low, 100, 100).total() /
                         model.rankPower(high, 100, 100).total();
    EXPECT_NEAR(ratio, (1.428 / 1.5) * (1.428 / 1.5), 1e-9);
}

TEST(Power, ActivityTermsScaleLinearly)
{
    PowerModel model;
    const OperatingPoint op{};
    const PowerBreakdown slow = model.rankPower(op, 1000.0, 2000.0);
    const PowerBreakdown fast = model.rankPower(op, 2000.0, 4000.0);
    EXPECT_NEAR(fast.activate, 2.0 * slow.activate, 1e-12);
    EXPECT_NEAR(fast.readWrite, 2.0 * slow.readWrite, 1e-12);
    EXPECT_DOUBLE_EQ(fast.background, slow.background);
}

TEST(Power, RefreshSavingsOverTwoHours)
{
    PowerModel model;
    const OperatingPoint op{kMaxTrefp, kNominalVdd, 50.0};
    const double joules = model.refreshSavings(op, 7200.0);
    // Close to the full nominal refresh energy of the window.
    const double full = model.params().refreshWattsNominal * 7200.0;
    EXPECT_GT(joules, 0.9 * full);
    EXPECT_LT(joules, full);
    EXPECT_DOUBLE_EQ(model.refreshSavings(
                         OperatingPoint{kNominalTrefp, kNominalVdd,
                                        50.0},
                         7200.0),
                     0.0);
}

TEST(PowerDeath, NegativeRatesPanic)
{
    PowerModel model;
    EXPECT_DEATH((void)model.rankPower(OperatingPoint{}, -1.0, 0.0),
                 "negative");
    EXPECT_DEATH((void)model.refreshSavings(OperatingPoint{}, -1.0),
                 "negative");
}

TEST(PowerDeath, NegativeConstantsAreFatal)
{
    PowerModel::Params p;
    p.backgroundWatts = -0.1;
    EXPECT_EXIT(PowerModel{p}, ::testing::ExitedWithCode(1),
                "non-negative");
}

} // namespace
} // namespace dfault::dram
