/**
 * @file
 * Unit tests for DRAM geometry and physical address mapping.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/geometry.hh"

namespace dfault::dram {
namespace {

TEST(Geometry, DefaultOrganizationMatchesPlatform)
{
    Geometry g;
    EXPECT_EQ(g.params().channels, 4);
    EXPECT_EQ(g.params().ranksPerDimm, 2);
    EXPECT_EQ(g.deviceCount(), 8);
    EXPECT_EQ(g.capacityBytes(),
              g.capacityWords() * units::bytesPerWord);
    EXPECT_EQ(g.wordsPerDevice() * 8, g.capacityWords());
    EXPECT_EQ(g.rowsPerDevice(),
              static_cast<std::uint64_t>(g.params().banksPerRank) *
                  g.params().rowsPerBank);
}

TEST(Geometry, DeviceIndexBijection)
{
    Geometry g;
    for (int i = 0; i < g.deviceCount(); ++i) {
        const DeviceId id = g.deviceAt(i);
        EXPECT_EQ(g.deviceIndex(id), i);
    }
}

TEST(Geometry, DeviceLabels)
{
    EXPECT_EQ((DeviceId{2, 1}.label()), "DIMM2/rank1");
    EXPECT_EQ((DeviceId{0, 0}.label()), "DIMM0/rank0");
}

TEST(Geometry, DecodeFieldRanges)
{
    Geometry g;
    const WordCoord c = g.decode(g.capacityBytes() - 8);
    EXPECT_LT(c.channel, g.params().channels);
    EXPECT_LT(c.rank, g.params().ranksPerDimm);
    EXPECT_LT(c.bank, g.params().banksPerRank);
    EXPECT_LT(c.row, g.params().rowsPerBank);
    EXPECT_LT(c.column, g.params().wordsPerRow);
}

TEST(Geometry, ConsecutiveLinesInterleaveChannels)
{
    Geometry g;
    // With the default 128-word rows and 4 channels, consecutive
    // 1 KiB blocks land on different channels.
    const WordCoord a = g.decode(0);
    const WordCoord b = g.decode(g.params().wordsPerRow *
                                 units::bytesPerWord);
    EXPECT_NE(a.channel, b.channel);
}

TEST(Geometry, RowAndWordIndexConsistency)
{
    Geometry g;
    WordCoord c;
    c.channel = 1;
    c.rank = 1;
    c.bank = 3;
    c.row = 17;
    c.column = 5;
    EXPECT_EQ(g.rowIndex(c),
              3ull * g.params().rowsPerBank + 17);
    EXPECT_EQ(g.wordIndexInDevice(c),
              g.rowIndex(c) * g.params().wordsPerRow + 5);
}

/** Encode/decode round trip over word-aligned addresses. */
class GeometryRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeometryRoundTrip, EncodeDecode)
{
    Geometry g;
    Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            rng.uniformInt(g.capacityBytes() / 8) * 8;
        const WordCoord c = g.decode(addr);
        EXPECT_EQ(g.encode(c), addr);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryRoundTrip,
                         ::testing::Values(1u, 2u, 3u));

TEST(Geometry, SmallCustomGeometry)
{
    Geometry::Params p;
    p.channels = 2;
    p.ranksPerDimm = 1;
    p.banksPerRank = 4;
    p.rowsPerBank = 64;
    p.wordsPerRow = 16;
    Geometry g(p);
    EXPECT_EQ(g.deviceCount(), 2);
    EXPECT_EQ(g.capacityWords(), 2ull * 4 * 64 * 16);
    for (Addr a = 0; a < g.capacityBytes(); a += 8)
        EXPECT_EQ(g.encode(g.decode(a)), a);
}

TEST(GeometryDeath, NonPowerOfTwoIsFatal)
{
    Geometry::Params p;
    p.rowsPerBank = 1000;
    EXPECT_EXIT(Geometry{p}, ::testing::ExitedWithCode(1),
                "power of two");
}

TEST(GeometryDeath, OutOfRangeAddressPanics)
{
    Geometry g;
    EXPECT_DEATH((void)g.decode(g.capacityBytes()), "beyond DRAM");
}

} // namespace
} // namespace dfault::dram
