/**
 * @file
 * Unit tests for the DDR3 refresh-scheduling arithmetic.
 */

#include <gtest/gtest.h>

#include "dram/refresh.hh"

namespace dfault::dram {
namespace {

TEST(Refresh, NominalDdr3Interval)
{
    RefreshScheduler scheduler;
    const OperatingPoint nominal{};
    // 64 ms / 8192 = 7.8125 us, the DDR3 tREFI.
    EXPECT_NEAR(scheduler.refreshInterval(nominal), 7.8125e-6, 1e-12);
    EXPECT_NEAR(scheduler.commandRate(nominal), 128000.0, 1.0);
}

TEST(Refresh, RelaxedPeriodScalesEverything)
{
    RefreshScheduler scheduler;
    const OperatingPoint nominal{};
    const OperatingPoint relaxed{kMaxTrefp, kNominalVdd, 50.0};
    const double ratio = kMaxTrefp / kNominalTrefp; // ~35.7x
    EXPECT_NEAR(scheduler.refreshInterval(relaxed) /
                    scheduler.refreshInterval(nominal),
                ratio, 1e-9);
    EXPECT_NEAR(scheduler.commandRate(nominal) /
                    scheduler.commandRate(relaxed),
                ratio, 1e-9);
    EXPECT_NEAR(scheduler.refreshPower(nominal) /
                    scheduler.refreshPower(relaxed),
                ratio, 1e-9);
}

TEST(Refresh, BlockedFractionIsSmallButReal)
{
    RefreshScheduler scheduler;
    const OperatingPoint nominal{};
    // 260 ns / 7.8125 us ~ 3.3% of the rank's time at nominal DDR3.
    EXPECT_NEAR(scheduler.blockedFraction(nominal), 0.03328, 1e-4);
    const OperatingPoint relaxed{kMaxTrefp, kNominalVdd, 50.0};
    EXPECT_LT(scheduler.blockedFraction(relaxed), 0.001);
}

TEST(Refresh, CommandsWithinWindow)
{
    RefreshScheduler scheduler;
    const OperatingPoint nominal{};
    EXPECT_NEAR(scheduler.commandsWithin(nominal, 7.8125e-6), 1.0,
                1e-9);
    EXPECT_DOUBLE_EQ(scheduler.commandsWithin(nominal, 0.0), 0.0);
}

TEST(RefreshDeath, DegenerateConfigsAreFatal)
{
    RefreshScheduler::Params p;
    p.commandsPerPeriod = 0;
    EXPECT_EXIT(RefreshScheduler{p}, ::testing::ExitedWithCode(1),
                "commandsPerPeriod");
    RefreshScheduler::Params q;
    q.trfc = 0.0;
    EXPECT_EXIT(RefreshScheduler{q}, ::testing::ExitedWithCode(1),
                "tRFC");

    // A TREFP so short that refresh saturates the rank.
    RefreshScheduler scheduler;
    const OperatingPoint absurd{1e-3, kNominalVdd, 50.0};
    EXPECT_EXIT((void)scheduler.blockedFraction(absurd),
                ::testing::ExitedWithCode(1), "no time");
}

} // namespace
} // namespace dfault::dram
