/**
 * @file
 * Unit tests for the MCU model: open-page accounting, row statistics,
 * and channel bandwidth contention.
 */

#include <gtest/gtest.h>

#include "dram/controller.hh"

namespace dfault::dram {
namespace {

WordCoord
coordOn(int channel, int rank, int bank, std::uint32_t row,
        std::uint32_t col)
{
    WordCoord c;
    c.channel = channel;
    c.rank = rank;
    c.bank = bank;
    c.row = row;
    c.column = col;
    return c;
}

TEST(Mcu, RowHitAfterActivation)
{
    Geometry g;
    Mcu mcu(g, 0);
    const Cycles miss = mcu.access(coordOn(0, 0, 0, 5, 0), false, 1000);
    const Cycles hit = mcu.access(coordOn(0, 0, 0, 5, 1), false, 2000);
    EXPECT_GT(miss, hit);
    EXPECT_EQ(mcu.counters().rowMisses, 1u);
    EXPECT_EQ(mcu.counters().rowHits, 1u);
    EXPECT_EQ(mcu.counters().activations, 1u);
    EXPECT_EQ(mcu.counters().precharges, 0u);
}

TEST(Mcu, ConflictPrechargesAndReactivates)
{
    Geometry g;
    Mcu mcu(g, 0);
    mcu.access(coordOn(0, 0, 0, 5, 0), false, 1000);
    mcu.access(coordOn(0, 0, 0, 9, 0), false, 2000); // same bank, new row
    EXPECT_EQ(mcu.counters().precharges, 1u);
    EXPECT_EQ(mcu.counters().activations, 2u);
}

TEST(Mcu, BanksHaveIndependentOpenRows)
{
    Geometry g;
    Mcu mcu(g, 0);
    mcu.access(coordOn(0, 0, 0, 5, 0), false, 1000);
    mcu.access(coordOn(0, 0, 1, 7, 0), false, 2000); // other bank
    mcu.access(coordOn(0, 0, 0, 5, 1), false, 3000); // still open
    EXPECT_EQ(mcu.counters().rowHits, 1u);
}

TEST(Mcu, ReadWriteCounters)
{
    Geometry g;
    Mcu mcu(g, 0);
    mcu.access(coordOn(0, 0, 0, 1, 0), false, 1);
    mcu.access(coordOn(0, 0, 0, 1, 1), true, 2);
    mcu.access(coordOn(0, 0, 0, 1, 2), true, 3);
    EXPECT_EQ(mcu.counters().readCmds, 1u);
    EXPECT_EQ(mcu.counters().writeCmds, 2u);
    EXPECT_EQ(mcu.counters().totalCmds(), 3u);
}

TEST(Mcu, RowActivityTracksAccessesAndColumns)
{
    Geometry g;
    Mcu mcu(g, 0);
    mcu.access(coordOn(0, 1, 2, 10, 3), false, 100);
    mcu.access(coordOn(0, 1, 2, 10, 3), false, 200);
    mcu.access(coordOn(0, 1, 2, 10, 4), true, 300);

    WordCoord c = coordOn(0, 1, 2, 10, 0);
    const auto &row = mcu.rowActivity(1).at(g.rowIndex(c));
    EXPECT_EQ(row.accesses, 3u);
    EXPECT_EQ(row.activations, 1u);
    EXPECT_EQ(row.firstCycle, 100u);
    EXPECT_EQ(row.lastCycle, 300u);
    EXPECT_EQ(row.touchedWords(), 8); // full 64 B line
    EXPECT_DOUBLE_EQ(row.meanIntervalCycles(), 100.0);
}

TEST(Mcu, ChannelContentionQueuesBackToBackAccesses)
{
    Geometry g;
    Mcu::Params p;
    p.burstCycles = 50;
    Mcu mcu(g, 0, p);
    // Two accesses at the same cycle: the second queues behind the
    // first's burst occupancy.
    const Cycles first = mcu.access(coordOn(0, 0, 0, 1, 0), false, 0);
    const Cycles second = mcu.access(coordOn(0, 0, 0, 1, 1), false, 0);
    EXPECT_GE(second, first - p.rowMissLatency + p.rowHitLatency + 50 -
                          1); // queued at least one burst
    EXPECT_GT(second, mcu.access(coordOn(0, 0, 0, 1, 2), false,
                                 1000000)); // idle channel is faster
}

TEST(Mcu, NoContentionWhenSpacedOut)
{
    Geometry g;
    Mcu::Params p;
    Mcu mcu(g, 0, p);
    const Cycles a = mcu.access(coordOn(0, 0, 0, 1, 0), false, 0);
    // Far in the future: channel long since free.
    const Cycles b = mcu.access(coordOn(0, 0, 0, 1, 1), false, 100000);
    EXPECT_EQ(b, p.queuePenalty + p.rowHitLatency);
    EXPECT_EQ(a, p.queuePenalty + p.rowMissLatency);
}

TEST(Mcu, ResetClearsEverything)
{
    Geometry g;
    Mcu mcu(g, 0);
    mcu.access(coordOn(0, 0, 0, 1, 0), true, 10);
    mcu.reset();
    EXPECT_EQ(mcu.counters().totalCmds(), 0u);
    EXPECT_EQ(mcu.rowActivity(0)[g.rowIndex(coordOn(0, 0, 0, 1, 0))]
                  .accesses,
              0u);
    // After reset the bank is precharged again -> first access misses.
    mcu.access(coordOn(0, 0, 0, 1, 0), false, 20);
    EXPECT_EQ(mcu.counters().rowMisses, 1u);
}

TEST(McuDeath, WrongChannelPanics)
{
    Geometry g;
    Mcu mcu(g, 0);
    EXPECT_DEATH(mcu.access(coordOn(1, 0, 0, 1, 0), false, 0),
                 "wrong MCU");
}

TEST(RowActivity, TouchColumnFoldsBeyond128)
{
    RowActivity row;
    row.touchColumn(0);
    row.touchColumn(128); // folds onto column 0
    EXPECT_EQ(row.touchedWords(), 1);
    row.touchColumn(127);
    EXPECT_EQ(row.touchedWords(), 2); // touchColumn marks single words
}

} // namespace
} // namespace dfault::dram
