/**
 * @file
 * Unit tests for the variable-retention-time model that shapes WER(t).
 */

#include <gtest/gtest.h>

#include "dram/vrt.hh"

namespace dfault::dram {
namespace {

TEST(Vrt, StationaryFraction)
{
    VrtModel m({0.2, 0.6});
    EXPECT_NEAR(m.stationaryActiveFraction(), 0.25, 1e-12);
}

TEST(Vrt, EverActiveStartsAtStationary)
{
    VrtModel m({0.1, 0.4});
    EXPECT_NEAR(m.everActiveProbability(1),
                m.stationaryActiveFraction(), 1e-12);
}

TEST(Vrt, EverActiveMonotoneToOne)
{
    VrtModel m;
    double prev = 0.0;
    for (std::uint64_t k = 1; k <= 400; k *= 2) {
        const double p = m.everActiveProbability(k);
        EXPECT_GT(p, prev);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
    EXPECT_GT(m.everActiveProbability(400), 0.999);
}

TEST(Vrt, ZeroEpochsIsZero)
{
    VrtModel m;
    EXPECT_DOUBLE_EQ(m.everActiveProbability(0), 0.0);
}

TEST(Vrt, FirstActivationsSumToEverActive)
{
    VrtModel m;
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= 120; ++k)
        sum += m.firstActivationProbability(k);
    EXPECT_NEAR(sum, m.everActiveProbability(120), 1e-12);
}

TEST(Vrt, ConvergenceWithinTwoHours)
{
    // Paper Fig 4: the last 10 minutes of the 2-hour run change WER by
    // less than ~3%. The discovery curve must be nearly flat there.
    VrtModel m;
    const double at110 = m.everActiveProbability(110);
    const double at120 = m.everActiveProbability(120);
    EXPECT_LT((at120 - at110) / at120, 0.03);
}

TEST(Vrt, FirstActivationDecreasing)
{
    VrtModel m;
    double prev = 1.0;
    for (std::uint64_t k = 2; k <= 50; ++k) {
        const double p = m.firstActivationProbability(k);
        EXPECT_LE(p, prev);
        prev = p;
    }
}

TEST(VrtDeath, BadRatesAreFatal)
{
    EXPECT_EXIT(VrtModel({0.0, 0.5}), ::testing::ExitedWithCode(1),
                "onRate");
    EXPECT_EXIT(VrtModel({0.5, 1.5}), ::testing::ExitedWithCode(1),
                "offRate");
}

} // namespace
} // namespace dfault::dram
