/**
 * @file
 * Scoped-timer tests: phase-stack nesting, accumulation into the stats
 * registry and the phaseTimes() report.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "obs/stats.hh"
#include "obs/timer.hh"

namespace dfault::obs {
namespace {

TEST(ScopedTimer, NestingBuildsDottedPaths)
{
    Registry reg;
    EXPECT_EQ(ScopedTimer::currentPath(), "");
    {
        const ScopedTimer outer("cross_validate", &reg);
        EXPECT_EQ(ScopedTimer::currentPath(), "cross_validate");
        {
            const ScopedTimer mid("fold", &reg);
            EXPECT_EQ(ScopedTimer::currentPath(), "cross_validate.fold");
            const ScopedTimer inner("train", &reg);
            EXPECT_EQ(ScopedTimer::currentPath(),
                      "cross_validate.fold.train");
        }
        EXPECT_EQ(ScopedTimer::currentPath(), "cross_validate");
    }
    EXPECT_EQ(ScopedTimer::currentPath(), "");

    EXPECT_TRUE(reg.has("time.cross_validate.seconds"));
    EXPECT_TRUE(reg.has("time.cross_validate.fold.seconds"));
    EXPECT_TRUE(reg.has("time.cross_validate.fold.train.seconds"));
    EXPECT_EQ(reg.value("time.cross_validate.fold.train.calls"), 1.0);
}

TEST(ScopedTimer, AccumulatesAcrossRepeatedEntries)
{
    Registry reg;
    for (int i = 0; i < 3; ++i) {
        const ScopedTimer t("phase_x", &reg);
    }
    EXPECT_EQ(reg.value("time.phase_x.calls"), 3.0);
    EXPECT_GE(reg.value("time.phase_x.seconds"), 0.0);
}

TEST(ScopedTimer, ParentTimeIncludesChildTime)
{
    Registry reg;
    {
        const ScopedTimer outer("outer", &reg);
        const ScopedTimer inner("work", &reg);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const double outer_s = reg.value("time.outer.seconds");
    const double inner_s = reg.value("time.outer.work.seconds");
    EXPECT_GT(inner_s, 0.0);
    EXPECT_GE(outer_s, inner_s); // inclusive timing
}

TEST(ScopedTimer, ElapsedGrowsMonotonically)
{
    Registry reg;
    const ScopedTimer t("tick", &reg);
    const double a = t.elapsed();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const double b = t.elapsed();
    EXPECT_GE(a, 0.0);
    EXPECT_GT(b, a);
}

TEST(ScopedTimer, PhaseStacksAreThreadLocal)
{
    Registry reg;
    const ScopedTimer outer("main_phase", &reg);
    std::string other_path = "unset";
    std::thread worker([&] {
        // A fresh thread starts at the top level, not inside
        // "main_phase".
        const ScopedTimer t("worker_phase", &reg);
        other_path = ScopedTimer::currentPath();
    });
    worker.join();
    EXPECT_EQ(other_path, "worker_phase");
    EXPECT_EQ(ScopedTimer::currentPath(), "main_phase");
    EXPECT_TRUE(reg.has("time.worker_phase.seconds"));
}

TEST(ScopedTimer, PhaseStackUnwindsWhenTimedRegionThrows)
{
    Registry reg;
    try {
        const ScopedTimer outer("outer", &reg);
        const ScopedTimer inner("inner", &reg);
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    // Stack unwinding ran both destructors: the thread is back at the
    // top level and both phases still accumulated their time.
    EXPECT_EQ(ScopedTimer::currentPath(), "");
    EXPECT_EQ(reg.value("time.outer.calls"), 1.0);
    EXPECT_EQ(reg.value("time.outer.inner.calls"), 1.0);
}

TEST(PhaseAdoption, RestoresAdopterStackOnScopeExit)
{
    Registry reg;
    const ScopedTimer outer("main_phase", &reg);
    {
        const PhaseAdoption adopted("sweep.measure");
        EXPECT_EQ(ScopedTimer::currentPath(), "sweep.measure");
        const ScopedTimer t("integrate", &reg);
        EXPECT_EQ(ScopedTimer::currentPath(),
                  "sweep.measure.integrate");
    }
    EXPECT_EQ(ScopedTimer::currentPath(), "main_phase");
    EXPECT_TRUE(reg.has("time.sweep.measure.integrate.seconds"));
}

TEST(PhaseAdoption, RestoresAdopterStackAfterThrow)
{
    Registry reg;
    const ScopedTimer outer("main_phase", &reg);
    try {
        const PhaseAdoption adopted("sweep.measure");
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    EXPECT_EQ(ScopedTimer::currentPath(), "main_phase");
}

TEST(PhaseAdoption, EmptyPathAdoptsTopLevel)
{
    Registry reg;
    const ScopedTimer outer("main_phase", &reg);
    {
        const PhaseAdoption adopted("");
        EXPECT_EQ(ScopedTimer::currentPath(), "");
    }
    EXPECT_EQ(ScopedTimer::currentPath(), "main_phase");
}

TEST(ScopedTimer, RejectsDottedPhaseNames)
{
    Registry reg;
    EXPECT_DEATH({ ScopedTimer t("a.b", &reg); }, "phase");
}

TEST(PhaseTimes, ReportsEveryRecordedPhaseSorted)
{
    Registry reg;
    {
        const ScopedTimer a("beta", &reg);
    }
    {
        const ScopedTimer b("alpha", &reg);
        const ScopedTimer c("sub", &reg);
    }
    const auto phases = phaseTimes(&reg);
    ASSERT_EQ(phases.size(), 3u);
    EXPECT_EQ(phases[0].path, "alpha");
    EXPECT_EQ(phases[1].path, "alpha.sub");
    EXPECT_EQ(phases[2].path, "beta");
    for (const auto &p : phases) {
        EXPECT_EQ(p.calls, 1u);
        EXPECT_GE(p.seconds, 0.0);
    }
}

TEST(PhaseTimes, EmptyRegistryYieldsNoPhases)
{
    Registry reg;
    EXPECT_TRUE(phaseTimes(&reg).empty());
}

} // namespace
} // namespace dfault::obs
