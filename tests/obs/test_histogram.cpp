/**
 * @file
 * Log-bucketed histogram: bucket math, quantile accuracy, zero/NaN
 * handling, registry integration, deferral capture, and the central
 * determinism claim — bit-identical buckets and quantiles when the
 * same multiset is recorded from 1, 2, or 8 threads. Runs under both
 * the obs (ASan) and par (TSan) CI labels.
 */

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/deferral.hh"
#include "obs/histogram.hh"
#include "obs/stats.hh"

namespace {

using dfault::obs::Histogram;
using dfault::obs::HistogramSnapshot;

TEST(HistogramBuckets, IndexIsMonotonicAndEdgesBracket)
{
    int prev = -1;
    for (double v = 1e-6; v < 1e9; v *= 1.07) {
        const int idx = Histogram::bucketIndex(v);
        ASSERT_GE(idx, prev) << "bucket index not monotonic at " << v;
        prev = idx;
        ASSERT_LE(Histogram::bucketLowerEdge(idx), v);
        if (idx + 1 < Histogram::kBucketCount)
            ASSERT_LT(v, Histogram::bucketLowerEdge(idx + 1));
    }
}

TEST(HistogramBuckets, ReportingValueWithinRelativeError)
{
    // 32 sub-buckets per octave bound the bucket width at ~3.1% of
    // its value; the geometric midpoint halves that error.
    for (double v = 1e-3; v < 1e6; v *= 1.013) {
        const double rep =
            Histogram::bucketValue(Histogram::bucketIndex(v));
        EXPECT_NEAR(rep, v, v * 0.031)
            << "reporting value drifted at " << v;
    }
}

TEST(HistogramBuckets, ExtremeValuesClampInsteadOfCrashing)
{
    EXPECT_EQ(Histogram::bucketIndex(1e-300), 0);
    EXPECT_EQ(Histogram::bucketIndex(1e300),
              Histogram::kBucketCount - 1);
}

TEST(Histogram, QuantilesOfUniformStreamAreAccurate)
{
    Histogram h;
    for (int i = 1; i <= 100000; ++i)
        h.record(static_cast<double>(i));
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 100000u);
    EXPECT_EQ(snap.zeros, 0u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 100000.0);
    EXPECT_NEAR(snap.p50(), 50000.0, 50000.0 * 0.032);
    EXPECT_NEAR(snap.p90(), 90000.0, 90000.0 * 0.032);
    EXPECT_NEAR(snap.p99(), 99000.0, 99000.0 * 0.032);
    EXPECT_NEAR(snap.p999(), 99900.0, 99900.0 * 0.032);
    EXPECT_NEAR(snap.mean(), 50000.5, 50000.5 * 1e-9);
}

TEST(Histogram, NonPositiveAndNanLandInZeroBin)
{
    Histogram h;
    h.record(0.0);
    h.record(-5.0);
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(4.0);
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 4u);
    EXPECT_EQ(snap.zeros, 3u);
    ASSERT_EQ(snap.buckets.size(), 1u);
    EXPECT_EQ(snap.buckets[0].second, 1u);
    EXPECT_DOUBLE_EQ(snap.min, -5.0);
    EXPECT_DOUBLE_EQ(snap.max, 4.0);
    // Ranks at or below the zero bin report the (negative) min.
    EXPECT_DOUBLE_EQ(snap.p50(), -5.0);
    // q=1 ranks past the zeros into the single real bucket.
    EXPECT_NEAR(snap.quantile(1.0), 4.0, 4.0 * 0.032);
}

TEST(Histogram, EmptySnapshotIsAllZero)
{
    Histogram h;
    const HistogramSnapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.buckets.size(), 0u);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
}

TEST(Histogram, ResetZeroesEverything)
{
    Histogram h;
    h.record(3.0);
    h.reset();
    EXPECT_EQ(h.snapshot().count, 0u);
    h.record(7.0);
    EXPECT_EQ(h.snapshot().count, 1u);
}

/** The multiset every determinism run records: deterministic LCG. */
std::vector<double>
determinismSamples()
{
    std::vector<double> samples;
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        // Spread over ~6 decades, like nanosecond latencies.
        samples.push_back(1.0 + static_cast<double>(x % 1000000000ULL));
    }
    return samples;
}

HistogramSnapshot
recordWithThreads(const std::vector<double> &samples, int threads)
{
    Histogram h;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back([&, t] {
            for (std::size_t i = static_cast<std::size_t>(t);
                 i < samples.size();
                 i += static_cast<std::size_t>(threads))
                h.record(samples[i]);
        });
    for (auto &th : pool)
        th.join();
    return h.snapshot();
}

TEST(Histogram, BucketsAndQuantilesBitIdenticalAcrossThreadCounts)
{
    const auto samples = determinismSamples();
    const HistogramSnapshot one = recordWithThreads(samples, 1);
    for (const int threads : {2, 8}) {
        const HistogramSnapshot many =
            recordWithThreads(samples, threads);
        EXPECT_EQ(many.count, one.count) << threads << " threads";
        EXPECT_EQ(many.zeros, one.zeros) << threads << " threads";
        ASSERT_EQ(many.buckets, one.buckets) << threads << " threads";
        // Bit-identical, not approximately equal: quantiles are a
        // deterministic function of the merged integer buckets.
        for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
            EXPECT_EQ(many.quantile(q), one.quantile(q))
                << threads << " threads at q=" << q;
        EXPECT_EQ(many.min, one.min);
        EXPECT_EQ(many.max, one.max);
    }
}

TEST(Histogram, ConcurrentRecordAndSnapshotIsSafe)
{
    // TSan target: snapshot() races benignly-by-design against
    // record() via relaxed atomics; assert it stays well-defined.
    Histogram h;
    std::thread writer([&] {
        for (int i = 1; i <= 50000; ++i)
            h.record(static_cast<double>(i));
    });
    std::uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const HistogramSnapshot snap = h.snapshot();
        EXPECT_GE(snap.count, last);
        last = snap.count;
    }
    writer.join();
    EXPECT_EQ(h.snapshot().count, 50000u);
}

TEST(RegistryHistogram, RegistersDumpsAndResets)
{
    dfault::obs::Registry reg;
    dfault::obs::Histogram &h = reg.histogram("req.latency_ns",
                                              "request latency");
    h.record(100.0);
    h.record(200.0);
    EXPECT_EQ(reg.kindOf("req.latency_ns"),
              dfault::obs::StatKind::Histogram);
    EXPECT_TRUE(&reg.histogram("req.latency_ns") == &h)
        << "re-registration must return the same histogram";
    EXPECT_NEAR(reg.value("req.latency_ns"), 150.0, 1e-9);

    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);

    reg.resetAll();
    EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(RegistryHistogram, SeparateRegistriesDoNotAlias)
{
    // The thread-local shard cache is keyed by histogram id; two
    // same-named histograms in different registries (and a recreated
    // registry at a possibly-reused address) must tally separately.
    auto reg1 = std::make_unique<dfault::obs::Registry>();
    reg1->histogram("h").record(1.0);
    EXPECT_EQ(reg1->histogram("h").count(), 1u);
    reg1.reset();
    auto reg2 = std::make_unique<dfault::obs::Registry>();
    EXPECT_EQ(reg2->histogram("h").count(), 0u);
    reg2->histogram("h").record(2.0);
    reg2->histogram("h").record(3.0);
    EXPECT_EQ(reg2->histogram("h").count(), 2u);
}

TEST(HistogramDeferral, CapturedSamplesReplayIdentically)
{
    using dfault::obs::StatOp;

    dfault::obs::Registry direct;
    direct.histogram("campaign.wer").record(1e-7);
    direct.histogram("campaign.wer").record(3e-5);

    std::vector<StatOp> ops;
    {
        dfault::obs::StatsDeferral deferral;
        dfault::obs::publishHistogram("campaign.wer", "", 1e-7);
        dfault::obs::publishHistogram("campaign.wer", "", 3e-5);
        ops = deferral.take();
    }
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].kind, StatOp::Kind::HistRecord);

    // Round-trip through the checkpoint JSON encoding, then apply.
    const std::string json = dfault::obs::statOpsJson(ops);
    std::string error;
    const auto parsed = dfault::obs::jsonParse(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    std::vector<StatOp> replayed;
    ASSERT_TRUE(dfault::obs::statOpsFromJson(*parsed, replayed, &error))
        << error;
    dfault::obs::Registry resumed;
    dfault::obs::applyStatOps(replayed, &resumed);

    const auto want = direct.histogram("campaign.wer").snapshot();
    const auto got = resumed.histogram("campaign.wer").snapshot();
    EXPECT_EQ(got.count, want.count);
    EXPECT_EQ(got.buckets, want.buckets);
    EXPECT_EQ(got.quantile(0.5), want.quantile(0.5));
}

} // namespace
