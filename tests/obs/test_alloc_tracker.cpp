/**
 * @file
 * Opt-in heap attribution: disabled by default, tallies per-thread
 * allocation volume when enabled, and feeds per-phase
 * alloc.phase.<path>.* stats through ScopedTimer.
 */

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/alloc_tracker.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"

namespace {

using dfault::obs::AllocTracker;

/** Scoped enable so a failing assertion can't leak the global flag. */
class Enabled
{
  public:
    Enabled() { AllocTracker::enable(); }
    ~Enabled() { AllocTracker::disable(); }
};

TEST(AllocTracker, DisabledByDefaultAndInert)
{
    ASSERT_FALSE(AllocTracker::enabled());
    const auto before = AllocTracker::threadTotals();
    auto waste = std::make_unique<std::vector<char>>(1 << 16);
    waste->front() = 1;
    const auto after = AllocTracker::threadTotals();
    EXPECT_EQ(after.bytes, before.bytes);
    EXPECT_EQ(after.allocs, before.allocs);
}

TEST(AllocTracker, TalliesBytesAndCounts)
{
    Enabled on;
    AllocTracker::resetThread();
    constexpr std::size_t kBytes = 1 << 20;
    auto block = std::make_unique<std::vector<char>>(kBytes);
    block->back() = 1;
    const auto totals = AllocTracker::threadTotals();
    EXPECT_GE(totals.bytes, kBytes);
    EXPECT_GE(totals.allocs, 1u);
}

TEST(AllocTracker, AlignedAllocationsCount)
{
    Enabled on;
    AllocTracker::resetThread();
    struct alignas(64) Wide
    {
        char data[128];
    };
    auto wide = std::make_unique<Wide>();
    wide->data[0] = 1;
    const auto totals = AllocTracker::threadTotals();
    EXPECT_GE(totals.bytes, sizeof(Wide));
    EXPECT_GE(totals.allocs, 1u);
}

TEST(AllocTracker, TotalsArePerThread)
{
    Enabled on;
    AllocTracker::resetThread();
    AllocTracker::Totals other{};
    std::thread t([&] {
        AllocTracker::resetThread();
        auto block = std::make_unique<std::vector<char>>(1 << 18);
        block->front() = 1;
        other = AllocTracker::threadTotals();
    });
    t.join();
    EXPECT_GE(other.bytes, static_cast<std::uint64_t>(1 << 18));
    // The worker's allocations never land in this thread's tally.
    EXPECT_LT(AllocTracker::threadTotals().bytes,
              static_cast<std::uint64_t>(1 << 18));
}

TEST(AllocTracker, PhaseAttributionThroughScopedTimer)
{
    Enabled on;
    dfault::obs::Registry reg;
    {
        dfault::obs::ScopedTimer phase("alloc_heavy", &reg);
        auto block = std::make_unique<std::vector<char>>(1 << 19);
        block->front() = 1;
    }
    ASSERT_TRUE(reg.has("alloc.phase.alloc_heavy.bytes"));
    ASSERT_TRUE(reg.has("alloc.phase.alloc_heavy.allocs"));
    EXPECT_GE(reg.value("alloc.phase.alloc_heavy.bytes"),
              static_cast<double>(1 << 19));
    EXPECT_GE(reg.value("alloc.phase.alloc_heavy.allocs"), 1.0);
}

TEST(AllocTracker, NoPhaseStatsWhenDisabled)
{
    ASSERT_FALSE(AllocTracker::enabled());
    dfault::obs::Registry reg;
    {
        dfault::obs::ScopedTimer phase("quiet_phase", &reg);
        auto block = std::make_unique<std::vector<char>>(1 << 12);
        block->front() = 1;
    }
    EXPECT_FALSE(reg.has("alloc.phase.quiet_phase.bytes"));
}

} // namespace
