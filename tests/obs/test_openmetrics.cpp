/**
 * @file
 * OpenMetrics exposition tests: name sanitization, per-kind rendering,
 * cumulative-bucket invariants (the exact properties tools/metrics_lint
 * enforces in CI) and the localhost scrape server.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/histogram.hh"
#include "obs/openmetrics.hh"
#include "obs/stats.hh"

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace dfault::obs {
namespace {

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(OpenMetricsName, SanitizesToSpecGrammar)
{
    EXPECT_EQ(openMetricsName("campaign.cell_ns"), "campaign_cell_ns");
    EXPECT_EQ(openMetricsName("a.b.c"), "a_b_c");
    EXPECT_EQ(openMetricsName("already_fine"), "already_fine");
    EXPECT_EQ(openMetricsName("0starts.digit"), "_0starts_digit");
    EXPECT_EQ(openMetricsName(""), "_");
}

TEST(OpenMetricsText, RendersCounterGaugeFormula)
{
    Registry reg;
    reg.counter("par.tasks", "tasks run").inc(7);
    reg.gauge("mem.level", "fill level").set(0.5);
    reg.formula("mem.ratio", [] { return 2.0; }, "a ratio");

    const std::string text = openMetricsText(&reg);
    EXPECT_TRUE(contains(text, "# TYPE par_tasks counter\n"));
    EXPECT_TRUE(contains(text, "# HELP par_tasks tasks run\n"));
    EXPECT_TRUE(contains(text, "par_tasks_total 7\n"));
    EXPECT_TRUE(contains(text, "# TYPE mem_level gauge\n"));
    EXPECT_TRUE(contains(text, "mem_level 0.5\n"));
    EXPECT_TRUE(contains(text, "# TYPE mem_ratio gauge\n"));
    EXPECT_TRUE(contains(text, "mem_ratio 2\n"));
    // Spec terminator, once, at the very end.
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    EXPECT_EQ(text.find("# EOF"), text.rfind("# EOF"));
}

TEST(OpenMetricsText, DistributionBucketsAreCumulative)
{
    Registry reg;
    Distribution &d =
        reg.distribution("wer.log10", 0.0, 4.0, 4, "log10 WER");
    d.record(-1.0); // underflow
    d.record(0.5);  // bucket 0
    d.record(1.5);  // bucket 1
    d.record(1.6);  // bucket 1
    d.record(9.0);  // overflow

    const std::string text = openMetricsText(&reg);
    EXPECT_TRUE(contains(text, "# TYPE wer_log10 histogram\n"));
    // Underflow folds into every bucket; overflow only into +Inf.
    EXPECT_TRUE(contains(text, "wer_log10_bucket{le=\"1\"} 2\n"));
    EXPECT_TRUE(contains(text, "wer_log10_bucket{le=\"2\"} 4\n"));
    EXPECT_TRUE(contains(text, "wer_log10_bucket{le=\"3\"} 4\n"));
    EXPECT_TRUE(contains(text, "wer_log10_bucket{le=\"4\"} 4\n"));
    EXPECT_TRUE(contains(text, "wer_log10_bucket{le=\"+Inf\"} 5\n"));
    EXPECT_TRUE(contains(text, "wer_log10_count 5\n"));
}

TEST(OpenMetricsText, HistogramCountMatchesInfBucket)
{
    Registry reg;
    Histogram &h = reg.histogram("task.ns", "task latency");
    h.record(100.0);
    h.record(1000.0);
    h.record(1000.0);
    h.record(0.0); // zero bin: still counted

    const std::string text = openMetricsText(&reg);
    EXPECT_TRUE(contains(text, "# TYPE task_ns histogram\n"));
    EXPECT_TRUE(contains(text, "task_ns_bucket{le=\"+Inf\"} 4\n"));
    EXPECT_TRUE(contains(text, "task_ns_count 4\n"));
    // jsonNumber renders shortest-round-trip, here scientific.
    EXPECT_TRUE(contains(text, "task_ns_sum 2.1e+03\n"));
    // Streaming quantiles ride along as sibling gauge families.
    EXPECT_TRUE(contains(text, "# TYPE task_ns_p50 gauge\n"));
    EXPECT_TRUE(contains(text, "# TYPE task_ns_p99 gauge\n"));
    EXPECT_TRUE(contains(text, "# TYPE task_ns_p999 gauge\n"));
    EXPECT_TRUE(contains(text, "task_ns_min 0\n"));
    EXPECT_TRUE(contains(text, "task_ns_max 1e+03\n"));
}

TEST(OpenMetricsText, HistogramBucketCountsAreNondecreasing)
{
    Registry reg;
    Histogram &h = reg.histogram("lat.ns");
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));

    const std::string text = openMetricsText(&reg);
    // Walk every lat_ns_bucket line and check cumulative monotonicity
    // (metrics_lint's core histogram invariant).
    double last_count = -1.0;
    std::size_t pos = 0;
    int buckets = 0;
    while ((pos = text.find("lat_ns_bucket{le=\"", pos)) !=
           std::string::npos) {
        const std::size_t space = text.find(' ', pos);
        ASSERT_NE(space, std::string::npos);
        const double count = std::stod(text.substr(space + 1));
        EXPECT_GE(count, last_count);
        last_count = count;
        ++buckets;
        pos = space;
    }
    EXPECT_GT(buckets, 10); // 1000 distinct values span many buckets
    EXPECT_DOUBLE_EQ(last_count, 1000.0); // +Inf holds everything
}

TEST(OpenMetricsText, HelpEscapesBackslashAndNewline)
{
    Registry reg;
    reg.counter("a.b", "line1\nline2 \\ backslash");
    const std::string text = openMetricsText(&reg);
    EXPECT_TRUE(
        contains(text, "# HELP a_b line1\\nline2 \\\\ backslash\n"));
}

TEST(OpenMetricsText, EmptyRegistryIsJustEof)
{
    Registry reg;
    EXPECT_EQ(openMetricsText(&reg), "# EOF\n");
}

#ifdef __unix__
/** One blocking GET against 127.0.0.1:port; "" on any failure. */
std::string
httpGet(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
    (void)::send(fd, request, sizeof(request) - 1, 0);
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        out.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return out;
}

TEST(MetricsServer, ServesRendererOutputOnLoopback)
{
    MetricsServer server;
    const bool started =
        server.start(0, [] { return std::string("# EOF\n"); });
    if (!started)
        GTEST_SKIP() << "cannot bind loopback in this environment";
    ASSERT_GT(server.port(), 0);

    const std::string response = httpGet(server.port());
    if (response.empty()) {
        server.stop();
        GTEST_SKIP() << "cannot connect to loopback";
    }
    EXPECT_TRUE(contains(response, "HTTP/1.0 200 OK"));
    EXPECT_TRUE(contains(response, "application/openmetrics-text"));
    EXPECT_TRUE(contains(response, "# EOF\n"));
    EXPECT_GE(server.requestsServed(), 1u);

    server.stop();
    EXPECT_FALSE(server.running());
    EXPECT_EQ(server.port(), -1);
}

TEST(MetricsServer, StopIsIdempotentAndRestartable)
{
    MetricsServer server;
    server.stop(); // never started: no-op
    const bool started = server.start(0, [] { return std::string(); });
    if (!started)
        GTEST_SKIP() << "cannot bind loopback in this environment";
    const int first_port = server.port();
    EXPECT_GT(first_port, 0);
    server.stop();
    server.stop();
    ASSERT_TRUE(server.start(0, [] { return std::string(); }));
    EXPECT_GT(server.port(), 0);
    server.stop();
}
#endif // __unix__

} // namespace
} // namespace dfault::obs
