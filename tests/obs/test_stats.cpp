/**
 * @file
 * Unit tests of the hierarchical stats registry: naming rules,
 * idempotent registration, histogram bucketing, formula evaluation
 * and the text/JSON dump formats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace dfault::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Registry reg;
    Counter &c = reg.counter("a.b.events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    ++c;
    c += 3;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAtomicAdd)
{
    Registry reg;
    Gauge &g = reg.gauge("a.level");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(1.25);
    EXPECT_DOUBLE_EQ(g.value(), 3.75);
}

TEST(Registry, RegistrationIsIdempotent)
{
    Registry reg;
    Counter &a = reg.counter("x.hits", "first");
    Counter &b = reg.counter("x.hits", "second description ignored");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchPanics)
{
    Registry reg;
    reg.counter("x.hits");
    EXPECT_DEATH({ reg.gauge("x.hits"); }, "x.hits");
}

TEST(Registry, RejectsMalformedNames)
{
    Registry reg;
    EXPECT_DEATH({ reg.counter(""); }, "stat name");
    EXPECT_DEATH({ reg.counter(".leading"); }, "stat name");
    EXPECT_DEATH({ reg.counter("trailing."); }, "stat name");
    EXPECT_DEATH({ reg.counter("a..b"); }, "stat name");
    EXPECT_DEATH({ reg.counter("a.b-c"); }, "stat name");
    EXPECT_DEATH({ reg.counter("a b"); }, "stat name");
}

TEST(Registry, AcceptsDottedAlnumPaths)
{
    Registry reg;
    reg.counter("platform.mem.l2.misses");
    reg.counter("core_0.wait_cycles");
    reg.counter("single");
    EXPECT_TRUE(reg.has("platform.mem.l2.misses"));
    EXPECT_EQ(reg.kindOf("single"), StatKind::Counter);
    EXPECT_FALSE(reg.has("absent"));
}

TEST(Registry, NamesAreSortedHierarchically)
{
    Registry reg;
    reg.counter("b.z");
    reg.counter("a.y");
    reg.counter("a.x");
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.x");
    EXPECT_EQ(names[1], "a.y");
    EXPECT_EQ(names[2], "b.z");
}

TEST(Distribution, BucketsValuesLinearly)
{
    Registry reg;
    // [0, 10) in 5 bins of width 2.
    Distribution &d = reg.distribution("d.lat", 0.0, 10.0, 5);
    d.record(-1.0); // underflow
    d.record(0.0);  // bucket 0
    d.record(1.99); // bucket 0
    d.record(2.0);  // bucket 1
    d.record(9.99); // bucket 4
    d.record(10.0); // overflow (half-open upper bound)
    d.record(42.0); // overflow

    EXPECT_EQ(d.count(), 7u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.bucket(0), 2u);
    EXPECT_EQ(d.bucket(1), 1u);
    EXPECT_EQ(d.bucket(2), 0u);
    EXPECT_EQ(d.bucket(3), 0u);
    EXPECT_EQ(d.bucket(4), 1u);
    EXPECT_DOUBLE_EQ(d.minSeen(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSeen(), 42.0);
    EXPECT_NEAR(d.mean(), (-1.0 + 0.0 + 1.99 + 2.0 + 9.99 + 10.0 + 42.0) / 7.0,
                1e-12);

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.bucket(0), 0u);
}

TEST(Formula, DerivesFromOtherStats)
{
    Registry reg;
    Counter &hits = reg.counter("c.hits");
    Counter &misses = reg.counter("c.misses");
    Formula &rate = reg.formula("c.miss_rate", [&] {
        const double total =
            static_cast<double>(hits.value() + misses.value());
        return total > 0.0
                   ? static_cast<double>(misses.value()) / total
                   : 0.0;
    });
    EXPECT_DOUBLE_EQ(rate.value(), 0.0);
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 0.25);
    EXPECT_DOUBLE_EQ(reg.value("c.miss_rate"), 0.25);
}

TEST(Registry, ValueReadsEveryKind)
{
    Registry reg;
    reg.counter("v.c") += 7;
    reg.gauge("v.g").set(1.5);
    reg.distribution("v.d", 0.0, 10.0, 5).record(4.0);
    reg.formula("v.f", [] { return 9.0; });
    EXPECT_DOUBLE_EQ(reg.value("v.c"), 7.0);
    EXPECT_DOUBLE_EQ(reg.value("v.g"), 1.5);
    EXPECT_DOUBLE_EQ(reg.value("v.d"), 4.0); // mean
    EXPECT_DOUBLE_EQ(reg.value("v.f"), 9.0);
}

TEST(Registry, ResetAllZeroesEverythingButFormulas)
{
    Registry reg;
    Counter &c = reg.counter("r.c");
    c += 5;
    reg.gauge("r.g").set(3.0);
    reg.distribution("r.d", 0.0, 1.0, 2).record(0.5);
    reg.formula("r.f", [&] { return static_cast<double>(c.value()); });
    reg.resetAll();
    EXPECT_DOUBLE_EQ(reg.value("r.c"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("r.g"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("r.f"), 0.0); // re-derives from the counter
}

TEST(Registry, TextDumpListsStatsWithDescriptions)
{
    Registry reg;
    reg.counter("t.events", "things that happened") += 3;
    reg.distribution("t.sizes", 0.0, 4.0, 2, "request sizes").record(1.0);

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    reg.dumpText(tmp);
    std::rewind(tmp);
    std::string text;
    char buf[256];
    while (std::fgets(buf, sizeof(buf), tmp))
        text += buf;
    std::fclose(tmp);

    EXPECT_NE(text.find("t.events"), std::string::npos);
    EXPECT_NE(text.find("things that happened"), std::string::npos);
    EXPECT_NE(text.find("t.sizes.count"), std::string::npos);
    EXPECT_NE(text.find("t.sizes.mean"), std::string::npos);
    EXPECT_NE(text.find("t.sizes.bucket.0"), std::string::npos);
}

TEST(Registry, JsonDumpIsWellFormedAndComplete)
{
    Registry reg;
    reg.counter("j.c") += 2;
    reg.gauge("j.g").set(0.5);
    reg.distribution("j.d", 0.0, 2.0, 2).record(1.5);
    const std::string json = reg.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"j.c\":2"), std::string::npos);
    EXPECT_NE(json.find("\"j.g\":0.5"), std::string::npos);
    EXPECT_NE(json.find("\"j.d\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\":[0,1]"), std::string::npos);
}

TEST(Registry, WriteFilePicksFormatFromSuffix)
{
    Registry reg;
    reg.counter("w.c") += 1;

    const std::string dir = ::testing::TempDir();
    const std::string json_path = dir + "dfault_stats_test.json";
    const std::string text_path = dir + "dfault_stats_test.txt";
    ASSERT_TRUE(reg.writeFile(json_path));
    ASSERT_TRUE(reg.writeFile(text_path));

    std::stringstream json, text;
    json << std::ifstream(json_path).rdbuf();
    text << std::ifstream(text_path).rdbuf();
    EXPECT_EQ(json.str().front(), '{');
    EXPECT_NE(text.str().find("w.c"), std::string::npos);
    EXPECT_EQ(text.str().find('{'), std::string::npos);

    std::remove(json_path.c_str());
    std::remove(text_path.c_str());
    EXPECT_FALSE(reg.writeFile("/nonexistent-dir/x/y.txt"));
}

TEST(Registry, GlobalInstanceIsAProcessSingleton)
{
    EXPECT_EQ(&Registry::instance(), &Registry::instance());
}

} // namespace
} // namespace dfault::obs
