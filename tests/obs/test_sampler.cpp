/**
 * @file
 * Sampler-thread tests: tick/flush lifecycle, time-series capture,
 * SLO breach events through the EventSink, and the PR's headline
 * guarantee — manifest stats digests are bit-identical with the
 * sampler on or off, at 1, 2 and 8 pool threads, because everything
 * the sampler writes lives under digest-excluded prefixes.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/characterization.hh"
#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "par/pool.hh"

namespace dfault {
namespace {

using obs::Sampler;
using obs::SamplerOptions;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

TEST(ParseDuration, UnitsAndRejects)
{
    EXPECT_DOUBLE_EQ(*obs::parseDurationSeconds("100ms"), 0.1);
    EXPECT_DOUBLE_EQ(*obs::parseDurationSeconds("2s"), 2.0);
    EXPECT_DOUBLE_EQ(*obs::parseDurationSeconds("500us"), 5e-4);
    EXPECT_DOUBLE_EQ(*obs::parseDurationSeconds("250000ns"), 2.5e-4);
    EXPECT_DOUBLE_EQ(*obs::parseDurationSeconds("0.25"), 0.25);
    EXPECT_FALSE(obs::parseDurationSeconds("").has_value());
    EXPECT_FALSE(obs::parseDurationSeconds("fast").has_value());
    EXPECT_FALSE(obs::parseDurationSeconds("10fortnights").has_value());
    EXPECT_FALSE(obs::parseDurationSeconds("-1s").has_value());
}

TEST(Sampler, TicksCaptureSeriesAndFlushMetrics)
{
    obs::Registry reg;
    obs::Counter &work = reg.counter("demo.work", "demo counter");
    const std::string metrics = tempPath("sampler_metrics.txt");

    Sampler sampler;
    SamplerOptions so;
    so.intervalSeconds = 0.002;
    so.metricsOutPath = metrics;
    so.registry = &reg;
    ASSERT_TRUE(sampler.start(so));
    EXPECT_TRUE(sampler.running());
    EXPECT_FALSE(sampler.start(so)); // already running: no-op

    for (int i = 0; i < 20; ++i) {
        work.inc(5);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    sampler.stop(); // idempotent

    // stop() always runs the final flush tick, so even a run shorter
    // than one interval leaves at least one tick and a snapshot.
    EXPECT_GE(sampler.ticks(), 1u);
    const obs::TimeSeries *series = sampler.store().find("demo.work");
    ASSERT_NE(series, nullptr);
    EXPECT_GE(series->size(), 1u);
    EXPECT_DOUBLE_EQ(series->latest().value, 100.0);

    const std::string text = readFile(metrics);
    ASSERT_FALSE(text.empty());
    // Complete OpenMetrics document: terminator present, final value
    // of the counter flushed by the last tick.
    EXPECT_NE(text.find("# TYPE demo_work counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("demo_work_total 100\n"), std::string::npos);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
    std::remove(metrics.c_str());
}

TEST(Sampler, BreachingSloEmitsJsonlEventAndCounters)
{
    obs::Registry reg;
    reg.gauge("demo.depth", "always too deep").set(100.0);
    const std::string events = tempPath("sampler_events.jsonl");
    obs::EventSink::instance().open(events);

    Sampler sampler;
    SamplerOptions so;
    so.intervalSeconds = 0.001;
    so.registry = &reg;
    so.sloTargets.push_back(
        *obs::parseSloTarget("demo.depth:value<1"));
    ASSERT_TRUE(sampler.start(so));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sampler.stop();
    obs::EventSink::instance().close();

    ASSERT_TRUE(sampler.sloConfigured());
    const auto &state = sampler.slo().states()[0];
    EXPECT_GE(state.breaches, 1u);
    EXPECT_TRUE(state.breachedNow);
    EXPECT_DOUBLE_EQ(state.lastObserved, 100.0);

    // The verdict array is valid JSON ready for the manifest.
    const std::string summary = sampler.sloSummaryJson();
    ASSERT_FALSE(summary.empty());
    std::string error;
    ASSERT_TRUE(obs::jsonParse(summary, &error).has_value()) << error;

    // One slo_breach JSONL record per breaching tick, interleaved
    // cleanly with whatever else the process emitted.
    const std::string log = readFile(events);
    EXPECT_NE(log.find("\"type\":\"slo_breach\""), std::string::npos);
    EXPECT_NE(log.find("\"spec\":\"demo.depth:value<1\""),
              std::string::npos);
    EXPECT_NE(log.find("\"entered\":true"), std::string::npos);

    // Breach counters land in the *global* registry under slo.*,
    // which the manifest digest ignores.
    auto &global = obs::Registry::instance();
    ASSERT_TRUE(global.has("slo.breaches"));
    EXPECT_GE(global.value("slo.breaches"), 1.0);
    EXPECT_TRUE(obs::digestExcludes("slo.breaches"));
    std::remove(events.c_str());
}

// ---- digest stability (the PR's acceptance gate) ----------------------

/** Run @p f with a global pool of @p threads slots, then restore 1. */
template <typename F>
auto
atThreads(int threads, F &&f)
{
    par::Pool::setGlobalThreads(threads);
    auto result = f();
    par::Pool::setGlobalThreads(1);
    return result;
}

/** The reduced fig04-style sweep used across the determinism suite. */
void
runSweep()
{
    sys::Platform::Params pp;
    pp.hierarchy.l1.sizeBytes = 16 * 1024;
    pp.hierarchy.l2.sizeBytes = 1 << 20;
    pp.exec.timeDilation = sys::dilationForFootprint(2 << 20);
    sys::Platform platform(pp);

    core::CharacterizationCampaign::Params cp;
    cp.workload.footprintBytes = 2 << 20;
    cp.workload.workScale = 0.25;
    core::CharacterizationCampaign campaign(platform, cp);

    const std::vector<workloads::WorkloadConfig> suite = {
        {"random", 8, "random"},
    };
    const std::vector<dram::OperatingPoint> points = {
        {0.618, dram::kMinVdd, 50.0},
        {2.283, dram::kMinVdd, 60.0},
    };
    campaign.sweep(suite, points);
}

/** Digest of a fresh sweep, optionally sampled at full tilt. */
std::uint64_t
sweepDigest(int threads, bool with_sampler)
{
    obs::Registry::instance().resetAll();
    Sampler sampler;
    if (with_sampler) {
        SamplerOptions so;
        so.intervalSeconds = 0.001; // aggressive: many mid-run ticks
        if (!sampler.start(so))
            ADD_FAILURE() << "sampler failed to start";
    }
    atThreads(threads, [] {
        runSweep();
        return 0;
    });
    sampler.stop();
    return obs::statsDigest();
}

TEST(SamplerDeterminism, DigestIdenticalWithSamplerOnOrOff)
{
    // The first sweep in a process profiles the workload and fills the
    // profile cache; every later sweep replays it. Warm the cache so
    // all digested runs do identical work, then resetAll() before each
    // run gives every digest the same baseline.
    atThreads(1, [] {
        runSweep();
        return 0;
    });
    const std::uint64_t reference = sweepDigest(1, false);
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        EXPECT_EQ(sweepDigest(threads, false), reference);
        EXPECT_EQ(sweepDigest(threads, true), reference);
    }
}

} // namespace
} // namespace dfault
