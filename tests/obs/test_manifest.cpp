/**
 * @file
 * Run manifest tests: digest determinism (and its nondeterministic-
 * stat exclusions), manifest JSON shape, and the file writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/stats.hh"

namespace dfault::obs {
namespace {

TEST(StatsDigest, ExcludesWallClockDependentStats)
{
    EXPECT_TRUE(digestExcludes("time.sweep.seconds"));
    EXPECT_TRUE(digestExcludes("time.sweep.calls"));
    EXPECT_TRUE(digestExcludes("par.tasks_executed"));
    EXPECT_TRUE(digestExcludes("par.phase.sweep.speedup"));
    EXPECT_TRUE(digestExcludes("campaign.host_seconds"));
    EXPECT_TRUE(digestExcludes("platform.exec.last_cpi"));

    EXPECT_FALSE(digestExcludes("campaign.measurements"));
    EXPECT_FALSE(digestExcludes("ml.folds"));
    EXPECT_FALSE(digestExcludes("campaign.wer_log10"));
}

TEST(StatsDigest, StableAcrossTimingVariation)
{
    Registry a;
    a.counter("campaign.measurements", "n").inc(12);
    a.gauge("time.sweep.seconds", "t").set(1.25);
    a.counter("par.tasks_executed", "n").inc(96);

    Registry b;
    b.counter("campaign.measurements", "n").inc(12);
    b.gauge("time.sweep.seconds", "t").set(9.75); // different timing
    b.counter("par.tasks_executed", "n").inc(17); // different schedule

    EXPECT_EQ(statsDigest(&a), statsDigest(&a)); // self-stable
    EXPECT_EQ(statsDigest(&a), statsDigest(&b)); // timing-independent
}

TEST(StatsDigest, ToleratesFloatReassociationNoise)
{
    // Summing in a different order across thread counts moves
    // accumulated gauges by an ulp; the digest must not see that.
    Registry a;
    a.gauge("dram.sdc_expected", "x").set(0.000155505);
    Registry b;
    b.gauge("dram.sdc_expected", "x")
        .set(0.000155505 * (1.0 + 1e-15));
    EXPECT_EQ(statsDigest(&a), statsDigest(&b));
}

TEST(StatsDigest, ChangesWhenDeterministicStatsChange)
{
    Registry a;
    a.counter("campaign.measurements", "n").inc(12);
    Registry b;
    b.counter("campaign.measurements", "n").inc(13);
    EXPECT_NE(statsDigest(&a), statsDigest(&b));
}

TEST(Manifest, JsonHasRequiredFieldsAndParses)
{
    Registry reg;
    reg.counter("campaign.measurements", "n").inc(3);
    reg.gauge("time.sweep.seconds", "t").set(0.5);

    ManifestInfo info;
    info.tool = "fig07_wer_sweep";
    info.command = "fig07_wer_sweep trace_events=out.json";
    info.config = {{"seed", "1234"}, {"epochs", "64"}};
    info.threads = 8;
    info.statsPath = "stats.json";
    info.tracePath = "out.json";
    info.wallSeconds = 2.5;

    std::string error;
    const auto doc = jsonParse(manifestJson(info, &reg), &error);
    ASSERT_TRUE(doc.has_value()) << error;

    EXPECT_EQ(doc->find("tool")->string, "fig07_wer_sweep");
    EXPECT_DOUBLE_EQ(doc->find("threads")->number, 8.0);
    EXPECT_DOUBLE_EQ(doc->find("wall_seconds")->number, 2.5);
    EXPECT_EQ(doc->find("stats_out")->string, "stats.json");
    EXPECT_EQ(doc->find("trace_events")->string, "out.json");

    const JsonValue *config = doc->find("config");
    ASSERT_NE(config, nullptr);
    EXPECT_EQ(config->find("seed")->string, "1234");

    const JsonValue *build = doc->find("build");
    ASSERT_NE(build, nullptr);
    EXPECT_NE(build->find("compiler"), nullptr);

    const JsonValue *stats = doc->find("stats");
    ASSERT_NE(stats, nullptr);
    // 16 hex digits of FNV-1a; one of the two stats is digested.
    EXPECT_EQ(stats->find("digest")->string.size(), 16u);
    EXPECT_DOUBLE_EQ(stats->find("total")->number, 2.0);
    EXPECT_DOUBLE_EQ(stats->find("digested")->number, 1.0);
}

TEST(Manifest, BuildInfoParses)
{
    std::string error;
    const auto doc = jsonParse(buildInfoJson(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_NE(doc->find("asan"), nullptr);
    ASSERT_NE(doc->find("tsan"), nullptr);
    ASSERT_NE(doc->find("assertions"), nullptr);
}

TEST(Manifest, WriteManifestFileRoundTrips)
{
    Registry reg;
    reg.counter("campaign.measurements", "n").inc(1);
    ManifestInfo info;
    info.tool = "dfault";
    info.command = "dfault --stats-out s.json";

    const std::string path =
        testing::TempDir() + "dfault_manifest_test.json";
    ASSERT_TRUE(writeManifestFile(path, info, &reg));

    std::ifstream in(path);
    std::stringstream body;
    body << in.rdbuf();
    std::string error;
    EXPECT_TRUE(jsonParse(body.str(), &error).has_value()) << error;
    std::remove(path.c_str());
}

} // namespace
} // namespace dfault::obs
