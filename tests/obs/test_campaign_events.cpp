/**
 * @file
 * Integration test: the instrumented characterization pipeline must
 * surface its work in the global stats registry and the JSONL event
 * stream — profile, thermal settle and measurement events, per-thread
 * core counters, cache hit/miss counts and phase timings.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/characterization.hh"
#include "obs/events.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"

namespace dfault::core {
namespace {

struct InstrumentedRun
{
    std::string tracePath;
    std::vector<std::string> lines;
    Measurement measurement;

    InstrumentedRun()
    {
        tracePath = ::testing::TempDir() + "dfault_campaign_events.jsonl";
        obs::EventSink::instance().open(tracePath);

        sys::Platform::Params pp;
        pp.hierarchy.l1.sizeBytes = 16 * 1024;
        pp.hierarchy.l2.sizeBytes = 1 << 20;
        pp.exec.timeDilation = sys::dilationForFootprint(4 << 20);
        sys::Platform platform(pp);

        CharacterizationCampaign::Params cp;
        cp.workload.footprintBytes = 4 << 20;
        cp.workload.workScale = 0.5;
        cp.integrator.epochs = 20;
        CharacterizationCampaign campaign(platform, cp);

        measurement = campaign.measure(
            {"backprop", 8, "backprop(par)"},
            {2.283, dram::kMinVdd, 60.0});

        obs::EventSink::instance().close();
        std::ifstream in(tracePath);
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        std::remove(tracePath.c_str());
    }

    bool
    hasEvent(const std::string &type, const std::string &fragment) const
    {
        const std::string tag = "\"type\":\"" + type + "\"";
        for (const auto &line : lines)
            if (line.find(tag) != std::string::npos &&
                line.find(fragment) != std::string::npos)
                return true;
        return false;
    }
};

InstrumentedRun &
run()
{
    static InstrumentedRun r;
    return r;
}

TEST(CampaignEvents, MeasurementAppearsInEventStream)
{
    auto &r = run();
    ASSERT_FALSE(r.lines.empty());
    EXPECT_TRUE(r.hasEvent("profile", "\"label\":\"backprop(par)\""));
    EXPECT_TRUE(r.hasEvent("thermal_settle", "\"settled\":true"));
    EXPECT_TRUE(
        r.hasEvent("measurement", "\"label\":\"backprop(par)\""));
    EXPECT_TRUE(r.hasEvent("measurement", "\"trefp_s\":2.283"));
}

TEST(CampaignEvents, EveryLineCarriesTheEnvelope)
{
    auto &r = run();
    std::uint64_t expected_seq = 0;
    for (const auto &line : r.lines) {
        EXPECT_TRUE(line.starts_with("{\"type\":\"")) << line;
        EXPECT_NE(line.find("\"seq\":" + std::to_string(expected_seq)),
                  std::string::npos)
            << line;
        EXPECT_NE(line.find("\"t\":"), std::string::npos) << line;
        EXPECT_TRUE(line.ends_with("}")) << line;
        ++expected_seq;
    }
}

TEST(CampaignEvents, RegistryHoldsCoreAndCacheCounters)
{
    run();
    auto &reg = obs::Registry::instance();

    // Per-thread execution counters (8 worker threads).
    for (int t = 0; t < 8; ++t) {
        const std::string prefix =
            "platform.core." + std::to_string(t) + ".";
        EXPECT_GT(reg.value(prefix + "instructions"), 0.0) << prefix;
        EXPECT_GT(reg.value(prefix + "cycles"), 0.0) << prefix;
    }

    // Cache hierarchy hit/miss counts and the derived miss rate.
    EXPECT_GT(reg.value("platform.mem.l1.hits"), 0.0);
    EXPECT_GT(reg.value("platform.mem.l1.misses"), 0.0);
    EXPECT_GT(reg.value("platform.mem.l2.misses"), 0.0);
    const double l1_rate = reg.value("platform.mem.l1.miss_rate");
    EXPECT_GT(l1_rate, 0.0);
    EXPECT_LT(l1_rate, 1.0);

    // Campaign-level accounting.
    EXPECT_GE(reg.value("campaign.measurements"), 1.0);
    EXPECT_GE(reg.value("thermal.settles"), 1.0);
    EXPECT_GE(reg.value("integrator.epochs"), 20.0);
}

TEST(CampaignEvents, PhaseTimersCoverThePipeline)
{
    run();
    auto &reg = obs::Registry::instance();
    for (const char *phase :
         {"time.profile.seconds", "time.thermal_settle.seconds",
          "time.integrate.seconds"}) {
        ASSERT_TRUE(reg.has(phase)) << phase;
        EXPECT_GT(reg.value(phase), 0.0) << phase;
    }
}

TEST(CampaignEvents, DramErrorsAreAccounted)
{
    auto &r = run();
    auto &reg = obs::Registry::instance();
    // The 60C long-TREFP point manifests CEs; the integrator publishes
    // the unique-word total it derived.
    EXPECT_GT(r.measurement.run.wer(), 0.0);
    EXPECT_GT(reg.value("dram.ce_unique_words"), 0.0);
}

} // namespace
} // namespace dfault::core
