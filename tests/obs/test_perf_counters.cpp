/**
 * @file
 * perf_event_open counter sampling — above all the graceful-fallback
 * contract: when the syscall is unavailable (no PMU, paranoid
 * sysctl, or DFAULT_PERF_DISABLE), nothing throws, samples read
 * invalid-and-zero, and ScopedCounters still registers every stat a
 * counter-enabled host would, just with zero values. The group-read
 * machinery itself is exercised with software events, which work on
 * PMU-less hosts too (and are skipped cleanly where even they fail).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "obs/perf_counters.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#endif

namespace {

using dfault::obs::PerfCounters;
using dfault::obs::PerfSample;
using dfault::obs::Registry;
using dfault::obs::ScopedCounters;

/** Scoped DFAULT_PERF_DISABLE=1 so the fallback path is forced. */
class ForceDisabled
{
  public:
    ForceDisabled() { setenv("DFAULT_PERF_DISABLE", "1", 1); }
    ~ForceDisabled() { unsetenv("DFAULT_PERF_DISABLE"); }
};

TEST(PerfCountersFallback, ForcedOffIsCleanNoOp)
{
    ForceDisabled off;
    ASSERT_TRUE(PerfCounters::forcedOff());
    PerfCounters pc;
    EXPECT_FALSE(pc.available());
    EXPECT_NE(pc.unavailableReason().find("DFAULT_PERF_DISABLE"),
              std::string::npos);
    const PerfSample s = pc.sample();
    EXPECT_FALSE(s.valid);
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.instructions, 0u);
    std::vector<std::uint64_t> values{42};
    EXPECT_FALSE(pc.readValues(values));
    EXPECT_TRUE(values.empty());
    EXPECT_TRUE(pc.liveEvents().empty());
}

TEST(PerfCountersFallback, InvalidDeltaIsZeroAndInvalid)
{
    PerfSample a, b;
    a.cycles = 100;
    b.valid = false;
    const PerfSample d = a.deltaSince(b);
    EXPECT_FALSE(d.valid);
}

TEST(PerfCountersFallback, ScopedCountersStillRegistersZeroStats)
{
    // The acceptance contract: unavailability degrades to
    // registered-but-zero stats, never to missing names or a throw.
    ForceDisabled off;
    Registry reg;
    {
        ScopedCounters sc("ecc_encode", &reg);
    }
    for (const char *stat :
         {"perf.ecc_encode.cycles", "perf.ecc_encode.instructions",
          "perf.ecc_encode.cache_misses",
          "perf.ecc_encode.branch_misses"}) {
        ASSERT_TRUE(reg.has(stat)) << stat;
        EXPECT_EQ(reg.value(stat), 0.0) << stat;
    }
    // Derived formulas exist and divide-by-zero safely.
    ASSERT_TRUE(reg.has("perf.ecc_encode.ipc"));
    EXPECT_EQ(reg.value("perf.ecc_encode.ipc"), 0.0);
    ASSERT_TRUE(reg.has("perf.ecc_encode.cache_miss_per_kinstr"));
    EXPECT_EQ(reg.value("perf.ecc_encode.cache_miss_per_kinstr"), 0.0);
    ASSERT_TRUE(reg.has("perf.available"));
}

TEST(PerfCountersFallback, SaturatingDeltaNeverUnderflows)
{
    PerfSample earlier, later;
    earlier.valid = later.valid = true;
    earlier.cycles = 500;
    later.cycles = 300; // counter reset / migration artifact
    const PerfSample d = later.deltaSince(earlier);
    EXPECT_TRUE(d.valid);
    EXPECT_EQ(d.cycles, 0u);
}

TEST(PerfCounters, DefaultGroupEitherWorksOrReportsWhy)
{
    PerfCounters pc;
    if (pc.available()) {
        std::vector<std::uint64_t> values;
        EXPECT_TRUE(pc.readValues(values));
        EXPECT_EQ(values.size(), pc.liveEvents().size());
        EXPECT_TRUE(pc.sample().valid);
    } else {
        EXPECT_FALSE(pc.unavailableReason().empty());
        EXPECT_FALSE(pc.sample().valid);
    }
}

#if defined(__linux__)
TEST(PerfCounters, SoftwareEventGroupReads)
{
    // Software events need no PMU, so this exercises the real group
    // open/read path even inside VMs — unless perf_event_paranoid
    // blocks the syscall entirely, which we skip over.
    PerfCounters pc({{PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK,
                      "task_clock"},
                     {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS,
                      "page_faults"}});
    if (!pc.available())
        GTEST_SKIP() << "perf_event_open blocked: "
                     << pc.unavailableReason();
    // Burn a little CPU so task-clock advances.
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i)
        sink += static_cast<double>(i) * 1e-9;
    std::vector<std::uint64_t> values;
    ASSERT_TRUE(pc.readValues(values));
    ASSERT_EQ(values.size(), pc.liveEvents().size());
    ASSERT_GE(values.size(), 1u);
    EXPECT_GT(values[0], 0u) << "task-clock should have advanced";
    // Custom events outside the default four map to no named field.
    const PerfSample s = pc.sample();
    EXPECT_TRUE(s.valid);
    EXPECT_EQ(s.cycles, 0u);
}
#endif

TEST(PerfCountersPhase, TimerPublishesPerPhaseStats)
{
    Registry reg;
    PerfCounters::setPhaseProfiling(true);
    {
        dfault::obs::ScopedTimer outer("profile_me", &reg);
    }
    PerfCounters::setPhaseProfiling(false);
    // Registered whether or not the host has counters; zero without.
    ASSERT_TRUE(reg.has("perf.phase.profile_me.cycles"));
    ASSERT_TRUE(reg.has("perf.phase.profile_me.ipc"));
    EXPECT_TRUE(reg.has("time.profile_me.seconds"));
}

TEST(PerfCountersPhase, DisabledProfilingPublishesNothing)
{
    Registry reg;
    ASSERT_FALSE(PerfCounters::phaseProfiling());
    {
        dfault::obs::ScopedTimer outer("quiet", &reg);
    }
    EXPECT_FALSE(reg.has("perf.phase.quiet.cycles"));
}

TEST(PerfTable, PrintsScopesOrNothing)
{
    Registry reg;
    {
        ForceDisabled off;
        ScopedCounters sc("kernel_a", &reg);
    }
    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    dfault::obs::printPerfTable(sink, &reg);
    std::fflush(sink);
    const long wrote = std::ftell(sink);
    std::fclose(sink);
    EXPECT_GT(wrote, 0) << "a registered scope should print a table";

    Registry empty;
    std::FILE *sink2 = std::tmpfile();
    ASSERT_NE(sink2, nullptr);
    dfault::obs::printPerfTable(sink2, &empty);
    std::fflush(sink2);
    EXPECT_EQ(std::ftell(sink2), 0L)
        << "no scopes -> no table at all";
    std::fclose(sink2);
}

} // namespace
