/**
 * @file
 * Span tracer tests: ring wraparound, half-open finalization, task
 * span parentage across pool dispatch, exclusive-time attribution and
 * the Chrome trace-event export.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/span.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"
#include "obs/trace_writer.hh"
#include "par/pool.hh"

namespace dfault::obs {
namespace {

/** Completed Span entries among @p entries. */
std::vector<TraceEntry>
spansOf(const std::vector<TraceEntry> &entries)
{
    std::vector<TraceEntry> spans;
    for (const TraceEntry &e : entries)
        if (e.kind == TraceKind::Span)
            spans.push_back(e);
    return spans;
}

TEST(SpanTracer, DisabledTracerRecordsNothing)
{
    auto &tracer = SpanTracer::instance();
    tracer.disable();
    EXPECT_EQ(tracer.beginSpan("x", "x"), 0u);
    const ScopedSpan span("x");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(SpanTracer::currentSpan(), 0u);
}

TEST(SpanTracer, RingWraparoundKeepsNewestSpans)
{
    auto &tracer = SpanTracer::instance();
    tracer.enable(4);
    for (int i = 0; i < 10; ++i) {
        const std::string path = "p" + std::to_string(i);
        const ScopedSpan span("step", path);
    }
    tracer.disable();

    EXPECT_EQ(tracer.dropped(), 6u); // 10 recorded into 4 slots
    EXPECT_EQ(tracer.spanCount(), 4u);
    const auto spans = spansOf(tracer.drain());
    ASSERT_EQ(spans.size(), 4u);
    // Oldest-first drain of the newest four spans.
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(spans[static_cast<std::size_t>(k)].path,
                  "p" + std::to_string(6 + k));
}

TEST(SpanTracer, DrainFinalizesHalfOpenSpanExactlyOnce)
{
    auto &tracer = SpanTracer::instance();
    tracer.enable();
    const std::uint64_t id = tracer.beginSpan("leaky", "leaky");
    ASSERT_NE(id, 0u);

    const auto first = spansOf(tracer.drain());
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].id, id);
    EXPECT_GE(first[0].endNs, first[0].startNs); // finalized at drain

    // The real end arrives later; it must not record a duplicate.
    tracer.endSpan(id);
    tracer.disable();
    const auto second = spansOf(tracer.drain());
    EXPECT_TRUE(second.empty());
}

TEST(SpanTracer, NestingRecordsParentage)
{
    auto &tracer = SpanTracer::instance();
    tracer.enable();
    std::uint64_t outer_id = 0, inner_id = 0;
    {
        const ScopedSpan outer("outer");
        outer_id = outer.id();
        EXPECT_EQ(SpanTracer::currentSpan(), outer_id);
        const ScopedSpan inner("inner");
        inner_id = inner.id();
    }
    tracer.disable();
    const auto spans = spansOf(tracer.drain());
    ASSERT_EQ(spans.size(), 2u);
    const TraceEntry &outer_e =
        spans[0].id == outer_id ? spans[0] : spans[1];
    const TraceEntry &inner_e =
        spans[0].id == inner_id ? spans[0] : spans[1];
    EXPECT_EQ(outer_e.id, outer_id);
    EXPECT_EQ(outer_e.parent, 0u);
    EXPECT_EQ(inner_e.id, inner_id);
    EXPECT_EQ(inner_e.parent, outer_id);
    EXPECT_LE(inner_e.endNs, outer_e.endNs); // child inside parent
}

TEST(SpanTracer, TaskSpansParentToSubmitterAcrossDispatch)
{
    par::Pool::setGlobalThreads(8);
    auto &tracer = SpanTracer::instance();
    tracer.enable();
    std::uint64_t root_id = 0;
    {
        const ScopedSpan root("submit_root");
        root_id = root.id();
        par::Pool::global().parallelFor(64, [](std::size_t) {});
    }
    tracer.disable();

    int task_spans = 0;
    for (const TraceEntry &e : spansOf(tracer.drain())) {
        if (e.name != "task")
            continue;
        ++task_spans;
        // Worker or submitter alike: every task span hangs off the
        // span that was open on the submitting thread.
        EXPECT_EQ(e.parent, root_id);
    }
    EXPECT_GT(task_spans, 0);
}

TEST(SpanTracer, TaskSpanCountMatchesExecutedCounter)
{
    par::Pool::setGlobalThreads(8);
    auto &reg = Registry::instance();
    const auto executed = [&] {
        return reg.has("par.tasks_executed")
                   ? reg.value("par.tasks_executed")
                   : 0.0;
    };

    auto &tracer = SpanTracer::instance();
    tracer.enable();
    const double before = executed();
    par::Pool::global().parallelFor(64, [](std::size_t) {});
    par::Pool::global().parallelFor(3, [](std::size_t) {});
    const double delta = executed() - before;
    tracer.disable();

    int task_spans = 0;
    std::set<std::uint64_t> flow_begin, flow_end;
    for (const TraceEntry &e : tracer.drain()) {
        if (e.kind == TraceKind::Span && e.name == "task")
            ++task_spans;
        if (e.kind == TraceKind::FlowBegin)
            flow_begin.insert(e.id);
        if (e.kind == TraceKind::FlowEnd)
            flow_end.insert(e.id);
    }
    EXPECT_EQ(static_cast<double>(task_spans), delta);
    // Every dispatch arrow that was picked up has its origin recorded.
    EXPECT_EQ(flow_begin, flow_end);
}

/** Traced workload mixing nested timers with pool tasks. */
void
runTracedWorkload()
{
    Registry reg;
    const ScopedTimer outer("outer", &reg);
    par::Pool::global().parallelFor(32, [&](std::size_t) {
        const ScopedTimer cell("cell", &reg);
        volatile double sink = 0.0;
        for (int k = 0; k < 2000; ++k)
            sink = sink + static_cast<double>(k);
    });
    const ScopedTimer tail("tail", &reg);
}

void
expectExclusiveSumsToThreadRoots(int threads)
{
    par::Pool::setGlobalThreads(threads);
    auto &tracer = SpanTracer::instance();
    tracer.enable();
    runTracedWorkload();
    tracer.disable();

    const auto entries = tracer.drain();
    const auto rows = exclusiveTimes(entries);
    ASSERT_FALSE(rows.empty());
    double exclusive_sum = 0.0;
    for (const ExclusiveTime &row : rows) {
        EXPECT_GE(row.exclusiveSeconds, 0.0);
        EXPECT_GE(row.inclusiveSeconds, row.exclusiveSeconds);
        exclusive_sum += row.exclusiveSeconds;
    }
    // Exclusive time partitions the thread-root spans exactly: what a
    // parent loses to same-thread children, the children gain.
    EXPECT_NEAR(exclusive_sum, threadRootSeconds(entries), 1e-9);
}

TEST(ExclusiveTimes, SumToThreadRootInclusiveSerial)
{
    expectExclusiveSumsToThreadRoots(1);
}

TEST(ExclusiveTimes, SumToThreadRootInclusiveParallel)
{
    expectExclusiveSumsToThreadRoots(8);
}

TEST(TraceJson, ExportParsesAndMatchesSpanCount)
{
    par::Pool::setGlobalThreads(8);
    auto &tracer = SpanTracer::instance();
    tracer.enable();
    runTracedWorkload();
    tracer.disable();

    const auto entries = tracer.drain();
    const auto spans = spansOf(entries);
    ASSERT_FALSE(spans.empty());

    std::string error;
    const auto doc = jsonParse(traceJson(entries), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::size_t slices = 0;
    for (const JsonValue &event : events->array) {
        const JsonValue *ph = event.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "X")
            ++slices;
    }
    EXPECT_EQ(slices, spans.size());
}

TEST(TraceJson, CounterSamplesBecomeCounterTracks)
{
    auto &tracer = SpanTracer::instance();
    tracer.enable();
    Registry reg;
    reg.counter("demo.widgets", "widgets made").inc(42);
    tracer.sampleCounters(reg);
    tracer.disable();

    const auto entries = tracer.drain();
    std::string error;
    const auto doc = jsonParse(traceJson(entries), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    bool found = false;
    for (const JsonValue &event : doc->find("traceEvents")->array) {
        const JsonValue *ph = event.find("ph");
        if (ph == nullptr || ph->string != "C")
            continue;
        if (event.find("name")->string != "demo.widgets")
            continue;
        found = true;
        EXPECT_EQ(event.find("args")->find("value")->number, 42.0);
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace dfault::obs
