/**
 * @file
 * Unit tests of the telemetry sample rings: ring eviction order,
 * tick-keyed windowed aggregates (rate, EWMA, min/max) and the
 * find-or-create store.
 */

#include <gtest/gtest.h>

#include "obs/timeseries.hh"

namespace dfault::obs {
namespace {

TEST(TimeSeries, KeepsInsertionOrderBelowCapacity)
{
    TimeSeries ts(4);
    ts.push(0, 10.0);
    ts.push(1, 11.0);
    ts.push(2, 12.0);
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_EQ(ts.at(0).tick, 0u);
    EXPECT_DOUBLE_EQ(ts.at(0).value, 10.0);
    EXPECT_DOUBLE_EQ(ts.at(2).value, 12.0);
    EXPECT_DOUBLE_EQ(ts.latest().value, 12.0);
    EXPECT_EQ(ts.totalPushed(), 3u);
}

TEST(TimeSeries, EvictsOldestAtCapacity)
{
    TimeSeries ts(3);
    for (std::uint64_t t = 0; t < 7; ++t)
        ts.push(t, static_cast<double>(t) * 10.0);
    ASSERT_EQ(ts.size(), 3u);
    EXPECT_EQ(ts.capacity(), 3u);
    EXPECT_EQ(ts.totalPushed(), 7u);
    // The three newest survive, oldest first.
    EXPECT_EQ(ts.at(0).tick, 4u);
    EXPECT_EQ(ts.at(1).tick, 5u);
    EXPECT_EQ(ts.at(2).tick, 6u);
    EXPECT_DOUBLE_EQ(ts.latest().value, 60.0);
}

TEST(TimeSeries, CapacityClampedToTwo)
{
    TimeSeries ts(0);
    EXPECT_EQ(ts.capacity(), 2u);
    ts.push(0, 1.0);
    ts.push(1, 2.0);
    ts.push(2, 3.0);
    EXPECT_EQ(ts.size(), 2u);
    EXPECT_DOUBLE_EQ(ts.at(0).value, 2.0);
}

TEST(TimeSeries, WindowMinMax)
{
    TimeSeries ts(8);
    const double values[] = {5.0, 1.0, 9.0, 3.0, 7.0};
    for (std::uint64_t t = 0; t < 5; ++t)
        ts.push(t, values[t]);
    EXPECT_DOUBLE_EQ(ts.windowMin(3), 3.0); // {9,3,7}... min over last 3
    EXPECT_DOUBLE_EQ(ts.windowMax(3), 9.0);
    EXPECT_DOUBLE_EQ(ts.windowMin(100), 1.0); // clamped to size
    EXPECT_DOUBLE_EQ(ts.windowMax(1), 7.0);   // just the latest
}

TEST(TimeSeries, WindowAggregatesOnEmptySeries)
{
    TimeSeries ts(4);
    EXPECT_DOUBLE_EQ(ts.windowMin(3), 0.0);
    EXPECT_DOUBLE_EQ(ts.windowMax(3), 0.0);
    EXPECT_DOUBLE_EQ(ts.ratePerSecond(3, 0.1), 0.0);
    EXPECT_DOUBLE_EQ(ts.ewma(0.5), 0.0);
}

TEST(TimeSeries, RateIsDeltaOverTickSpan)
{
    TimeSeries ts(8);
    // A counter growing 5 per tick at 0.1 s/tick = 50/s.
    for (std::uint64_t t = 0; t < 6; ++t)
        ts.push(t, static_cast<double>(t) * 5.0);
    EXPECT_DOUBLE_EQ(ts.ratePerSecond(6, 0.1), 50.0);
    // Window narrows the lookback but the per-tick slope is constant.
    EXPECT_DOUBLE_EQ(ts.ratePerSecond(3, 0.1), 50.0);
    // A single-sample window cannot form a rate: clamped to 2 samples.
    EXPECT_DOUBLE_EQ(ts.ratePerSecond(1, 0.1), 50.0);
}

TEST(TimeSeries, RateHandlesResetAndGaps)
{
    TimeSeries ts(8);
    ts.push(0, 100.0);
    ts.push(4, 120.0); // missed ticks: span is 4 ticks, not 1 sample
    EXPECT_DOUBLE_EQ(ts.ratePerSecond(8, 1.0), 5.0);
    ts.push(5, 10.0); // counter reset: negative delta reports 0
    EXPECT_DOUBLE_EQ(ts.ratePerSecond(8, 1.0), 0.0);
}

TEST(TimeSeries, RateWithZeroTickSpanIsZero)
{
    TimeSeries ts(4);
    ts.push(3, 1.0);
    ts.push(3, 2.0); // same tick twice
    EXPECT_DOUBLE_EQ(ts.ratePerSecond(4, 0.1), 0.0);
}

TEST(TimeSeries, EwmaFoldsOldestToNewest)
{
    TimeSeries ts(4);
    ts.push(0, 10.0);
    ts.push(1, 20.0);
    // seeded with 10, then 0.5*20 + 0.5*10 = 15.
    EXPECT_DOUBLE_EQ(ts.ewma(0.5), 15.0);
    // alpha=1 tracks the latest sample exactly; alpha=0 the oldest.
    EXPECT_DOUBLE_EQ(ts.ewma(1.0), 20.0);
    EXPECT_DOUBLE_EQ(ts.ewma(0.0), 10.0);
}

TEST(TimeSeriesStore, FindOrCreateSharesCapacity)
{
    TimeSeriesStore store(16);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.find("a"), nullptr);
    TimeSeries &a = store.series("a");
    EXPECT_EQ(a.capacity(), 16u);
    a.push(0, 1.0);
    EXPECT_EQ(&store.series("a"), &a); // same series on re-lookup
    store.series("b");
    EXPECT_EQ(store.size(), 2u);
    ASSERT_NE(store.find("a"), nullptr);
    EXPECT_EQ(store.find("a")->size(), 1u);
    const auto names = store.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

} // namespace
} // namespace dfault::obs
