/**
 * @file
 * SLO spec grammar and evaluation tests: parsing (aggregations,
 * operators, duration units), breach detection against histogram
 * quantiles and counter rates, episode tracking and the manifest
 * verdict JSON.
 */

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/slo.hh"
#include "obs/stats.hh"
#include "obs/timeseries.hh"

namespace dfault::obs {
namespace {

TEST(SloParse, QuantileWithDurationUnit)
{
    const auto t = parseSloTarget("campaign.cell_ns:p99<5ms");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->stat, "campaign.cell_ns");
    EXPECT_EQ(t->agg, SloAgg::P99);
    EXPECT_EQ(t->op, SloOp::Below);
    EXPECT_DOUBLE_EQ(t->threshold, 5e6); // 5 ms in ns
    EXPECT_EQ(t->spec, "campaign.cell_ns:p99<5ms");
}

TEST(SloParse, RatePerSecond)
{
    const auto t = parseSloTarget("par.task_failures:rate<0.01/s");
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->agg, SloAgg::Rate);
    EXPECT_DOUBLE_EQ(t->threshold, 0.01);
}

TEST(SloParse, AboveOperatorAndAllUnits)
{
    const auto above =
        parseSloTarget("live.campaign.cells_done:rate>100/s");
    ASSERT_TRUE(above.has_value());
    EXPECT_EQ(above->op, SloOp::Above);
    EXPECT_DOUBLE_EQ(above->threshold, 100.0);

    EXPECT_DOUBLE_EQ(parseSloTarget("a:value<2us")->threshold, 2e3);
    EXPECT_DOUBLE_EQ(parseSloTarget("a:value<3s")->threshold, 3e9);
    EXPECT_DOUBLE_EQ(parseSloTarget("a:value<40ns")->threshold, 40.0);
    EXPECT_DOUBLE_EQ(parseSloTarget("a:value<1.5")->threshold, 1.5);
    EXPECT_EQ(parseSloTarget("a.b.c:min>0")->agg, SloAgg::Min);
    EXPECT_EQ(parseSloTarget("a.b.c:max<9")->agg, SloAgg::Max);
    EXPECT_EQ(parseSloTarget("a:p50<1")->agg, SloAgg::P50);
    EXPECT_EQ(parseSloTarget("a:p90<1")->agg, SloAgg::P90);
    EXPECT_EQ(parseSloTarget("a:p999<1")->agg, SloAgg::P999);
}

TEST(SloParse, RejectsMalformedSpecs)
{
    std::string error;
    EXPECT_FALSE(parseSloTarget("", &error).has_value());
    EXPECT_FALSE(parseSloTarget("no-colon", &error).has_value());
    EXPECT_FALSE(parseSloTarget("a:b", &error).has_value());
    EXPECT_FALSE(parseSloTarget("a:p98<1", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseSloTarget("a:p99<", &error).has_value());
    EXPECT_FALSE(parseSloTarget("a:p99<5parsecs", &error).has_value());
    EXPECT_FALSE(parseSloTarget(":p99<5", &error).has_value());
}

TEST(SloTracker, ValueBreachAndEpisodes)
{
    Registry reg;
    Gauge &g = reg.gauge("mem.depth");
    SloTracker tracker;
    tracker.addTarget(*parseSloTarget("mem.depth:value<10"));
    TimeSeriesStore store(8);

    g.set(5.0);
    auto breaches = tracker.evaluate(0, reg.sample(), store, 0.1, 8);
    EXPECT_TRUE(breaches.empty());

    g.set(15.0);
    breaches = tracker.evaluate(1, reg.sample(), store, 0.1, 8);
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_EQ(breaches[0].stat, "mem.depth");
    EXPECT_DOUBLE_EQ(breaches[0].observed, 15.0);
    EXPECT_DOUBLE_EQ(breaches[0].threshold, 10.0);
    EXPECT_TRUE(breaches[0].entered); // first tick of the episode
    EXPECT_EQ(breaches[0].tick, 1u);

    g.set(20.0); // still breaching: same episode
    breaches = tracker.evaluate(2, reg.sample(), store, 0.1, 8);
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_FALSE(breaches[0].entered);

    g.set(5.0); // recovers
    breaches = tracker.evaluate(3, reg.sample(), store, 0.1, 8);
    EXPECT_TRUE(breaches.empty());

    const auto &state = tracker.states()[0];
    EXPECT_EQ(state.evaluations, 4u);
    EXPECT_EQ(state.breaches, 2u);
    EXPECT_FALSE(state.breachedNow);
    EXPECT_EQ(state.firstBreachTick, 1u);
    EXPECT_EQ(state.lastBreachTick, 2u);
    EXPECT_EQ(tracker.totalBreaches(), 2u);
    EXPECT_EQ(tracker.breachedTargets(), 0u);
}

TEST(SloTracker, QuantileBreachFromHistogram)
{
    Registry reg;
    Histogram &h = reg.histogram("task.ns");
    SloTracker tracker;
    // p99 must stay under 1 us.
    tracker.addTarget(*parseSloTarget("task.ns:p99<1us"));
    TimeSeriesStore store(8);

    for (int i = 0; i < 100; ++i)
        h.record(100.0); // all well under 1000 ns
    auto breaches = tracker.evaluate(0, reg.sample(), store, 0.1, 8);
    EXPECT_TRUE(breaches.empty());

    for (int i = 0; i < 100; ++i)
        h.record(1e6); // now the tail is 1 ms
    breaches = tracker.evaluate(1, reg.sample(), store, 0.1, 8);
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_GT(breaches[0].observed, 1000.0);
    EXPECT_EQ(breaches[0].agg, "p99");
}

TEST(SloTracker, RateBreachUsesTickWindow)
{
    Registry reg;
    Counter &c = reg.counter("err.count");
    SloTracker tracker;
    tracker.addTarget(*parseSloTarget("err.count:rate<5/s"));
    TimeSeriesStore store(16);

    // Interval 0.1 s/tick: 1 new error every 2 ticks = 5/s exactly —
    // never above the threshold.
    for (std::uint64_t tick = 0; tick < 4; ++tick) {
        store.series("err.count")
            .push(tick, static_cast<double>(tick) * 0.5);
        EXPECT_TRUE(
            tracker.evaluate(tick, reg.sample(), store, 0.1, 16)
                .empty());
    }
    // Burst: 10 new errors in one tick lifts the windowed rate to
    // 11.5 errors / 0.4 s ~= 29/s, well above the 5/s target.
    c.inc(10);
    store.series("err.count").push(4, 10.0 + 1.5);
    const auto breaches =
        tracker.evaluate(4, reg.sample(), store, 0.1, 16);
    ASSERT_EQ(breaches.size(), 1u);
    EXPECT_GT(breaches[0].observed, 5.0);
}

TEST(SloTracker, AbsentStatIsSkippedNotBreached)
{
    Registry reg;
    SloTracker tracker;
    tracker.addTarget(*parseSloTarget("no.such.stat:value<1"));
    TimeSeriesStore store(8);
    EXPECT_TRUE(tracker.evaluate(0, reg.sample(), store, 0.1, 8).empty());
    EXPECT_EQ(tracker.states()[0].evaluations, 0u);
    // A quantile target over a gauge (no histogram) is also skipped.
    reg.gauge("scalar.only").set(5.0);
    tracker.addTarget(*parseSloTarget("scalar.only:p99<1"));
    EXPECT_TRUE(tracker.evaluate(1, reg.sample(), store, 0.1, 8).empty());
    EXPECT_EQ(tracker.states()[1].evaluations, 0u);
}

TEST(SloTracker, SummaryJsonParsesAndCarriesVerdicts)
{
    Registry reg;
    reg.gauge("mem.depth").set(50.0);
    SloTracker tracker;
    tracker.addTarget(*parseSloTarget("mem.depth:value<10"));
    tracker.addTarget(*parseSloTarget("mem.depth:value>1"));
    TimeSeriesStore store(8);
    tracker.evaluate(0, reg.sample(), store, 0.1, 8);

    const std::string json = tracker.summaryJson();
    std::string error;
    const auto doc = jsonParse(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isArray());
    ASSERT_EQ(doc->array.size(), 2u);

    const JsonValue &breached = doc->array[0];
    EXPECT_EQ(breached.find("spec")->string, "mem.depth:value<10");
    EXPECT_EQ(breached.find("agg")->string, "value");
    EXPECT_EQ(breached.find("op")->string, "<");
    EXPECT_TRUE(breached.find("breached")->boolean);
    EXPECT_EQ(breached.find("breaches")->number, 1.0);
    EXPECT_EQ(breached.find("last_observed")->number, 50.0);
    ASSERT_NE(breached.find("first_breach_tick"), nullptr);

    const JsonValue &met = doc->array[1];
    EXPECT_FALSE(met.find("breached")->boolean);
    EXPECT_EQ(met.find("breaches")->number, 0.0);
    EXPECT_EQ(met.find("first_breach_tick"), nullptr);
}

} // namespace
} // namespace dfault::obs
