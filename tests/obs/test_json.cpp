/**
 * @file
 * JSON parser tests: round-tripping JsonWriter output and rejecting
 * malformed documents (the parser exists to validate what the
 * observability layer itself writes).
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hh"

namespace dfault::obs {
namespace {

TEST(JsonParse, RoundTripsJsonWriterOutput)
{
    JsonWriter inner;
    inner.field("path", "sweep.measure");
    inner.field("count", std::uint64_t{7});

    JsonWriter w;
    w.field("label", "srad \"par\"\nline");
    w.field("wer", 1.5e-9);
    w.field("crashed", false);
    w.field("epochs", std::int64_t{-3});
    w.fieldRaw("args", inner.str());
    w.fieldRaw("series", "[1,2.5,null,true]");

    std::string error;
    const auto doc = jsonParse(w.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isObject());

    EXPECT_EQ(doc->find("label")->string, "srad \"par\"\nline");
    EXPECT_DOUBLE_EQ(doc->find("wer")->number, 1.5e-9);
    EXPECT_FALSE(doc->find("crashed")->boolean);
    EXPECT_DOUBLE_EQ(doc->find("epochs")->number, -3.0);

    const JsonValue *args = doc->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("path")->string, "sweep.measure");
    EXPECT_DOUBLE_EQ(args->find("count")->number, 7.0);

    const JsonValue *series = doc->find("series");
    ASSERT_NE(series, nullptr);
    ASSERT_TRUE(series->isArray());
    ASSERT_EQ(series->array.size(), 4u);
    EXPECT_DOUBLE_EQ(series->array[1].number, 2.5);
    EXPECT_TRUE(series->array[2].isNull());
    EXPECT_TRUE(series->array[3].boolean);
}

TEST(JsonParse, DecodesStringEscapes)
{
    const auto doc =
        jsonParse(R"({"s":"tab\thereA\\\"\/é"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("s")->string, "tab\thereA\\\"/\xc3\xa9");
}

TEST(JsonParse, ParsesNumbersAndWhitespace)
{
    const auto doc = jsonParse(" { \"a\" : -0.5 , \"b\" : 1e3 } ");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->find("a")->number, -0.5);
    EXPECT_DOUBLE_EQ(doc->find("b")->number, 1000.0);
}

TEST(JsonParse, DecodesUnicodeEscapesToUtf8)
{
    const auto doc = jsonParse(R"({"s":"\u0041\u00e9\u20ac"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("s")->string, "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParse, DuplicateKeysLastOneWins)
{
    const auto doc = jsonParse(R"({"k":1,"k":2})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->find("k")->number, 2.0);
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    const char *bad[] = {
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "{\"a\":1,}",
        "nul",
        "\"unterminated",
        "{\"a\":1} trailing",
        "{'a':1}",
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(jsonParse(text, &error).has_value())
            << "accepted: " << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

} // namespace
} // namespace dfault::obs
