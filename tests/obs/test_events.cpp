/**
 * @file
 * Event-sink tests: JSONL round-trip through a file, enable/disable
 * semantics, JSON escaping, and progress-line gating by the global
 * quiet flag.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/events.hh"
#include "obs/json.hh"

namespace dfault::obs {
namespace {

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(JsonWriter, EscapesAndFormatsFields)
{
    JsonWriter w;
    EXPECT_TRUE(w.empty());
    w.field("s", "quote \" backslash \\ newline \n tab \t");
    w.field("d", 0.5);
    w.field("i", -3);
    w.field("u", std::uint64_t{18446744073709551615ull});
    w.field("b", true);
    w.fieldRaw("raw", "[1,2]");
    EXPECT_FALSE(w.empty());
    EXPECT_EQ(w.str(),
              "{\"s\":\"quote \\\" backslash \\\\ newline \\n tab \\t\","
              "\"d\":0.5,\"i\":-3,\"u\":18446744073709551615,"
              "\"b\":true,\"raw\":[1,2]}");
}

TEST(JsonWriter, NumbersRoundTrip)
{
    // Shortest-round-trip doubles: parsing the emitted text recovers
    // the exact bit pattern.
    for (const double v : {0.0, 1.0, 0.1, 2.9243528842926025e-07,
                           -1.7976931348623157e308, 3.14}) {
        EXPECT_EQ(std::stod(jsonNumber(v)), v) << jsonNumber(v);
    }
}

TEST(EventSink, DisabledSinkDropsEvents)
{
    EventSink sink;
    EXPECT_FALSE(sink.enabled());
    JsonWriter w;
    w.field("k", 1);
    sink.emit("noop", w); // must not crash, must not count
    EXPECT_EQ(sink.emitted(), 0u);
}

TEST(EventSink, JsonlRoundTripsThroughFile)
{
    const std::string path =
        ::testing::TempDir() + "dfault_events_test.jsonl";
    {
        EventSink sink;
        sink.open(path);
        EXPECT_TRUE(sink.enabled());

        JsonWriter a;
        a.field("label", "srad(par)");
        a.field("wer", 2.9243528842926025e-07);
        sink.emit("measurement", a);

        JsonWriter b; // events with no extra fields are fine
        sink.emit("heartbeat", b);
        EXPECT_EQ(sink.emitted(), 2u);
        sink.close();
        EXPECT_FALSE(sink.enabled());
    }

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 2u);

    // Envelope: type first, then a monotonically increasing seq and a
    // non-negative timestamp, then the producer's fields verbatim.
    EXPECT_TRUE(lines[0].starts_with(
        "{\"type\":\"measurement\",\"seq\":0,\"t\":"));
    EXPECT_NE(lines[0].find("\"label\":\"srad(par)\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"wer\":2.9243528842926025e-07"),
              std::string::npos);
    EXPECT_TRUE(lines[0].ends_with("}"));
    EXPECT_TRUE(lines[1].starts_with(
        "{\"type\":\"heartbeat\",\"seq\":1,\"t\":"));

    std::remove(path.c_str());
}

TEST(EventSink, ReopeningResetsSequenceNumbers)
{
    const std::string path =
        ::testing::TempDir() + "dfault_events_reopen.jsonl";
    EventSink sink;
    sink.open(path);
    sink.emit("a", JsonWriter());
    sink.close();
    sink.open(path); // truncates and restarts
    sink.emit("b", JsonWriter());
    sink.close();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_TRUE(lines[0].starts_with("{\"type\":\"b\",\"seq\":0,"));
    std::remove(path.c_str());
}

TEST(Progress, GatedByEnableFlagAndQuiet)
{
    setProgress(false);
    EXPECT_FALSE(progressEnabled());

    setProgress(true);
    EXPECT_TRUE(progressEnabled());

    detail::setQuiet(true); // setQuiet must also silence progress
    EXPECT_FALSE(progressEnabled());
    detail::setQuiet(false);
    EXPECT_TRUE(progressEnabled());

    testing::internal::CaptureStderr();
    progress("halfway there");
    const std::string on = testing::internal::GetCapturedStderr();
    EXPECT_EQ(on, "progress: halfway there\n");

    setProgress(false);
    testing::internal::CaptureStderr();
    progress("should not appear");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

} // namespace
} // namespace dfault::obs
