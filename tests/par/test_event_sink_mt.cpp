/**
 * @file
 * Multi-threaded EventSink test (runs under TSan via the "par" label):
 * many pool workers emitting concurrently must produce a JSONL file in
 * which every line is one complete, standalone JSON object — no
 * interleaved partial writes, no torn records.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "obs/events.hh"
#include "obs/json.hh"
#include "par/pool.hh"

namespace dfault::obs {
namespace {

TEST(EventSinkMt, ConcurrentEmittersNeverInterleaveLines)
{
    constexpr std::size_t kEmitters = 64;
    constexpr int kPerEmitter = 50;

    const std::string path =
        testing::TempDir() + "dfault_event_sink_mt.jsonl";
    par::Pool::setGlobalThreads(8);
    auto &sink = EventSink::instance();
    sink.open(path);

    // Payloads long enough to tear if emit() ever wrote in pieces,
    // with characters that stress the escaper.
    par::Pool::global().parallelFor(kEmitters, [&](std::size_t i) {
        for (int k = 0; k < kPerEmitter; ++k) {
            JsonWriter w;
            w.field("emitter", static_cast<std::uint64_t>(i));
            w.field("k", k);
            w.field("payload",
                    "quote \" backslash \\ newline \n tab \t " +
                        std::string(100, 'x'));
            sink.emit("mt_test", w);
        }
    });

    const std::uint64_t emitted = sink.emitted();
    sink.close();
    EXPECT_EQ(emitted, kEmitters * kPerEmitter);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t lines = 0;
    std::set<double> seqs;
    while (std::getline(in, line)) {
        ++lines;
        std::string error;
        const auto doc = jsonParse(line, &error);
        ASSERT_TRUE(doc.has_value())
            << "line " << lines << ": " << error << "\n" << line;
        ASSERT_TRUE(doc->isObject());
        EXPECT_EQ(doc->find("type")->string, "mt_test");
        // seq is drawn under the sink lock, so values are unique and
        // appear in file order.
        const double seq = doc->find("seq")->number;
        EXPECT_EQ(seq, static_cast<double>(lines - 1));
        seqs.insert(seq);
    }
    EXPECT_EQ(lines, kEmitters * kPerEmitter);
    EXPECT_EQ(seqs.size(), lines);
    std::remove(path.c_str());
}

} // namespace
} // namespace dfault::obs
