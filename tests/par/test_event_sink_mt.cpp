/**
 * @file
 * Multi-threaded EventSink test (runs under TSan via the "par" label):
 * many pool workers emitting concurrently must produce a JSONL file in
 * which every line is one complete, standalone JSON object — no
 * interleaved partial writes, no torn records.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/sampler.hh"
#include "obs/stats.hh"
#include "par/pool.hh"

namespace dfault::obs {
namespace {

TEST(EventSinkMt, ConcurrentEmittersNeverInterleaveLines)
{
    constexpr std::size_t kEmitters = 64;
    constexpr int kPerEmitter = 50;

    const std::string path =
        testing::TempDir() + "dfault_event_sink_mt.jsonl";
    par::Pool::setGlobalThreads(8);
    auto &sink = EventSink::instance();
    sink.open(path);

    // Payloads long enough to tear if emit() ever wrote in pieces,
    // with characters that stress the escaper.
    par::Pool::global().parallelFor(kEmitters, [&](std::size_t i) {
        for (int k = 0; k < kPerEmitter; ++k) {
            JsonWriter w;
            w.field("emitter", static_cast<std::uint64_t>(i));
            w.field("k", k);
            w.field("payload",
                    "quote \" backslash \\ newline \n tab \t " +
                        std::string(100, 'x'));
            sink.emit("mt_test", w);
        }
    });

    const std::uint64_t emitted = sink.emitted();
    sink.close();
    EXPECT_EQ(emitted, kEmitters * kPerEmitter);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t lines = 0;
    std::set<double> seqs;
    while (std::getline(in, line)) {
        ++lines;
        std::string error;
        const auto doc = jsonParse(line, &error);
        ASSERT_TRUE(doc.has_value())
            << "line " << lines << ": " << error << "\n" << line;
        ASSERT_TRUE(doc->isObject());
        EXPECT_EQ(doc->find("type")->string, "mt_test");
        // seq is drawn under the sink lock, so values are unique and
        // appear in file order.
        const double seq = doc->find("seq")->number;
        EXPECT_EQ(seq, static_cast<double>(lines - 1));
        seqs.insert(seq);
    }
    EXPECT_EQ(lines, kEmitters * kPerEmitter);
    EXPECT_EQ(seqs.size(), lines);
    std::remove(path.c_str());
}

TEST(EventSinkMt, SamplerBreachEventsInterleaveCleanlyWithWorkers)
{
    constexpr std::size_t kEmitters = 32;
    constexpr int kPerEmitter = 40;

    const std::string path =
        testing::TempDir() + "dfault_event_sink_sampler.jsonl";
    par::Pool::setGlobalThreads(8);
    auto &sink = EventSink::instance();
    sink.open(path);

    // A sampler ticking every millisecond against a permanently
    // breaching SLO emits slo_breach records from its own thread
    // while the pool workers emit theirs.
    Registry reg;
    reg.gauge("mt.pressure", "always breaching").set(1e9);
    Sampler sampler;
    SamplerOptions so;
    so.intervalSeconds = 0.001;
    so.registry = &reg;
    so.sloTargets.push_back(*parseSloTarget("mt.pressure:value<1"));
    ASSERT_TRUE(sampler.start(so));

    par::Pool::global().parallelFor(kEmitters, [&](std::size_t i) {
        for (int k = 0; k < kPerEmitter; ++k) {
            JsonWriter w;
            w.field("emitter", static_cast<std::uint64_t>(i));
            w.field("k", k);
            w.field("payload", std::string(120, 'y'));
            sink.emit("mt_test", w);
        }
    });

    sampler.stop();
    sink.close();

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    std::size_t lines = 0;
    std::size_t worker_lines = 0;
    std::size_t breach_lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        std::string error;
        const auto doc = jsonParse(line, &error);
        ASSERT_TRUE(doc.has_value())
            << "line " << lines << ": " << error << "\n" << line;
        ASSERT_TRUE(doc->isObject());
        const std::string &type = doc->find("type")->string;
        if (type == "mt_test") {
            ++worker_lines;
        } else {
            ASSERT_EQ(type, "slo_breach") << line;
            EXPECT_EQ(doc->find("stat")->string, "mt.pressure");
            ++breach_lines;
        }
        // seq is drawn under the sink lock: strictly file-ordered even
        // with two producer populations.
        EXPECT_EQ(doc->find("seq")->number,
                  static_cast<double>(lines - 1));
    }
    EXPECT_EQ(worker_lines, kEmitters * kPerEmitter);
    // stop() runs a final flush tick, so at least one breach landed.
    EXPECT_GE(breach_lines, 1u);
    std::remove(path.c_str());
}

} // namespace
} // namespace dfault::obs
