/**
 * @file
 * Unit tests for the deterministic work-stealing pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "par/pool.hh"

namespace dfault::par {
namespace {

TEST(DefaultThreads, HonoursEnvironmentVariable)
{
    ::setenv("DFAULT_THREADS", "5", 1);
    EXPECT_EQ(defaultThreads(), 5);
    ::unsetenv("DFAULT_THREADS");
    EXPECT_GE(defaultThreads(), 1);
}

TEST(Pool, RunsEveryIndexExactlyOnce)
{
    Pool pool(4);
    constexpr std::size_t n = 1000; // far more than 4*threads chunks
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Pool, MapCommitsResultsInIndexOrder)
{
    Pool pool(3);
    const auto out = pool.parallelMap<std::size_t>(
        257, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(Pool, CurrentSlotIsMinusOneOutsideAndBoundedInside)
{
    EXPECT_EQ(Pool::currentSlot(), -1);
    Pool pool(4);
    std::atomic<bool> in_range{true};
    pool.parallelFor(64, [&](std::size_t) {
        const int slot = Pool::currentSlot();
        if (slot < 0 || slot >= pool.slots())
            in_range = false;
    });
    EXPECT_TRUE(in_range.load());
    EXPECT_EQ(Pool::currentSlot(), -1);
}

TEST(Pool, SingleThreadRunsInlineOnTheCaller)
{
    Pool pool(1);
    const auto caller = std::this_thread::get_id();
    std::atomic<bool> same_thread{true};
    pool.parallelFor(32, [&](std::size_t) {
        if (std::this_thread::get_id() != caller)
            same_thread = false;
        if (Pool::currentSlot() != 0)
            same_thread = false;
    });
    EXPECT_TRUE(same_thread.load());
}

TEST(Pool, NestedParallelForRunsInlineWithoutDeadlock)
{
    Pool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) { inner_total.fetch_add(1); });
    });
    EXPECT_EQ(inner_total.load(), 32);
}

TEST(Pool, BodyExceptionIsRethrownAndPoolStaysUsable)
{
    Pool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);

    // The failed batch must not poison subsequent ones.
    std::atomic<int> count{0};
    pool.parallelFor(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
}

TEST(Pool, ZeroTasksIsANoOp)
{
    Pool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(Pool, SetGlobalThreadsReplacesTheGlobalPool)
{
    Pool::setGlobalThreads(3);
    EXPECT_EQ(Pool::global().threads(), 3);
    Pool::setGlobalThreads(1);
    EXPECT_EQ(Pool::global().threads(), 1);
}

} // namespace
} // namespace dfault::par
