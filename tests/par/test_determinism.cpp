/**
 * @file
 * The pool's headline guarantee: results are bit-identical whatever
 * DFAULT_THREADS is. Every parallelized hot path — campaign sweep,
 * cross-validation, forest training, bootstrap resampling — is run
 * serially (1 thread) and with 2 and 8 pool slots, and the outputs are
 * compared with exact floating-point equality.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/characterization.hh"
#include "core/trainer.hh"
#include "ml/forest.hh"
#include "par/pool.hh"
#include "stats/bootstrap.hh"

namespace dfault {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/** Run @p f with a global pool of @p threads slots, then restore 1. */
template <typename F>
auto
atThreads(int threads, F &&f)
{
    par::Pool::setGlobalThreads(threads);
    auto result = f();
    par::Pool::setGlobalThreads(1);
    return result;
}

// ---- campaign sweep ---------------------------------------------------

core::CharacterizationCampaign::Params
campaignParams()
{
    core::CharacterizationCampaign::Params p;
    p.workload.footprintBytes = 2 << 20;
    p.workload.workScale = 0.25;
    return p;
}

sys::Platform::Params
platformParams()
{
    sys::Platform::Params p;
    p.hierarchy.l1.sizeBytes = 16 * 1024;
    p.hierarchy.l2.sizeBytes = 1 << 20;
    p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
    return p;
}

std::vector<core::Measurement>
runSweep()
{
    sys::Platform platform(platformParams());
    core::CharacterizationCampaign campaign(platform, campaignParams());
    const std::vector<workloads::WorkloadConfig> suite = {
        {"random", 8, "random"},
        {"memcached", 8, "memcached"},
    };
    const std::vector<dram::OperatingPoint> points = {
        {0.618, dram::kMinVdd, 50.0},
        {2.283, dram::kMinVdd, 60.0},
    };
    return campaign.sweep(suite, points);
}

void
expectIdentical(const core::Measurement &a, const core::Measurement &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.achieved.temperature, b.achieved.temperature);
    EXPECT_EQ(a.run.crashed, b.run.crashed);
    EXPECT_EQ(a.run.crashEpoch, b.run.crashEpoch);
    ASSERT_EQ(a.run.werSeries.size(), b.run.werSeries.size());
    for (std::size_t e = 0; e < a.run.werSeries.size(); ++e)
        EXPECT_EQ(a.run.werSeries[e], b.run.werSeries[e]) << "epoch " << e;
    ASSERT_EQ(a.run.cePerDevice.size(), b.run.cePerDevice.size());
    for (std::size_t d = 0; d < a.run.cePerDevice.size(); ++d)
        EXPECT_EQ(a.run.cePerDevice[d], b.run.cePerDevice[d]);
}

TEST(ParDeterminism, SweepIsBitIdenticalAcrossThreadCounts)
{
    const auto reference = atThreads(1, runSweep);
    ASSERT_EQ(reference.size(), 4u);
    for (const int threads : kThreadCounts) {
        const auto run = atThreads(threads, runSweep);
        ASSERT_EQ(run.size(), reference.size()) << threads << " threads";
        for (std::size_t i = 0; i < run.size(); ++i) {
            SCOPED_TRACE(std::to_string(threads) + " threads, cell " +
                         std::to_string(i));
            expectIdentical(reference[i], run[i]);
        }
    }
}

// ---- forest training --------------------------------------------------

void
syntheticData(ml::Matrix &x, std::vector<double> &y, std::size_t rows)
{
    Rng rng(42);
    for (std::size_t i = 0; i < rows; ++i) {
        std::vector<double> row(6);
        for (auto &v : row)
            v = rng.uniform();
        y.push_back(row[0] * 3.0 - row[2] + 0.1 * rng.uniform());
        x.push_back(std::move(row));
    }
}

TEST(ParDeterminism, ForestFitIsBitIdenticalAcrossThreadCounts)
{
    ml::Matrix x;
    std::vector<double> y;
    syntheticData(x, y, 80);

    ml::RandomForestRegressor::Params params;
    params.trees = 24;
    params.maxDepth = 6;

    const auto predictions = [&] {
        ml::RandomForestRegressor model(params);
        model.fit(x, y);
        std::vector<double> out;
        for (const auto &row : x)
            out.push_back(model.predict(row));
        return out;
    };

    const auto reference = atThreads(1, predictions);
    for (const int threads : kThreadCounts) {
        const auto run = atThreads(threads, predictions);
        ASSERT_EQ(run.size(), reference.size());
        for (std::size_t i = 0; i < run.size(); ++i)
            EXPECT_EQ(run[i], reference[i])
                << threads << " threads, row " << i;
    }
}

// ---- cross-validation -------------------------------------------------

ml::Dataset
syntheticDataset()
{
    ml::Dataset data({"f0", "f1", "f2", "f3"});
    Rng rng(99);
    for (const char *group : {"bp", "mc", "rd", "sr"}) {
        for (int i = 0; i < 12; ++i) {
            std::vector<double> row(4);
            for (auto &v : row)
                v = rng.uniform();
            data.addSample(row, 1.0 + row[1] * 2.0 + 0.05 * rng.uniform(),
                           group);
        }
    }
    return data;
}

TEST(ParDeterminism, CrossValidationIsBitIdenticalAcrossThreadCounts)
{
    const ml::Dataset data = syntheticDataset();
    const auto evaluate = [&] {
        return core::evaluateModel(data, core::ModelKind::Rdf, false);
    };

    const auto reference = atThreads(1, evaluate);
    for (const int threads : kThreadCounts) {
        const auto run = atThreads(threads, evaluate);
        EXPECT_EQ(run.mpe, reference.mpe) << threads << " threads";
        ASSERT_EQ(run.mpePerGroup.size(), reference.mpePerGroup.size());
        for (const auto &[group, mpe] : reference.mpePerGroup) {
            const auto it = run.mpePerGroup.find(group);
            ASSERT_NE(it, run.mpePerGroup.end()) << group;
            EXPECT_EQ(it->second, mpe) << group;
        }
    }
}

// ---- bootstrap --------------------------------------------------------

TEST(ParDeterminism, BootstrapCiIsBitIdenticalAcrossThreadCounts)
{
    std::vector<double> sample;
    Rng rng(7);
    for (int i = 0; i < 200; ++i)
        sample.push_back(rng.uniform(0.0, 10.0));

    const auto ci = [&] {
        return stats::bootstrapMeanCi(sample, 0.95, 400, 7);
    };

    const auto reference = atThreads(1, ci);
    for (const int threads : kThreadCounts) {
        const auto run = atThreads(threads, ci);
        EXPECT_EQ(run.mean, reference.mean) << threads << " threads";
        EXPECT_EQ(run.lo, reference.lo) << threads << " threads";
        EXPECT_EQ(run.hi, reference.hi) << threads << " threads";
    }
}

} // namespace
} // namespace dfault
