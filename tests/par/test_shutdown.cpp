/**
 * @file
 * Tests for the signal-driven shutdown path (par/shutdown.hh). The
 * signal-raising cases run as death tests: each re-execs the binary,
 * raises the signal against the child and asserts on its exit code
 * and stderr, so the parent process never carries shutdown state
 * between tests.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <thread>

#include <unistd.h>

#include "par/cancel.hh"
#include "par/shutdown.hh"

namespace dfault::par {
namespace {

struct ShutdownTest : ::testing::Test
{
    void SetUp() override
    {
        ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    }

    void TearDown() override
    {
        uninstallSignalHandlers();
        resetRootCancelToken();
    }
};

/** Park until the monitor thread has cancelled the root token. */
bool
waitForRootCancel()
{
    for (int i = 0; i < 5000; ++i) {
        if (rootCancelToken().cancelled())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

TEST_F(ShutdownTest, InstallAndUninstallAreIdempotent)
{
    installSignalHandlers();
    installSignalHandlers();
    EXPECT_FALSE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), 0);
    EXPECT_EQ(shutdownExitCode(), 0);
    uninstallSignalHandlers();
    uninstallSignalHandlers();
    EXPECT_FALSE(rootCancelToken().cancelled());
}

TEST_F(ShutdownTest, FirstSigtermCancelsRootAndMapsToExit143)
{
    EXPECT_EXIT(
        {
            installSignalHandlers();
            ::raise(SIGTERM);
            if (!waitForRootCancel())
                ::_exit(99);
            if (rootCancelToken().reason() != "received SIGTERM" ||
                rootCancelToken().origin() != "signal")
                ::_exit(98);
            if (!shutdownRequested() || shutdownSignal() != SIGTERM)
                ::_exit(97);
            ::_exit(shutdownExitCode());
        },
        ::testing::ExitedWithCode(143), "SIGTERM received");
}

TEST_F(ShutdownTest, FirstSigintCancelsRootAndMapsToExit130)
{
    EXPECT_EXIT(
        {
            installSignalHandlers();
            ::raise(SIGINT);
            if (!waitForRootCancel())
                ::_exit(99);
            if (rootCancelToken().reason() != "received SIGINT")
                ::_exit(98);
            ::_exit(shutdownExitCode());
        },
        ::testing::ExitedWithCode(130), "SIGINT received");
}

TEST_F(ShutdownTest, SecondSignalExitsImmediately)
{
    EXPECT_EXIT(
        {
            installSignalHandlers();
            ::raise(SIGTERM);
            // Wait for the first signal to be acknowledged, then the
            // second one must _Exit(143) from inside the handler —
            // the sleep below is never reached.
            while (!shutdownRequested())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            ::raise(SIGTERM);
            std::this_thread::sleep_for(std::chrono::seconds(30));
            ::_exit(99);
        },
        ::testing::ExitedWithCode(143), "second signal - exiting now");
}

TEST_F(ShutdownTest, UninstallRestoresDefaultDisposition)
{
    EXPECT_EXIT(
        {
            installSignalHandlers();
            uninstallSignalHandlers();
            ::raise(SIGTERM); // default action: terminated by signal
            std::this_thread::sleep_for(std::chrono::seconds(30));
            ::_exit(99);
        },
        ::testing::KilledBySignal(SIGTERM), "");
}

} // namespace
} // namespace dfault::par
