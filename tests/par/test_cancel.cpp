/**
 * @file
 * Tests for par::CancelToken — hierarchy, propagation, first-cancel-
 * wins — and for how cancellation flows through parallelForResilient:
 * dispositions, BatchError aggregation when a cancellation races a
 * real task failure, and the all-cancelled CancelledError fast path.
 * Runs at 1, 2 and 8 threads; the 1-thread pool is the serial
 * reference the parallel runs must agree with.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "par/cancel.hh"
#include "par/pool.hh"

namespace dfault::par {
namespace {

struct CancelTest : ::testing::Test
{
    void TearDown() override { resetRootCancelToken(); }
};

TEST_F(CancelTest, DefaultTokenIsInvalid)
{
    const CancelToken token;
    EXPECT_FALSE(token.valid());
    EXPECT_FALSE(token.cancelled());
    token.throwIfCancelled(); // invalid tokens never fire
}

TEST_F(CancelTest, CancelSetsReasonAndOrigin)
{
    CancelToken token = CancelToken::make();
    EXPECT_TRUE(token.valid());
    EXPECT_FALSE(token.cancelled());

    token.cancel("user pressed ^C", "signal");
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), "user pressed ^C");
    EXPECT_EQ(token.origin(), "signal");
}

TEST_F(CancelTest, FirstCancelWins)
{
    CancelToken token = CancelToken::make();
    token.cancel("first", "a");
    token.cancel("second", "b");
    EXPECT_EQ(token.reason(), "first");
    EXPECT_EQ(token.origin(), "a");
}

TEST_F(CancelTest, ThrowIfCancelledCarriesReasonAndOrigin)
{
    CancelToken token = CancelToken::make();
    token.cancel("deadline of 2 s exceeded", "deadline");
    try {
        token.throwIfCancelled();
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), "deadline of 2 s exceeded");
        EXPECT_EQ(e.origin(), "deadline");
        EXPECT_NE(std::string(e.what()).find("deadline of 2 s"),
                  std::string::npos);
    }
}

TEST_F(CancelTest, CancelPropagatesToChildrenNotToParent)
{
    CancelToken parent = CancelToken::make();
    CancelToken child = parent.child();
    CancelToken grandchild = child.child();

    // Child cancel stays local.
    child.cancel("child stopped", "test");
    EXPECT_FALSE(parent.cancelled());
    EXPECT_TRUE(child.cancelled());
    EXPECT_TRUE(grandchild.cancelled());

    // Parent cancel reaches every uncancelled descendant.
    CancelToken other = parent.child();
    parent.cancel("run stopped", "test");
    EXPECT_TRUE(other.cancelled());
    EXPECT_EQ(other.reason(), "run stopped");
    // The already-cancelled child keeps its own first reason.
    EXPECT_EQ(child.reason(), "child stopped");
}

TEST_F(CancelTest, ChildOfCancelledParentIsBornCancelled)
{
    CancelToken parent = CancelToken::make();
    parent.cancel("too late", "test");
    const CancelToken child = parent.child();
    EXPECT_TRUE(child.cancelled());
    EXPECT_EQ(child.reason(), "too late");
}

TEST_F(CancelTest, RootTokenResetsToAFreshToken)
{
    rootCancelToken().cancel("stale", "test");
    ASSERT_TRUE(rootCancelToken().cancelled());
    resetRootCancelToken();
    EXPECT_FALSE(rootCancelToken().cancelled());
}

/**
 * A cancellation racing a real failure inside one batch. Index 6
 * exhausts its retries long before the cancel arrives; index 7 parks
 * on the token and can only leave via CancelledError; the cancel
 * comes from outside the batch, as a signal would. The pair sits at
 * the tail of the range so the failing index runs first under both
 * the inline path (ascending) and a worker's own-deque order
 * (descending) — at every thread count the batch must aggregate
 * exactly one Failed and one Cancelled index, sorted, with the other
 * six completing, and never retry the cancelled one.
 */
TEST_F(CancelTest, FailureAndCancellationMixAggregatesByDisposition)
{
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        Pool pool(threads);
        CancelToken token = CancelToken::make();
        ResilienceOptions opts;
        opts.maxRetries = 2;
        opts.failFast = false;
        opts.token = token;

        std::thread canceller([&token] {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            token.cancel("stop now", "test");
        });
        std::atomic<int> completed{0};
        const auto failures = pool.parallelForResilient(
            8,
            [&](std::size_t i, int) {
                if (i == 6)
                    throw std::runtime_error("boom 6");
                if (i == 7) {
                    // Park until the cancel: the token is the only
                    // exit, so this index observes it mid-body.
                    while (true) {
                        token.throwIfCancelled();
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    }
                }
                ++completed;
            },
            opts);
        canceller.join();

        ASSERT_EQ(failures.size(), 2u);
        EXPECT_EQ(completed.load(), 6);

        EXPECT_EQ(failures[0].index, 6u); // finishBatch sorts by index
        EXPECT_EQ(failures[0].disposition, TaskDisposition::Failed);
        EXPECT_EQ(failures[0].attempts, 3); // 1 + maxRetries, µs-fast
        EXPECT_EQ(failures[0].error, "boom 6");

        EXPECT_EQ(failures[1].index, 7u);
        EXPECT_EQ(failures[1].disposition, TaskDisposition::Cancelled);
        // One running attempt observed the token; a cancelled index
        // is never retried even with retry budget left.
        EXPECT_EQ(failures[1].attempts, 1);
        EXPECT_NE(failures[1].error.find("stop now"),
                  std::string::npos);
    }
}

TEST_F(CancelTest, MixedBatchErrorMessageCountsBothDispositions)
{
    // Serial pool so the failure set is exact: one real failure, the
    // post-cancel tail cancelled.
    Pool pool(1);
    CancelToken token = CancelToken::make();
    ResilienceOptions opts;
    opts.maxRetries = 0;
    opts.failFast = true;
    opts.token = token;
    try {
        pool.parallelForResilient(
            6,
            [&](std::size_t i, int) {
                if (i == 1)
                    throw std::runtime_error("boom 1");
                if (i == 3)
                    token.cancel("stop", "test");
            },
            opts);
        FAIL() << "expected BatchError";
    } catch (const BatchError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("1 task(s) failed, 2 cancelled:"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("[1] boom 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("[4 cancelled]"), std::string::npos) << msg;
        ASSERT_EQ(e.failures().size(), 3u);
        EXPECT_EQ(e.failures()[0].disposition, TaskDisposition::Failed);
        EXPECT_EQ(e.failures()[1].disposition,
                  TaskDisposition::Cancelled);
        EXPECT_EQ(e.failures()[2].disposition,
                  TaskDisposition::Cancelled);
    }
}

TEST_F(CancelTest, AllCancelledFailFastBatchThrowsCancelledError)
{
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        Pool pool(threads);
        CancelToken token = CancelToken::make();
        token.cancel("cancelled before submit", "test");
        ResilienceOptions opts;
        opts.failFast = true;
        opts.token = token;
        bool body_ran = false;
        try {
            pool.parallelForResilient(
                4, [&](std::size_t, int) { body_ran = true; }, opts);
            FAIL() << "expected CancelledError";
        } catch (const CancelledError &e) {
            EXPECT_EQ(e.reason(), "cancelled before submit");
            EXPECT_EQ(e.origin(), "test");
        }
        EXPECT_FALSE(body_ran);
    }
}

TEST_F(CancelTest, AllCancelledNonFailFastBatchReturnsDispositions)
{
    Pool pool(2);
    CancelToken token = CancelToken::make();
    token.cancel("early", "test");
    ResilienceOptions opts;
    opts.failFast = false;
    opts.token = token;
    const auto failures =
        pool.parallelForResilient(3, [](std::size_t, int) {}, opts);
    ASSERT_EQ(failures.size(), 3u);
    std::set<std::size_t> indices;
    for (const auto &f : failures) {
        EXPECT_EQ(f.disposition, TaskDisposition::Cancelled);
        EXPECT_EQ(f.attempts, 0);
        indices.insert(f.index);
    }
    EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2}));
}

TEST_F(CancelTest, BodyThrownCancelledErrorIsNotRetried)
{
    Pool pool(1);
    int attempts = 0;
    ResilienceOptions opts;
    opts.maxRetries = 5;
    opts.failFast = false;
    const auto failures = pool.parallelForResilient(
        1,
        [&](std::size_t, int) {
            ++attempts;
            throw CancelledError("observed mid-task", "test");
        },
        opts);
    EXPECT_EQ(attempts, 1); // retrying a cancellation is meaningless
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].disposition, TaskDisposition::Cancelled);
    EXPECT_EQ(failures[0].attempts, 1);
}

TEST_F(CancelTest, UnspecifiedTokenFallsBackToRoot)
{
    Pool pool(2);
    rootCancelToken().cancel("root stopped", "test");
    ResilienceOptions opts;
    opts.failFast = false;
    const auto failures =
        pool.parallelForResilient(2, [](std::size_t, int) {}, opts);
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0].disposition, TaskDisposition::Cancelled);
    EXPECT_NE(failures[0].error.find("root stopped"),
              std::string::npos);
}

} // namespace
} // namespace dfault::par
