/**
 * @file
 * Unit tests for the percentile bootstrap.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "stats/bootstrap.hh"

namespace dfault::stats {
namespace {

TEST(Bootstrap, MeanMatchesSampleMean)
{
    const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
    const auto ci = bootstrapMeanCi(sample);
    EXPECT_DOUBLE_EQ(ci.mean, 2.5);
    EXPECT_LE(ci.lo, ci.mean);
    EXPECT_GE(ci.hi, ci.mean);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth)
{
    const std::vector<double> sample{7.0, 7.0, 7.0};
    const auto ci = bootstrapMeanCi(sample);
    EXPECT_DOUBLE_EQ(ci.lo, 7.0);
    EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(Bootstrap, CoversTrueMeanAtNominalRate)
{
    // Draw many N(5, 1) samples of size 30; the 95% interval should
    // contain the true mean in roughly 95% of the experiments.
    Rng rng(42);
    int covered = 0;
    const int experiments = 300;
    for (int e = 0; e < experiments; ++e) {
        std::vector<double> sample;
        for (int i = 0; i < 30; ++i)
            sample.push_back(rng.normal(5.0, 1.0));
        const auto ci = bootstrapMeanCi(sample, 0.95, 500,
                                        1000 + static_cast<std::uint64_t>(e));
        covered += ci.lo <= 5.0 && 5.0 <= ci.hi;
    }
    const double rate = static_cast<double>(covered) / experiments;
    EXPECT_GT(rate, 0.88);
    EXPECT_LT(rate, 0.99);
}

TEST(Bootstrap, WiderConfidenceWiderInterval)
{
    Rng rng(7);
    std::vector<double> sample;
    for (int i = 0; i < 50; ++i)
        sample.push_back(rng.uniform());
    const auto narrow = bootstrapMeanCi(sample, 0.80);
    const auto wide = bootstrapMeanCi(sample, 0.99);
    EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Bootstrap, DeterministicForSeed)
{
    const std::vector<double> sample{1.0, 5.0, 2.0, 8.0, 3.0};
    const auto a = bootstrapMeanCi(sample, 0.9, 500, 11);
    const auto b = bootstrapMeanCi(sample, 0.9, 500, 11);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapDeath, BadInputsPanic)
{
    EXPECT_DEATH((void)bootstrapMeanCi({}), "empty");
    const std::vector<double> s{1.0};
    EXPECT_DEATH((void)bootstrapMeanCi(s, 1.5), "confidence");
    EXPECT_DEATH((void)bootstrapMeanCi(s, 0.9, 0), "resample");
}

} // namespace
} // namespace dfault::stats
