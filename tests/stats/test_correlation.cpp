/**
 * @file
 * Unit tests for Pearson and Spearman correlation (the feature-selection
 * statistic of paper Fig 10).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "stats/correlation.hh"

namespace dfault::stats {
namespace {

TEST(Pearson, PerfectLinear)
{
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> neg(y.rbegin(), y.rend());
    EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ConstantColumnGivesZero)
{
    const std::vector<double> x{3, 3, 3, 3};
    const std::vector<double> y{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
    EXPECT_DOUBLE_EQ(pearson(y, x), 0.0);
}

TEST(Pearson, KnownValue)
{
    // Anscombe's first quartet: r = 0.81642.
    const std::vector<double> x{10, 8, 13, 9, 11, 14, 6, 4, 12, 7, 5};
    const std::vector<double> y{8.04, 6.95, 7.58, 8.81, 8.33, 9.96,
                                7.24, 4.26, 10.84, 4.82, 5.68};
    EXPECT_NEAR(pearson(x, y), 0.81642, 1e-4);
}

TEST(Ranks, MidrankTies)
{
    const std::vector<double> x{10.0, 20.0, 20.0, 30.0};
    const auto r = ranks(x);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Ranks, AllEqual)
{
    const auto r = ranks(std::vector<double>{5, 5, 5});
    for (const double v : r)
        EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Ranks, RanksIntoMatchesRanksAndReusesBuffers)
{
    // ranksInto is the allocation-free path the feature-selection loop
    // uses once per column; it must produce exactly what ranks() does
    // even when its scratch buffers carry stale state from a previous
    // (longer) column.
    const std::vector<double> a{3.0, 1.0, 2.0, 2.0, 9.0, 1.0, 4.0};
    const std::vector<double> b{10.0, 20.0, 20.0, 30.0};
    std::vector<std::size_t> order(100, 77); // deliberately stale
    std::vector<double> out(100, -1.0);
    ranksInto(a, order, out);
    EXPECT_EQ(out, ranks(a));
    ranksInto(b, order, out);
    EXPECT_EQ(out, ranks(b));
    EXPECT_EQ(out.size(), b.size());
}

TEST(Spearman, MonotonicNonlinearIsPerfect)
{
    // Spearman detects any monotonic relation, unlike Pearson; this is
    // why the paper uses rs for feature selection.
    std::vector<double> x, y;
    for (int i = 1; i <= 20; ++i) {
        x.push_back(i);
        y.push_back(std::exp(0.5 * i)); // convex, strictly increasing
    }
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 0.9);
}

TEST(Spearman, AntiMonotonic)
{
    std::vector<double> x, y;
    for (int i = 0; i < 10; ++i) {
        x.push_back(i);
        y.push_back(1.0 / (1.0 + i));
    }
    EXPECT_NEAR(spearman(x, y), -1.0, 1e-12);
}

TEST(Spearman, IndependentNearZero)
{
    Rng rng(99);
    std::vector<double> x, y;
    for (int i = 0; i < 3000; ++i) {
        x.push_back(rng.uniform());
        y.push_back(rng.uniform());
    }
    EXPECT_NEAR(spearman(x, y), 0.0, 0.05);
}

TEST(Spearman, TiesHandled)
{
    const std::vector<double> x{1, 2, 2, 3};
    const std::vector<double> y{10, 20, 20, 30};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(CorrelationDeath, LengthMismatchPanics)
{
    const std::vector<double> x{1, 2, 3};
    const std::vector<double> y{1, 2};
    EXPECT_DEATH((void)pearson(x, y), "length mismatch");
    EXPECT_DEATH((void)spearman(x, y), "length mismatch");
}

} // namespace
} // namespace dfault::stats
