/**
 * @file
 * Unit tests for Shannon entropy estimators (HDP, paper Eq. 5).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "stats/entropy.hh"

namespace dfault::stats {
namespace {

TEST(Entropy, UniformDistributionIsLogN)
{
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    for (std::uint32_t i = 0; i < 16; ++i)
        counts[i] = 10;
    EXPECT_NEAR(shannonEntropy(counts), 4.0, 1e-12);
}

TEST(Entropy, DegenerateDistributionIsZero)
{
    std::unordered_map<std::uint32_t, std::uint64_t> counts{{7u, 1000u}};
    EXPECT_DOUBLE_EQ(shannonEntropy(counts), 0.0);
}

TEST(Entropy, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(
        shannonEntropy(std::unordered_map<std::uint32_t,
                                          std::uint64_t>{}),
        0.0);
}

TEST(Entropy, ZeroCountEntriesIgnored)
{
    std::unordered_map<std::uint32_t, std::uint64_t> counts{{1u, 5u},
                                                            {2u, 0u}};
    EXPECT_DOUBLE_EQ(shannonEntropy(counts), 0.0);
}

TEST(Entropy, BiasedCoin)
{
    std::unordered_map<std::uint32_t, std::uint64_t> counts{{0u, 9u},
                                                            {1u, 1u}};
    const double expected =
        -(0.9 * std::log2(0.9) + 0.1 * std::log2(0.1));
    EXPECT_NEAR(shannonEntropy(counts), expected, 1e-12);
}

TEST(Entropy, ProbabilityVectorForm)
{
    const std::vector<double> p{0.5, 0.25, 0.25};
    EXPECT_NEAR(shannonEntropy(p), 1.5, 1e-12);
    const std::vector<double> with_zero{1.0, 0.0};
    EXPECT_DOUBLE_EQ(shannonEntropy(with_zero), 0.0);
}

TEST(BitOneProbabilities, AllOnesAndAllZeros)
{
    std::array<double, 64> p{};
    const std::vector<std::uint64_t> ones{~0ULL, ~0ULL};
    bitOneProbabilities(ones, p);
    for (const double v : p)
        EXPECT_DOUBLE_EQ(v, 1.0);

    const std::vector<std::uint64_t> zeros{0, 0, 0};
    bitOneProbabilities(zeros, p);
    for (const double v : p)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(BitOneProbabilities, PerPositionMix)
{
    std::array<double, 64> p{};
    // Bit 0 set in half of the words, bit 1 in all, others in none.
    const std::vector<std::uint64_t> words{0b10, 0b11, 0b10, 0b11};
    bitOneProbabilities(words, p);
    EXPECT_DOUBLE_EQ(p[0], 0.5);
    EXPECT_DOUBLE_EQ(p[1], 1.0);
    for (int b = 2; b < 64; ++b)
        EXPECT_DOUBLE_EQ(p[b], 0.0);
}

TEST(BitOneProbabilities, EmptyInputGivesZeros)
{
    std::array<double, 64> p{};
    p.fill(0.7);
    bitOneProbabilities(std::vector<std::uint64_t>{}, p);
    for (const double v : p)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

} // namespace
} // namespace dfault::stats
