/**
 * @file
 * Unit tests for the analytic normal/lognormal CDFs and quantiles the
 * retention model relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hh"

namespace dfault::stats {
namespace {

TEST(NormalCdf, KnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447, 1e-6);
    EXPECT_NEAR(normalCdf(-1.0), 0.1586553, 1e-6);
    EXPECT_NEAR(normalCdf(1.959964), 0.975, 1e-6);
}

TEST(NormalCdf, Symmetry)
{
    for (const double z : {0.3, 1.7, 2.9, 4.2})
        EXPECT_NEAR(normalCdf(z) + normalCdf(-z), 1.0, 1e-12);
}

TEST(NormalCdf, DeepTailIsAccurate)
{
    // The retention model evaluates the CDF 5-7 sigmas into the tail;
    // erfc-based evaluation must not underflow there.
    EXPECT_NEAR(normalCdf(-6.0) / 9.8659e-10, 1.0, 1e-3);
    EXPECT_GT(normalCdf(-8.0), 0.0);
}

TEST(NormalCdf, ShiftedScaled)
{
    EXPECT_NEAR(normalCdf(12.0, 10.0, 2.0), normalCdf(1.0), 1e-12);
}

TEST(LognormalCdf, NonPositiveSupport)
{
    EXPECT_DOUBLE_EQ(lognormalCdf(0.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(lognormalCdf(-5.0, 0.0, 1.0), 0.0);
}

TEST(LognormalCdf, MedianAtExpMu)
{
    EXPECT_NEAR(lognormalCdf(std::exp(2.0), 2.0, 0.7), 0.5, 1e-12);
}

/** Quantile/CDF round-trip across the probability range. */
class QuantileRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantileRoundTrip, NormalInverse)
{
    const double p = GetParam();
    EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-8);
}

TEST_P(QuantileRoundTrip, LognormalInverse)
{
    const double p = GetParam();
    const double x = lognormalQuantile(p, 1.5, 0.8);
    EXPECT_NEAR(lognormalCdf(x, 1.5, 0.8), p, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantileRoundTrip,
                         ::testing::Values(1e-9, 1e-6, 0.01, 0.1, 0.5,
                                           0.9, 0.999, 1.0 - 1e-7));

TEST(NormalQuantile, KnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-5);
}

TEST(NormalQuantileDeath, RejectsBoundaries)
{
    EXPECT_DEATH((void)normalQuantile(0.0), "out of");
    EXPECT_DEATH((void)normalQuantile(1.0), "out of");
}

} // namespace
} // namespace dfault::stats
