/**
 * @file
 * Unit tests for streaming statistics and quantiles.
 */

#include <gtest/gtest.h>

#include "stats/summary.hh"

namespace dfault::stats {
namespace {

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample)
{
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased sample variance of the classic example is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.1 * i * i - 3.0 * i;
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStats c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Quantile, Interpolates)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputHandled)
{
    EXPECT_DOUBLE_EQ(median({9.0, 1.0, 5.0}), 5.0);
}

TEST(Quantile, SingleElement)
{
    EXPECT_DOUBLE_EQ(quantile({42.0}, 0.3), 42.0);
}

TEST(QuantileDeath, EmptySamplePanics)
{
    EXPECT_DEATH((void)quantile({}, 0.5), "empty");
}

TEST(QuantileDeath, LevelOutOfRangePanics)
{
    EXPECT_DEATH((void)quantile({1.0}, 1.5), "out of range");
}

} // namespace
} // namespace dfault::stats
