/**
 * @file
 * Unit tests for linear and logarithmic histograms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hh"

namespace dfault::stats {
namespace {

TEST(Histogram, BinningBasics)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);  // bin 0
    h.add(1.9);  // bin 0
    h.add(2.0);  // bin 1
    h.add(9.99); // bin 4
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0); // upper edge is exclusive
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(2.0, 12.0, 5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 4.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 10.0);
    EXPECT_DOUBLE_EQ(h.binHigh(4), 12.0);
}

TEST(Histogram, ProbabilitiesExcludeOutliers)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(99.0); // overflow, excluded from probabilities
    const auto p = h.probabilities();
    EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(p[1], 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(p[2], 0.0);
}

TEST(Histogram, EmptyProbabilitiesAreZero)
{
    Histogram h(0.0, 1.0, 3);
    for (const double p : h.probabilities())
        EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(HistogramDeath, BadConstruction)
{
    EXPECT_DEATH(Histogram(1.0, 0.0, 4), "inverted");
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one bin");
}

TEST(LogHistogram, DecadeBins)
{
    LogHistogram h(1.0, 1000.0, 3);
    h.add(2.0);    // first decade
    h.add(50.0);   // second decade
    h.add(500.0);  // third decade
    h.add(999.0);  // third decade
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_NEAR(h.binLow(1), 10.0, 1e-9);
    EXPECT_NEAR(h.binHigh(1), 100.0, 1e-9);
}

TEST(LogHistogram, NonPositiveGoesToUnderflow)
{
    LogHistogram h(1.0, 100.0, 2);
    h.add(0.0);
    h.add(-3.0);
    h.add(0.5);
    EXPECT_EQ(h.underflow(), 3u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogramDeath, RequiresPositiveLowerBound)
{
    EXPECT_DEATH(LogHistogram(0.0, 10.0, 2), "positive lower bound");
}

} // namespace
} // namespace dfault::stats
