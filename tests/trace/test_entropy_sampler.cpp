/**
 * @file
 * Unit tests for the write-data entropy sampler (HDP, paper Eq. 5).
 */

#include <gtest/gtest.h>

#include "trace/entropy_sampler.hh"

namespace dfault::trace {
namespace {

AccessEvent
storeOf(std::uint64_t value)
{
    AccessEvent e;
    e.isWrite = true;
    e.value = value;
    return e;
}

EntropySampler::Params
everyStore()
{
    EntropySampler::Params p;
    p.stride = 1;
    return p;
}

TEST(EntropySampler, IgnoresLoads)
{
    EntropySampler s(everyStore());
    AccessEvent load;
    load.isWrite = false;
    load.value = 123;
    s.onAccess(load);
    EXPECT_EQ(s.sampledStores(), 0u);
    EXPECT_DOUBLE_EQ(s.entropyBits(), 0.0);
}

TEST(EntropySampler, ConstantDataHasZeroEntropy)
{
    EntropySampler s(everyStore());
    for (int i = 0; i < 100; ++i)
        s.onAccess(storeOf(0xAAAAAAAAAAAAAAAAULL));
    EXPECT_DOUBLE_EQ(s.entropyBits(), 0.0);
}

TEST(EntropySampler, TwoValueMixIsOneBit)
{
    EntropySampler s(everyStore());
    for (int i = 0; i < 100; ++i) {
        // Both 32-bit halves alternate between two values.
        const std::uint64_t v = (i % 2 == 0)
                                    ? 0x1111111111111111ULL
                                    : 0x2222222222222222ULL;
        s.onAccess(storeOf(v));
    }
    EXPECT_NEAR(s.entropyBits(), 1.0, 1e-9);
}

TEST(EntropySampler, StrideSamplesSubset)
{
    EntropySampler::Params p;
    p.stride = 10;
    EntropySampler s(p);
    for (int i = 0; i < 100; ++i)
        s.onAccess(storeOf(1));
    EXPECT_EQ(s.sampledStores(), 10u);
}

TEST(EntropySampler, BitProbabilitiesFromWrites)
{
    EntropySampler s(everyStore());
    for (int i = 0; i < 64; ++i)
        s.onAccess(storeOf(i % 2 == 0 ? ~0ULL : 0ULL));
    const auto p = s.bitOneProbabilities();
    for (int b = 0; b < 64; ++b)
        EXPECT_NEAR(p[b], 0.5, 1e-12);
}

TEST(EntropySampler, UnsampledDefaultsToHalf)
{
    EntropySampler s(everyStore());
    const auto p = s.bitOneProbabilities();
    for (int b = 0; b < 64; ++b)
        EXPECT_DOUBLE_EQ(p[b], 0.5);
}

TEST(EntropySampler, ResetClears)
{
    EntropySampler s(everyStore());
    s.onAccess(storeOf(7));
    s.reset();
    EXPECT_EQ(s.sampledStores(), 0u);
    EXPECT_DOUBLE_EQ(s.entropyBits(), 0.0);
}

TEST(EntropySampler, SaturationKeepsCountingKnownValues)
{
    EntropySampler::Params p;
    p.stride = 1;
    p.maxDistinct = 4;
    EntropySampler s(p);
    // Saturate the table, then keep writing one known value: the
    // estimator must continue to track it rather than crash or grow.
    for (std::uint64_t v = 0; v < 8; ++v)
        s.onAccess(storeOf(v));
    for (int i = 0; i < 100; ++i)
        s.onAccess(storeOf(1));
    EXPECT_GT(s.entropyBits(), 0.0);
    EXPECT_LE(s.entropyBits(), 32.0);
}

TEST(EntropySamplerDeath, ZeroStrideIsFatal)
{
    EntropySampler::Params p;
    p.stride = 0;
    EXPECT_EXIT(EntropySampler{p}, ::testing::ExitedWithCode(1),
                "stride");
}

} // namespace
} // namespace dfault::trace
