/**
 * @file
 * Unit tests for the reuse-distance tracker (Treuse, paper Eq. 4).
 */

#include <gtest/gtest.h>

#include "trace/reuse_tracker.hh"

namespace dfault::trace {
namespace {

AccessEvent
at(Addr addr, std::uint64_t instr, bool write = false)
{
    AccessEvent e;
    e.addr = addr;
    e.instrIndex = instr;
    e.isWrite = write;
    return e;
}

TEST(ReuseTracker, FirstTouchIsNotAReuse)
{
    ReuseTracker t(1024);
    t.onAccess(at(0, 10));
    EXPECT_EQ(t.reuseCount(), 0u);
    EXPECT_EQ(t.uniqueWords(), 1u);
}

TEST(ReuseTracker, DistanceIsInstructionDelta)
{
    ReuseTracker t(1024);
    t.onAccess(at(8, 100));
    t.onAccess(at(8, 150));
    EXPECT_EQ(t.reuseCount(), 1u);
    EXPECT_DOUBLE_EQ(t.meanReuseDistance(), 50.0);
    t.onAccess(at(8, 160));
    EXPECT_DOUBLE_EQ(t.meanReuseDistance(), 30.0); // mean of 50 and 10
}

TEST(ReuseTracker, WordGranularity)
{
    ReuseTracker t(1024);
    t.onAccess(at(0, 0));
    t.onAccess(at(7, 10)); // same 64-bit word
    t.onAccess(at(8, 20)); // next word
    EXPECT_EQ(t.uniqueWords(), 2u);
    EXPECT_EQ(t.reuseCount(), 1u);
}

TEST(ReuseTracker, ZeroInstructionIndexHandled)
{
    // instrIndex 0 must still mark the word as referenced.
    ReuseTracker t(1024);
    t.onAccess(at(16, 0));
    t.onAccess(at(16, 5));
    EXPECT_EQ(t.reuseCount(), 1u);
    EXPECT_DOUBLE_EQ(t.meanReuseDistance(), 5.0);
}

TEST(ReuseTracker, AverageReuseSeconds)
{
    ReuseTracker t(1024);
    t.onAccess(at(0, 0));
    t.onAccess(at(0, 1000));
    // 1000 instructions * CPI 2 / 1 GHz = 2 microseconds.
    EXPECT_NEAR(t.averageReuseSeconds(2.0, 1e9), 2e-6, 1e-12);
}

TEST(ReuseTracker, NoReusesGiveZeroSeconds)
{
    ReuseTracker t(1024);
    t.onAccess(at(0, 0));
    EXPECT_DOUBLE_EQ(t.averageReuseSeconds(1.0, 1e9), 0.0);
}

TEST(ReuseTracker, ResetForgetsHistory)
{
    ReuseTracker t(1024);
    t.onAccess(at(0, 0));
    t.onAccess(at(0, 10));
    t.reset();
    EXPECT_EQ(t.reuseCount(), 0u);
    EXPECT_EQ(t.uniqueWords(), 0u);
    t.onAccess(at(0, 20));
    EXPECT_EQ(t.reuseCount(), 0u); // fresh first touch
}

TEST(ReuseTracker, DistanceStatsExposed)
{
    ReuseTracker t(1024);
    t.onAccess(at(0, 0));
    t.onAccess(at(0, 10));
    t.onAccess(at(0, 40));
    const auto &s = t.distanceStats();
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.min(), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(ReuseTrackerDeath, OutOfRangePanics)
{
    ReuseTracker t(64);
    EXPECT_DEATH(t.onAccess(at(4096, 0)), "outside the tracked range");
}

} // namespace
} // namespace dfault::trace
