/**
 * @file
 * Load-path failure tests: truncated, garbage and permission-denied
 * artifact files must produce clean, named errors — never crashes,
 * silent empty results, or NaN-poisoned datasets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "fi/durable.hh"
#include "ml/io.hh"
#include "obs/json.hh"

namespace dfault {
namespace {

struct LoadErrorTest : ::testing::Test
{
    std::string path = ::testing::TempDir() + "dfault_load_" +
                       std::to_string(static_cast<long>(::getpid()));

    void TearDown() override { std::remove(path.c_str()); }

    void write(const std::string &body)
    {
        ASSERT_TRUE(fi::atomicWriteFile(path, body));
    }
};

TEST_F(LoadErrorTest, MissingDatasetReturnsCleanError)
{
    std::string error;
    EXPECT_FALSE(ml::tryReadCsvFile(path + ".nope", &error).has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(LoadErrorTest, TruncatedDatasetReturnsCleanError)
{
    // Header cut off mid-way: the target/group columns are missing.
    write("alpha,beta");
    std::string error;
    EXPECT_FALSE(ml::tryReadCsvFile(path, &error).has_value());
    EXPECT_NE(error.find("target,group"), std::string::npos);

    // A row cut off mid-way.
    write("alpha,target,group\n1.5,2e-7,backprop\n3.1,");
    EXPECT_FALSE(ml::tryReadCsvFile(path, &error).has_value());
    EXPECT_NE(error.find("fields"), std::string::npos);
}

TEST_F(LoadErrorTest, GarbageDatasetReturnsCleanError)
{
    write(std::string("\x7f\x45\x4c\x46\x02\x01\x01\0garbage", 15));
    std::string error;
    EXPECT_FALSE(ml::tryReadCsvFile(path, &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST_F(LoadErrorTest, NonFiniteFeatureIsNamedInTheError)
{
    write("alpha,beta,target,group\n1.0,nan,2e-7,backprop\n");
    std::string error;
    EXPECT_FALSE(ml::tryReadCsvFile(path, &error).has_value());
    EXPECT_NE(error.find("beta"), std::string::npos)
        << "error must name the offending feature: " << error;

    write("alpha,beta,target,group\n1.0,2.0,inf,backprop\n");
    EXPECT_FALSE(ml::tryReadCsvFile(path, &error).has_value());
    EXPECT_NE(error.find("target"), std::string::npos);
}

TEST_F(LoadErrorTest, PermissionDeniedReturnsCleanError)
{
    if (::geteuid() == 0)
        GTEST_SKIP() << "running as root: chmod 000 is not enforced";
    write("alpha,target,group\n1,2,g\n");
    ASSERT_EQ(::chmod(path.c_str(), 0), 0);
    std::string error;
    EXPECT_FALSE(ml::tryReadCsvFile(path, &error).has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos);
    ::chmod(path.c_str(), 0600);
}

TEST_F(LoadErrorTest, ValidDatasetStillLoads)
{
    write("alpha,target,group\n1.25,2e-7,backprop\n");
    std::string error;
    const auto data = ml::tryReadCsvFile(path, &error);
    ASSERT_TRUE(data.has_value()) << error;
    EXPECT_EQ(data->size(), 1u);
    EXPECT_DOUBLE_EQ(data->x()[0][0], 1.25);
}

TEST_F(LoadErrorTest, FatalReaderNamesTheFileAndProblem)
{
    write("alpha,target,group\n1.0,oops,g\n");
    EXPECT_EXIT((void)ml::readCsvFile(path), ::testing::ExitedWithCode(1),
                "bad target");
    EXPECT_EXIT((void)ml::readCsvFile(path + ".gone"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST_F(LoadErrorTest, JsonParserRejectsGarbageWithOffsets)
{
    std::string error;
    EXPECT_FALSE(obs::jsonParse("{\"a\": 1,", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(obs::jsonParse("", &error).has_value());
    EXPECT_FALSE(obs::jsonParse("{\"a\":1} trailing", &error).has_value());
    EXPECT_TRUE(obs::jsonParse("{\"a\":1}", &error).has_value());
}

} // namespace
} // namespace dfault
