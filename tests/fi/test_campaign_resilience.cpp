/**
 * @file
 * Campaign-level resilience tests: quarantine semantics of a faulted
 * sweep, retry recovery producing bit-identical results, checkpoint
 * resume (including a real mid-sweep kill), and stats-digest equality
 * between interrupted and uninterrupted runs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/characterization.hh"
#include "core/checkpoint.hh"
#include "core/dataset_builder.hh"
#include "features/extractor.hh"
#include "fi/injector.hh"
#include "obs/manifest.hh"
#include "obs/stats.hh"
#include "par/cancel.hh"
#include "par/pool.hh"

namespace dfault::core {
namespace {

sys::Platform::Params
smallPlatform()
{
    sys::Platform::Params p;
    p.hierarchy.l1.sizeBytes = 16 * 1024;
    p.hierarchy.l2.sizeBytes = 1 << 20;
    p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
    return p;
}

CharacterizationCampaign::Params
smallParams()
{
    CharacterizationCampaign::Params p;
    p.workload.footprintBytes = 2 << 20;
    p.workload.workScale = 0.25;
    p.integrator.epochs = 20;
    p.useThermalLoop = false;
    return p;
}

const std::vector<workloads::WorkloadConfig> kSuite{
    {"kmeans", 8, "kmeans(par)"}, {"srad", 1, "srad"}};
const std::vector<dram::OperatingPoint> kPoints{
    {1.173, 1.428, 50.0}, {2.283, 1.428, 60.0}};

/** Fresh stats + profile cache, so runs can be digest-compared. */
void
resetObservability()
{
    obs::Registry::instance().resetAll();
    features::ProfileCache::instance().clear();
}

std::vector<double>
wers(const std::vector<Measurement> &measurements)
{
    std::vector<double> out;
    out.reserve(measurements.size());
    for (const auto &m : measurements)
        out.push_back(m.quarantined ? -1.0 : m.run.wer());
    return out;
}

struct CampaignResilienceTest : ::testing::Test
{
    std::string dir = ::testing::TempDir() + "dfault_resume_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();

    void TearDown() override
    {
        fi::Injector::instance().disarm();
        par::Pool::global().disableWatchdog();
        par::resetRootCancelToken();
        std::filesystem::remove_all(dir);
    }
};

TEST_F(CampaignResilienceTest, AllFailingCellsQuarantineWithoutAborting)
{
    // task.throw fires on every attempt of every cell; with all
    // retries exhausted the whole grid is quarantined — and the sweep
    // still returns instead of throwing. after=2 spares the profile
    // batch (one check per suite workload, arriving before any cell)
    // so the failure lands in the quarantine path, not profiling.
    fi::Injector::instance().arm("task.throw:after=2");
    sys::Platform platform(smallPlatform());
    auto params = smallParams();
    params.taskRetries = 1;
    CharacterizationCampaign campaign(platform, params);

    const auto measurements = campaign.sweep(kSuite, kPoints);
    ASSERT_EQ(measurements.size(), 4u);
    for (const auto &m : measurements) {
        EXPECT_TRUE(m.quarantined);
        EXPECT_NE(m.failure.find("task.throw"), std::string::npos);
        EXPECT_FALSE(m.label.empty());
    }
    const auto &report = campaign.lastQuarantine();
    ASSERT_EQ(report.size(), 4u);
    EXPECT_EQ(report[0].cell, 0u);
    EXPECT_EQ(report[0].attempts, 2); // 1 + taskRetries
    EXPECT_EQ(report[3].cell, 3u);
}

TEST_F(CampaignResilienceTest, RetriedFaultsYieldBitIdenticalResults)
{
    sys::Platform platform(smallPlatform());
    CharacterizationCampaign clean(platform, smallParams());
    const auto reference = wers(clean.sweep(kSuite, kPoints));

    // Every task (profile extraction and measurement cells alike)
    // fails its first attempt; one retry recovers all of them and the
    // recovered results match the clean run exactly.
    fi::Injector::instance().arm("task.throw:max_attempt=1");
    sys::Platform platform2(smallPlatform());
    auto params = smallParams();
    params.taskRetries = 1;
    CharacterizationCampaign faulted(platform2, params);
    const auto measurements = faulted.sweep(kSuite, kPoints);

    EXPECT_TRUE(faulted.lastQuarantine().empty());
    EXPECT_EQ(wers(measurements), reference);
    EXPECT_GE(fi::Injector::instance().firedCount("task.throw"), 4u);
}

TEST_F(CampaignResilienceTest, FailFastSweepThrowsBatchError)
{
    fi::Injector::instance().arm("task.throw:after=2");
    sys::Platform platform(smallPlatform());
    auto params = smallParams();
    params.taskRetries = 0;
    params.failFast = true;
    CharacterizationCampaign campaign(platform, params);
    EXPECT_THROW((void)campaign.sweep(kSuite, kPoints), par::BatchError);
}

TEST_F(CampaignResilienceTest, CorruptedMeasurementsAreKeptOutOfDatasets)
{
    fi::Injector::instance().arm("measure.nan");
    sys::Platform platform(smallPlatform());
    CharacterizationCampaign campaign(platform, smallParams());
    const auto m =
        campaign.measure({"srad", 1, "srad"}, {1.173, 1.428, 50.0});
    ASSERT_FALSE(m.run.werSeries.empty());
    EXPECT_TRUE(std::isnan(m.run.werSeries.back()));
    fi::Injector::instance().disarm();

    // The NaN target is quarantined at dataset assembly, not trained on.
    const auto data = makeWerDataset({m}, 0, InputSet::Set1);
    EXPECT_EQ(data.size(), 0u);
}

TEST_F(CampaignResilienceTest, ResumeReproducesResultsAndStatsDigest)
{
    sys::Platform platform(smallPlatform());
    auto params = smallParams();
    params.checkpointDir = dir;

    resetObservability();
    CharacterizationCampaign first(platform, params);
    const auto full = first.sweep(kSuite, kPoints);
    const std::uint64_t full_digest = obs::statsDigest();

    // Lose two of the four journaled cells, as if the campaign had
    // been killed mid-sweep, then resume into a fresh campaign.
    ASSERT_TRUE(std::filesystem::remove(dir + "/cell-000001.json"));
    ASSERT_TRUE(std::filesystem::remove(dir + "/cell-000003.json"));

    resetObservability();
    sys::Platform platform2(smallPlatform());
    CharacterizationCampaign resumed(platform2, params);
    const auto again = resumed.sweep(kSuite, kPoints);
    const std::uint64_t resumed_digest = obs::statsDigest();

    ASSERT_EQ(again.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(again[i].label, full[i].label);
        ASSERT_EQ(again[i].run.werSeries.size(),
                  full[i].run.werSeries.size());
        for (std::size_t e = 0; e < full[i].run.werSeries.size(); ++e)
            EXPECT_EQ(again[i].run.werSeries[e],
                      full[i].run.werSeries[e])
                << "cell " << i << " epoch " << e;
        ASSERT_NE(again[i].profile, nullptr);
    }
    EXPECT_EQ(resumed_digest, full_digest)
        << "resumed sweep must reach a bit-identical stats digest";
}

TEST_F(CampaignResilienceTest, DigestIsThreadCountIndependent)
{
    sys::Platform platform(smallPlatform());

    par::Pool::setGlobalThreads(1);
    resetObservability();
    CharacterizationCampaign serial(platform, smallParams());
    const auto serial_wers = wers(serial.sweep(kSuite, kPoints));
    const std::uint64_t serial_digest = obs::statsDigest();

    par::Pool::setGlobalThreads(8);
    resetObservability();
    sys::Platform platform2(smallPlatform());
    CharacterizationCampaign parallel(platform2, smallParams());
    const auto parallel_wers = wers(parallel.sweep(kSuite, kPoints));
    const std::uint64_t parallel_digest = obs::statsDigest();

    EXPECT_EQ(parallel_wers, serial_wers);
    EXPECT_EQ(parallel_digest, serial_digest);
}

TEST_F(CampaignResilienceTest, CancelledSweepResumesToCleanDigest)
{
    // A signal-style interrupt: a checkpointed sweep is cancelled once
    // its first cell has been journaled. Completed cells stay in the
    // journal, cancelled ones are a distinct (non-quarantined)
    // disposition, and the resumed sweep reaches the exact digest of
    // an uninterrupted run — at 1 and 8 threads.
    for (const int threads : {1, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        par::Pool::setGlobalThreads(threads);
        const std::string cdir = dir + "-t" + std::to_string(threads);

        resetObservability();
        sys::Platform clean_platform(smallPlatform());
        CharacterizationCampaign clean(clean_platform, smallParams());
        const auto reference = wers(clean.sweep(kSuite, kPoints));
        const std::uint64_t clean_digest = obs::statsDigest();

        resetObservability();
        par::CancelToken token = par::CancelToken::make();
        auto params = smallParams();
        params.checkpointDir = cdir;
        params.cancelToken = token;
        sys::Platform platform(smallPlatform());
        CharacterizationCampaign interrupted(platform, params);
        // Cancel as soon as a cell lands in the journal, so the
        // interrupt strikes after profiling, mid-cell-batch (or, on a
        // fast box, after the sweep — the digest claim holds either
        // way; which cells drain cancelled may vary, the outcome
        // must not).
        std::thread canceller([&token, &cdir] {
            for (int i = 0; i < 2000; ++i) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
                std::error_code ec;
                std::filesystem::directory_iterator it(cdir, ec), end;
                if (ec)
                    continue;
                for (; it != end; ++it) {
                    const auto name = it->path().filename().string();
                    if (name.starts_with("cell-")) {
                        token.cancel("test interrupt", "test");
                        return;
                    }
                }
            }
            token.cancel("test interrupt", "test");
        });
        const auto partial = interrupted.sweep(kSuite, kPoints);
        canceller.join();
        ASSERT_EQ(partial.size(), 4u);
        for (const auto &m : partial) {
            EXPECT_FALSE(m.quarantined);
            if (!m.cancelled) {
                EXPECT_FALSE(m.run.werSeries.empty());
            }
        }
        EXPECT_TRUE(interrupted.lastQuarantine().empty());

        // Resume fault-free: journaled cells replay, cancelled cells
        // are re-measured.
        resetObservability();
        auto resume_params = smallParams();
        resume_params.checkpointDir = cdir;
        sys::Platform platform2(smallPlatform());
        CharacterizationCampaign resumed(platform2, resume_params);
        EXPECT_EQ(wers(resumed.sweep(kSuite, kPoints)), reference);
        EXPECT_EQ(obs::statsDigest(), clean_digest)
            << "cancel-then-resume must reach the uninterrupted digest";
        std::filesystem::remove_all(cdir);
    }
    par::Pool::setGlobalThreads(8);
}

TEST_F(CampaignResilienceTest, KillMidSweepThenResumeCompletes)
{
    // threadsafe style re-execs the binary for the child, so the
    // killed sweep runs against a fresh process (and a fresh pool)
    // rather than a forked copy of this one.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // The child process arms sweep.kill and dies (by design) with the
    // spec's exit code after journaling its third cell.
    EXPECT_EXIT(
        {
            par::Pool::setGlobalThreads(1);
            fi::Injector::instance().arm("sweep.kill:after=2,code=17");
            sys::Platform killed(smallPlatform());
            auto params = smallParams();
            params.checkpointDir = dir;
            CharacterizationCampaign campaign(killed, params);
            (void)campaign.sweep(kSuite, kPoints);
        },
        ::testing::ExitedWithCode(17), "injected kill");

    // The journal holds the cells completed before the kill.
    std::size_t journaled = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        journaled += entry.path().filename().string().starts_with("cell-");
    ASSERT_GE(journaled, 2u);
    ASSERT_LT(journaled, 4u);

    // Resuming (fault-free) completes the grid and matches a clean
    // uninterrupted sweep bit-for-bit.
    sys::Platform platform(smallPlatform());
    auto params = smallParams();
    params.checkpointDir = dir;
    CharacterizationCampaign resumed(platform, params);
    const auto measurements = resumed.sweep(kSuite, kPoints);

    sys::Platform platform2(smallPlatform());
    CharacterizationCampaign clean(platform2, smallParams());
    EXPECT_EQ(wers(measurements), wers(clean.sweep(kSuite, kPoints)));
    EXPECT_TRUE(resumed.lastQuarantine().empty());
}

} // namespace
} // namespace dfault::core
