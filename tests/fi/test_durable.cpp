/**
 * @file
 * Unit tests for the durable artifact writer: atomic replacement,
 * injected I/O failures (transient and persistent), and the non-fatal
 * file reader.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "fi/durable.hh"
#include "fi/injector.hh"

namespace dfault::fi {
namespace {

struct DurableTest : ::testing::Test
{
    std::string path =
        ::testing::TempDir() + "dfault_durable_" +
        std::to_string(static_cast<long>(::getpid())) + ".txt";

    void TearDown() override
    {
        Injector::instance().disarm();
        std::remove(path.c_str());
    }
};

TEST_F(DurableTest, WriteReadRoundTrip)
{
    ASSERT_TRUE(atomicWriteFile(path, "hello\nworld\n"));
    std::string error;
    const auto body = readFile(path, &error);
    ASSERT_TRUE(body.has_value()) << error;
    EXPECT_EQ(*body, "hello\nworld\n");
}

TEST_F(DurableTest, OverwriteReplacesAtomically)
{
    ASSERT_TRUE(atomicWriteFile(path, "first"));
    ASSERT_TRUE(atomicWriteFile(path, "second"));
    EXPECT_EQ(readFile(path).value_or(""), "second");
    // No temp file is left behind.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    struct stat st;
    EXPECT_NE(::stat(tmp.c_str(), &st), 0);
}

TEST_F(DurableTest, UnwritableDirectoryFails)
{
    EXPECT_FALSE(atomicWriteFile("/no/such/dir/file.txt", "x"));
}

TEST_F(DurableTest, PersistentFaultLeavesDestinationUntouched)
{
    ASSERT_TRUE(atomicWriteFile(path, "survivor"));
    Injector::instance().arm("io.open");
    EXPECT_FALSE(atomicWriteFile(path, "clobber"));
    Injector::instance().disarm();
    EXPECT_EQ(readFile(path).value_or(""), "survivor");
}

TEST_F(DurableTest, TransientFaultRecoversOnRetry)
{
    // max_attempt=1: the first in-process attempt fails, the internal
    // retry succeeds — the caller never notices.
    Injector::instance().arm("io.write:max_attempt=1");
    EXPECT_TRUE(atomicWriteFile(path, "made it"));
    EXPECT_EQ(Injector::instance().firedCount("io.write"), 1u);
    EXPECT_EQ(readFile(path).value_or(""), "made it");
}

TEST_F(DurableTest, ShortWriteRecoversOnRetry)
{
    // A torn write on the first attempt (half the body lands in the
    // temp, then the writer "dies") is invisible to the caller: the
    // internal retry rewrites the temp from scratch and commits.
    Injector::instance().arm("io.short_write:max_attempt=1");
    EXPECT_TRUE(atomicWriteFile(path, "crash-consistent body"));
    EXPECT_EQ(Injector::instance().firedCount("io.short_write"), 1u);
    EXPECT_EQ(readFile(path).value_or(""), "crash-consistent body");
    // The successful retry renamed the temp away: nothing left behind.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    struct stat st;
    EXPECT_NE(::stat(tmp.c_str(), &st), 0);
}

TEST_F(DurableTest, ShortWriteNeverTruncatesCommittedFile)
{
    // Crash-consistency of write-temp-fsync-rename: when every attempt
    // tears mid-write, the committed path still holds the previous
    // body in full — the torn bytes only ever existed under the temp
    // name, which is left behind exactly as a crashed process would
    // leave it.
    ASSERT_TRUE(atomicWriteFile(path, "survivor"));
    Injector::instance().arm("io.short_write");
    const std::string body = "0123456789abcdef";
    EXPECT_FALSE(atomicWriteFile(path, body));
    Injector::instance().disarm();
    EXPECT_EQ(readFile(path).value_or(""), "survivor");

    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const auto partial = readFile(tmp);
    ASSERT_TRUE(partial.has_value()) << "partial temp not left behind";
    EXPECT_EQ(*partial, body.substr(0, body.size() / 2));

    // A later clean write converges and sweeps the stale temp name.
    EXPECT_TRUE(atomicWriteFile(path, body));
    EXPECT_EQ(readFile(path).value_or(""), body);
    struct stat st;
    EXPECT_NE(::stat(tmp.c_str(), &st), 0);
}

TEST_F(DurableTest, ReadMissingFileReturnsCleanError)
{
    std::string error;
    EXPECT_FALSE(readFile(path + ".nope", &error).has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(DurableTest, ReadPermissionDeniedReturnsCleanError)
{
    if (::geteuid() == 0)
        GTEST_SKIP() << "running as root: chmod 000 is not enforced";
    ASSERT_TRUE(atomicWriteFile(path, "secret"));
    ASSERT_EQ(::chmod(path.c_str(), 0), 0);
    std::string error;
    EXPECT_FALSE(readFile(path, &error).has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos);
    ::chmod(path.c_str(), 0600);
}

TEST_F(DurableTest, EmptyBodyRoundTrips)
{
    ASSERT_TRUE(atomicWriteFile(path, ""));
    const auto body = readFile(path);
    ASSERT_TRUE(body.has_value());
    EXPECT_TRUE(body->empty());
}

} // namespace
} // namespace dfault::fi
