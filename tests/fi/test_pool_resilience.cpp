/**
 * @file
 * Tests for par::Pool failure isolation: error aggregation across a
 * batch, retry-then-quarantine, and determinism of the failure set
 * across thread counts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "fi/injector.hh"
#include "par/pool.hh"

namespace dfault::par {
namespace {

struct PoolResilienceTest : ::testing::Test
{
    void TearDown() override { fi::Injector::instance().disarm(); }
};

TEST_F(PoolResilienceTest, BatchErrorAggregatesEveryFailure)
{
    Pool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(16, [&](std::size_t i) {
            if (i % 5 == 0)
                throw std::runtime_error("task " + std::to_string(i));
            ++completed;
        });
        FAIL() << "expected BatchError";
    } catch (const BatchError &e) {
        // Indices 0, 5, 10, 15 failed; everything else still ran.
        ASSERT_EQ(e.failures().size(), 4u);
        EXPECT_EQ(e.failures()[0].index, 0u);
        EXPECT_EQ(e.failures()[1].index, 5u);
        EXPECT_EQ(e.failures()[2].index, 10u);
        EXPECT_EQ(e.failures()[3].index, 15u);
        EXPECT_EQ(e.failures()[1].error, "task 5");
        EXPECT_NE(std::string(e.what()).find("task 10"),
                  std::string::npos);
    }
    EXPECT_EQ(completed.load(), 12);
}

TEST_F(PoolResilienceTest, BatchErrorIsStillARuntimeError)
{
    Pool pool(2);
    EXPECT_THROW(pool.parallelFor(
                     4, [](std::size_t) { throw std::logic_error("x"); }),
                 std::runtime_error);
}

TEST_F(PoolResilienceTest, ResilientModeQuarantinesInsteadOfThrowing)
{
    Pool pool(4);
    std::vector<int> results(12, -1);
    const auto failures = pool.parallelForResilient(
        12,
        [&](std::size_t i, int) {
            if (i == 3 || i == 7)
                throw std::runtime_error("boom " + std::to_string(i));
            results[i] = static_cast<int>(i);
        },
        {.maxRetries = 0, .failFast = false});

    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0].index, 3u);
    EXPECT_EQ(failures[0].attempts, 1);
    EXPECT_EQ(failures[0].error, "boom 3");
    EXPECT_EQ(failures[1].index, 7u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 3 || i == 7)
            EXPECT_EQ(results[i], -1);
        else
            EXPECT_EQ(results[i], static_cast<int>(i));
    }
}

TEST_F(PoolResilienceTest, RetriesRecoverTransientFailures)
{
    Pool pool(4);
    std::vector<int> attempts_seen(8, -1);
    const auto failures = pool.parallelForResilient(
        8,
        [&](std::size_t i, int attempt) {
            // Every index fails its first attempt, succeeds on retry.
            if (attempt == 0)
                throw std::runtime_error("transient");
            attempts_seen[i] = attempt;
        },
        {.maxRetries = 1, .failFast = false});
    EXPECT_TRUE(failures.empty());
    for (const int a : attempts_seen)
        EXPECT_EQ(a, 1);
}

TEST_F(PoolResilienceTest, ExhaustedRetriesReportAttemptCount)
{
    Pool pool(2);
    const auto failures = pool.parallelForResilient(
        4,
        [](std::size_t i, int) {
            if (i == 2)
                throw std::runtime_error("always");
        },
        {.maxRetries = 2, .failFast = false});
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].index, 2u);
    EXPECT_EQ(failures[0].attempts, 3); // 1 + 2 retries
}

TEST_F(PoolResilienceTest, FailFastResilientThrowsAfterDraining)
{
    Pool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.parallelForResilient(
            10,
            [&](std::size_t i, int) {
                if (i == 4)
                    throw std::runtime_error("fatal cell");
                ++completed;
            },
            {.maxRetries = 0, .failFast = true});
        FAIL() << "expected BatchError";
    } catch (const BatchError &e) {
        ASSERT_EQ(e.failures().size(), 1u);
        EXPECT_EQ(e.failures()[0].index, 4u);
    }
    EXPECT_EQ(completed.load(), 9);
}

TEST_F(PoolResilienceTest, InjectedTaskFaultsRecoverViaMaxAttempt)
{
    // task.throw is armed to fire on first attempts of every third
    // index; one retry clears all of them.
    fi::Injector::instance().arm("task.throw:every=3,max_attempt=1");
    Pool pool(4);
    std::vector<int> results(9, -1);
    const auto failures = pool.parallelForResilient(
        9,
        [&](std::size_t i, int) { results[i] = static_cast<int>(i); },
        {.maxRetries = 1, .failFast = false});
    EXPECT_TRUE(failures.empty());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], static_cast<int>(i));
    EXPECT_EQ(fi::Injector::instance().firedCount("task.throw"), 3u);
}

TEST_F(PoolResilienceTest, InjectedFaultsQuarantineWithoutRetries)
{
    fi::Injector::instance().arm("task.throw:every=4");
    Pool pool(4);
    const auto failures = pool.parallelForResilient(
        8, [](std::size_t, int) {}, {.maxRetries = 0, .failFast = false});
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_EQ(failures[0].index, 0u);
    EXPECT_EQ(failures[1].index, 4u);
    EXPECT_NE(failures[0].error.find("task.throw"), std::string::npos);
}

TEST_F(PoolResilienceTest, FailureSetIsIdenticalAcrossThreadCounts)
{
    const auto run = [](int threads) {
        Pool pool(threads);
        const auto failures = pool.parallelForResilient(
            32,
            [](std::size_t i, int) {
                if (i % 7 == 3)
                    throw std::runtime_error("f" + std::to_string(i));
            },
            {.maxRetries = 1, .failFast = false});
        std::set<std::size_t> indices;
        for (const auto &f : failures)
            indices.insert(f.index);
        return indices;
    };
    const auto serial = run(1);
    EXPECT_EQ(run(4), serial);
    EXPECT_EQ(run(8), serial);
    EXPECT_EQ(serial.size(), 5u); // 3, 10, 17, 24, 31
}

TEST_F(PoolResilienceTest, NonStandardExceptionsAreCaught)
{
    Pool pool(2);
    const auto failures = pool.parallelForResilient(
        2,
        [](std::size_t i, int) {
            if (i == 1)
                throw 42;
        },
        {.maxRetries = 0, .failFast = false});
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].error, "non-standard exception");
}

} // namespace
} // namespace dfault::par
