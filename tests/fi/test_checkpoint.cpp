/**
 * @file
 * Unit tests for the sweep checkpoint journal: config digesting, cell
 * JSON round trips, and the journal's tolerance of corrupt, stale and
 * out-of-range cell files.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "core/checkpoint.hh"
#include "fi/durable.hh"
#include "obs/deferral.hh"

namespace dfault::core {
namespace {

CharacterizationCampaign::Params
someParams()
{
    CharacterizationCampaign::Params p;
    p.workload.footprintBytes = 4 << 20;
    p.workload.workScale = 0.5;
    p.integrator.epochs = 30;
    return p;
}

std::vector<workloads::WorkloadConfig>
someSuite()
{
    return {{"kmeans", 8, "kmeans(par)"}, {"srad", 1, "srad"}};
}

std::vector<dram::OperatingPoint>
somePoints()
{
    return {{1.173, 1.428, 50.0}, {2.283, 1.428, 60.0}};
}

Measurement
someMeasurement()
{
    Measurement m;
    m.label = "kmeans(par)";
    m.threads = 8;
    m.requested = {1.173, 1.428, 50.0};
    m.achieved = {1.173, 1.428, 50.37};
    m.run.werSeries = {1e-9, 2.5e-9, 0.1 + 0.2}; // non-trivial double
    m.run.cePerDevice = {3.0, 0.0};
    m.run.wordsPerDevice = {1024.0, 1024.0};
    m.run.crashed = true;
    m.run.crashEpoch = 17;
    m.run.crashDevice = 1;
    m.run.expectedSdc = 0.125;
    m.run.allocatedWords = 2048.0;
    return m;
}

struct JournalTest : ::testing::Test
{
    std::string dir = ::testing::TempDir() + "dfault_ckpt_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();

    void TearDown() override { std::filesystem::remove_all(dir); }
};

TEST(ConfigDigest, StableForIdenticalConfigs)
{
    EXPECT_EQ(sweepConfigDigest(someParams(), someSuite(), somePoints()),
              sweepConfigDigest(someParams(), someSuite(), somePoints()));
}

TEST(ConfigDigest, SensitiveToEveryResultParameter)
{
    const auto base =
        sweepConfigDigest(someParams(), someSuite(), somePoints());

    auto p = someParams();
    p.integrator.epochs = 31;
    EXPECT_NE(sweepConfigDigest(p, someSuite(), somePoints()), base);

    p = someParams();
    p.workload.workScale = 0.75;
    EXPECT_NE(sweepConfigDigest(p, someSuite(), somePoints()), base);

    p = someParams();
    p.useThermalLoop = !p.useThermalLoop;
    EXPECT_NE(sweepConfigDigest(p, someSuite(), somePoints()), base);

    auto suite = someSuite();
    suite[0].threads = 4;
    EXPECT_NE(sweepConfigDigest(someParams(), suite, somePoints()), base);

    auto points = somePoints();
    points[1].temperature = 70.0;
    EXPECT_NE(sweepConfigDigest(someParams(), someSuite(), points), base);
}

TEST(ConfigDigest, IndependentOfResilienceKnobs)
{
    // Retry/quarantine/checkpoint settings do not change results, so a
    // journal must survive changing them between runs.
    const auto base =
        sweepConfigDigest(someParams(), someSuite(), somePoints());
    auto p = someParams();
    p.taskRetries = 9;
    p.failFast = true;
    p.checkpointDir = "/somewhere/else";
    EXPECT_EQ(sweepConfigDigest(p, someSuite(), somePoints()), base);
}

TEST(CheckpointCellJson, RoundTripIsExact)
{
    CheckpointCell cell;
    cell.cell = 3;
    cell.measurement = someMeasurement();
    cell.statOps.push_back(
        {obs::StatOp::Kind::CounterInc, "campaign.measurements",
         "characterization experiments completed", 1.0});
    cell.statOps.push_back({obs::StatOp::Kind::DistRecord,
                            "campaign.wer_log10", "log10 of WER",
                            -8.7654321012345678, -14.0, 0.0, 28});

    const std::uint64_t digest = 0xabcdef0123456789ULL;
    const std::string text = checkpointCellJson(cell, digest);

    CheckpointCell loaded;
    std::string error;
    ASSERT_TRUE(checkpointCellFromJson(text, digest, loaded, &error))
        << error;
    EXPECT_EQ(loaded.cell, 3u);
    const Measurement &m = loaded.measurement;
    const Measurement want = someMeasurement();
    EXPECT_EQ(m.label, want.label);
    EXPECT_EQ(m.threads, want.threads);
    EXPECT_DOUBLE_EQ(m.requested.trefp, want.requested.trefp);
    EXPECT_DOUBLE_EQ(m.achieved.temperature, want.achieved.temperature);
    ASSERT_EQ(m.run.werSeries.size(), want.run.werSeries.size());
    for (std::size_t i = 0; i < want.run.werSeries.size(); ++i)
        EXPECT_EQ(m.run.werSeries[i], want.run.werSeries[i])
            << "bit-exact double round trip";
    EXPECT_EQ(m.run.cePerDevice, want.run.cePerDevice);
    EXPECT_EQ(m.run.crashed, want.run.crashed);
    EXPECT_EQ(m.run.crashEpoch, want.run.crashEpoch);
    EXPECT_EQ(m.run.crashDevice, want.run.crashDevice);
    EXPECT_EQ(m.run.expectedSdc, want.run.expectedSdc);
    EXPECT_EQ(m.run.allocatedWords, want.run.allocatedWords);

    ASSERT_EQ(loaded.statOps.size(), 2u);
    EXPECT_EQ(loaded.statOps[0].kind, obs::StatOp::Kind::CounterInc);
    EXPECT_EQ(loaded.statOps[0].name, "campaign.measurements");
    EXPECT_EQ(loaded.statOps[1].kind, obs::StatOp::Kind::DistRecord);
    EXPECT_EQ(loaded.statOps[1].value, -8.7654321012345678);
    EXPECT_EQ(loaded.statOps[1].buckets, 28);
}

TEST(CheckpointCellJson, RejectsWrongDigestAndGarbage)
{
    CheckpointCell cell;
    cell.cell = 0;
    cell.measurement = someMeasurement();
    const std::string text = checkpointCellJson(cell, 1);

    CheckpointCell out;
    std::string error;
    EXPECT_FALSE(checkpointCellFromJson(text, 2, out, &error));
    EXPECT_NE(error.find("configuration"), std::string::npos);

    EXPECT_FALSE(checkpointCellFromJson("not json at all", 1, out,
                                        &error));
    EXPECT_FALSE(checkpointCellFromJson("{}", 1, out, &error));
    EXPECT_FALSE(checkpointCellFromJson(
        text.substr(0, text.size() / 2), 1, out, &error));
}

TEST_F(JournalTest, StoreLoadRoundTrip)
{
    CheckpointJournal journal;
    journal.open(dir, 42);
    ASSERT_TRUE(journal.enabled());

    CheckpointCell a;
    a.cell = 0;
    a.measurement = someMeasurement();
    CheckpointCell b;
    b.cell = 2;
    b.measurement = someMeasurement();
    b.measurement.label = "srad";
    ASSERT_TRUE(journal.store(a));
    ASSERT_TRUE(journal.store(b));

    const auto cells = journal.load(4);
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells.at(0).measurement.label, "kmeans(par)");
    EXPECT_EQ(cells.at(2).measurement.label, "srad");
}

TEST_F(JournalTest, SkipsCorruptStaleAndOutOfRangeCells)
{
    CheckpointJournal journal;
    journal.open(dir, 42);

    CheckpointCell good;
    good.cell = 1;
    good.measurement = someMeasurement();
    ASSERT_TRUE(journal.store(good));

    // Out of range for a 2-cell sweep.
    CheckpointCell outside;
    outside.cell = 7;
    outside.measurement = someMeasurement();
    ASSERT_TRUE(journal.store(outside));

    // A cell journaled by a different configuration.
    CheckpointJournal other;
    other.open(dir, 43);
    CheckpointCell stale;
    stale.cell = 0;
    stale.measurement = someMeasurement();
    ASSERT_TRUE(other.store(stale));

    // Garbage that merely looks like a cell file.
    ASSERT_TRUE(
        fi::atomicWriteFile(dir + "/cell-000099.json", "{broken"));

    const auto cells = journal.load(2);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells.begin()->first, 1u);
}

TEST_F(JournalTest, DisabledJournalLoadsNothing)
{
    CheckpointJournal journal;
    EXPECT_FALSE(journal.enabled());
    EXPECT_TRUE(journal.load(8).empty());
}

} // namespace
} // namespace dfault::core
