/**
 * @file
 * Watchdog stall detection end to end: a par::Pool-level stalled task
 * failed via its next heartbeat, an injected task.stall inside a
 * campaign sweep landing in quarantine while the sweep completes, the
 * wall-clock deadline cancelling a run, and checkpoint resume after a
 * watchdog-quarantined cell reaching the clean-run stats digest (the
 * fi.* and par.* recovery stats are digest-excluded by design).
 *
 * Injected stalls are bounded (ms=) and sized ~4x over the watchdog
 * timeout, so detection is deterministic without real hangs.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/characterization.hh"
#include "features/extractor.hh"
#include "fi/injector.hh"
#include "obs/manifest.hh"
#include "obs/stats.hh"
#include "par/cancel.hh"
#include "par/pool.hh"

namespace dfault::core {
namespace {

sys::Platform::Params
smallPlatform()
{
    sys::Platform::Params p;
    p.hierarchy.l1.sizeBytes = 16 * 1024;
    p.hierarchy.l2.sizeBytes = 1 << 20;
    p.exec.timeDilation = sys::dilationForFootprint(2 << 20);
    return p;
}

CharacterizationCampaign::Params
smallParams()
{
    CharacterizationCampaign::Params p;
    p.workload.footprintBytes = 2 << 20;
    p.workload.workScale = 0.25;
    p.integrator.epochs = 20;
    p.useThermalLoop = false;
    p.taskRetries = 0;
    return p;
}

const std::vector<workloads::WorkloadConfig> kSuite{
    {"kmeans", 8, "kmeans(par)"}, {"srad", 1, "srad"}};
const std::vector<dram::OperatingPoint> kPoints{
    {1.173, 1.428, 50.0}, {2.283, 1.428, 60.0}};

void
resetObservability()
{
    obs::Registry::instance().resetAll();
    features::ProfileCache::instance().clear();
}

struct WatchdogTest : ::testing::Test
{
    std::string dir = ::testing::TempDir() + "dfault_watchdog_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name();

    void TearDown() override
    {
        fi::Injector::instance().disarm();
        par::Pool::global().disableWatchdog();
        par::resetRootCancelToken();
        std::filesystem::remove_all(dir);
    }
};

TEST_F(WatchdogTest, HeartbeatOutsideAPoolTaskIsANoOp)
{
    par::heartbeat();
    par::heartbeatAnnotate("not in a task");
}

TEST_F(WatchdogTest, StalledTaskFailsAtItsNextHeartbeat)
{
    par::Pool pool(2);
    par::WatchdogOptions wd;
    wd.taskTimeoutSeconds = 0.1;
    wd.pollSeconds = 0.02;
    pool.enableWatchdog(wd);

    par::ResilienceOptions opts;
    opts.maxRetries = 0;
    opts.failFast = false;
    int heartbeats_survived = 0;
    const auto failures = pool.parallelForResilient(
        2,
        [&](std::size_t i, int) {
            par::heartbeat(); // first beat activates monitoring
            if (i == 1)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(400)); // 4x the timeout
            par::heartbeat(); // throws TaskTimeoutError
            ++heartbeats_survived;
        },
        opts);

    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].index, 0u);
    EXPECT_EQ(failures[0].disposition, par::TaskDisposition::Failed);
    EXPECT_NE(failures[0].error.find("watchdog"), std::string::npos);
    EXPECT_EQ(heartbeats_survived, 0);
    EXPECT_GE(obs::Registry::instance().value("par.watchdog_stalls"),
              1.0);
    pool.disableWatchdog();
}

TEST_F(WatchdogTest, StalledTaskRecoversOnRetry)
{
    par::Pool pool(1);
    par::WatchdogOptions wd;
    wd.taskTimeoutSeconds = 0.1;
    wd.pollSeconds = 0.02;
    pool.enableWatchdog(wd);

    par::ResilienceOptions opts;
    opts.maxRetries = 1;
    opts.failFast = false;
    const auto failures = pool.parallelForResilient(
        1,
        [&](std::size_t, int attempt) {
            par::heartbeat();
            if (attempt == 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(400));
                par::heartbeat();
            }
            // Retry attempt: beats stay fresh, task completes.
        },
        opts);
    EXPECT_TRUE(failures.empty());
    pool.disableWatchdog();
}

TEST_F(WatchdogTest, InjectedStallIsQuarantinedAndSweepCompletes)
{
    // One cell stalls for 1 s against a 0.25 s watchdog; with no
    // retries it must land in quarantine with a watchdog error while
    // every other cell completes normally.
    fi::Injector::instance().arm("task.stall:ms=1000,count=1");
    par::WatchdogOptions wd;
    wd.taskTimeoutSeconds = 0.25;
    wd.pollSeconds = 0.05;
    par::Pool::global().enableWatchdog(wd);

    sys::Platform platform(smallPlatform());
    CharacterizationCampaign campaign(platform, smallParams());
    const auto measurements = campaign.sweep(kSuite, kPoints);

    ASSERT_EQ(measurements.size(), 4u);
    const auto &report = campaign.lastQuarantine();
    ASSERT_EQ(report.size(), 1u);
    EXPECT_NE(report[0].error.find("watchdog"), std::string::npos);
    EXPECT_EQ(report[0].attempts, 1);
    std::size_t completed = 0;
    for (const auto &m : measurements) {
        EXPECT_FALSE(m.cancelled);
        if (!m.quarantined)
            ++completed;
    }
    EXPECT_EQ(completed, 3u);
    EXPECT_GE(obs::Registry::instance().value("par.watchdog_stalls"),
              1.0);
}

TEST_F(WatchdogTest, DeadlineCancelsTheRun)
{
    par::Pool pool(2);
    par::WatchdogOptions wd;
    wd.deadlineSeconds = 0.05;
    wd.pollSeconds = 0.01;
    par::CancelToken token = par::CancelToken::make();
    wd.deadlineToken = token;
    pool.enableWatchdog(wd);

    // Park until the deadline fires; the token is the only exit.
    par::ResilienceOptions opts;
    opts.failFast = true;
    opts.token = token;
    try {
        pool.parallelForResilient(
            2,
            [&](std::size_t, int) {
                while (true) {
                    token.throwIfCancelled();
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                }
            },
            opts);
        FAIL() << "expected CancelledError";
    } catch (const par::CancelledError &e) {
        EXPECT_EQ(e.origin(), "deadline");
        EXPECT_NE(std::string(e.what()).find("deadline"),
                  std::string::npos);
    }
    EXPECT_GE(obs::Registry::instance().value("par.deadline_cancels"),
              1.0);
    pool.disableWatchdog();
}

TEST_F(WatchdogTest, WatchdogQuarantineResumesToCleanDigest)
{
    // Serial, so the single stall budget deterministically hits the
    // first measured cell: two faulted runs must agree exactly (same
    // quarantined cell, same error text, same digest), and a fault-
    // free resume from the checkpoint must reach the digest of a run
    // that never stalled — the fi.*/par.* recovery stats are excluded
    // from the digest by name.
    par::Pool::setGlobalThreads(1);
    auto params = smallParams();
    params.checkpointDir = dir;

    resetObservability();
    sys::Platform clean_platform(smallPlatform());
    CharacterizationCampaign clean(clean_platform, smallParams());
    const auto clean_sweep = clean.sweep(kSuite, kPoints);
    const std::uint64_t clean_digest = obs::statsDigest();

    const auto faultedRun = [&](const std::string &cdir) {
        resetObservability();
        fi::Injector::instance().arm("task.stall:ms=1000,count=1");
        par::WatchdogOptions wd;
        wd.taskTimeoutSeconds = 0.25;
        wd.pollSeconds = 0.05;
        par::Pool::global().enableWatchdog(wd);
        auto p = smallParams();
        p.checkpointDir = cdir;
        sys::Platform platform(smallPlatform());
        CharacterizationCampaign campaign(platform, p);
        (void)campaign.sweep(kSuite, kPoints);
        par::Pool::global().disableWatchdog();
        fi::Injector::instance().disarm();
        return campaign.lastQuarantine();
    };

    const auto first = faultedRun(dir);
    const std::uint64_t faulted_digest = obs::statsDigest();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_NE(first[0].error.find("watchdog"), std::string::npos);

    // Replay determinism: an identical faulted run quarantines the
    // same cell with the same message and reaches the same digest.
    const std::string dir2 = dir + "-replay";
    const auto second = faultedRun(dir2);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].cell, first[0].cell);
    EXPECT_EQ(second[0].error, first[0].error);
    EXPECT_EQ(second[0].attempts, first[0].attempts);
    EXPECT_EQ(obs::statsDigest(), faulted_digest);
    std::filesystem::remove_all(dir2);

    // The recovery stats exist but are digest-excluded.
    EXPECT_TRUE(obs::digestExcludes("fi.quarantined_slots"));
    EXPECT_TRUE(obs::digestExcludes("par.watchdog_stalls"));
    EXPECT_TRUE(obs::digestExcludes("par.cancelled_tasks"));
    EXPECT_TRUE(obs::digestExcludes("par.deadline_cancels"));

    // Fault-free resume: the journaled cells replay, the quarantined
    // one is re-measured, and the digest matches the never-stalled
    // run bit for bit.
    resetObservability();
    sys::Platform resumed_platform(smallPlatform());
    CharacterizationCampaign resumed(resumed_platform, params);
    const auto full = resumed.sweep(kSuite, kPoints);
    EXPECT_TRUE(resumed.lastQuarantine().empty());
    ASSERT_EQ(full.size(), clean_sweep.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        EXPECT_FALSE(full[i].quarantined);
        EXPECT_EQ(full[i].run.werSeries, clean_sweep[i].run.werSeries)
            << "cell " << i;
    }
    EXPECT_EQ(obs::statsDigest(), clean_digest)
        << "watchdog-quarantine then resume must reach the clean digest";
    par::Pool::setGlobalThreads(8);
}

} // namespace
} // namespace dfault::core
