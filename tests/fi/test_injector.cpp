/**
 * @file
 * Unit tests for the deterministic fault injector: spec parsing, the
 * firing gates (every/max_attempt/count/after/rate), schedule
 * determinism, and the fault helpers.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <vector>

#include "fi/injector.hh"

namespace dfault::fi {
namespace {

/** Arm/disarm around each test so tests cannot leak armed points. */
struct InjectorTest : ::testing::Test
{
    void TearDown() override { Injector::instance().disarm(); }
};

TEST_F(InjectorTest, UnarmedPointsNeverFire)
{
    auto &inj = Injector::instance();
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.shouldFire("task.throw", 0));
    inj.maybeThrow("task.throw", 0); // no-op, must not throw
    EXPECT_DOUBLE_EQ(inj.corruptDouble("measure.nan", 0, 1.5), 1.5);
}

TEST_F(InjectorTest, DefaultSpecFiresAlways)
{
    auto &inj = Injector::instance();
    inj.arm("task.throw");
    EXPECT_TRUE(inj.armed());
    for (std::uint64_t key = 0; key < 5; ++key)
        EXPECT_TRUE(inj.shouldFire("task.throw", key));
    EXPECT_EQ(inj.firedCount("task.throw"), 5u);
    // Other points stay dormant.
    EXPECT_FALSE(inj.shouldFire("io.open", 0));
}

TEST_F(InjectorTest, FaultErrorCarriesThePointName)
{
    auto &inj = Injector::instance();
    inj.arm("task.throw");
    try {
        inj.maybeThrow("task.throw", 7);
        FAIL() << "expected FaultError";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.point(), "task.throw");
        EXPECT_NE(std::string(e.what()).find("task.throw"),
                  std::string::npos);
    }
}

TEST_F(InjectorTest, EveryGateSelectsByKey)
{
    auto &inj = Injector::instance();
    inj.arm("task.throw:every=3");
    for (std::uint64_t key = 0; key < 9; ++key)
        EXPECT_EQ(inj.shouldFire("task.throw", key), key % 3 == 0)
            << "key " << key;
}

TEST_F(InjectorTest, MaxAttemptLetsRetriesRecover)
{
    auto &inj = Injector::instance();
    inj.arm("task.throw:max_attempt=1");
    EXPECT_TRUE(inj.shouldFire("task.throw", 4, 0));
    EXPECT_FALSE(inj.shouldFire("task.throw", 4, 1));
    EXPECT_FALSE(inj.shouldFire("task.throw", 4, 2));
}

TEST_F(InjectorTest, CountBudgetIsConsumedByFires)
{
    auto &inj = Injector::instance();
    inj.arm("io.write:count=2");
    int fired = 0;
    for (std::uint64_t key = 0; key < 10; ++key)
        fired += inj.shouldFire("io.write", key) ? 1 : 0;
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(inj.firedCount("io.write"), 2u);
}

TEST_F(InjectorTest, AfterSkipsTheFirstChecks)
{
    auto &inj = Injector::instance();
    inj.arm("sweep.kill:after=3");
    EXPECT_FALSE(inj.shouldFire("sweep.kill", 0));
    EXPECT_FALSE(inj.shouldFire("sweep.kill", 1));
    EXPECT_FALSE(inj.shouldFire("sweep.kill", 2));
    EXPECT_TRUE(inj.shouldFire("sweep.kill", 3));
}

TEST_F(InjectorTest, RateScheduleIsDeterministic)
{
    auto &inj = Injector::instance();
    const auto run = [&inj] {
        std::vector<bool> fires;
        for (std::uint64_t key = 0; key < 64; ++key)
            fires.push_back(inj.shouldFire("task.throw", key));
        return fires;
    };
    inj.arm("task.throw:rate=0.5,seed=11");
    const auto first = run();
    inj.disarm();
    inj.arm("task.throw:rate=0.5,seed=11");
    EXPECT_EQ(run(), first);

    // A different seed produces a different schedule.
    inj.disarm();
    inj.arm("task.throw:rate=0.5,seed=12");
    EXPECT_NE(run(), first);

    // Roughly half the keys fire (it is a uniform draw).
    int fired = 0;
    for (const bool f : first)
        fired += f ? 1 : 0;
    EXPECT_GT(fired, 16);
    EXPECT_LT(fired, 48);
}

TEST_F(InjectorTest, MultiPointSpecsAndFiredCounts)
{
    auto &inj = Injector::instance();
    inj.arm("task.throw:every=2;io.open:count=1");
    EXPECT_TRUE(inj.shouldFire("task.throw", 0));
    EXPECT_FALSE(inj.shouldFire("task.throw", 1));
    EXPECT_TRUE(inj.shouldFire("io.open", 0));
    EXPECT_FALSE(inj.shouldFire("io.open", 2));

    const auto counts = inj.firedCounts();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0].first, "io.open");
    EXPECT_EQ(counts[0].second, 1u);
    EXPECT_EQ(counts[1].first, "task.throw");
    EXPECT_EQ(counts[1].second, 1u);
}

TEST_F(InjectorTest, CorruptDoubleYieldsNan)
{
    auto &inj = Injector::instance();
    inj.arm("measure.nan:count=1");
    const double corrupted = inj.corruptDouble("measure.nan", 0, 2.0);
    EXPECT_TRUE(std::isnan(corrupted));
    // Budget exhausted: the next value passes through.
    EXPECT_DOUBLE_EQ(inj.corruptDouble("measure.nan", 1, 2.0), 2.0);
}

TEST_F(InjectorTest, MaybeStallSleepsForTheConfiguredMs)
{
    auto &inj = Injector::instance();
    inj.arm("task.stall:ms=50,count=1");
    const auto before = std::chrono::steady_clock::now();
    EXPECT_TRUE(inj.maybeStall("task.stall", 0));
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - before);
    EXPECT_GE(elapsed.count(), 0.045);
    // Budget exhausted: subsequent checks pass through instantly.
    EXPECT_FALSE(inj.maybeStall("task.stall", 1));
    EXPECT_EQ(inj.firedCount("task.stall"), 1u);
}

TEST_F(InjectorTest, MaybeStallIsANoOpWhenUnarmed)
{
    EXPECT_FALSE(Injector::instance().maybeStall("task.stall", 0));
}

TEST_F(InjectorTest, DisarmForgetsEverything)
{
    auto &inj = Injector::instance();
    inj.arm("task.throw");
    ASSERT_TRUE(inj.shouldFire("task.throw", 0));
    inj.disarm();
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.shouldFire("task.throw", 0));
    EXPECT_EQ(inj.firedCount("task.throw"), 0u);
}

TEST_F(InjectorTest, RearmingReplacesTheSpec)
{
    auto &inj = Injector::instance();
    inj.arm("task.throw:every=2");
    inj.arm("task.throw:every=5");
    EXPECT_FALSE(inj.shouldFire("task.throw", 2));
    EXPECT_TRUE(inj.shouldFire("task.throw", 5));
}

using InjectorDeath = InjectorTest;

TEST_F(InjectorDeath, MalformedSpecsAreFatal)
{
    auto &inj = Injector::instance();
    EXPECT_EXIT(inj.arm("bad point!"), ::testing::ExitedWithCode(1),
                "point name");
    EXPECT_EXIT(inj.arm("task.throw:rate=2"),
                ::testing::ExitedWithCode(1), "rate");
    EXPECT_EXIT(inj.arm("task.throw:bogus=1"),
                ::testing::ExitedWithCode(1), "bogus");
    EXPECT_EXIT(inj.arm("task.throw:every=x"),
                ::testing::ExitedWithCode(1), "every");
    // Stalls are bounded by design: 10 minutes is the ceiling.
    EXPECT_EXIT(inj.arm("task.stall:ms=600001"),
                ::testing::ExitedWithCode(1), "ms must be in");
    EXPECT_EXIT(inj.arm("task.stall:ms=-1"),
                ::testing::ExitedWithCode(1), "ms must be in");
    // A negative below= would silently wrap through strtoull into a
    // huge threshold, turning "never fire" into "always fire"; the
    // parser must name the key instead, matching the ms= diagnostic.
    EXPECT_EXIT(inj.arm("task.throw:below=-1"),
                ::testing::ExitedWithCode(1), "below must be >= 0");
    EXPECT_EXIT(inj.arm("task.throw:below=-1000"),
                ::testing::ExitedWithCode(1), "below must be >= 0");
}

} // namespace
} // namespace dfault::fi
