/**
 * @file
 * Unit tests for the key/value configuration store.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

namespace dfault {
namespace {

TEST(Config, FallbacksWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getString("missing", "dflt"), "dflt");
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 2.5), 2.5);
    EXPECT_EQ(c.getInt("missing", -7), -7);
    EXPECT_TRUE(c.getBool("missing", true));
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, TypedRoundTrips)
{
    Config c;
    c.set("s", std::string("hello"));
    c.set("d", 3.25);
    c.set("i", std::int64_t{-42});
    c.set("b", true);
    EXPECT_EQ(c.getString("s"), "hello");
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0.0), 3.25);
    EXPECT_EQ(c.getInt("i", 0), -42);
    EXPECT_TRUE(c.getBool("b", false));
    EXPECT_TRUE(c.has("s"));
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on"}) {
        c.set("k", std::string(t));
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        c.set("k", std::string(f));
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
}

TEST(Config, ParseArgsSplitsOnEquals)
{
    Config c;
    const char *argv[] = {"prog", "a.b=3", "positional", "flag=on",
                          "weird=x=y"};
    const auto rest = c.parseArgs(5, argv);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], "positional");
    EXPECT_EQ(c.getInt("a.b", 0), 3);
    EXPECT_TRUE(c.getBool("flag", false));
    EXPECT_EQ(c.getString("weird"), "x=y");
}

TEST(Config, IntAcceptsHex)
{
    Config c;
    c.set("k", std::string("0x10"));
    EXPECT_EQ(c.getInt("k", 0), 16);
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("b", std::int64_t{1});
    c.set("a", std::int64_t{2});
    const auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
}

TEST(ConfigDeath, MalformedNumberIsFatal)
{
    Config c;
    c.set("k", std::string("not_a_number"));
    EXPECT_EXIT((void)c.getDouble("k", 0.0),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT((void)c.getInt("k", 0), ::testing::ExitedWithCode(1),
                "not an integer");
    EXPECT_EXIT((void)c.getBool("k", false),
                ::testing::ExitedWithCode(1), "not a boolean");
}

} // namespace
} // namespace dfault
