/**
 * @file
 * Unit tests for the physical-unit literals and constants.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace dfault {
namespace {

using namespace units::literals;

TEST(Units, TimeLiterals)
{
    EXPECT_DOUBLE_EQ(64_ms, 0.064);
    EXPECT_DOUBLE_EQ(2.283_sec, 2.283);
    EXPECT_DOUBLE_EQ(7.8125_us, 7.8125e-6);
    EXPECT_DOUBLE_EQ(260_ns, 260e-9);
    EXPECT_DOUBLE_EQ(120_minutes, 7200.0);
    EXPECT_DOUBLE_EQ(1.5_minutes, 90.0);
}

TEST(Units, ElectricalAndThermalLiterals)
{
    EXPECT_DOUBLE_EQ(1.5_volt, 1.5);
    EXPECT_DOUBLE_EQ(1428_mvolt, 1.428);
    EXPECT_DOUBLE_EQ(70_celsius, 70.0);
    EXPECT_DOUBLE_EQ(52.5_celsius, 52.5);
}

TEST(Units, CapacityLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(16_MiB, 16u * 1024 * 1024);
    EXPECT_EQ(8_GiB, 8ull << 30);
}

TEST(Units, EccWordConstants)
{
    EXPECT_EQ(units::bytesPerWord, 8u);
    EXPECT_EQ(units::dataBitsPerWord, 64);
    EXPECT_EQ(units::checkBitsPerWord, 8);
    EXPECT_EQ(units::totalBitsPerWord, 72);
    EXPECT_EQ(units::dataBitsPerWord + units::checkBitsPerWord,
              units::totalBitsPerWord);
}

TEST(Units, LiteralsComposeInExpressions)
{
    // 8 GiB of 64-bit words — the paper's per-run allocation.
    EXPECT_DOUBLE_EQ(static_cast<double>(8_GiB / units::bytesPerWord),
                     1073741824.0);
    // Refresh commands per nominal period at DDR3's tREFI.
    EXPECT_NEAR((64_ms) / (7.8125_us), 8192.0, 1e-9);
}

} // namespace
} // namespace dfault
