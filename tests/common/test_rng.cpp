/**
 * @file
 * Unit tests for the deterministic RNG and its distribution helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "stats/summary.hh"

namespace dfault {
namespace {

TEST(SplitMix, IsDeterministicAndAdvancesState)
{
    std::uint64_t a = 1, b = 1;
    EXPECT_EQ(splitMix64(a), splitMix64(b));
    EXPECT_EQ(a, b);
    EXPECT_NE(splitMix64(a), splitMix64(a));
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
    EXPECT_EQ(hashCombine(17, 42), hashCombine(17, 42));
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(123), b(124);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentContinuation)
{
    Rng parent(7);
    Rng child = parent.fork(1);
    // Child stream should not simply replay the parent.
    int equal = 0;
    Rng parent2(7);
    (void)parent2.fork(1);
    for (int i = 0; i < 64; ++i)
        equal += child.next() == parent.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsReproducible)
{
    Rng a(7), b(7);
    Rng ca = a.fork(5), cb = b.fork(5);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversDomain)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.uniformInt(std::uint64_t{7});
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniformInt(std::int64_t{-2}, 3);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    stats::RunningStats s;
    for (int i = 0; i < 200000; ++i)
        s.add(rng.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.02);
    EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalShiftScale)
{
    Rng rng(6);
    stats::RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMedian)
{
    Rng rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 100000; ++i)
        xs.push_back(rng.lognormal(1.0, 0.5));
    EXPECT_NEAR(stats::median(xs), std::exp(1.0), 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(8);
    stats::RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(rng.exponential(4.0));
    EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(9);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(Rng, BernoulliRate)
{
    Rng rng(10);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

/** Poisson mean/variance across a range of intensities, including the
 *  small-mean (Knuth) and large-mean (normal approximation) regimes. */
class PoissonTest : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonTest, MeanAndVarianceMatch)
{
    const double mean = GetParam();
    Rng rng(42 + static_cast<std::uint64_t>(mean * 100));
    stats::RunningStats s;
    for (int i = 0; i < 100000; ++i)
        s.add(static_cast<double>(rng.poisson(mean)));
    EXPECT_NEAR(s.mean(), mean, 0.05 * mean + 0.02);
    EXPECT_NEAR(s.variance(), mean, 0.08 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Intensities, PoissonTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 12.0, 40.0,
                                           150.0));

TEST(Rng, PoissonZeroMean)
{
    Rng rng(11);
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-3.0), 0u);
}

} // namespace
} // namespace dfault
