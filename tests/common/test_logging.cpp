/**
 * @file
 * Unit tests for the panic/fatal/warn reporting helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace dfault {
namespace {

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("x=", 3, " y=", 2.5), "x=3 y=2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, QuietToggle)
{
    detail::setQuiet(true);
    EXPECT_TRUE(detail::quiet());
    detail::setQuiet(false);
    EXPECT_FALSE(detail::quiet());
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ DFAULT_PANIC("boom ", 42); }, "panic: boom 42");
}

TEST(LoggingDeath, FatalExitsWithError)
{
    EXPECT_EXIT({ DFAULT_FATAL("bad config ", 7); },
                ::testing::ExitedWithCode(1), "fatal: bad config 7");
}

TEST(LoggingDeath, AssertFiresOnFalse)
{
    EXPECT_DEATH({ DFAULT_ASSERT(1 == 2, "math broke"); },
                 "assertion failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    DFAULT_ASSERT(2 + 2 == 4, "never printed");
    SUCCEED();
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    detail::setQuiet(true); // keep test output clean
    DFAULT_WARN("warning message");
    DFAULT_INFORM("info message");
    detail::setQuiet(false);
    SUCCEED();
}

} // namespace
} // namespace dfault
