/**
 * @file
 * Unit tests for the 249-feature catalog.
 */

#include <gtest/gtest.h>

#include <set>

#include "features/catalog.hh"

namespace dfault::features {
namespace {

TEST(Catalog, HasExactly249Features)
{
    // The count is part of the paper's identity: 247 counter metrics
    // plus Treuse and HDP.
    EXPECT_EQ(FeatureCatalog::instance().size(), 249u);
    EXPECT_EQ(kFeatureCount, 249u);
}

TEST(Catalog, NamesAreUnique)
{
    const auto &names = FeatureCatalog::instance().names();
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(Catalog, HeadlineIndicesMatchNames)
{
    const auto &c = FeatureCatalog::instance();
    EXPECT_EQ(c.name(kMemAccessesPerCycle), "mem_accesses_per_cycle");
    EXPECT_EQ(c.name(kWaitCyclesRatio), "wait_cycles_ratio");
    EXPECT_EQ(c.name(kHdpEntropy), "hdp_entropy");
    EXPECT_EQ(c.name(kTreuseSeconds), "treuse_seconds");
    EXPECT_EQ(c.name(kIpc), "ipc");
    EXPECT_EQ(c.name(kCpuUtilization), "cpu_utilization");
}

TEST(Catalog, IndexInvertsName)
{
    const auto &c = FeatureCatalog::instance();
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c.index(c.name(i)), i);
}

TEST(Catalog, ContainsChecks)
{
    const auto &c = FeatureCatalog::instance();
    EXPECT_TRUE(c.contains("l1_miss_ratio"));
    EXPECT_TRUE(c.contains("bit63_one_prob"));
    EXPECT_FALSE(c.contains("no_such_feature"));
}

TEST(CatalogDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)FeatureCatalog::instance().index("bogus"),
                ::testing::ExitedWithCode(1), "unknown feature");
}

TEST(FeatureVector, DefaultsToZeros)
{
    FeatureVector v;
    EXPECT_EQ(v.size(), kFeatureCount);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(FeatureVector, NamedAccess)
{
    FeatureVector v;
    v.set("ipc", 1.5);
    EXPECT_DOUBLE_EQ(v.get("ipc"), 1.5);
    EXPECT_DOUBLE_EQ(v[kIpc], 1.5);
    v[kHdpEntropy] = 20.0;
    EXPECT_DOUBLE_EQ(v.get("hdp_entropy"), 20.0);
}

} // namespace
} // namespace dfault::features
