/**
 * @file
 * ProfileCache under concurrent access from pool workers: one
 * extraction per key regardless of how many workers race for it, and
 * entry pointers that stay valid as the cache grows.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "features/extractor.hh"
#include "obs/stats.hh"
#include "par/pool.hh"

namespace dfault::features {
namespace {

workloads::Workload::Params
smallParams()
{
    workloads::Workload::Params p;
    p.footprintBytes = 1 << 20;
    p.workScale = 0.25;
    return p;
}

TEST(ProfileCache, ConcurrentSameKeyExtractsOnce)
{
    ProfileCache::instance().clear();

    // One platform per execution slot: extraction mutates the platform
    // it profiles on, so concurrent callers must not share one.
    par::Pool pool(8);
    std::vector<sys::Platform> platforms(
        static_cast<std::size_t>(pool.slots()));

    auto &runs = obs::Registry::instance().counter(
        "profile.runs", "workload profiling runs");
    const std::uint64_t before = runs.value();

    const workloads::WorkloadConfig config{"random", 8, "random"};
    std::vector<const WorkloadProfile *> seen(16, nullptr);
    pool.parallelFor(seen.size(), [&](std::size_t i) {
        auto &platform =
            platforms[static_cast<std::size_t>(par::Pool::currentSlot())];
        seen[i] = &ProfileCache::instance().get(platform, config,
                                                smallParams());
    });

    // Every caller saw the same heap entry, computed exactly once.
    for (const auto *profile : seen) {
        ASSERT_NE(profile, nullptr);
        EXPECT_EQ(profile, seen[0]);
    }
    EXPECT_EQ(runs.value(), before + 1);
    EXPECT_EQ(seen[0]->label, "random");
}

TEST(ProfileCache, EntryPointersSurviveLaterInsertions)
{
    ProfileCache::instance().clear();
    sys::Platform platform;

    const workloads::WorkloadConfig first{"random", 8, "random"};
    const WorkloadProfile *pinned =
        &ProfileCache::instance().get(platform, first, smallParams());

    // Grow the cache past its first allocation with distinct keys.
    for (const int threads : {1, 2, 3, 4}) {
        const workloads::WorkloadConfig other{
            "random", threads, "random" + std::to_string(threads)};
        ProfileCache::instance().get(platform, other, smallParams());
    }

    const WorkloadProfile *again =
        &ProfileCache::instance().get(platform, first, smallParams());
    EXPECT_EQ(again, pinned);
    EXPECT_EQ(pinned->threads, 8);
}

} // namespace
} // namespace dfault::features
