/**
 * @file
 * Unit and behavioural tests for the profiling phase (feature
 * extraction).
 */

#include <gtest/gtest.h>

#include "features/extractor.hh"

namespace dfault::features {
namespace {

sys::Platform &
sharedPlatform()
{
    static sys::Platform platform;
    return platform;
}

workloads::Workload::Params
smallParams()
{
    workloads::Workload::Params p;
    p.footprintBytes = 2 << 20;
    p.workScale = 0.5;
    return p;
}

const WorkloadProfile &
sradProfile()
{
    static const WorkloadProfile profile = extractProfile(
        sharedPlatform(), {"srad", 8, "srad(par)"}, smallParams());
    return profile;
}

TEST(Extractor, ProfileIdentity)
{
    const auto &p = sradProfile();
    EXPECT_EQ(p.label, "srad(par)");
    EXPECT_EQ(p.threads, 8);
    EXPECT_GT(p.footprintWords, 100000u);
    EXPECT_GT(p.wallSeconds, 0.0);
}

TEST(Extractor, HeadlineFeaturesPopulated)
{
    const auto &f = sradProfile().features;
    EXPECT_GT(f[kMemAccessesPerCycle], 0.0);
    EXPECT_GT(f[kIpc], 0.0);
    EXPECT_LE(f[kIpc], 1.0); // in-order core cannot exceed 1
    EXPECT_GT(f[kWaitCyclesRatio], 0.0);
    EXPECT_LT(f[kWaitCyclesRatio], 1.0);
    EXPECT_GT(f[kHdpEntropy], 0.0);
    EXPECT_GT(f[kTreuseSeconds], 0.0);
    EXPECT_GT(f[kCpuUtilization], 0.5); // 8 threads on 8 cores
}

TEST(Extractor, CacheAndMcuFeaturesConsistent)
{
    const auto &f = sradProfile().features;
    EXPECT_GT(f.get("l1_read_accesses_per_kc"), 0.0);
    EXPECT_GT(f.get("l2_miss_ratio"), 0.0);
    EXPECT_LE(f.get("l2_miss_ratio"), 1.0);
    double mcu_cmds = 0.0;
    for (int m = 0; m < 4; ++m)
        mcu_cmds += f.get("mcu" + std::to_string(m) +
                          "_read_cmds_per_kc") +
                    f.get("mcu" + std::to_string(m) +
                          "_write_cmds_per_kc");
    EXPECT_NEAR(mcu_cmds, f.get("dram_cmds_per_kc"), 1e-6);
    for (int m = 0; m < 4; ++m) {
        const double hit_ratio =
            f.get("mcu" + std::to_string(m) + "_row_hit_ratio");
        EXPECT_GE(hit_ratio, 0.0);
        EXPECT_LE(hit_ratio, 1.0);
    }
}

TEST(Extractor, BankSharesSumToOnePerChannel)
{
    const auto &f = sradProfile().features;
    for (int ch = 0; ch < 4; ++ch) {
        double sum = 0.0;
        for (int b = 0; b < 8; ++b)
            sum += f.get("ch" + std::to_string(ch) + "_bank" +
                         std::to_string(b) + "_act_share");
        EXPECT_NEAR(sum, 1.0, 1e-6) << "channel " << ch;
    }
}

TEST(Extractor, DeviceSharesSumToOne)
{
    const auto &f = sradProfile().features;
    double sum = 0.0;
    for (int d = 0; d < 8; ++d)
        sum += f.get("dev" + std::to_string(d) +
                     "_words_touched_share");
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Extractor, RowStatisticsCoverTouchedFootprint)
{
    const auto &p = sradProfile();
    std::uint64_t rows = 0;
    double touched_words = 0.0;
    for (const auto &dev : p.deviceRows) {
        rows += dev.size();
        for (const auto &r : dev) {
            EXPECT_GT(r.accessRate, 0.0);
            EXPECT_GE(r.activationRate, 0.0);
            EXPECT_GE(r.longestGap, 0.0);
            EXPECT_GT(r.touchedWords, 0);
            touched_words += r.touchedWords;
        }
    }
    EXPECT_GT(rows, 100u);
    // Touched words roughly cover the allocated footprint.
    EXPECT_GT(touched_words,
              0.5 * static_cast<double>(p.footprintWords));
}

TEST(Extractor, BitProbabilitiesAreProbabilities)
{
    const auto &p = sradProfile();
    for (const double prob : p.bitOneProb) {
        EXPECT_GE(prob, 0.0);
        EXPECT_LE(prob, 1.0);
    }
}

TEST(Extractor, UnusedThreadSlotsStayZero)
{
    // A 1-thread profile must leave thread1..7 features at zero.
    const WorkloadProfile p = extractProfile(
        sharedPlatform(), {"kmeans", 1, "kmeans"}, smallParams());
    EXPECT_GT(p.features.get("thread0_ipc"), 0.0);
    for (int t = 1; t < 8; ++t)
        EXPECT_DOUBLE_EQ(
            p.features.get("thread" + std::to_string(t) + "_ipc"),
            0.0);
}

TEST(ProfileCache, ReturnsSameObjectForSameKey)
{
    auto &cache = ProfileCache::instance();
    const workloads::WorkloadConfig config{"kmeans", 1, "kmeans"};
    const auto params = smallParams();
    const WorkloadProfile &a =
        cache.get(sharedPlatform(), config, params);
    const WorkloadProfile &b =
        cache.get(sharedPlatform(), config, params);
    EXPECT_EQ(&a, &b);
}

TEST(Extractor, SupportsSmallerCustomGeometries)
{
    // A 2-channel platform must profile cleanly; the catalog's
    // channel-2/3 features simply stay zero.
    sys::Platform::Params pp;
    pp.geometry.channels = 2;
    pp.exec.timeDilation = sys::dilationForFootprint(1 << 20);
    sys::Platform platform(pp);
    workloads::Workload::Params wp;
    wp.footprintBytes = 1 << 20;
    wp.workScale = 0.5;
    const WorkloadProfile p =
        extractProfile(platform, {"kmeans", 1, "kmeans"}, wp);
    EXPECT_GT(p.features.get("mcu0_read_cmds_per_kc"), 0.0);
    EXPECT_DOUBLE_EQ(p.features.get("mcu2_read_cmds_per_kc"), 0.0);
    EXPECT_DOUBLE_EQ(p.features.get("mcu3_read_cmds_per_kc"), 0.0);
}

TEST(ProfileCache, DistinguishesThreadCounts)
{
    auto &cache = ProfileCache::instance();
    const auto params = smallParams();
    const WorkloadProfile &serial = cache.get(
        sharedPlatform(), {"kmeans", 1, "kmeans"}, params);
    const WorkloadProfile &parallel = cache.get(
        sharedPlatform(), {"kmeans", 8, "kmeans(par)"}, params);
    EXPECT_NE(&serial, &parallel);
    EXPECT_NE(serial.features[kCpuUtilization],
              parallel.features[kCpuUtilization]);
}

} // namespace
} // namespace dfault::features
