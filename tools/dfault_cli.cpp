/**
 * @file
 * `dfault` — the command-line front end of the library, mirroring the
 * publicly released model of the paper.
 *
 * Subcommands:
 *   profile <kernel>        print the program features of a workload
 *   characterize <kernel>   run one characterization experiment
 *   sweep <out.csv>         run the full campaign, export the dataset
 *   evaluate                LOBO accuracy of SVM/KNN/RDF on a sweep
 *   predict <kernel>        train on the standard suite, predict the
 *                           given workload's WER per device
 *
 * Every subcommand accepts key=value overrides:
 *   footprint_mib=16 work_scale=1.0 epochs=120 trefp_s=2.283
 *   temp_c=50 vdd_v=1.428 threads=8 input_set=1 model=knn
 *
 * Telemetry flags (see docs/observability.md):
 *   --stats-out=<path>     dump the stats registry after the command
 *                          (.json suffix selects JSON, else gem5-style
 *                          text); also writes <path>.manifest.json
 *   --trace-out=<path>     stream JSONL events ("-" for stderr)
 *   --trace-events=<path>  record spans and export a Perfetto /
 *                          chrome://tracing trace-event JSON; prints
 *                          the exclusive-time critical-path summary
 *   --manifest-out=<path>  write the run provenance manifest here
 *                          (default <stats-out>.manifest.json)
 *   --progress             one-line progress updates on stderr
 *   --perf-counters        per-phase hardware-counter attribution
 *                          (perf.phase.<path>.*) and a perf table at
 *                          exit; reads zero where perf_event_open is
 *                          unavailable (VMs, perf_event_paranoid)
 *   --alloc-track          per-phase heap allocation attribution
 *                          (alloc.phase.<path>.bytes/.allocs)
 *   --metrics-out=<path>   stream OpenMetrics snapshots here: the
 *                          sampler thread atomically rewrites the file
 *                          every tick, so scrapers always read a
 *                          complete document
 *   --metrics-port=<port>  additionally serve GET /metrics on
 *                          127.0.0.1:<port> (0 picks a free port)
 *   --sample-interval=<d>  sampler cadence, e.g. 100ms / 2s
 *                          (default 100ms)
 *   slo=<spec>[,<spec>...] declare SLO targets evaluated every tick,
 *                          e.g. slo=campaign.cell_ns:p99<5ms; breaches
 *                          emit slo_breach JSONL events and a verdict
 *                          table in the manifest's "slo" section
 *
 * Robustness overrides (see docs/robustness.md):
 *   faults=<spec>    arm fault-injection points (fi/injector.hh)
 *   checkpoint=<dir> journal sweep cells; resume from them on re-run
 *   retries=<n>      per-cell retries before quarantine (default 2)
 *   fail_fast=true   abort a sweep on an exhausted cell
 *   task_timeout=<s> watchdog flags a task silent for this long; the
 *                    task is failed at its next heartbeat and retried
 *                    or quarantined like any other failure
 *   deadline=<s>     cancel the whole run after this much wall time
 *   --quarantine-out=<path>  quarantine report destination (default
 *                          <stats-out>.quarantine.json)
 *
 * SIGINT/SIGTERM cancel the run cooperatively: in-flight work drains,
 * checkpoints flush, and all artifacts above are still written, with
 * the manifest marked "interrupted": true. A second signal exits
 * immediately. Exit code is 130 (SIGINT) / 143 (SIGTERM).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <cstring>
#include <string_view>

#include "common/config.hh"
#include "common/logging.hh"
#include "obs/alloc_tracker.hh"
#include "obs/events.hh"
#include "obs/perf_counters.hh"
#include "obs/manifest.hh"
#include "obs/sampler.hh"
#include "obs/span.hh"
#include "obs/stats.hh"
#include "obs/trace_writer.hh"
#include "core/dataset_builder.hh"
#include "core/report.hh"
#include "par/cancel.hh"
#include "par/pool.hh"
#include "par/shutdown.hh"
#include "core/error_model.hh"
#include "core/trainer.hh"
#include "features/extractor.hh"
#include "fi/injector.hh"
#include "ml/io.hh"
#include "sys/platform.hh"

using namespace dfault;

namespace {

struct Cli
{
    Config config;
    std::vector<std::string> positional;
    std::string statsOut;
    std::string traceEvents;
    std::string manifestOut;
    std::string quarantineOut;
    std::string commandLine;
    std::string metricsOut;
    std::string sampleInterval;
    int metricsPort = -1;
    bool perfCounters = false;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    std::unique_ptr<sys::Platform> platform;
    std::unique_ptr<core::CharacterizationCampaign> campaign;

    Cli(int argc, char **argv)
    {
        for (int i = 0; i < argc; ++i) {
            if (i > 0)
                commandLine += ' ';
            commandLine += argv[i];
        }
        // Telemetry flags are peeled off before key=value parsing so
        // they never collide with config keys or positionals.
        std::vector<char *> args;
        args.reserve(static_cast<std::size_t>(argc));
        for (int i = 0; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.starts_with("--stats-out="))
                statsOut = arg.substr(12);
            else if (arg.starts_with("--trace-out="))
                obs::EventSink::instance().open(
                    std::string(arg.substr(12)));
            else if (arg.starts_with("--trace-events=")) {
                traceEvents = arg.substr(15);
                obs::SpanTracer::instance().enable();
            } else if (arg.starts_with("--manifest-out="))
                manifestOut = arg.substr(15);
            else if (arg.starts_with("--quarantine-out="))
                quarantineOut = arg.substr(17);
            else if (arg == "--progress")
                obs::setProgress(true);
            else if (arg == "--perf-counters") {
                perfCounters = true;
                obs::PerfCounters::setPhaseProfiling(true);
                const auto &pc = obs::PerfCounters::threadInstance();
                if (!pc.available())
                    DFAULT_INFORM("perf counters unavailable (",
                                  pc.unavailableReason(),
                                  "); perf.* stats will read zero");
            } else if (arg == "--alloc-track")
                obs::AllocTracker::enable();
            else if (arg.starts_with("--metrics-out="))
                metricsOut = arg.substr(14);
            else if (arg.starts_with("--metrics-port=")) {
                const std::string port(arg.substr(15));
                char *end = nullptr;
                const long v = std::strtol(port.c_str(), &end, 10);
                if (end == port.c_str() || *end != '\0' || v < 0 ||
                    v > 65535)
                    DFAULT_FATAL("--metrics-port must be in [0, 65535],"
                                 " got '", port, "'");
                metricsPort = static_cast<int>(v);
            } else if (arg.starts_with("--sample-interval="))
                sampleInterval = arg.substr(18);
            else if (i > 0 && arg.starts_with("--"))
                DFAULT_FATAL("unknown flag '", std::string(arg),
                             "'; telemetry flags are --stats-out=, "
                             "--trace-out=, --trace-events=, "
                             "--manifest-out=, --quarantine-out=, "
                             "--progress, --perf-counters, "
                             "--alloc-track, --metrics-out=, "
                             "--metrics-port=, --sample-interval=");
            else
                args.push_back(argv[i]);
        }
        positional = config.parseArgs(static_cast<int>(args.size()),
                                      args.data());

        // Touching the injector here validates a malformed
        // DFAULT_FAULTS spec up front, even on runs that never reach a
        // fault point.
        const std::string faults = config.getString("faults", "");
        if (!faults.empty())
            fi::Injector::instance().arm(faults);
        else
            (void)fi::Injector::instance();

        sys::Platform::Params pp;
        const std::uint64_t footprint =
            static_cast<std::uint64_t>(
                config.getIntIn("footprint_mib", 16, 1, 1 << 20))
            << 20;
        pp.exec.timeDilation = sys::dilationForFootprint(footprint);
        platform = std::make_unique<sys::Platform>(pp);

        core::CharacterizationCampaign::Params cp;
        cp.workload.footprintBytes = footprint;
        cp.workload.workScale =
            config.getDoubleIn("work_scale", 1.0, 1e-6, 1000.0);
        cp.integrator.epochs = static_cast<int>(
            config.getIntIn("epochs", 120, 1, 1000000));
        cp.useThermalLoop = config.getBool("thermal_loop", true);
        cp.taskRetries = static_cast<int>(
            config.getIntIn("retries", cp.taskRetries, 0, 1000));
        cp.failFast = config.getBool("fail_fast", cp.failFast);
        cp.checkpointDir = config.getString("checkpoint", "");
        campaign = std::make_unique<core::CharacterizationCampaign>(
            *platform, cp);

        // Supervision: a watchdog for silent tasks and a wall-clock
        // deadline for the whole run. 0 (the default) disables each.
        par::WatchdogOptions wd;
        wd.taskTimeoutSeconds =
            config.getDoubleIn("task_timeout", 0.0, 0.0, 86400.0);
        wd.deadlineSeconds =
            config.getDoubleIn("deadline", 0.0, 0.0, 86400.0);
        if (wd.taskTimeoutSeconds > 0.0 || wd.deadlineSeconds > 0.0)
            par::Pool::global().enableWatchdog(wd);

        // Live telemetry: any of the sampler knobs switches the
        // background sampler on.
        const std::string slo_specs = config.getString("slo", "");
        if (!metricsOut.empty() || metricsPort >= 0 ||
            !slo_specs.empty() || !sampleInterval.empty()) {
            obs::SamplerOptions so;
            if (!sampleInterval.empty()) {
                const auto seconds =
                    obs::parseDurationSeconds(sampleInterval);
                if (!seconds || *seconds <= 0.0)
                    DFAULT_FATAL("malformed --sample-interval '",
                                 sampleInterval,
                                 "' (want e.g. 100ms, 2s)");
                so.intervalSeconds = *seconds;
            }
            so.metricsOutPath = metricsOut;
            so.metricsPort = metricsPort;
            std::string::size_type begin = 0;
            while (begin <= slo_specs.size() && !slo_specs.empty()) {
                auto end = slo_specs.find(',', begin);
                if (end == std::string::npos)
                    end = slo_specs.size();
                const std::string spec =
                    slo_specs.substr(begin, end - begin);
                if (!spec.empty()) {
                    std::string error;
                    const auto target =
                        obs::parseSloTarget(spec, &error);
                    if (!target)
                        DFAULT_FATAL("bad slo spec '", spec, "': ",
                                     error);
                    so.sloTargets.push_back(*target);
                }
                begin = end + 1;
            }
            obs::Sampler::instance().start(so);
            const auto &server = obs::Sampler::instance().server();
            if (server.running())
                DFAULT_INFORM("serving OpenMetrics on http://127.0.0.1:",
                              server.port(), "/metrics");
        }
    }

    dram::OperatingPoint
    operatingPoint() const
    {
        dram::OperatingPoint op{config.getDouble("trefp_s", 2.283),
                                config.getDouble("vdd_v",
                                                 dram::kMinVdd),
                                config.getDouble("temp_c", 50.0)};
        op.validate();
        return op;
    }

    workloads::WorkloadConfig
    workloadConfig(const std::string &kernel) const
    {
        const int threads =
            static_cast<int>(config.getIntIn("threads", 8, 1, 4096));
        return {kernel, threads,
                threads == 1 ? kernel : kernel + "(par)"};
    }

    core::InputSet
    inputSet() const
    {
        switch (config.getInt("input_set", 1)) {
          case 1:
            return core::InputSet::Set1;
          case 2:
            return core::InputSet::Set2;
          case 3:
            return core::InputSet::Set3;
          default:
            DFAULT_FATAL("input_set must be 1, 2 or 3");
        }
    }

    core::ModelKind
    modelKind() const
    {
        const std::string name = config.getString("model", "knn");
        if (name == "knn")
            return core::ModelKind::Knn;
        if (name == "svm")
            return core::ModelKind::Svm;
        if (name == "rdf")
            return core::ModelKind::Rdf;
        DFAULT_FATAL("model must be knn, svm or rdf");
    }
};

int
cmdProfile(Cli &cli, const std::string &kernel)
{
    const auto config = cli.workloadConfig(kernel);
    const auto &profile = features::ProfileCache::instance().get(
        *cli.platform, config, cli.campaign->params().workload);

    std::printf("profile of %s (%d threads):\n", config.label.c_str(),
                config.threads);
    std::printf("  footprint        %.1f MiB\n",
                static_cast<double>(profile.footprintWords) * 8.0 /
                    (1 << 20));
    std::printf("  Treuse           %.3f s\n", profile.treuse);
    std::printf("  HDP entropy      %.2f bits\n", profile.entropy);
    std::printf("  profile window   %.2f s (dilated)\n",
                profile.wallSeconds);
    std::printf("\nall %zu features:\n",
                features::FeatureCatalog::instance().size());
    for (std::size_t i = 0;
         i < features::FeatureCatalog::instance().size(); ++i) {
        std::printf("  %-34s %g\n",
                    features::FeatureCatalog::instance().name(i).c_str(),
                    profile.features[i]);
    }
    return 0;
}

int
cmdCharacterize(Cli &cli, const std::string &kernel)
{
    const auto op = cli.operatingPoint();
    const auto m =
        cli.campaign->measure(cli.workloadConfig(kernel), op);
    std::printf("%s at %s:\n", m.label.c_str(), op.label().c_str());
    std::printf("  achieved temperature %.1f C\n",
                m.achieved.temperature);
    if (m.run.crashed) {
        std::printf("  UNCORRECTABLE ERROR after %d minutes on %s\n",
                    m.run.crashEpoch,
                    cli.platform->geometry()
                        .deviceAt(m.run.crashDevice)
                        .label()
                        .c_str());
    }
    std::printf("  aggregate WER %.3e\n", m.run.wer());
    for (int d = 0; d < cli.platform->geometry().deviceCount(); ++d)
        std::printf("  %-12s WER %.3e\n",
                    cli.platform->geometry().deviceAt(d).label().c_str(),
                    m.run.werForDevice(d));
    return 0;
}

int
cmdSweep(Cli &cli, const std::string &out_path)
{
    const auto measurements = cli.campaign->sweep(
        workloads::standardSuite(), core::werOperatingPoints());
    // Export the aggregate-WER dataset with the full feature schema.
    ml::Dataset data(features::FeatureCatalog::instance().names());
    for (const auto &m : measurements) {
        // Cancelled cells never measured and carry no profile.
        if (m.quarantined || m.cancelled || m.run.crashed)
            continue;
        data.addSample(m.profile->features.values(), m.run.wer(),
                       m.label);
    }
    ml::writeCsvFile(data, out_path);
    std::printf("wrote %zu samples x %zu features to %s\n",
                data.size(), data.featureCount(), out_path.c_str());
    return 0;
}

int
cmdReport(Cli &cli, const std::string &out_path)
{
    const auto measurements = cli.campaign->sweep(
        workloads::standardSuite(), core::werOperatingPoints());
    core::printWerTable(measurements, std::cout);
    core::writeMeasurementsCsvFile(measurements,
                                   cli.platform->geometry(), out_path);
    std::printf("\nper-device measurement CSV written to %s\n",
                out_path.c_str());
    return 0;
}

int
cmdEvaluate(Cli &cli)
{
    const auto measurements = cli.campaign->sweep(
        workloads::standardSuite(), core::werOperatingPoints());
    const int devices = cli.platform->geometry().deviceCount();
    std::printf("LOBO MPE of WER estimates (avg over %d devices), %%:\n",
                devices);
    std::printf("%-6s %12s %12s %12s\n", "model", "input set 1",
                "input set 2", "input set 3");
    for (const core::ModelKind kind : core::kAllModelKinds) {
        std::printf("%-6s", core::modelKindName(kind).c_str());
        for (const core::InputSet set : core::kAllInputSets) {
            double avg = 0.0;
            for (int d = 0; d < devices; ++d) {
                const auto data =
                    core::makeWerDataset(measurements, d, set);
                avg += core::evaluateModel(data, kind, true).mpe /
                       devices;
            }
            std::printf(" %12.1f", avg);
        }
        std::printf("\n");
    }
    return 0;
}

int
cmdPredict(Cli &cli, const std::string &kernel)
{
    std::printf("training %s on the standard suite...\n",
                core::modelKindName(cli.modelKind()).c_str());
    const auto measurements = cli.campaign->sweep(
        workloads::standardSuite(), core::werOperatingPoints());
    core::DramErrorModel::Options options;
    options.kind = cli.modelKind();
    options.inputSet = cli.inputSet();
    const auto model = core::DramErrorModel::trainWer(
        measurements, cli.platform->geometry().deviceCount(), options);

    const auto config = cli.workloadConfig(kernel);
    const auto &profile = features::ProfileCache::instance().get(
        *cli.platform, config, cli.campaign->params().workload);
    const auto op = cli.operatingPoint();

    std::printf("\npredicted WER of %s at %s:\n", config.label.c_str(),
                op.label().c_str());
    for (int d = 0; d < cli.platform->geometry().deviceCount(); ++d)
        std::printf("  %-12s %.3e\n",
                    cli.platform->geometry().deviceAt(d).label().c_str(),
                    model.predictWer(profile, op, d));
    std::printf("  %-12s %.3e\n", "aggregate",
                model.predictWerAggregate(profile, op));
    return 0;
}

void
usage()
{
    std::printf(
        "usage: dfault <command> [args] [key=value ...]\n"
        "  profile <kernel>       program features of a workload\n"
        "  characterize <kernel>  one characterization experiment\n"
        "  sweep <out.csv>        full campaign -> CSV dataset\n"
        "  report <out.csv>       WER table + per-device CSV\n"
        "  evaluate               LOBO accuracy of all models\n"
        "  predict <kernel>       train + predict per-device WER\n"
        "kernels: backprop kmeans nw srad fmm memcached pagerank bfs\n"
        "         bc lulesh_o2 lulesh_f random\n"
        "overrides: footprint_mib work_scale epochs trefp_s temp_c\n"
        "           vdd_v threads input_set model thermal_loop\n"
        "           faults checkpoint retries fail_fast\n"
        "           task_timeout deadline slo\n"
        "telemetry: --stats-out=<path> --trace-out=<path>\n"
        "           --trace-events=<path> --manifest-out=<path>\n"
        "           --quarantine-out=<path> --progress\n"
        "           --perf-counters --alloc-track\n"
        "           --metrics-out=<path> --metrics-port=<port>\n"
        "           --sample-interval=<dur>\n");
}

int
dispatch(Cli &cli)
{
    if (cli.positional.empty()) {
        usage();
        return 1;
    }
    const std::string &command = cli.positional[0];
    const bool has_arg = cli.positional.size() > 1;

    if (command == "profile" && has_arg)
        return cmdProfile(cli, cli.positional[1]);
    if (command == "characterize" && has_arg)
        return cmdCharacterize(cli, cli.positional[1]);
    if (command == "sweep" && has_arg)
        return cmdSweep(cli, cli.positional[1]);
    if (command == "report" && has_arg)
        return cmdReport(cli, cli.positional[1]);
    if (command == "evaluate")
        return cmdEvaluate(cli);
    if (command == "predict" && has_arg)
        return cmdPredict(cli, cli.positional[1]);

    usage();
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    // Install before any work starts so an early ^C already drains
    // cooperatively instead of killing the process mid-write.
    par::installSignalHandlers();
    Cli cli(argc, argv);
    int rc;
    try {
        rc = dispatch(cli);
    } catch (const par::CancelledError &e) {
        // Cooperative cancellation (signal or deadline) unwound the
        // command. Fall through: in-flight tasks have drained and
        // every artifact below is still written — partial but valid —
        // with the manifest marked interrupted.
        DFAULT_WARN("run cancelled: ", e.what(),
                    "; writing partial artifacts");
        rc = 1;
    }

    auto &inj = fi::Injector::instance();
    if (inj.armed()) {
        // Chaos hook for the drain path itself: lets CI check that a
        // slow epilogue still survives a second signal (_Exit) and
        // that a single signal waits for the artifacts.
        inj.maybeStall("shutdown.slow_drain", 0);
        for (const auto &[point, fired] : inj.firedCounts())
            obs::Registry::instance()
                .gauge("fi.fired." + point,
                       "times this fault point fired")
                .set(static_cast<double>(fired));
    }

    const auto &quarantine = cli.campaign->lastQuarantine();
    std::string quarantine_path = cli.quarantineOut;
    if (quarantine_path.empty() && !cli.statsOut.empty())
        quarantine_path = cli.statsOut + ".quarantine.json";
    if (!quarantine.empty() && !quarantine_path.empty()) {
        if (!core::writeQuarantineFile(quarantine, quarantine_path))
            DFAULT_FATAL("cannot write quarantine report to '",
                         quarantine_path, "'");
        DFAULT_INFORM(quarantine.size(),
                      " quarantined cell(s); report written to ",
                      quarantine_path);
    }

    if (cli.perfCounters)
        obs::printPerfTable(stdout);

    // Stop the sampler before the stats/manifest epilogue: stop() runs
    // the final flush tick (last metrics snapshot, final SLO verdicts)
    // and emits any closing slo_breach events while the sink is open.
    auto &sampler = obs::Sampler::instance();
    const bool sampled = sampler.running() || sampler.ticks() > 0;
    sampler.stop();
    if (sampled && !cli.metricsOut.empty())
        DFAULT_INFORM("OpenMetrics snapshot written to ",
                      cli.metricsOut);

    if (!cli.statsOut.empty()) {
        obs::Registry::instance().writeFile(cli.statsOut);
        DFAULT_INFORM("stats written to ", cli.statsOut);
    }

    auto &tracer = obs::SpanTracer::instance();
    if (tracer.enabled()) {
        tracer.disable();
        const auto entries = tracer.drain();
        const auto rows = obs::exclusiveTimes(entries);
        std::printf("\n");
        obs::printCriticalPath(stdout, rows);
        if (tracer.dropped() > 0)
            DFAULT_WARN("span ring overflow: ", tracer.dropped(),
                        " oldest trace entries dropped");
        if (!obs::writeTraceFile(cli.traceEvents, entries))
            DFAULT_FATAL("cannot write trace events to '",
                         cli.traceEvents, "'");
        DFAULT_INFORM("trace events written to ", cli.traceEvents,
                      " (load in ui.perfetto.dev)");
    }

    // Provenance: every stats-producing run gets a manifest tying its
    // artifacts to the exact configuration that made them.
    std::string manifest_path = cli.manifestOut;
    if (manifest_path.empty() && !cli.statsOut.empty())
        manifest_path = cli.statsOut + ".manifest.json";
    if (!manifest_path.empty()) {
        obs::ManifestInfo info;
        info.tool = "dfault";
        info.command = cli.commandLine;
        for (const std::string &key : cli.config.keys())
            info.config.emplace_back(key,
                                     cli.config.getString(key));
        info.threads = par::Pool::global().threads();
        info.statsPath = cli.statsOut;
        info.tracePath = cli.traceEvents;
        if (par::rootCancelToken().cancelled()) {
            info.interrupted = true;
            info.interruptReason = par::rootCancelToken().reason();
        }
        info.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - cli.start)
                .count();
        if (sampled) {
            info.metricsPath = cli.metricsOut;
            info.samplerTicks = sampler.ticks();
            info.sloSummaryJson = sampler.sloSummaryJson();
        }
        if (!obs::writeManifestFile(manifest_path, info))
            DFAULT_FATAL("cannot write manifest to '", manifest_path,
                         "'");
        DFAULT_INFORM("run manifest written to ", manifest_path);
    }
    obs::EventSink::instance().close();
    par::Pool::global().disableWatchdog();
    par::uninstallSignalHandlers();
    // Signal-driven runs exit with the conventional 128+signo so
    // shells and CI can tell an interrupted run from a failed one.
    if (par::shutdownExitCode() != 0)
        return par::shutdownExitCode();
    return rc;
}
