#include "workloads/detail.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dfault::workloads::detail {

void
interleave(int threads, std::uint64_t blocks_per_thread,
           const std::function<void(int, std::uint64_t)> &fn)
{
    DFAULT_ASSERT(threads > 0, "interleave needs at least one thread");
    for (std::uint64_t block = 0; block < blocks_per_thread; ++block)
        for (int t = 0; t < threads; ++t)
            fn(t, block);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s)
{
    DFAULT_ASSERT(n > 0, "zipf needs a non-empty domain");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace dfault::workloads::detail
