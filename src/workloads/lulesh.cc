#include "workloads/lulesh.hh"

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;
using detail::f2w;
using detail::w2f;

namespace {

constexpr std::uint64_t kFields = 8; ///< energy, pressure, volume, ...

} // namespace

Lulesh::Lulesh(const Params &params, OptLevel opt)
    : Workload(opt == OptLevel::O2 ? "lulesh(O2)" : "lulesh(F)", params),
      opt_(opt)
{
}

void
Lulesh::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    Rng rng(params_.seed);

    const std::uint64_t words = params_.footprintBytes /
                                units::bytesPerWord;
    const std::uint64_t elements = words / kFields;

    Addr field[kFields];
    for (auto &f : field)
        f = ctx.allocate(elements * units::bytesPerWord);

    for (std::uint64_t i = 0; i < elements; ++i)
        ctx.store(0, elem(field[0], i), f2w(rng.uniform(0.5, 1.5)));

    // The aggressive build vectorizes: the same field sweeps issue
    // fewer compute/branch instructions between memory accesses.
    const std::uint64_t fp_per_elem = opt_ == OptLevel::O2 ? 14 : 5;
    const std::uint64_t branch_every = opt_ == OptLevel::O2 ? 16 : 64;

    const std::uint64_t steps = scaled(3);
    const std::uint64_t per_thread = elements / threads;

    for (std::uint64_t step = 0; step < steps; ++step) {
        // Phase 1: stress/force sweep — read volume-ish fields, write
        // force-ish fields.
        detail::interleave(threads, per_thread / 64,
                           [&](int t, std::uint64_t blk) {
            const std::uint64_t base =
                static_cast<std::uint64_t>(t) * per_thread + blk * 64;
            for (std::uint64_t k = 0; k < 64; ++k) {
                const std::uint64_t e = base + k;
                const double v0 = w2f(ctx.load(t, elem(field[0], e)));
                const double v1 = w2f(ctx.load(t, elem(field[1], e)));
                ctx.store(t, elem(field[2], e), f2w(v0 * 0.5 + v1));
                ctx.store(t, elem(field[3], e), f2w(v0 - v1 * 0.25));
                if (k % branch_every == 0)
                    ctx.branch(t, false);
            }
            ctx.computeFp(t, fp_per_elem * 64);
        });

        // Phase 2: equation-of-state sweep over the remaining fields.
        detail::interleave(threads, per_thread / 64,
                           [&](int t, std::uint64_t blk) {
            const std::uint64_t base =
                static_cast<std::uint64_t>(t) * per_thread + blk * 64;
            for (std::uint64_t k = 0; k < 64; ++k) {
                const std::uint64_t e = base + k;
                const double f2 = w2f(ctx.load(t, elem(field[2], e)));
                const double f3 = w2f(ctx.load(t, elem(field[3], e)));
                ctx.store(t, elem(field[4], e), f2w(f2 * f3));
                ctx.store(t, elem(field[5], e), f2w(f2 + f3));
                ctx.store(t, elem(field[6], e), f2w(f2 - f3));
                const double acc = w2f(ctx.load(t, elem(field[7], e)));
                ctx.store(t, elem(field[7], e), f2w(acc + f2 * 1e-3));
                ctx.store(t, elem(field[0], e), f2w(f2 * 0.999 + 0.001));
                ctx.store(t, elem(field[1], e), f2w(f3 * 0.999));
                if (k % branch_every == 0)
                    ctx.branch(t, false);
            }
            ctx.computeFp(t, fp_per_elem * 64);
        });
    }
}

} // namespace dfault::workloads
