/**
 * @file
 * Workload abstraction.
 *
 * Each workload is a miniature but algorithmically faithful kernel of
 * one of the paper's benchmarks (Rodinia/PARSEC compute kernels, the
 * memcached caching workload, Ligra-style graph analytics, LULESH). The
 * kernels execute real loads/stores/compute against the simulated
 * platform, so the program-inherent features the paper extracts —
 * reuse time, data entropy, access rates — are *measured consequences*
 * of the algorithm, not hard-coded constants.
 */

#ifndef DFAULT_WORKLOADS_WORKLOAD_HH
#define DFAULT_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>

#include "common/units.hh"
#include "sys/execution.hh"

namespace dfault::workloads {

using namespace units::literals;

/** Base class of all benchmark kernels. */
class Workload
{
  public:
    struct Params
    {
        /** Data the workload allocates (the paper fixes 8 GB for all
         *  benchmarks; we fix a scaled footprint for all, see DESIGN.md). */
        std::uint64_t footprintBytes = 16_MiB;
        /** Seed for the workload's own input generation. */
        std::uint64_t seed = 42;
        /** Multiplies iteration counts (profiling window length). */
        double workScale = 1.0;
    };

    Workload(std::string name, const Params &params);
    virtual ~Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    /** Benchmark label as used in the paper's figures. */
    const std::string &name() const { return name_; }

    const Params &params() const { return params_; }

    /**
     * Allocate inputs and execute the kernel on @p ctx, using
     * ctx.threads() logical threads.
     */
    virtual void run(sys::ExecutionContext &ctx) = 0;

  protected:
    /** Scaled iteration count helper. */
    std::uint64_t scaled(std::uint64_t base_iterations) const;

    std::string name_;
    Params params_;
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_WORKLOAD_HH
