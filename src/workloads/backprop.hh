/**
 * @file
 * Rodinia `backprop`: two-layer neural-network training.
 *
 * The kernel trains a fully connected input->hidden->output network
 * with explicit forward and weight-update passes. Memory behaviour is
 * dominated by the two weight matrices, which are streamed once in the
 * forward and once in the backward pass of every epoch; activations are
 * small and cache-resident. This gives the paper's signature: a reuse
 * time of roughly one epoch and a high-entropy (floating-point) data
 * pattern.
 */

#ifndef DFAULT_WORKLOADS_BACKPROP_HH
#define DFAULT_WORKLOADS_BACKPROP_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class Backprop : public Workload
{
  public:
    explicit Backprop(const Params &params);

    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_BACKPROP_HH
