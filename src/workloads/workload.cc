#include "workloads/workload.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfault::workloads {

Workload::Workload(std::string name, const Params &params)
    : name_(std::move(name)), params_(params)
{
    if (params_.footprintBytes == 0)
        DFAULT_FATAL("workload '", name_, "': footprint must be positive");
    if (params_.workScale <= 0.0)
        DFAULT_FATAL("workload '", name_, "': workScale must be positive");
}

std::uint64_t
Workload::scaled(std::uint64_t base_iterations) const
{
    const double scaled =
        std::ceil(static_cast<double>(base_iterations) * params_.workScale);
    return scaled < 1.0 ? 1 : static_cast<std::uint64_t>(scaled);
}

} // namespace dfault::workloads
