#include "workloads/registry.hh"

#include "common/logging.hh"
#include "workloads/backprop.hh"
#include "workloads/fmm.hh"
#include "workloads/graph.hh"
#include "workloads/kmeans.hh"
#include "workloads/lulesh.hh"
#include "workloads/memcached.hh"
#include "workloads/nw.hh"
#include "workloads/random_pattern.hh"
#include "workloads/srad.hh"

namespace dfault::workloads {

WorkloadPtr
createWorkload(const std::string &kernel, const Workload::Params &params)
{
    if (kernel == "backprop")
        return std::make_unique<Backprop>(params);
    if (kernel == "kmeans")
        return std::make_unique<Kmeans>(params);
    if (kernel == "nw")
        return std::make_unique<NeedlemanWunsch>(params);
    if (kernel == "srad")
        return std::make_unique<Srad>(params);
    if (kernel == "fmm")
        return std::make_unique<Fmm>(params);
    if (kernel == "memcached")
        return std::make_unique<Memcached>(params);
    if (kernel == "pagerank")
        return std::make_unique<PageRank>(params);
    if (kernel == "bfs")
        return std::make_unique<Bfs>(params);
    if (kernel == "bc")
        return std::make_unique<BetweennessCentrality>(params);
    if (kernel == "lulesh_o2")
        return std::make_unique<Lulesh>(params, Lulesh::OptLevel::O2);
    if (kernel == "lulesh_f")
        return std::make_unique<Lulesh>(params, Lulesh::OptLevel::F);
    if (kernel == "random")
        return std::make_unique<RandomPattern>(params);
    DFAULT_FATAL("unknown workload kernel '", kernel, "'");
}

std::vector<std::string>
workloadKernels()
{
    return {"backprop", "kmeans", "nw",       "srad",      "fmm",
            "memcached", "pagerank", "bfs",   "bc",        "lulesh_o2",
            "lulesh_f",  "random"};
}

std::vector<WorkloadConfig>
standardSuite()
{
    std::vector<WorkloadConfig> suite;
    for (const char *kernel : {"backprop", "kmeans", "nw", "srad", "fmm"}) {
        suite.push_back({kernel, 1, kernel});
        suite.push_back({kernel, 8, std::string(kernel) + "(par)"});
    }
    for (const char *kernel : {"memcached", "pagerank", "bfs", "bc"})
        suite.push_back({kernel, 8, kernel});
    return suite;
}

std::vector<WorkloadConfig>
extendedSuite()
{
    return {
        {"lulesh_o2", 8, "lulesh(O2)"},
        {"lulesh_f", 8, "lulesh(F)"},
        {"random", 8, "random"},
    };
}

} // namespace dfault::workloads
