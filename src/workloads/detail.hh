/**
 * @file
 * Shared helpers for workload kernels: float<->word bit casts, block
 * interleaving of logical threads, and a Zipfian sampler.
 */

#ifndef DFAULT_WORKLOADS_DETAIL_HH
#define DFAULT_WORKLOADS_DETAIL_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "common/units.hh"

namespace dfault::workloads::detail {

/** Reinterpret a double as the 64-bit word stored in memory. */
inline std::uint64_t
f2w(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Reinterpret a stored 64-bit word as a double. */
inline double
w2f(std::uint64_t w)
{
    return std::bit_cast<double>(w);
}

/** Byte address of element @p i in an array of 64-bit elements. */
inline Addr
elem(Addr base, std::uint64_t i)
{
    return base + i * units::bytesPerWord;
}

/**
 * Round-robin block scheduler emulating concurrent threads.
 *
 * Calls fn(thread, block) for every (thread, block) pair, interleaving
 * threads at block granularity so that per-thread cycle clocks advance
 * together, which is what the shared-channel DRAM timing model assumes.
 */
void interleave(int threads, std::uint64_t blocks_per_thread,
                const std::function<void(int, std::uint64_t)> &fn);

/**
 * Zipfian sampler over [0, n) with parameter s (default 0.99, the YCSB
 * convention), using the Gray et al. rejection-inversion method's
 * simpler cumulative-table form for bounded n.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double s = 0.99);

    /** Draw one index; hot indices are the small ones. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t n() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace dfault::workloads::detail

#endif // DFAULT_WORKLOADS_DETAIL_HH
