/**
 * @file
 * Rodinia `nw`: Needleman-Wunsch sequence alignment.
 *
 * Gotoh's affine-gap formulation with three DP matrices (match and two
 * gap matrices), processed in wavefront tiles. Tile interiors compute
 * from registers; every DP cell is written to memory exactly once per
 * alignment pass and re-read only by the traceback and the next
 * alignment pass. Reuse distances therefore span nearly a full pass,
 * giving nw the longest reuse time in the suite (paper Table II).
 */

#ifndef DFAULT_WORKLOADS_NW_HH
#define DFAULT_WORKLOADS_NW_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class NeedlemanWunsch : public Workload
{
  public:
    explicit NeedlemanWunsch(const Params &params);

    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_NW_HH
