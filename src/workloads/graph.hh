/**
 * @file
 * Graph-analytics workloads: pagerank, breadth-first search and
 * betweenness centrality over a shared synthetic power-law graph.
 *
 * The paper runs these Ligra/GraphGrind kernels as its "analytics"
 * class. The graph is an RMAT (Kronecker) instance in pull-style CSR
 * layout; its power-law degree distribution makes hub-vertex state hot,
 * yielding the sub-second reuse times of Table II, while edge arrays
 * are streamed once per iteration/traversal.
 */

#ifndef DFAULT_WORKLOADS_GRAPH_HH
#define DFAULT_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace dfault::workloads {

/**
 * Shared RMAT graph backing one run. Built host-side (the construction
 * is input generation, not the measured kernel), then written to
 * simulated memory by the kernels.
 */
struct RmatGraph
{
    std::uint32_t vertices = 0;
    std::vector<std::uint32_t> offsets; ///< CSR offsets, size V+1
    std::vector<std::uint32_t> targets; ///< CSR neighbour lists

    std::uint64_t edges() const { return targets.size(); }

    /** Build an RMAT graph with ~e edges over v vertices. */
    static RmatGraph generate(std::uint32_t v, std::uint64_t e,
                              std::uint64_t seed);
};

/** PageRank: pull-style rank iteration. */
class PageRank : public Workload
{
  public:
    explicit PageRank(const Params &params);
    void run(sys::ExecutionContext &ctx) override;
};

/** Breadth-first search from multiple roots. */
class Bfs : public Workload
{
  public:
    explicit Bfs(const Params &params);
    void run(sys::ExecutionContext &ctx) override;
};

/** Brandes betweenness centrality on sampled sources. */
class BetweennessCentrality : public Workload
{
  public:
    explicit BetweennessCentrality(const Params &params);
    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_GRAPH_HH
