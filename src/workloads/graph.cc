#include "workloads/graph.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;
using detail::f2w;
using detail::w2f;

RmatGraph
RmatGraph::generate(std::uint32_t v, std::uint64_t e, std::uint64_t seed)
{
    DFAULT_ASSERT(v >= 2 && std::has_single_bit(v),
                  "RMAT vertex count must be a power of two >= 2");
    Rng rng(seed);
    const int scale = std::countr_zero(v);

    // Classic RMAT quadrant probabilities (a, b, c, d).
    constexpr double a = 0.57, b = 0.19, c = 0.19;

    std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list;
    edge_list.reserve(e);
    for (std::uint64_t i = 0; i < e; ++i) {
        std::uint32_t src = 0, dst = 0;
        for (int bit = 0; bit < scale; ++bit) {
            const double u = rng.uniform();
            if (u < a) {
                // top-left: no bits set
            } else if (u < a + b) {
                dst |= 1u << bit;
            } else if (u < a + b + c) {
                src |= 1u << bit;
            } else {
                src |= 1u << bit;
                dst |= 1u << bit;
            }
        }
        edge_list.emplace_back(src, dst);
    }

    // Pull-style CSR: edges grouped by destination.
    RmatGraph g;
    g.vertices = v;
    g.offsets.assign(static_cast<std::size_t>(v) + 1, 0);
    for (const auto &[src, dst] : edge_list)
        ++g.offsets[dst + 1];
    for (std::uint32_t i = 0; i < v; ++i)
        g.offsets[i + 1] += g.offsets[i];
    g.targets.resize(e);
    std::vector<std::uint32_t> cursor(g.offsets.begin(),
                                      g.offsets.end() - 1);
    for (const auto &[src, dst] : edge_list)
        g.targets[cursor[dst]++] = src;
    return g;
}

namespace {

/** Graph arrays laid out in simulated memory. */
struct GraphImage
{
    RmatGraph graph;
    Addr offsets = 0;
    Addr targets = 0;
    Addr rank0 = 0; ///< V words of per-vertex state
    Addr rank1 = 0; ///< V words of per-vertex state
};

/**
 * Size an RMAT instance to the workload footprint (E + 3V + 1 words
 * with E ~ 8V) and write its CSR arrays into simulated memory.
 */
GraphImage
buildGraphImage(sys::ExecutionContext &ctx, std::uint64_t footprint_bytes,
                std::uint64_t seed)
{
    const std::uint64_t words = footprint_bytes / units::bytesPerWord;
    std::uint32_t v = 1;
    while (static_cast<std::uint64_t>(v) * 2 * 11 + 1 <= words)
        v *= 2;
    const std::uint64_t e = words - 3ULL * v - 1;

    GraphImage img;
    img.graph = RmatGraph::generate(v, e, seed);
    img.offsets = ctx.allocate((v + 1ULL) * units::bytesPerWord);
    img.targets = ctx.allocate(e * units::bytesPerWord);
    img.rank0 = ctx.allocate(v * units::bytesPerWord);
    img.rank1 = ctx.allocate(v * units::bytesPerWord);

    for (std::uint32_t i = 0; i <= v; ++i)
        ctx.store(0, elem(img.offsets, i), img.graph.offsets[i]);
    for (std::uint64_t i = 0; i < e; ++i)
        ctx.store(0, elem(img.targets, i), img.graph.targets[i]);
    return img;
}

} // namespace

PageRank::PageRank(const Params &params) : Workload("pagerank", params) {}

void
PageRank::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    GraphImage img = buildGraphImage(ctx, params_.footprintBytes,
                                     params_.seed);
    const std::uint32_t v = img.graph.vertices;

    const double init = 1.0 / static_cast<double>(v);
    for (std::uint32_t i = 0; i < v; ++i)
        ctx.store(0, elem(img.rank0, i), f2w(init));

    const std::uint64_t iterations = scaled(3);
    const std::uint32_t per_thread = v / threads;

    for (std::uint64_t it = 0; it < iterations; ++it) {
        const Addr src_rank = (it % 2 == 0) ? img.rank0 : img.rank1;
        const Addr dst_rank = (it % 2 == 0) ? img.rank1 : img.rank0;

        detail::interleave(threads, per_thread / 64,
                           [&](int t, std::uint64_t blk) {
            const std::uint32_t base =
                static_cast<std::uint32_t>(t) * per_thread +
                static_cast<std::uint32_t>(blk) * 64;
            for (std::uint32_t k = 0; k < 64; ++k) {
                const std::uint32_t dst = base + k;
                const auto begin = static_cast<std::uint32_t>(
                    ctx.load(t, elem(img.offsets, dst)));
                const std::uint32_t end = img.graph.offsets[dst + 1];
                double acc = 0.0;
                for (std::uint32_t eidx = begin; eidx < end; ++eidx) {
                    const auto src = static_cast<std::uint32_t>(
                        ctx.load(t, elem(img.targets, eidx)));
                    acc += w2f(ctx.load(t, elem(src_rank, src)));
                }
                ctx.computeFp(t, 2 * (end - begin) + 3);
                ctx.store(t, elem(dst_rank, dst),
                          f2w(0.15 * (1.0 / v) + 0.85 * acc));
                ctx.branch(t, false);
            }
        });
    }
}

Bfs::Bfs(const Params &params) : Workload("bfs", params) {}

void
Bfs::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    GraphImage img = buildGraphImage(ctx, params_.footprintBytes,
                                     params_.seed);
    const std::uint32_t v = img.graph.vertices;
    const Addr level = img.rank0;

    const std::uint64_t traversals = scaled(2);
    Rng rng(params_.seed + 17);

    for (std::uint64_t run = 0; run < traversals; ++run) {
        constexpr std::uint64_t unvisited = ~0ULL;
        for (std::uint32_t i = 0; i < v; ++i)
            ctx.store(0, elem(level, i), unvisited);
        const auto root =
            static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{v}));
        ctx.store(0, elem(level, root), 0);

        // Level-synchronous pull BFS: each round every unvisited vertex
        // scans its in-neighbours for a frontier member.
        bool changed = true;
        for (std::uint64_t depth = 0; changed && depth < 24; ++depth) {
            changed = false;
            const std::uint32_t per_thread = v / threads;
            detail::interleave(threads, per_thread / 64,
                               [&](int t, std::uint64_t blk) {
                const std::uint32_t base =
                    static_cast<std::uint32_t>(t) * per_thread +
                    static_cast<std::uint32_t>(blk) * 64;
                for (std::uint32_t k = 0; k < 64; ++k) {
                    const std::uint32_t dst = base + k;
                    const std::uint64_t lv =
                        ctx.load(t, elem(level, dst));
                    ctx.branch(t, false);
                    if (lv != unvisited)
                        continue;
                    const auto begin = static_cast<std::uint32_t>(
                        ctx.load(t, elem(img.offsets, dst)));
                    const std::uint32_t end = img.graph.offsets[dst + 1];
                    for (std::uint32_t eidx = begin; eidx < end;
                         ++eidx) {
                        const auto src = static_cast<std::uint32_t>(
                            ctx.load(t, elem(img.targets, eidx)));
                        const std::uint64_t sl =
                            ctx.load(t, elem(level, src));
                        ctx.compute(t, 2);
                        if (sl == depth) {
                            ctx.store(t, elem(level, dst), depth + 1);
                            changed = true;
                            break;
                        }
                    }
                }
            });
        }
    }
}

BetweennessCentrality::BetweennessCentrality(const Params &params)
    : Workload("bc", params)
{
}

void
BetweennessCentrality::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    GraphImage img = buildGraphImage(ctx, params_.footprintBytes,
                                     params_.seed);
    const std::uint32_t v = img.graph.vertices;
    const Addr sigma = img.rank0; ///< shortest-path counts
    const Addr delta = img.rank1; ///< dependency accumulators

    const std::uint64_t sources = scaled(2);
    Rng rng(params_.seed + 31);

    for (std::uint64_t s = 0; s < sources; ++s) {
        for (std::uint32_t i = 0; i < v; ++i)
            ctx.store(0, elem(sigma, i), 0);
        const auto root =
            static_cast<std::uint32_t>(rng.uniformInt(std::uint64_t{v}));
        ctx.store(0, elem(sigma, root), 1);

        // Forward sweep: two rounds of path-count propagation (the RMAT
        // diameter is small; this approximates Brandes' BFS phase).
        const std::uint32_t per_thread = v / threads;
        for (int round = 0; round < 2; ++round) {
            detail::interleave(threads, per_thread / 64,
                               [&](int t, std::uint64_t blk) {
                const std::uint32_t base =
                    static_cast<std::uint32_t>(t) * per_thread +
                    static_cast<std::uint32_t>(blk) * 64;
                for (std::uint32_t k = 0; k < 64; ++k) {
                    const std::uint32_t dst = base + k;
                    const auto begin = static_cast<std::uint32_t>(
                        ctx.load(t, elem(img.offsets, dst)));
                    const std::uint32_t end =
                        img.graph.offsets[dst + 1];
                    std::uint64_t acc = 0;
                    for (std::uint32_t eidx = begin; eidx < end;
                         ++eidx) {
                        const auto src = static_cast<std::uint32_t>(
                            ctx.load(t, elem(img.targets, eidx)));
                        acc += ctx.load(t, elem(sigma, src));
                        ctx.compute(t, 1);
                    }
                    if (acc != 0) {
                        const std::uint64_t old =
                            ctx.load(t, elem(sigma, dst));
                        ctx.store(t, elem(sigma, dst), old + acc);
                    }
                    ctx.branch(t, false);
                }
            });
        }

        // Backward sweep: dependency accumulation delta[v] from the
        // path counts; betweenness scores are floating point.
        detail::interleave(threads, per_thread / 64,
                           [&](int t, std::uint64_t blk) {
            const std::uint32_t base =
                static_cast<std::uint32_t>(t) * per_thread +
                static_cast<std::uint32_t>(blk) * 64;
            for (std::uint32_t k = 0; k < 64; ++k) {
                const std::uint32_t w = base + k;
                const std::uint64_t sg = ctx.load(t, elem(sigma, w));
                const double contribution =
                    sg == 0 ? 0.0
                            : 1.0 / static_cast<double>(sg);
                const double old = w2f(ctx.load(t, elem(delta, w)));
                ctx.store(t, elem(delta, w), f2w(old + contribution));
                ctx.computeFp(t, 4);
                ctx.branch(t, false);
            }
        });
    }
}

} // namespace dfault::workloads
