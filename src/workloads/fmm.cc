#include "workloads/fmm.hh"

#include <cmath>

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;
using detail::f2w;
using detail::w2f;

namespace {

/** Words per particle record: pos[3] vel[3] force[3] mass. */
constexpr std::uint64_t kRecord = 10;
/** Multipole expansion terms per tree cell. */
constexpr std::uint64_t kTerms = 16;

} // namespace

Fmm::Fmm(const Params &params) : Workload("fmm", params) {}

void
Fmm::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    Rng rng(params_.seed);

    const std::uint64_t words = params_.footprintBytes /
                                units::bytesPerWord;
    const std::uint64_t n_particles = words * 9 / 10 / kRecord;
    const std::uint64_t n_cells = 512; // leaf cells; interior is small

    const Addr particles =
        ctx.allocate(n_particles * kRecord * units::bytesPerWord);
    const Addr cells =
        ctx.allocate(n_cells * kTerms * units::bytesPerWord);

    for (std::uint64_t i = 0; i < n_particles * kRecord; ++i)
        ctx.store(0, elem(particles, i), f2w(rng.uniform(-1.0, 1.0)));

    const std::uint64_t steps = scaled(3);
    const std::uint64_t per_thread = n_particles / threads;

    for (std::uint64_t step = 0; step < steps; ++step) {
        // P2M: aggregate particle mass/position into leaf multipoles.
        detail::interleave(threads, per_thread / 64,
                           [&](int t, std::uint64_t blk) {
            const std::uint64_t base =
                (static_cast<std::uint64_t>(t) * per_thread + blk * 64);
            for (std::uint64_t k = 0; k < 64; ++k) {
                const std::uint64_t p = base + k;
                const Addr rec = elem(particles, p * kRecord);
                const double x = w2f(ctx.load(t, rec));
                ctx.load(t, rec + 8);  // y
                ctx.load(t, rec + 16); // z
                const std::uint64_t cell = p % n_cells;
                const Addr c = elem(cells, cell * kTerms);
                ctx.store(t, c, f2w(w2f(ctx.peek(c)) + x));
            }
            ctx.computeFp(t, 12 * 64);
            ctx.branch(t, false);
        });

        // M2L: cell-to-cell interactions; the interaction lists are
        // cache resident, so this phase is pure floating-point work
        // plus multipole reads/writes of the small cell array.
        for (std::uint64_t c = 0; c < n_cells; ++c) {
            const int t = static_cast<int>(c % threads);
            for (std::uint64_t term = 0; term < kTerms; term += 4)
                ctx.load(t, elem(cells, c * kTerms + term));
            ctx.computeFp(t, 27 * kTerms); // interaction-list kernels
        }

        // L2P + P2P: evaluate local expansion at each particle and the
        // near-field pairwise forces against the ~8 cached neighbours;
        // force components are read-modify-written.
        detail::interleave(threads, per_thread / 64,
                           [&](int t, std::uint64_t blk) {
            const std::uint64_t base =
                (static_cast<std::uint64_t>(t) * per_thread + blk * 64);
            for (std::uint64_t k = 0; k < 64; ++k) {
                const std::uint64_t p = base + k;
                const Addr rec = elem(particles, p * kRecord);
                const double x = w2f(ctx.load(t, rec));
                const Addr fx = rec + 6 * 8;
                const double f = w2f(ctx.load(t, fx));
                ctx.store(t, fx, f2w(f + 1e-4 * x));
                // Velocity kick (leapfrog half-step).
                const Addr vx = rec + 3 * 8;
                const double v = w2f(ctx.load(t, vx));
                ctx.store(t, vx, f2w(v + 1e-4 * f));
            }
            // Near-field P2P dominates the FLOP count: ~400 FLOPs
            // per particle against the cached neighbour list.
            ctx.computeFp(t, 400 * 64);
            ctx.branch(t, (blk & 15) == 0);
        });
    }
}

} // namespace dfault::workloads
