#include "workloads/memcached.hh"

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;

namespace {

constexpr std::uint64_t kValueWords = 14; ///< ~112 B values
constexpr std::uint64_t kOpsPerKey = 48;  ///< request volume scaling

/** ASCII-ish payload word: memcached values are mostly text. */
std::uint64_t
textWord(Rng &rng)
{
    std::uint64_t w = 0;
    for (int b = 0; b < 8; ++b)
        w |= (0x61ULL + rng.uniformInt(std::uint64_t{26})) << (8 * b);
    return w;
}

} // namespace

Memcached::Memcached(const Params &params) : Workload("memcached", params)
{
}

void
Memcached::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    Rng rng(params_.seed);

    const std::uint64_t words = params_.footprintBytes /
                                units::bytesPerWord;
    const std::uint64_t n_keys = words * 7 / 8 / kValueWords;
    const std::uint64_t n_buckets = n_keys; // load factor 1

    const Addr index = ctx.allocate(n_buckets * units::bytesPerWord);
    const Addr slab =
        ctx.allocate(n_keys * kValueWords * units::bytesPerWord);

    // Populate: bucket -> slab slot, values with text payloads.
    for (std::uint64_t k = 0; k < n_keys; ++k) {
        ctx.store(0, elem(index, k), k);
        for (std::uint64_t w = 0; w < kValueWords; ++w)
            ctx.store(0, elem(slab, k * kValueWords + w), textWord(rng));
    }

    const detail::ZipfSampler zipf(n_keys, 1.2);
    const std::uint64_t ops = scaled(n_keys * kOpsPerKey);
    const std::uint64_t ops_per_thread = ops / threads;

    std::vector<Rng> thread_rng;
    for (int t = 0; t < threads; ++t)
        thread_rng.push_back(rng.fork(t + 1));

    detail::interleave(threads, ops_per_thread / 16,
                       [&](int t, std::uint64_t) {
        Rng &trng = thread_rng[t];
        for (int i = 0; i < 16; ++i) {
            const std::uint64_t key = zipf.sample(trng);
            // Hash + bucket probe.
            ctx.compute(t, 6);
            const std::uint64_t slot = ctx.load(t, elem(index, key));
            const Addr value = elem(slab, slot * kValueWords);
            if (trng.uniform() < 0.95) {
                // GET: parse header + read the first half of the value.
                for (std::uint64_t w = 0; w < kValueWords / 2; ++w)
                    ctx.load(t, value + w * units::bytesPerWord);
                ctx.compute(t, 20);
            } else {
                // SET: rewrite the full value.
                for (std::uint64_t w = 0; w < kValueWords; ++w)
                    ctx.store(t, value + w * units::bytesPerWord,
                              textWord(trng));
                ctx.compute(t, 30);
            }
            ctx.branch(t, false);
        }
    });
}

} // namespace dfault::workloads
