#include "workloads/random_pattern.hh"

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;

RandomPattern::RandomPattern(const Params &params)
    : Workload("random", params)
{
}

void
RandomPattern::run(sys::ExecutionContext &ctx)
{
    Rng rng(params_.seed);

    const std::uint64_t words = params_.footprintBytes /
                                units::bytesPerWord;
    const Addr region = ctx.allocate(words * units::bytesPerWord);

    // Write the random pattern once.
    for (std::uint64_t i = 0; i < words; ++i)
        ctx.store(0, elem(region, i), rng.next());

    // Idle across refresh windows, then scan for flips; repeat. The
    // idle spin dominates the cycle count, so the DRAM access rate is
    // minimal and rows are effectively never implicitly refreshed.
    const std::uint64_t scans = scaled(2);
    for (std::uint64_t s = 0; s < scans; ++s) {
        ctx.compute(0, words * 12); // idle wait (timer spin)
        for (std::uint64_t i = 0; i < words; ++i) {
            ctx.load(0, elem(region, i));
            if ((i & 255) == 0) {
                ctx.compute(0, 256); // compare against expected pattern
                ctx.branch(0, false);
            }
        }
    }
}

} // namespace dfault::workloads
