/**
 * @file
 * `memcached`: in-memory key-value caching workload.
 *
 * A hash-indexed slab store served with a Zipfian GET/SET mix (95/5,
 * the YCSB-B/memcached convention). The skew concentrates accesses on
 * hot values, producing the shortest reuse time and the lowest DRAM
 * error rate in the paper's suite: hot rows are implicitly refreshed by
 * the access stream itself.
 */

#ifndef DFAULT_WORKLOADS_MEMCACHED_HH
#define DFAULT_WORKLOADS_MEMCACHED_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class Memcached : public Workload
{
  public:
    explicit Memcached(const Params &params);

    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_MEMCACHED_HH
