/**
 * @file
 * SPLASH-2 `fmm`: fast multipole method for N-body forces.
 *
 * Particles carry position/velocity/force/mass records; each timestep
 * runs the particle-to-multipole aggregation, a cache-resident cell-to-
 * cell (M2L) interaction phase dominated by floating-point work, and the
 * local evaluation + near-field (P2P) phase that re-reads particle
 * positions and writes forces. The heavy per-particle compute stretches
 * the time between successive touches of a particle record, giving fmm
 * the second-longest reuse time in the suite.
 */

#ifndef DFAULT_WORKLOADS_FMM_HH
#define DFAULT_WORKLOADS_FMM_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class Fmm : public Workload
{
  public:
    explicit Fmm(const Params &params);

    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_FMM_HH
