#include "workloads/nw.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;

namespace {

constexpr std::uint64_t kTile = 32; ///< wavefront tile edge (cells)

} // namespace

NeedlemanWunsch::NeedlemanWunsch(const Params &params)
    : Workload("nw", params)
{
}

void
NeedlemanWunsch::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    Rng rng(params_.seed);

    // Three n x n DP matrices (M, Ix, Iy) fill the footprint.
    const std::uint64_t words = params_.footprintBytes /
                                units::bytesPerWord;
    const auto n = static_cast<std::uint64_t>(
        std::sqrt(static_cast<double>(words / 3)));
    const std::uint64_t n2 = n * n;

    const Addr m = ctx.allocate(n2 * units::bytesPerWord);
    const Addr ix = ctx.allocate(n2 * units::bytesPerWord);
    const Addr iy = ctx.allocate(n2 * units::bytesPerWord);
    const Addr seq_a = ctx.allocate(n * units::bytesPerWord);
    const Addr seq_b = ctx.allocate(n * units::bytesPerWord);

    const std::uint64_t passes = scaled(2);
    const std::uint64_t tiles = n / kTile;

    for (std::uint64_t pass = 0; pass < passes; ++pass) {
        // Fresh random sequences per alignment pass (residues 0..3).
        for (std::uint64_t i = 0; i < n; ++i) {
            ctx.store(0, elem(seq_a, i), rng.uniformInt(std::uint64_t{4}));
            ctx.store(0, elem(seq_b, i), rng.uniformInt(std::uint64_t{4}));
        }

        // Anti-diagonal wavefront over tiles; tiles on one anti-diagonal
        // are independent and assigned round-robin to threads.
        for (std::uint64_t diag = 0; diag < 2 * tiles - 1; ++diag) {
            const std::uint64_t r_lo =
                diag < tiles ? 0 : diag - tiles + 1;
            const std::uint64_t r_hi = std::min(diag, tiles - 1);
            for (std::uint64_t tr = r_lo; tr <= r_hi; ++tr) {
                const std::uint64_t tc = diag - tr;
                const int t = threads == 1
                                  ? 0
                                  : static_cast<int>(tr % threads);

                // Load the tile's top row and left column from the
                // neighbouring tiles (the only DP re-reads).
                for (std::uint64_t k = 0; k < kTile; ++k) {
                    if (tr > 0)
                        ctx.load(t, elem(m, (tr * kTile - 1) * n +
                                                tc * kTile + k));
                    if (tc > 0)
                        ctx.load(t, elem(m, (tr * kTile + k) * n +
                                                tc * kTile - 1));
                }
                // Sequence residues for this tile.
                for (std::uint64_t k = 0; k < kTile; ++k) {
                    ctx.load(t, elem(seq_a, tr * kTile + k));
                    ctx.load(t, elem(seq_b, tc * kTile + k));
                }

                // Tile interior: affine-gap recurrence from registers;
                // every cell of the three matrices is stored once.
                for (std::uint64_t i = 0; i < kTile; ++i) {
                    for (std::uint64_t j = 0; j < kTile; ++j) {
                        const std::uint64_t cell =
                            (tr * kTile + i) * n + tc * kTile + j;
                        const std::uint64_t score =
                            (cell * 2654435761ULL) >> 40;
                        ctx.store(t, elem(m, cell), score);
                        ctx.store(t, elem(ix, cell), score + 1);
                        ctx.store(t, elem(iy, cell), score + 2);
                    }
                    // Affine-gap recurrence: three max/compare chains
                    // plus the substitution-score lookup, ~60 integer
                    // ops per cell.
                    ctx.compute(t, 60 * kTile);
                    ctx.branch(t, (i & 7) == 0);
                }
            }
        }

        // Traceback: walk the optimal path from (n-1,n-1) reading the
        // three matrices; path length ~ 2n.
        std::uint64_t i = n - 1, j = n - 1;
        while (i > 0 && j > 0) {
            ctx.load(0, elem(m, i * n + j));
            ctx.load(0, elem(ix, i * n + j));
            ctx.load(0, elem(iy, i * n + j));
            ctx.compute(0, 6);
            ctx.branch(0, false);
            // Deterministic pseudo-path.
            const std::uint64_t h = (i * 31 + j) % 3;
            if (h == 0) {
                --i;
                --j;
            } else if (h == 1) {
                --i;
            } else {
                --j;
            }
        }
    }
}

} // namespace dfault::workloads
