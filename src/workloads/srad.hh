/**
 * @file
 * Rodinia `srad`: speckle-reducing anisotropic diffusion.
 *
 * Two-pass stencil over an image: pass 1 computes the diffusion
 * coefficient field from local gradients, pass 2 updates the image from
 * the coefficient field. Rows are register-tiled so each image word is
 * loaded once per pass; both large arrays are re-swept every iteration.
 */

#ifndef DFAULT_WORKLOADS_SRAD_HH
#define DFAULT_WORKLOADS_SRAD_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class Srad : public Workload
{
  public:
    explicit Srad(const Params &params);

    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_SRAD_HH
