#include "workloads/backprop.hh"

#include <cmath>

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;
using detail::f2w;
using detail::w2f;

Backprop::Backprop(const Params &params) : Workload("backprop", params) {}

void
Backprop::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    Rng rng(params_.seed);

    // Size the network so the two weight matrices fill the footprint:
    // w1 is in x hid (80%), w2 is hid x out (20%).
    const std::uint64_t weight_words =
        params_.footprintBytes / units::bytesPerWord * 15 / 16;
    const std::uint64_t in = 1024;
    const std::uint64_t hid = weight_words * 4 / 5 / in;
    const std::uint64_t out = weight_words / 5 / hid;

    const Addr w1 = ctx.allocate(in * hid * units::bytesPerWord);
    const Addr w2 = ctx.allocate(hid * out * units::bytesPerWord);
    const Addr x = ctx.allocate(in * units::bytesPerWord);
    const Addr h = ctx.allocate(hid * units::bytesPerWord);
    const Addr y = ctx.allocate(out * units::bytesPerWord);

    // Initialize weights and one input sample.
    for (std::uint64_t i = 0; i < in * hid; ++i)
        ctx.store(0, elem(w1, i), f2w(rng.normal(0.0, 0.1)));
    for (std::uint64_t i = 0; i < hid * out; ++i)
        ctx.store(0, elem(w2, i), f2w(rng.normal(0.0, 0.1)));
    for (std::uint64_t i = 0; i < in; ++i)
        ctx.store(0, elem(x, i), f2w(rng.uniform()));

    const std::uint64_t epochs = scaled(4);
    const std::uint64_t hid_per_thread = hid / threads;

    for (std::uint64_t epoch = 0; epoch < epochs; ++epoch) {
        // Forward: h_j = sigmoid(sum_i x_i * w1[i][j]); hidden units are
        // partitioned across threads, weights streamed column-blocked.
        detail::interleave(threads, hid_per_thread, [&](int t,
                                                        std::uint64_t b) {
            const std::uint64_t j = static_cast<std::uint64_t>(t) *
                                        hid_per_thread + b;
            double acc = 0.0;
            // Row-major stream over this hidden unit's weight column
            // block (j indexes the slow dimension here), sequential in
            // memory and prefetch friendly.
            for (std::uint64_t i = 0; i < in; ++i) {
                const double wv = w2f(ctx.load(t, elem(w1, j * in + i)));
                // x_i is L1-resident: reload only once per 64 weights.
                if ((i & 63) == 0) {
                    const double xv = w2f(ctx.load(t, elem(x, i)));
                    acc += xv * wv;
                } else {
                    acc += 0.015625 * wv;
                }
            }
            ctx.computeFp(t, 2 * in);       // multiply-accumulate
            const double hv = 1.0 / (1.0 + std::exp(-acc));
            ctx.computeFp(t, 8);            // sigmoid
            ctx.store(t, elem(h, j), f2w(hv));
            ctx.branch(t, false);
        });

        // Output layer forward + error (small, thread 0).
        for (std::uint64_t o = 0; o < out; ++o) {
            double acc = 0.0;
            for (std::uint64_t j = 0; j < hid; j += 64) {
                const double wv =
                    w2f(ctx.load(0, elem(w2, j * out + o)));
                acc += wv;
            }
            ctx.computeFp(0, 2 * (hid / 64));
            ctx.store(0, elem(y, o), f2w(acc / static_cast<double>(hid)));
        }

        // Backward: stream both weight matrices and apply the delta
        // rule w += eta * grad (read-modify-write of every weight).
        detail::interleave(threads, hid_per_thread, [&](int t,
                                                        std::uint64_t b) {
            const std::uint64_t j = static_cast<std::uint64_t>(t) *
                                        hid_per_thread + b;
            const double hv = w2f(ctx.load(t, elem(h, j)));
            const double grad = hv * (1.0 - hv) * 0.01;
            ctx.computeFp(t, 4);
            // Column-major read-modify-write walk (stride = `in`
            // words): every access opens a different DRAM row, and the
            // walk repeats for each hidden unit -- the row-activation
            // "hammer" signature the Rodinia kernel exhibits.
            for (std::uint64_t i = 0; i < in; ++i) {
                const Addr a = elem(w1, ((i + j) % hid) * in +
                                            (j % in));
                const double wv = w2f(ctx.load(t, a));
                ctx.store(t, a, f2w(wv + grad * 0.1));
            }
            ctx.computeFp(t, 2 * in);
            ctx.branch(t, (b & 31) == 0);
        });

        for (std::uint64_t k = 0; k < hid * out; ++k) {
            const Addr a = elem(w2, k);
            const double wv = w2f(ctx.load(0, a));
            ctx.store(0, a, f2w(wv * 0.999));
            if ((k & 63) == 0)
                ctx.computeFp(0, 128);
        }
    }
}

} // namespace dfault::workloads
