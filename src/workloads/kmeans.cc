#include "workloads/kmeans.hh"

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;
using detail::f2w;
using detail::w2f;

namespace {

constexpr std::uint64_t kDims = 16;     ///< features per point (128 B)
constexpr std::uint64_t kClusters = 8;  ///< centroid count
constexpr std::uint64_t kTilePoints = 4096; ///< parallel tile (L2-sized)

} // namespace

Kmeans::Kmeans(const Params &params) : Workload("kmeans", params) {}

void
Kmeans::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    Rng rng(params_.seed);

    const std::uint64_t point_words =
        params_.footprintBytes / units::bytesPerWord * 9 / 10;
    const std::uint64_t n_points = point_words / kDims;
    const std::uint64_t per_thread = n_points / threads;

    const Addr points = ctx.allocate(n_points * kDims *
                                     units::bytesPerWord);
    const Addr centroids = ctx.allocate(kClusters * kDims *
                                        units::bytesPerWord);
    const Addr assign = ctx.allocate(n_points * units::bytesPerWord);

    for (std::uint64_t i = 0; i < n_points * kDims; ++i)
        ctx.store(0, elem(points, i), f2w(rng.uniform(-1.0, 1.0)));
    for (std::uint64_t i = 0; i < kClusters * kDims; ++i)
        ctx.store(0, elem(centroids, i), f2w(rng.uniform(-1.0, 1.0)));

    // Process one point: distance to every centroid, pick the argmin.
    // The centroid table is re-read for every point; these cache-hot
    // short-reuse loads dominate the access mix and give kmeans the
    // shortest reuse time of the compute benchmarks (Table II).
    auto process_point = [&](int t, std::uint64_t p) {
        double best = 1e300;
        std::uint64_t best_k = 0;
        double pv[kDims];
        for (std::uint64_t d = 0; d < kDims; ++d)
            pv[d] = w2f(ctx.load(t, elem(points, p * kDims + d)));
        for (std::uint64_t k = 0; k < kClusters; ++k) {
            double dist = 0.0;
            for (std::uint64_t d = 0; d < kDims; ++d) {
                const double cv =
                    w2f(ctx.load(t, elem(centroids, k * kDims + d)));
                const double diff = pv[d] - cv;
                dist += diff * diff;
            }
            if (dist < best) {
                best = dist;
                best_k = k;
            }
            ctx.branch(t, false);
        }
        ctx.computeFp(t, 3 * kDims * kClusters);
        ctx.store(t, elem(assign, p), best_k);
        return best_k;
    };

    const std::uint64_t iterations = scaled(3);

    if (threads == 1) {
        // Serial: plain full sweep per iteration.
        for (std::uint64_t it = 0; it < iterations; ++it) {
            for (std::uint64_t p = 0; p < n_points; ++p)
                process_point(0, p);
            // Centroid update: small, cache-hot.
            for (std::uint64_t i = 0; i < kClusters * kDims; ++i) {
                const Addr a = elem(centroids, i);
                ctx.store(0, a, f2w(w2f(ctx.load(0, a)) * 0.98 + 0.01));
            }
            ctx.computeFp(0, 2 * kClusters * kDims);
        }
    } else {
        // Parallel: tile the point stream per thread and run the
        // refinement passes locally on each (cache-resident) tile, so
        // each point's words reach DRAM once per `iterations` passes.
        const std::uint64_t tiles_per_thread =
            per_thread / kTilePoints + 1;
        detail::interleave(threads, tiles_per_thread,
                           [&](int t, std::uint64_t tile) {
            const std::uint64_t begin =
                static_cast<std::uint64_t>(t) * per_thread +
                tile * kTilePoints;
            const std::uint64_t end =
                std::min(begin + kTilePoints,
                         (static_cast<std::uint64_t>(t) + 1) * per_thread);
            for (std::uint64_t it = 0; it < iterations; ++it)
                for (std::uint64_t p = begin; p < end; ++p)
                    process_point(t, p);
        });
        // Global centroid reduction.
        for (std::uint64_t i = 0; i < kClusters * kDims; ++i) {
            const Addr a = elem(centroids, i);
            ctx.store(0, a, f2w(w2f(ctx.load(0, a)) * 0.98 + 0.01));
        }
        ctx.computeFp(0, 2 * kClusters * kDims * threads);
    }
}

} // namespace dfault::workloads
