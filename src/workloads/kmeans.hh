/**
 * @file
 * Rodinia `kmeans`: iterative k-means clustering.
 *
 * Points are streamed once per iteration while the small centroid table
 * is re-read in the inner loop for every point; the resulting access
 * mix is dominated by very short centroid reuse distances, giving
 * kmeans the shortest reuse time among the compute benchmarks (paper
 * Table II). The parallel variant processes points in cache-sized tiles
 * with a local refinement pass per tile — the standard locality
 * optimization of parallel kmeans — which reduces its DRAM traffic per
 * cycle relative to the serial sweep.
 */

#ifndef DFAULT_WORKLOADS_KMEANS_HH
#define DFAULT_WORKLOADS_KMEANS_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class Kmeans : public Workload
{
  public:
    explicit Kmeans(const Params &params);

    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_KMEANS_HH
