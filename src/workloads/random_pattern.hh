/**
 * @file
 * The `random` data-pattern micro-benchmark.
 *
 * The conventional retention-profiling workload (Liu'13, Khan'14): fill
 * every word of the footprint with uniformly random data — the most
 * stressful static pattern — then idle across several refresh windows
 * and read the region back to detect flips. Memory is touched at a very
 * low rate, so rows see no implicit refresh: the measured error rate
 * reflects the raw retention tail, which is exactly what conventional
 * workload-unaware error models assume for every application (paper
 * Fig 2 / Fig 13).
 */

#ifndef DFAULT_WORKLOADS_RANDOM_PATTERN_HH
#define DFAULT_WORKLOADS_RANDOM_PATTERN_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class RandomPattern : public Workload
{
  public:
    explicit RandomPattern(const Params &params);

    void run(sys::ExecutionContext &ctx) override;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_RANDOM_PATTERN_HH
