/**
 * @file
 * LULESH-like Lagrangian shock hydrodynamics kernel.
 *
 * Sweeps eight per-element field arrays of a 3D mesh with stencil
 * reads and heavy floating-point updates each timestep. Two compiler
 * builds are modelled, as in the paper's Fig 13 study of the implicit
 * effect of compiler optimization on DRAM reliability:
 *  - O2 (default): scalar code, more compute instructions interleaved
 *    between memory accesses;
 *  - F  (aggressive): vectorized build with fewer compute and branch
 *    instructions per element, i.e. a higher memory-access rate per
 *    cycle — which raises the DRAM error rate by ~29% in the paper.
 */

#ifndef DFAULT_WORKLOADS_LULESH_HH
#define DFAULT_WORKLOADS_LULESH_HH

#include "workloads/workload.hh"

namespace dfault::workloads {

/** See file comment. */
class Lulesh : public Workload
{
  public:
    enum class OptLevel
    {
        O2, ///< default optimizations
        F,  ///< aggressive optimizations (vectorized)
    };

    Lulesh(const Params &params, OptLevel opt);

    void run(sys::ExecutionContext &ctx) override;

  private:
    OptLevel opt_;
};

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_LULESH_HH
