#include "workloads/srad.hh"

#include <cmath>

#include "common/rng.hh"
#include "workloads/detail.hh"

namespace dfault::workloads {

using detail::elem;
using detail::f2w;
using detail::w2f;

Srad::Srad(const Params &params) : Workload("srad", params) {}

void
Srad::run(sys::ExecutionContext &ctx)
{
    const int threads = ctx.threads();
    Rng rng(params_.seed);

    // Image and coefficient arrays, each half of the footprint.
    const std::uint64_t words = params_.footprintBytes /
                                units::bytesPerWord / 2;
    const std::uint64_t cols = 1024;
    const std::uint64_t rows = words / cols;

    const Addr img = ctx.allocate(rows * cols * units::bytesPerWord);
    const Addr coeff = ctx.allocate(rows * cols * units::bytesPerWord);

    for (std::uint64_t i = 0; i < rows * cols; ++i)
        ctx.store(0, elem(img, i), f2w(rng.uniform(0.0, 255.0)));

    const std::uint64_t iterations = scaled(3);
    const std::uint64_t rows_per_thread = rows / threads;

    for (std::uint64_t it = 0; it < iterations; ++it) {
        // Pass 1: coefficient field from local gradients. The south
        // neighbour is loaded explicitly; north/east/west come from the
        // row registers of the previous sweep positions.
        detail::interleave(threads, rows_per_thread,
                           [&](int t, std::uint64_t rb) {
            const std::uint64_t r =
                static_cast<std::uint64_t>(t) * rows_per_thread + rb;
            const std::uint64_t rs = r + 1 < rows ? r + 1 : r;
            for (std::uint64_t c = 0; c < cols; ++c) {
                const double center =
                    w2f(ctx.load(t, elem(img, r * cols + c)));
                const double south =
                    w2f(ctx.load(t, elem(img, rs * cols + c)));
                const double g = south - center;
                const double k = 1.0 / (1.0 + g * g * 0.01);
                ctx.store(t, elem(coeff, r * cols + c), f2w(k));
            }
            ctx.computeFp(t, 30 * cols); // gradients, laplacian, q0sqr
            ctx.branch(t, false);
        });

        // Pass 2: image update from the coefficient field.
        detail::interleave(threads, rows_per_thread,
                           [&](int t, std::uint64_t rb) {
            const std::uint64_t r =
                static_cast<std::uint64_t>(t) * rows_per_thread + rb;
            const std::uint64_t rs = r + 1 < rows ? r + 1 : r;
            for (std::uint64_t c = 0; c < cols; ++c) {
                const double k =
                    w2f(ctx.load(t, elem(coeff, r * cols + c)));
                const double ks =
                    w2f(ctx.load(t, elem(coeff, rs * cols + c)));
                const Addr cell = elem(img, r * cols + c);
                const double v = w2f(ctx.load(t, cell));
                ctx.store(t, cell, f2w(v + 0.125 * (k + ks) * 0.5));
            }
            ctx.computeFp(t, 20 * cols);
            ctx.branch(t, false);
        });
    }
}

} // namespace dfault::workloads
