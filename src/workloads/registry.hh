/**
 * @file
 * Workload registry and the paper's benchmark suite definitions.
 *
 * A WorkloadConfig names a (kernel, thread count) pair and carries the
 * label used in the paper's figures: compute kernels appear twice, as
 * the single-threaded "name" and the 8-thread "name(par)" variants
 * (paper §IV-C); caching/analytics workloads run with 8 threads only.
 */

#ifndef DFAULT_WORKLOADS_REGISTRY_HH
#define DFAULT_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace dfault::workloads {

/** One benchmark configuration of the characterization campaign. */
struct WorkloadConfig
{
    std::string kernel; ///< registry key, e.g. "backprop"
    int threads = 8;
    std::string label;  ///< figure label, e.g. "backprop(par)"
};

/**
 * Instantiate a kernel by registry key. Known keys: backprop, kmeans,
 * nw, srad, fmm, memcached, pagerank, bfs, bc, lulesh_o2, lulesh_f,
 * random. fatal() on unknown keys.
 */
WorkloadPtr createWorkload(const std::string &kernel,
                           const Workload::Params &params);

/** All registry keys in deterministic order. */
std::vector<std::string> workloadKernels();

/**
 * The 14 benchmark configurations of the paper's training campaign:
 * {backprop, kmeans, nw, srad, fmm} x {1, 8 threads} plus
 * {memcached, pagerank, bfs, bc} x {8 threads}.
 */
std::vector<WorkloadConfig> standardSuite();

/**
 * Additional configurations used by specific experiments: the lulesh
 * compiler-flag pair and the random data-pattern micro-benchmark
 * (Figs 2 and 13).
 */
std::vector<WorkloadConfig> extendedSuite();

} // namespace dfault::workloads

#endif // DFAULT_WORKLOADS_REGISTRY_HH
