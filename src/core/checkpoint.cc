#include "core/checkpoint.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fi/durable.hh"
#include "fi/injector.hh"
#include "obs/json.hh"

namespace dfault::core {

namespace {

constexpr int kCheckpointVersion = 1;

void
hashDouble(std::uint64_t &hash, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g,", v);
    hash = fnv1a64(buf, hash);
}

void
hashU64(std::uint64_t &hash, std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",", v);
    hash = fnv1a64(buf, hash);
}

void
hashString(std::uint64_t &hash, const std::string &s)
{
    hash = fnv1a64(s, hash);
    hash = fnv1a64(";", hash);
}

std::string
digestHex(std::uint64_t digest)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
    return buf;
}

std::string
numberArrayJson(const std::vector<double> &values)
{
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0)
            out += ',';
        out += obs::jsonNumber(values[i]);
    }
    out += ']';
    return out;
}

bool
numberArrayFromJson(const obs::JsonValue *v, std::vector<double> &out)
{
    if (v == nullptr || !v->isArray())
        return false;
    out.clear();
    out.reserve(v->array.size());
    for (const obs::JsonValue &item : v->array) {
        if (item.kind != obs::JsonValue::Kind::Number)
            return false;
        out.push_back(item.number);
    }
    return true;
}

const obs::JsonValue *
requireNumber(const obs::JsonValue &doc, const char *key)
{
    const obs::JsonValue *v = doc.find(key);
    return v != nullptr && v->kind == obs::JsonValue::Kind::Number ? v
                                                                   : nullptr;
}

} // namespace

std::uint64_t
sweepConfigDigest(const CharacterizationCampaign::Params &params,
                  const std::vector<workloads::WorkloadConfig> &suite,
                  const std::vector<dram::OperatingPoint> &points)
{
    std::uint64_t hash = kFnvOffset64;
    hashString(hash, "dfault-sweep-v1");

    hashU64(hash, params.workload.footprintBytes);
    hashU64(hash, params.workload.seed);
    hashDouble(hash, params.workload.workScale);

    const ErrorIntegrator::Params &ip = params.integrator;
    hashDouble(hash, ip.epochLength);
    hashU64(hash, static_cast<std::uint64_t>(ip.epochs));
    hashDouble(hash, ip.exposureWords);
    hashDouble(hash, ip.accessRefreshExponent);
    hashU64(hash, ip.dataPatternVulnerability ? 1 : 0);
    hashDouble(hash, ip.ueWordCoupling);
    hashDouble(hash, ip.retention.mu);
    hashDouble(hash, ip.retention.sigma);
    hashDouble(hash, ip.retention.tempAlpha);
    hashDouble(hash, ip.retention.vddGamma);
    hashDouble(hash, ip.retention.refTemperature);
    hashDouble(hash, ip.vrt.onRate);
    hashDouble(hash, ip.vrt.offRate);
    hashDouble(hash, ip.interference.strength);
    hashDouble(hash, ip.interference.refActivations);
    hashDouble(hash, ip.interference.maxDelta);
    hashU64(hash, ip.seed);

    hashU64(hash, params.useThermalLoop ? 1 : 0);

    hashU64(hash, suite.size());
    for (const workloads::WorkloadConfig &config : suite) {
        hashString(hash, config.kernel);
        hashU64(hash, static_cast<std::uint64_t>(config.threads));
        hashString(hash, config.label);
    }
    hashU64(hash, points.size());
    for (const dram::OperatingPoint &op : points) {
        hashDouble(hash, op.trefp);
        hashDouble(hash, op.vdd);
        hashDouble(hash, op.temperature);
    }
    return hash;
}

std::string
checkpointCellJson(const CheckpointCell &cell, std::uint64_t digest)
{
    const Measurement &m = cell.measurement;
    obs::JsonWriter w;
    w.field("checkpoint_version", kCheckpointVersion);
    w.field("config_digest", digestHex(digest));
    w.field("cell", static_cast<std::uint64_t>(cell.cell));
    w.field("label", m.label);
    w.field("threads", m.threads);
    w.fieldRaw("requested", numberArrayJson({m.requested.trefp,
                                             m.requested.vdd,
                                             m.requested.temperature}));
    w.fieldRaw("achieved", numberArrayJson({m.achieved.trefp,
                                            m.achieved.vdd,
                                            m.achieved.temperature}));

    obs::JsonWriter run;
    run.fieldRaw("wer_series", numberArrayJson(m.run.werSeries));
    run.fieldRaw("ce_per_device", numberArrayJson(m.run.cePerDevice));
    run.fieldRaw("words_per_device", numberArrayJson(m.run.wordsPerDevice));
    run.field("crashed", m.run.crashed);
    run.field("crash_epoch", m.run.crashEpoch);
    run.field("crash_device", m.run.crashDevice);
    run.field("expected_sdc", m.run.expectedSdc);
    run.field("allocated_words", m.run.allocatedWords);
    w.fieldRaw("run", run.str());

    w.fieldRaw("stat_ops", obs::statOpsJson(cell.statOps));
    return w.str();
}

bool
checkpointCellFromJson(const std::string &text, std::uint64_t digest,
                       CheckpointCell &out, std::string *error)
{
    const auto fail = [error](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    std::string parse_error;
    const auto doc = obs::jsonParse(text, &parse_error);
    if (!doc)
        return fail("bad JSON: " + parse_error);
    if (!doc->isObject())
        return fail("not a JSON object");

    const obs::JsonValue *version = requireNumber(*doc, "checkpoint_version");
    if (version == nullptr ||
        static_cast<int>(version->number) != kCheckpointVersion)
        return fail("missing or unsupported checkpoint_version");

    const obs::JsonValue *cell_digest = doc->find("config_digest");
    if (cell_digest == nullptr ||
        cell_digest->kind != obs::JsonValue::Kind::String)
        return fail("missing config_digest");
    if (cell_digest->string != digestHex(digest))
        return fail("config digest mismatch (cell written by a different "
                    "campaign configuration): have " +
                    cell_digest->string + ", want " + digestHex(digest));

    const obs::JsonValue *cell_index = requireNumber(*doc, "cell");
    const obs::JsonValue *label = doc->find("label");
    const obs::JsonValue *threads = requireNumber(*doc, "threads");
    if (cell_index == nullptr || cell_index->number < 0 ||
        label == nullptr || label->kind != obs::JsonValue::Kind::String ||
        threads == nullptr)
        return fail("missing cell/label/threads");

    CheckpointCell parsed;
    parsed.cell = static_cast<std::size_t>(cell_index->number);
    Measurement &m = parsed.measurement;
    m.label = label->string;
    m.threads = static_cast<int>(threads->number);

    std::vector<double> op;
    if (!numberArrayFromJson(doc->find("requested"), op) || op.size() != 3)
        return fail("bad requested operating point");
    m.requested = {op[0], op[1], op[2]};
    if (!numberArrayFromJson(doc->find("achieved"), op) || op.size() != 3)
        return fail("bad achieved operating point");
    m.achieved = {op[0], op[1], op[2]};

    const obs::JsonValue *run = doc->find("run");
    if (run == nullptr || !run->isObject())
        return fail("missing run object");
    if (!numberArrayFromJson(run->find("wer_series"), m.run.werSeries) ||
        !numberArrayFromJson(run->find("ce_per_device"),
                             m.run.cePerDevice) ||
        !numberArrayFromJson(run->find("words_per_device"),
                             m.run.wordsPerDevice))
        return fail("bad run series arrays");
    const obs::JsonValue *crashed = run->find("crashed");
    const obs::JsonValue *crash_epoch = requireNumber(*run, "crash_epoch");
    const obs::JsonValue *crash_device = requireNumber(*run, "crash_device");
    const obs::JsonValue *sdc = requireNumber(*run, "expected_sdc");
    const obs::JsonValue *words = requireNumber(*run, "allocated_words");
    if (crashed == nullptr || crashed->kind != obs::JsonValue::Kind::Bool ||
        crash_epoch == nullptr || crash_device == nullptr ||
        sdc == nullptr || words == nullptr)
        return fail("bad run scalar fields");
    m.run.crashed = crashed->boolean;
    m.run.crashEpoch = static_cast<int>(crash_epoch->number);
    m.run.crashDevice = static_cast<int>(crash_device->number);
    m.run.expectedSdc = sdc->number;
    m.run.allocatedWords = words->number;

    const obs::JsonValue *ops = doc->find("stat_ops");
    std::string ops_error;
    if (ops == nullptr ||
        !obs::statOpsFromJson(*ops, parsed.statOps, &ops_error))
        return fail("bad stat_ops: " + ops_error);

    out = std::move(parsed);
    return true;
}

void
CheckpointJournal::open(const std::string &dir, std::uint64_t digest)
{
    DFAULT_ASSERT(!dir.empty(), "checkpoint journal needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        DFAULT_FATAL("cannot create checkpoint directory '", dir,
                     "': ", ec.message());
    dir_ = dir;
    digest_ = digest;
}

std::map<std::size_t, CheckpointCell>
CheckpointJournal::load(std::size_t totalCells) const
{
    std::map<std::size_t, CheckpointCell> cells;
    if (!enabled())
        return cells;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec) {
        DFAULT_WARN("cannot list checkpoint directory '", dir_,
                    "': ", ec.message());
        return cells;
    }
    for (const auto &entry : it) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (!name.starts_with("cell-") || !name.ends_with(".json"))
            continue;
        const std::string path = entry.path().string();
        std::string error;
        const auto body = fi::readFile(path, &error);
        if (!body) {
            DFAULT_WARN("checkpoint: skipping ", path, ": ", error);
            continue;
        }
        CheckpointCell cell;
        if (!checkpointCellFromJson(*body, digest_, cell, &error)) {
            DFAULT_WARN("checkpoint: skipping ", path, ": ", error);
            continue;
        }
        if (cell.cell >= totalCells) {
            DFAULT_WARN("checkpoint: skipping ", path, ": cell ",
                        cell.cell, " out of range (sweep has ",
                        totalCells, " cells)");
            continue;
        }
        cells[cell.cell] = std::move(cell);
    }
    return cells;
}

bool
CheckpointJournal::store(const CheckpointCell &cell) const
{
    DFAULT_ASSERT(enabled(), "store() on a disabled checkpoint journal");
    const std::string path = cellPath(cell.cell);
    if (!fi::atomicWriteFile(path,
                             checkpointCellJson(cell, digest_) + "\n")) {
        DFAULT_WARN("checkpoint: failed to journal cell ", cell.cell,
                    " to ", path, "; it will be re-measured on resume");
        return false;
    }
    return true;
}

std::string
CheckpointJournal::cellPath(std::size_t cell) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "cell-%06zu.json", cell);
    return dir_ + "/" + name;
}

} // namespace dfault::core
