/**
 * @file
 * Campaign result reporting: measurement tables as CSV for external
 * analysis/plotting, and aligned text tables for terminals.
 */

#ifndef DFAULT_CORE_REPORT_HH
#define DFAULT_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/characterization.hh"

namespace dfault::core {

/**
 * Write one row per (measurement, device) with the columns
 * `benchmark,threads,trefp_s,vdd_v,temp_c,device,wer,crashed` plus a
 * final aggregate row per measurement (device = "all").
 */
void writeMeasurementsCsv(const std::vector<Measurement> &measurements,
                          const dram::Geometry &geometry,
                          std::ostream &out);

/** File variant; fatal() on I/O failure. */
void writeMeasurementsCsvFile(
    const std::vector<Measurement> &measurements,
    const dram::Geometry &geometry, const std::string &path);

/**
 * Render a benchmark x operating-point WER table (one row per
 * benchmark, one column per distinct operating point, "UE" for crashed
 * runs) to a stream — the layout of the paper's Fig 7 panels.
 */
void printWerTable(const std::vector<Measurement> &measurements,
                   std::ostream &out);

} // namespace dfault::core

#endif // DFAULT_CORE_REPORT_HH
