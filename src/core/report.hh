/**
 * @file
 * Campaign result reporting: measurement tables as CSV for external
 * analysis/plotting, and aligned text tables for terminals.
 */

#ifndef DFAULT_CORE_REPORT_HH
#define DFAULT_CORE_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "core/characterization.hh"

namespace dfault::core {

/**
 * Write one row per (measurement, device) with the columns
 * `benchmark,threads,trefp_s,vdd_v,temp_c,device,wer,crashed` plus a
 * final aggregate row per measurement (device = "all"). Quarantined
 * measurements carry no data and are skipped (with a warning naming
 * them); the quarantine report is the record of what is missing.
 */
void writeMeasurementsCsv(const std::vector<Measurement> &measurements,
                          const dram::Geometry &geometry,
                          std::ostream &out);

/** File variant: written atomically; fatal() on I/O failure. */
void writeMeasurementsCsvFile(
    const std::vector<Measurement> &measurements,
    const dram::Geometry &geometry, const std::string &path);

/**
 * The quarantine report of a degrade-and-report sweep as one JSON
 * document: {"quarantine_version":1,"count":k,"slots":[...]} with one
 * slot object (cell, label, op, attempts, error) per quarantined cell.
 */
std::string quarantineJson(
    const std::vector<CharacterizationCampaign::QuarantineEntry> &entries);

/** Write quarantineJson() atomically. Returns false on I/O failure. */
bool writeQuarantineFile(
    const std::vector<CharacterizationCampaign::QuarantineEntry> &entries,
    const std::string &path);

/**
 * Render a benchmark x operating-point WER table (one row per
 * benchmark, one column per distinct operating point, "UE" for crashed
 * runs) to a stream — the layout of the paper's Fig 7 panels.
 */
void printWerTable(const std::vector<Measurement> &measurements,
                   std::ostream &out);

} // namespace dfault::core

#endif // DFAULT_CORE_REPORT_HH
