#include "core/trainer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "ml/cross_validation.hh"
#include "obs/events.hh"
#include "obs/span.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"
#include "par/pool.hh"
#include "ml/forest.hh"
#include "ml/knn.hh"
#include "ml/metrics.hh"
#include "ml/scaler.hh"
#include "ml/svr.hh"

namespace dfault::core {

namespace {

/** Floor applied before log-transforming WER targets. */
constexpr double kLogFloor = 1e-14;

double
toLog(double y)
{
    return std::log10(std::max(y, kLogFloor));
}

double
fromLog(double y_log)
{
    return std::pow(10.0, y_log);
}

} // namespace

std::string
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Svm:
        return "SVM";
      case ModelKind::Knn:
        return "KNN";
      case ModelKind::Rdf:
        return "RDF";
    }
    DFAULT_PANIC("unreachable model kind");
}

ml::RegressorPtr
makeModel(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Svm:
        return std::make_unique<ml::SvrRegressor>();
      case ModelKind::Knn:
        return std::make_unique<ml::KnnRegressor>();
      case ModelKind::Rdf:
        return std::make_unique<ml::RandomForestRegressor>();
    }
    DFAULT_PANIC("unreachable model kind");
}

namespace {

/** Per-fold result committed by fold index; reduced in fold order. */
struct FoldOutcome
{
    char contributed = 0;
    double groupMpe = 0.0;
    double hostSeconds = 0.0;
};

} // namespace

EvaluationResult
evaluateModel(const ml::Dataset &data, ModelKind kind, bool log_target)
{
    DFAULT_ASSERT(!data.empty(), "cannot evaluate on an empty dataset");

    EvaluationResult result;
    const obs::ScopedTimer cv_timer("cross_validate");
    const auto folds = ml::leaveOneGroupOut(data);

    // Folds are independent (each trains its own model on its own
    // split), so they fan out over the pool; all reduction and event
    // emission happens below in fold order, keeping the result —
    // including floating-point summation order — identical to a
    // serial run.
    const auto outcomes = par::Pool::global().parallelMap<FoldOutcome>(
        folds.size(), [&](std::size_t f) {
            // A fold is minutes of fitting at full scale: honour
            // shutdown/deadline cancellation before starting one.
            par::rootCancelToken().throwIfCancelled();
            const ml::Fold &fold = folds[f];
            const obs::ScopedTimer fold_timer("fold");
            // Name the fold in the trace by its held-out benchmark.
            if (obs::SpanTracer::instance().enabled())
                obs::SpanTracer::instance().annotateCurrent(
                    modelKindName(kind) + " holdout " +
                    fold.heldOutGroup);
            const ml::Dataset train = data.subset(fold.trainRows);
            const ml::Dataset test = data.subset(fold.testRows);

            ml::StandardScaler scaler;
            scaler.fit(train.x());
            const ml::Matrix train_x = scaler.transform(train.x());

            std::vector<double> train_y = train.y();
            if (log_target)
                for (auto &y : train_y)
                    y = toLog(y);

            auto model = makeModel(kind);
            {
                const obs::ScopedTimer fit_timer("train");
                model->fit(train_x, train_y);
            }

            // Clamp predictions to the envelope of the training
            // targets (plus one decade in log space): a prediction
            // outside the observed range for a held-out benchmark is
            // an extrapolation artifact, not information.
            double y_lo = train_y[0], y_hi = train_y[0];
            for (const double y : train_y) {
                y_lo = std::min(y_lo, y);
                y_hi = std::max(y_hi, y);
            }
            const double margin = log_target ? 1.0 : 0.0;

            // Percentage error over the held-out benchmark's samples.
            double err_sum = 0.0;
            int err_count = 0;
            for (std::size_t i = 0; i < test.size(); ++i) {
                const double measured = test.y()[i];
                if (measured == 0.0)
                    continue; // no percentage is defined
                double predicted =
                    model->predict(scaler.transform(test.x()[i]));
                predicted =
                    std::clamp(predicted, y_lo - margin, y_hi + margin);
                if (log_target)
                    predicted = fromLog(predicted);
                err_sum += ml::percentageError(measured, predicted);
                ++err_count;
            }

            FoldOutcome outcome;
            outcome.hostSeconds = fold_timer.elapsed();
            if (err_count > 0) {
                outcome.contributed = 1;
                outcome.groupMpe = err_sum / err_count;
            }
            // err_count == 0: benchmark never manifested the metric
            return outcome;
        });

    double mpe_sum = 0.0;
    int contributing_groups = 0;
    auto &sink = obs::EventSink::instance();
    for (std::size_t f = 0; f < folds.size(); ++f) {
        obs::Registry::instance()
            .counter("ml.folds", "LOBO cross-validation folds run")
            .inc();
        const FoldOutcome &outcome = outcomes[f];
        if (!outcome.contributed)
            continue;
        result.mpePerGroup[folds[f].heldOutGroup] = outcome.groupMpe;
        mpe_sum += outcome.groupMpe;
        ++contributing_groups;

        if (sink.enabled()) {
            obs::JsonWriter w;
            w.field("model", modelKindName(kind));
            w.field("held_out", folds[f].heldOutGroup);
            w.field("group_mpe", outcome.groupMpe);
            w.field("train_rows",
                    static_cast<std::uint64_t>(folds[f].trainRows.size()));
            w.field("test_rows",
                    static_cast<std::uint64_t>(folds[f].testRows.size()));
            w.field("host_seconds", outcome.hostSeconds);
            sink.emit("fold", w);
        }
    }

    result.mpe = contributing_groups > 0
                     ? mpe_sum / contributing_groups
                     : 0.0;
    return result;
}

} // namespace dfault::core
