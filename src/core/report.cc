#include "core/report.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace dfault::core {

void
writeMeasurementsCsv(const std::vector<Measurement> &measurements,
                     const dram::Geometry &geometry, std::ostream &out)
{
    out << "benchmark,threads,trefp_s,vdd_v,temp_c,device,wer,crashed\n";
    out << std::setprecision(12);
    for (const auto &m : measurements) {
        for (int d = 0; d < geometry.deviceCount(); ++d) {
            out << m.label << ',' << m.threads << ','
                << m.requested.trefp << ',' << m.requested.vdd << ','
                << m.requested.temperature << ','
                << geometry.deviceAt(d).label() << ','
                << m.run.werForDevice(d) << ','
                << (m.run.crashed ? 1 : 0) << '\n';
        }
        out << m.label << ',' << m.threads << ',' << m.requested.trefp
            << ',' << m.requested.vdd << ','
            << m.requested.temperature << ",all," << m.run.wer() << ','
            << (m.run.crashed ? 1 : 0) << '\n';
    }
}

void
writeMeasurementsCsvFile(const std::vector<Measurement> &measurements,
                         const dram::Geometry &geometry,
                         const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        DFAULT_FATAL("report: cannot open '", path, "' for writing");
    writeMeasurementsCsv(measurements, geometry, out);
    if (!out)
        DFAULT_FATAL("report: write to '", path, "' failed");
}

void
printWerTable(const std::vector<Measurement> &measurements,
              std::ostream &out)
{
    // Column per distinct operating point, in first-appearance order.
    std::vector<std::string> columns;
    std::vector<std::string> rows;
    std::map<std::string, std::map<std::string, const Measurement *>>
        table;
    for (const auto &m : measurements) {
        const std::string op = m.requested.label();
        if (table[m.label].empty() &&
            std::find(rows.begin(), rows.end(), m.label) == rows.end())
            rows.push_back(m.label);
        if (std::find(columns.begin(), columns.end(), op) ==
            columns.end())
            columns.push_back(op);
        table[m.label][op] = &m;
    }

    out << std::left << std::setw(15) << "benchmark";
    for (const auto &op : columns)
        out << std::right << std::setw(30) << op;
    out << '\n';

    for (const auto &row : rows) {
        out << std::left << std::setw(15) << row;
        for (const auto &op : columns) {
            const auto it = table[row].find(op);
            if (it == table[row].end()) {
                out << std::right << std::setw(30) << "-";
            } else if (it->second->run.crashed) {
                out << std::right << std::setw(30) << "UE";
            } else {
                std::ostringstream cell;
                cell << std::scientific << std::setprecision(3)
                     << it->second->run.wer();
                out << std::right << std::setw(30) << cell.str();
            }
        }
        out << '\n';
    }
}

} // namespace dfault::core
