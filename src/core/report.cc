#include "core/report.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "fi/durable.hh"
#include "obs/json.hh"

namespace dfault::core {

void
writeMeasurementsCsv(const std::vector<Measurement> &measurements,
                     const dram::Geometry &geometry, std::ostream &out)
{
    out << "benchmark,threads,trefp_s,vdd_v,temp_c,device,wer,crashed\n";
    out << std::setprecision(12);
    for (const auto &m : measurements) {
        if (m.quarantined) {
            DFAULT_WARN("report: omitting quarantined measurement ",
                        m.label, " at ", m.requested.label(), ": ",
                        m.failure);
            continue;
        }
        if (m.cancelled)
            continue; // interrupted run: the cell has no data yet
        for (int d = 0; d < geometry.deviceCount(); ++d) {
            out << m.label << ',' << m.threads << ','
                << m.requested.trefp << ',' << m.requested.vdd << ','
                << m.requested.temperature << ','
                << geometry.deviceAt(d).label() << ','
                << m.run.werForDevice(d) << ','
                << (m.run.crashed ? 1 : 0) << '\n';
        }
        out << m.label << ',' << m.threads << ',' << m.requested.trefp
            << ',' << m.requested.vdd << ','
            << m.requested.temperature << ",all," << m.run.wer() << ','
            << (m.run.crashed ? 1 : 0) << '\n';
    }
}

void
writeMeasurementsCsvFile(const std::vector<Measurement> &measurements,
                         const dram::Geometry &geometry,
                         const std::string &path)
{
    std::ostringstream out;
    writeMeasurementsCsv(measurements, geometry, out);
    if (!out)
        DFAULT_FATAL("report: formatting rows for '", path, "' failed");
    if (!fi::atomicWriteFile(path, out.str()))
        DFAULT_FATAL("report: write to '", path, "' failed");
}

void
printWerTable(const std::vector<Measurement> &measurements,
              std::ostream &out)
{
    // Column per distinct operating point, in first-appearance order.
    std::vector<std::string> columns;
    std::vector<std::string> rows;
    std::map<std::string, std::map<std::string, const Measurement *>>
        table;
    for (const auto &m : measurements) {
        const std::string op = m.requested.label();
        if (table[m.label].empty() &&
            std::find(rows.begin(), rows.end(), m.label) == rows.end())
            rows.push_back(m.label);
        if (std::find(columns.begin(), columns.end(), op) ==
            columns.end())
            columns.push_back(op);
        table[m.label][op] = &m;
    }

    out << std::left << std::setw(15) << "benchmark";
    for (const auto &op : columns)
        out << std::right << std::setw(30) << op;
    out << '\n';

    for (const auto &row : rows) {
        out << std::left << std::setw(15) << row;
        for (const auto &op : columns) {
            const auto it = table[row].find(op);
            if (it == table[row].end()) {
                out << std::right << std::setw(30) << "-";
            } else if (it->second->quarantined) {
                out << std::right << std::setw(30) << "FAIL";
            } else if (it->second->cancelled) {
                out << std::right << std::setw(30) << "CANCELLED";
            } else if (it->second->run.crashed) {
                out << std::right << std::setw(30) << "UE";
            } else {
                std::ostringstream cell;
                cell << std::scientific << std::setprecision(3)
                     << it->second->run.wer();
                out << std::right << std::setw(30) << cell.str();
            }
        }
        out << '\n';
    }
}

std::string
quarantineJson(
    const std::vector<CharacterizationCampaign::QuarantineEntry> &entries)
{
    std::string slots = "[";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const auto &e = entries[i];
        if (i > 0)
            slots += ',';
        obs::JsonWriter w;
        w.field("cell", static_cast<std::uint64_t>(e.cell));
        w.field("label", e.label);
        w.field("op", e.op);
        w.field("attempts", e.attempts);
        w.field("error", e.error);
        slots += w.str();
    }
    slots += ']';

    obs::JsonWriter doc;
    doc.field("quarantine_version", 1);
    doc.field("count", static_cast<std::uint64_t>(entries.size()));
    doc.fieldRaw("slots", slots);
    return doc.str();
}

bool
writeQuarantineFile(
    const std::vector<CharacterizationCampaign::QuarantineEntry> &entries,
    const std::string &path)
{
    return fi::atomicWriteFile(path, quarantineJson(entries) + "\n");
}

} // namespace dfault::core
