#include "core/error_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dfault::core {

namespace {

constexpr double kLogFloor = 1e-14;

} // namespace

std::vector<double>
DramErrorModel::makeRow(const features::WorkloadProfile &profile,
                        const dram::OperatingPoint &op) const
{
    std::vector<double> row;
    row.reserve(programFeatures_.size() + 3);
    for (const auto &name : programFeatures_)
        row.push_back(profile.features.get(name));
    row.push_back(op.trefp);
    row.push_back(op.vdd);
    row.push_back(op.temperature);
    return row;
}

DramErrorModel
DramErrorModel::trainWer(const std::vector<Measurement> &measurements,
                         int device_count, const Options &options)
{
    DFAULT_ASSERT(device_count > 0, "need at least one device");
    DramErrorModel model;
    model.options_ = options;
    model.programFeatures_ = inputSetFeatures(options.inputSet);

    double total_words = 0.0;
    std::vector<double> device_words(device_count, 0.0);

    for (int d = 0; d < device_count; ++d) {
        const ml::Dataset data =
            makeWerDataset(measurements, d, options.inputSet);
        DFAULT_ASSERT(!data.empty(), "no usable WER measurements");

        DeviceModel dev;
        dev.scaler.fit(data.x());
        std::vector<double> y = data.y();
        if (options.logTarget)
            for (auto &v : y)
                v = std::log10(std::max(v, kLogFloor));
        dev.targetLo = *std::min_element(y.begin(), y.end());
        dev.targetHi = *std::max_element(y.begin(), y.end());
        dev.regressor = makeModel(options.kind);
        dev.regressor->fit(dev.scaler.transform(data.x()), y);
        model.werModels_.push_back(std::move(dev));
    }

    for (const auto &m : measurements) {
        // Quarantined and cancelled cells carry an empty run.
        if (m.quarantined || m.cancelled || m.run.crashed)
            continue;
        for (int d = 0; d < device_count; ++d)
            device_words[d] += m.run.wordsPerDevice.at(d);
        total_words += m.run.allocatedWords;
    }
    for (int d = 0; d < device_count; ++d)
        model.werModels_[d].wordsShare =
            total_words > 0.0 ? device_words[d] / total_words : 0.0;

    return model;
}

DramErrorModel
DramErrorModel::trainPue(CharacterizationCampaign &campaign,
                         const std::vector<PueSample> &samples,
                         const Options &options)
{
    DramErrorModel model;
    model.options_ = options;
    model.programFeatures_ = inputSetFeatures(options.inputSet);

    const ml::Dataset data =
        makePueDataset(campaign, samples, options.inputSet);
    DFAULT_ASSERT(!data.empty(), "no usable PUE samples");

    auto dev = std::make_unique<DeviceModel>();
    dev->scaler.fit(data.x());
    dev->regressor = makeModel(options.kind);
    dev->regressor->fit(dev->scaler.transform(data.x()), data.y());
    model.pueModel_ = std::move(dev);
    return model;
}

double
DramErrorModel::predictWer(const features::WorkloadProfile &profile,
                           const dram::OperatingPoint &op,
                           int device) const
{
    DFAULT_ASSERT(!werModels_.empty(), "model was not trained for WER");
    DFAULT_ASSERT(device >= 0 &&
                      device < static_cast<int>(werModels_.size()),
                  "device index out of range");
    const DeviceModel &dev = werModels_[device];
    // Clamp to the training envelope (one extra decade in log space):
    // beyond it the regressor is extrapolating, not predicting.
    const double margin = options_.logTarget ? 1.0 : 0.0;
    const double raw = std::clamp(
        dev.regressor->predict(
            dev.scaler.transform(makeRow(profile, op))),
        dev.targetLo - margin, dev.targetHi + margin);
    return options_.logTarget ? std::pow(10.0, raw) : std::max(raw, 0.0);
}

double
DramErrorModel::predictWerAggregate(
    const features::WorkloadProfile &profile,
    const dram::OperatingPoint &op) const
{
    double acc = 0.0;
    for (std::size_t d = 0; d < werModels_.size(); ++d)
        acc += werModels_[d].wordsShare *
               predictWer(profile, op, static_cast<int>(d));
    return acc;
}

double
DramErrorModel::predictPue(const features::WorkloadProfile &profile,
                           const dram::OperatingPoint &op) const
{
    DFAULT_ASSERT(pueModel_ != nullptr, "model was not trained for PUE");
    const double raw = pueModel_->regressor->predict(
        pueModel_->scaler.transform(makeRow(profile, op)));
    return std::clamp(raw, 0.0, 1.0);
}

ConventionalModel::ConventionalModel(
    CharacterizationCampaign &campaign,
    const std::vector<dram::OperatingPoint> &points)
{
    const workloads::WorkloadConfig micro{"random", 8, "random"};
    for (const auto &op : points) {
        const Measurement m = campaign.measure(micro, op);
        table_.emplace_back(op, m.run.wer());
    }
}

double
ConventionalModel::predictWer(const dram::OperatingPoint &op) const
{
    DFAULT_ASSERT(!table_.empty(), "conventional model has no table");
    // Nearest operating point by (log TREFP, temperature) distance.
    double best = 1e300;
    double wer = 0.0;
    for (const auto &[point, value] : table_) {
        const double d_trefp =
            std::log(op.trefp) - std::log(point.trefp);
        const double d_temp =
            (op.temperature - point.temperature) / 10.0;
        const double d2 = d_trefp * d_trefp + d_temp * d_temp;
        if (d2 < best) {
            best = d2;
            wer = value;
        }
    }
    return wer;
}

} // namespace dfault::core
