/**
 * @file
 * Sweep checkpoint journal.
 *
 * A characterization sweep with a checkpoint directory journals every
 * completed (workload, operating point) cell as one small JSON file,
 * written atomically (fi::atomicWriteFile), so a campaign killed at
 * any instant leaves only complete cells behind. On resume the journal
 * is loaded, valid cells are skipped, and their *deferred stat ops*
 * (obs/deferral.hh) are replayed in cell order — the resumed run
 * reaches a stats digest bit-identical to an uninterrupted one.
 *
 * Every cell file carries the sweep's config digest: a hash of all
 * campaign parameters that define the results (workload params,
 * integrator params, thermal flag, suite, operating points). A cell
 * journaled by a different configuration — or a truncated, garbage or
 * wrong-version file — is warned about and re-measured, never trusted.
 * The digest deliberately excludes the thread count: a sweep may be
 * resumed with a different DFAULT_THREADS and still verify.
 */

#ifndef DFAULT_CORE_CHECKPOINT_HH
#define DFAULT_CORE_CHECKPOINT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/characterization.hh"
#include "obs/deferral.hh"

namespace dfault::core {

/** Hash of every campaign parameter that determines sweep results. */
std::uint64_t
sweepConfigDigest(const CharacterizationCampaign::Params &params,
                  const std::vector<workloads::WorkloadConfig> &suite,
                  const std::vector<dram::OperatingPoint> &points);

/** One journaled sweep cell: the measurement plus its stat mutations. */
struct CheckpointCell
{
    std::size_t cell = 0; ///< index into the suite x points grid
    Measurement measurement; ///< profile pointer not persisted
    std::vector<obs::StatOp> statOps;
};

/** Serialize a cell (with the sweep digest) to one JSON document. */
std::string checkpointCellJson(const CheckpointCell &cell,
                               std::uint64_t digest);

/**
 * Parse a checkpointCellJson() document. Returns false and sets
 * @p error when the document is malformed, has the wrong version, or
 * carries a digest other than @p digest.
 */
bool checkpointCellFromJson(const std::string &text, std::uint64_t digest,
                            CheckpointCell &out, std::string *error);

/** See file comment. */
class CheckpointJournal
{
  public:
    /**
     * Bind to @p dir (created, parents included, when missing) for a
     * sweep whose config hashes to @p digest. Fatal when the
     * directory cannot be created: a checkpointed campaign that
     * cannot checkpoint is a user-visible configuration error.
     */
    void open(const std::string &dir, std::uint64_t digest);

    bool enabled() const { return !dir_.empty(); }

    /**
     * Load every valid cell with index < @p totalCells. Corrupt,
     * mismatched and out-of-range files are warned about and skipped.
     */
    std::map<std::size_t, CheckpointCell> load(std::size_t totalCells) const;

    /**
     * Durably journal one completed cell. Returns false (after a
     * warning) when the write fails; the sweep carries on — a lost
     * journal entry only costs re-measurement on resume.
     */
    bool store(const CheckpointCell &cell) const;

  private:
    std::string cellPath(std::size_t cell) const;

    std::string dir_;
    std::uint64_t digest_ = 0;
};

} // namespace dfault::core

#endif // DFAULT_CORE_CHECKPOINT_HH
