/**
 * @file
 * The DRAM error-manifestation engine (DESIGN.md §5).
 *
 * Given a workload profile (per-row access statistics + data pattern)
 * and an operating point, the integrator evolves the 2-hour
 * characterization run in one-minute epochs:
 *
 *  - each touched row has an effective refresh interval
 *    Teff = min(TREFP, mean inter-access time): accesses implicitly
 *    refresh the row (paper §II-C);
 *  - the retention model gives the probability that a cell leaks within
 *    Teff under the operating point and the device's variation scale;
 *  - aggressor activations of physically adjacent rows widen the
 *    failing threshold (cell-to-cell interference / row hammer);
 *  - the true-/anti-cell orientation gates failures on the stored data
 *    (a cell only flips if it holds the charged state), coupling the
 *    workload's bit-level data pattern into the error rate;
 *  - variable retention time (VRT) toggles weak cells between failing
 *    and quiet states across epochs: the unique-location WER grows over
 *    the run and converges (Figs 2/4), and repeat runs differ;
 *  - manifested flips are pushed through the SECDED codec: single flips
 *    are CEs, double flips are UEs and crash the machine, triples may
 *    be silently miscorrected (SDC).
 *
 * Counting runs at "paper scale": expected counts are multiplied by
 * exposureScale so that absolute-count statistics (UE probability) are
 * computed as if the workload had allocated the paper's 8 GB footprint
 * (DESIGN.md §4); WER, a density, is invariant to this.
 */

#ifndef DFAULT_CORE_ERROR_INTEGRATOR_HH
#define DFAULT_CORE_ERROR_INTEGRATOR_HH

#include <cstdint>
#include <vector>

#include "dram/device.hh"
#include "dram/ecc.hh"
#include "dram/error_log.hh"
#include "dram/interference.hh"
#include "dram/operating_point.hh"
#include "dram/retention.hh"
#include "dram/vrt.hh"
#include "features/profile.hh"

namespace dfault::core {

/** Result of one simulated characterization run. */
struct RunResult
{
    /** Aggregate WER (unique CE words / allocated words) per epoch. */
    std::vector<double> werSeries;

    /** Final unique CE word count per device (exposure-scaled). */
    std::vector<double> cePerDevice;

    /** Words of the workload footprint on each device (scaled). */
    std::vector<double> wordsPerDevice;

    /** True if a UE crashed the run. */
    bool crashed = false;

    /** Epoch of the crash (meaningless unless crashed). */
    int crashEpoch = -1;

    /** Device that triggered the crash (index; -1 if none). */
    int crashDevice = -1;

    /** Expected SDC events (miscorrections); ~0 in the paper's regime. */
    double expectedSdc = 0.0;

    /** Scaled MEMSIZE: allocated words x exposure scale (WER denominator). */
    double allocatedWords = 0.0;

    /** Final aggregate WER. */
    double wer() const;

    /** Final WER of one device. */
    double werForDevice(int device) const;
};

/** Per-row failure intensity, for retention-profiling analyses. */
struct RowIntensity
{
    std::uint64_t rowIndex = 0;   ///< flat row index within the device
    double ceLambda = 0.0;        ///< expected failing cells (scaled)
    double suppression = 1.0;     ///< implicit-refresh factor applied
    double interferenceDelta = 0.0; ///< threshold widening from hammering
};

/** See file comment. */
class ErrorIntegrator
{
  public:
    struct Params
    {
        Seconds epochLength = 60.0;
        int epochs = 120; ///< the paper's 2-hour runs
        /**
         * Footprint words emulated for absolute counts; <= 0 selects
         * the paper's 8 GiB. The scale factor applied per run is
         * exposureWords / footprintWords.
         */
        double exposureWords = -1.0;
        /**
         * Exponent of the implicit-refresh suppression factor
         * (mean inter-access time / TREFP)^exponent applied to rows the
         * workload re-accesses faster than the refresh period. Accesses
         * restore charge, but bursty schedules, VRT and scheduling gaps
         * keep the suppression partial (the paper finds the reuse time
         * only weakly anti-correlated with WER, rs ~ 0.23).
         */
        double accessRefreshExponent = 0.8;
        /**
         * Gate failures on the stored data vs the cell orientation
         * (true-/anti-cell). Disable for ablation studies: every cell
         * is then treated as half-vulnerable regardless of content.
         */
        bool dataPatternVulnerability = true;
        /**
         * Fraction of weak-cell pairs sharing an ECC word that
         * co-manifest within one refresh window. Two independently
         * decaying cells rarely cross their thresholds in the same
         * window, so a UE needs more than two nominally-weak cells in
         * a word (calibrated against paper Fig 9a: mean PUE < 0.4 at
         * TREFP = 1.45 s / 70 C, zero UEs at or below 60 C).
         */
        double ueWordCoupling = 0.0015;
        dram::RetentionModel::Params retention;
        dram::VrtModel::Params vrt;
        dram::InterferenceModel::Params interference;
        std::uint64_t seed = 0x5eed;
    };

    ErrorIntegrator();
    explicit ErrorIntegrator(const Params &params);

    const Params &params() const { return params_; }

    /**
     * Simulate one characterization run of @p profile at @p op on the
     * device population @p devices.
     *
     * @param run_seed distinguishes repeat runs of the same experiment
     *        (paper repeats each PUE experiment 10 times)
     * @param log optional error log receiving sampled error records
     */
    RunResult run(const features::WorkloadProfile &profile,
                  const dram::OperatingPoint &op,
                  const dram::Geometry &geometry,
                  const std::vector<dram::DramDevice> &devices,
                  std::uint64_t run_seed = 0,
                  dram::ErrorLog *log = nullptr) const;

    /**
     * Per-row expected failure intensities of one device under @p op —
     * the analysis view behind retention profiling (which rows would a
     * characterization flag?) and row-level risk tooling. Only touched
     * rows appear; ordering follows the profile's row list.
     */
    std::vector<RowIntensity>
    analyzeRows(const features::WorkloadProfile &profile,
                const dram::OperatingPoint &op,
                const dram::Geometry &geometry,
                const dram::DramDevice &device, int device_index) const;

  private:
    Params params_;
    dram::RetentionModel retention_;
    dram::VrtModel vrt_;
    dram::InterferenceModel interference_;
    dram::EccSecded ecc_;

    /** Per-device precomputed failure intensities. */
    struct DeviceIntensity
    {
        double ceLambda = 0.0;     ///< expected failing cells (scaled)
        double uePerEpoch = 0.0;   ///< expected UE words per epoch
        double sdcPerEpoch = 0.0;  ///< expected >=3-flip words per epoch
        double touchedWords = 0.0; ///< scaled words on this device
        /** Rows with non-trivial intensity, for record sampling. */
        std::vector<std::pair<std::uint64_t, double>> hotRows;
    };

    DeviceIntensity
    computeIntensity(const features::WorkloadProfile &profile,
                     const dram::OperatingPoint &op,
                     const dram::Geometry &geometry,
                     const dram::DramDevice &device, int device_index,
                     double exposure_scale) const;
};

} // namespace dfault::core

#endif // DFAULT_CORE_ERROR_INTEGRATOR_HH
