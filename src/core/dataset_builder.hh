/**
 * @file
 * Assembling ML datasets from campaign measurements ("Build data set"
 * in paper Fig 3).
 *
 * WER datasets are per device (the paper trains and evaluates the model
 * for a specific DIMM/rank): one sample per (workload, operating point)
 * with the device's measured WER as target. PUE datasets have one
 * sample per (workload, operating point) with the crash probability
 * over repeats as target. Model inputs are the selected program
 * features plus the operating parameters TREFP, VDD and TEMPDRAM.
 */

#ifndef DFAULT_CORE_DATASET_BUILDER_HH
#define DFAULT_CORE_DATASET_BUILDER_HH

#include <vector>

#include "core/characterization.hh"
#include "core/input_sets.hh"
#include "ml/dataset.hh"

namespace dfault::core {

/** Names of the operating-parameter columns appended to every set. */
inline const char *const kOpFeatureNames[] = {"op_trefp_s", "op_vdd_v",
                                              "op_temperature_c"};

/**
 * Per-device WER dataset from a campaign sweep. Measurements whose
 * device WER is zero are kept (the model must learn near-zero rates);
 * crashed runs are excluded (no full-window WER exists for them).
 */
ml::Dataset makeWerDataset(const std::vector<Measurement> &measurements,
                           int device, InputSet set);

/** One PUE observation: workload, operating point, crash probability. */
struct PueSample
{
    workloads::WorkloadConfig config;
    dram::OperatingPoint op;
    double pue = 0.0;
};

/**
 * Collect the PUE table: every workload x PUE operating point with
 * @p repeats runs each (paper: 10 repeats of each 2-hour experiment).
 */
std::vector<PueSample>
collectPueSamples(CharacterizationCampaign &campaign,
                  const std::vector<workloads::WorkloadConfig> &suite,
                  const std::vector<dram::OperatingPoint> &points,
                  int repeats);

/** PUE dataset over pre-collected samples. */
ml::Dataset makePueDataset(CharacterizationCampaign &campaign,
                           const std::vector<PueSample> &samples,
                           InputSet set);

} // namespace dfault::core

#endif // DFAULT_CORE_DATASET_BUILDER_HH
