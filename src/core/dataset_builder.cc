#include "core/dataset_builder.hh"

#include <cmath>

#include "common/logging.hh"
#include "features/catalog.hh"
#include "obs/stats.hh"

namespace dfault::core {

namespace {

/** Feature schema of a dataset: program features + operating params. */
std::vector<std::string>
schema(InputSet set)
{
    std::vector<std::string> names = inputSetFeatures(set);
    for (const char *op : kOpFeatureNames)
        names.emplace_back(op);
    return names;
}

/** Assemble one sample row from a profile and an operating point. */
std::vector<double>
sampleRow(const features::WorkloadProfile &profile,
          const dram::OperatingPoint &op,
          const std::vector<std::string> &program_features)
{
    std::vector<double> row;
    row.reserve(program_features.size() + 3);
    for (const auto &name : program_features)
        row.push_back(profile.features.get(name));
    row.push_back(op.trefp);
    row.push_back(op.vdd);
    row.push_back(op.temperature);
    return row;
}

/**
 * Final screen before a row enters a training set: reject NaN/inf
 * features or targets, naming the offending feature. A corrupted
 * measurement (e.g. an injected fault, or a model bug) must cost one
 * sample and a warning, not silently poison the whole fit.
 */
bool
admitSample(ml::Dataset &data, std::vector<double> row, double target,
            const std::string &group)
{
    if (const auto bad = ml::firstNonFinite(row)) {
        DFAULT_WARN("dataset: quarantining sample of ", group,
                    ": feature '", data.featureNames()[*bad],
                    "' is not finite");
        obs::Registry::instance()
            .counter("fi.quarantined_rows",
                     "dataset rows dropped for non-finite values")
            .inc();
        return false;
    }
    if (!std::isfinite(target)) {
        DFAULT_WARN("dataset: quarantining sample of ", group,
                    ": target is not finite");
        obs::Registry::instance()
            .counter("fi.quarantined_rows",
                     "dataset rows dropped for non-finite values")
            .inc();
        return false;
    }
    data.addSample(std::move(row), target, group);
    return true;
}

} // namespace

ml::Dataset
makeWerDataset(const std::vector<Measurement> &measurements, int device,
               InputSet set)
{
    const auto program_features = inputSetFeatures(set);
    ml::Dataset data(schema(set));
    for (const auto &m : measurements) {
        if (m.quarantined) {
            DFAULT_WARN("dataset: skipping quarantined measurement ",
                        m.label, " at ", m.requested.label());
            continue;
        }
        if (m.cancelled)
            continue; // interrupted, not failed: re-measured on resume
        if (m.run.crashed)
            continue;
        DFAULT_ASSERT(m.profile != nullptr, "measurement lost its profile");
        admitSample(data,
                    sampleRow(*m.profile, m.requested, program_features),
                    m.run.werForDevice(device), m.label);
    }
    return data;
}

std::vector<PueSample>
collectPueSamples(CharacterizationCampaign &campaign,
                  const std::vector<workloads::WorkloadConfig> &suite,
                  const std::vector<dram::OperatingPoint> &points,
                  int repeats)
{
    std::vector<PueSample> samples;
    samples.reserve(suite.size() * points.size());
    for (const auto &config : suite) {
        for (const auto &op : points) {
            PueSample sample;
            sample.config = config;
            sample.op = op;
            sample.pue = campaign.measurePue(config, op, repeats);
            samples.push_back(std::move(sample));
        }
    }
    return samples;
}

ml::Dataset
makePueDataset(CharacterizationCampaign &campaign,
               const std::vector<PueSample> &samples, InputSet set)
{
    const auto program_features = inputSetFeatures(set);
    ml::Dataset data(schema(set));
    for (const auto &sample : samples) {
        const features::WorkloadProfile &profile =
            features::ProfileCache::instance().get(
                campaign.platform(), sample.config,
                campaign.params().workload);
        admitSample(data,
                    sampleRow(profile, sample.op, program_features),
                    sample.pue, sample.config.label);
    }
    return data;
}

} // namespace dfault::core
