/**
 * @file
 * The three model input sets of paper Table III.
 *
 * Every set implicitly includes the operating parameters (TEMPDRAM,
 * TREFP, and VDD); the sets differ in which *program* features join
 * them:
 *   set 1: wait cycles, memory accesses, HDP, Treuse
 *   set 2: wait cycles, memory accesses
 *   set 3: all 249 program features
 */

#ifndef DFAULT_CORE_INPUT_SETS_HH
#define DFAULT_CORE_INPUT_SETS_HH

#include <string>
#include <vector>

namespace dfault::core {

/** See file comment. */
enum class InputSet
{
    Set1,
    Set2,
    Set3,
};

/** All sets, in Table III order. */
inline constexpr InputSet kAllInputSets[] = {InputSet::Set1,
                                             InputSet::Set2,
                                             InputSet::Set3};

/** "Input set 1" etc., as used in the figures. */
std::string inputSetName(InputSet set);

/** Catalog names of the program features in the set. */
std::vector<std::string> inputSetFeatures(InputSet set);

} // namespace dfault::core

#endif // DFAULT_CORE_INPUT_SETS_HH
