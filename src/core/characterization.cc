#include "core/characterization.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/checkpoint.hh"
#include "dram/power.hh"
#include "fi/injector.hh"
#include "obs/deferral.hh"
#include "obs/events.hh"
#include "obs/span.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"
#include "par/pool.hh"

namespace dfault::core {

CharacterizationCampaign::CharacterizationCampaign(sys::Platform &platform)
    : CharacterizationCampaign(platform, Params{})
{
}

CharacterizationCampaign::CharacterizationCampaign(sys::Platform &platform,
                                                   const Params &params)
    : platform_(platform), params_(params), integrator_(params.integrator)
{
}

Measurement
CharacterizationCampaign::measure(const workloads::WorkloadConfig &config,
                                  const dram::OperatingPoint &op,
                                  std::uint64_t run_seed,
                                  dram::ErrorLog *log)
{
    return measureOn(platform_, config, op, run_seed, log);
}

Measurement
CharacterizationCampaign::measureOn(sys::Platform &platform,
                                    const workloads::WorkloadConfig &config,
                                    const dram::OperatingPoint &op,
                                    std::uint64_t run_seed,
                                    dram::ErrorLog *log, int attempt)
{
    op.validate();

    const auto cell_start = std::chrono::steady_clock::now();

    // Cooperative cancellation: bail before committing to the cell.
    // A CancelledError here reaches the pool's Cancelled disposition,
    // never the retry/quarantine path.
    const par::CancelToken &token = params_.cancelToken.valid()
                                        ? params_.cancelToken
                                        : par::rootCancelToken();
    token.throwIfCancelled();

    // The cell key is derived from labels, not indices, so the fault
    // schedule is identical whether the cell runs through measure()
    // or a sweep; the attempt re-rolls it so max_attempt-bounded
    // faults recover under retry.
    auto &inj = fi::Injector::instance();
    const std::uint64_t cell_key =
        hashCombine(fnv1a64(config.label), fnv1a64(op.label()));

    // Heartbeat contract: annotate + beat before the first fault
    // point, so a stall injected here is already under watchdog
    // observation, and beat again right after — a flagged stall then
    // raises TaskTimeoutError into the retry/quarantine machinery.
    par::heartbeatAnnotate(config.label + " @ " + op.label());
    par::heartbeat();
    if (inj.armed())
        // Models a stuck device before the thermal settle (named
        // campaign.hang before it gained real stall semantics).
        inj.maybeStall("task.stall", cell_key, attempt);
    par::heartbeat();

    const features::WorkloadProfile &profile =
        features::ProfileCache::instance().get(platform, config,
                                               params_.workload);

    Measurement m;
    m.label = config.label;
    m.threads = config.threads;
    m.requested = op;
    m.achieved = op;
    m.profile = &profile;

    if (params_.useThermalLoop) {
        const obs::ScopedTimer settle_timer("thermal_settle");
        auto &thermal = platform.thermal();
        // Start from a reset testbed: the settle must not depend on
        // which experiment (if any) heated the DIMMs before this one.
        thermal.reset();
        // DRAM self-heating: each DIMM dissipates according to its
        // share of the workload's command activity; the PID loop has
        // to regulate around it, exactly as on the physical testbed.
        const dram::PowerModel power;
        const auto &geometry = platform.geometry();
        for (int dimm = 0; dimm < geometry.params().channels; ++dimm) {
            double act_rate = 0.0, cmd_rate = 0.0;
            for (int rank = 0; rank < geometry.params().ranksPerDimm;
                 ++rank) {
                const int dev = geometry.deviceIndex(
                    dram::DeviceId{dimm, rank});
                for (const auto &row : profile.deviceRows[dev]) {
                    act_rate += row.activationRate;
                    cmd_rate += row.accessRate;
                }
            }
            const double watts =
                power.rankPower(op, act_rate, cmd_rate).total() -
                power.rankPower(op, 0.0, 0.0).background;
            thermal.setDramPower(dimm, std::max(0.0, watts));
        }
        thermal.setTargetAll(op.temperature);
        if (!thermal.stepUntilSettled())
            DFAULT_FATAL("thermal testbed failed to settle at ",
                         op.temperature, " C");
        double achieved = 0.0;
        for (int d = 0; d < thermal.dimms(); ++d)
            achieved += thermal.temperature(d);
        m.achieved.temperature = achieved / thermal.dimms();
    }
    token.throwIfCancelled();
    par::heartbeat();

    double integrate_seconds = 0.0;
    {
        const obs::ScopedTimer integrate_timer("integrate");
        // Name the measurement in the trace: the "integrate" span of
        // this cell shows which (workload, operating point) it ran.
        if (obs::SpanTracer::instance().enabled())
            obs::SpanTracer::instance().annotateCurrent(
                config.label + " @ " + op.label());
        m.run = integrator_.run(profile, m.achieved,
                                platform.geometry(),
                                platform.devices(), run_seed, log);
        integrate_seconds = integrate_timer.elapsed();
    }

    if (inj.armed() && inj.shouldFire("measure.nan", cell_key, attempt)) {
        // Models corrupted telemetry (an overflowed ECC log, a torn
        // counter read): the numbers arrive, but are garbage. The
        // dataset builder is expected to quarantine the sample.
        DFAULT_WARN("injected measurement corruption for ", config.label,
                    " at ", op.label());
        if (!m.run.werSeries.empty())
            m.run.werSeries.back() =
                std::numeric_limits<double>::quiet_NaN();
        if (!m.run.cePerDevice.empty())
            m.run.cePerDevice.front() =
                std::numeric_limits<double>::quiet_NaN();
    }

    // publish*() so a sweep cell's deferral can capture these (see
    // sweep(): drop on a failed attempt, replay from a checkpoint).
    obs::publishCounter("campaign.measurements",
                        "characterization experiments completed");
    if (m.run.crashed)
        obs::publishCounter("campaign.crashes",
                            "experiments ended by a UE");
    const double wer = m.run.wer();
    if (wer > 0.0) {
        obs::publishDistribution("campaign.wer_log10", -14.0, 0.0, 28,
                                 "log10 of measured aggregate WER",
                                 std::log10(wer));
        // Log-bucketed companion with streaming quantiles: WER spans
        // ~10 decades across the grid, exactly the log-bucket sweet
        // spot. Deferral-aware so checkpoint replay reproduces
        // bit-identical quantiles.
        obs::publishHistogram("campaign.wer",
                              "measured aggregate WER per experiment",
                              wer);
    }

    auto &sink = obs::EventSink::instance();
    if (sink.enabled()) {
        obs::JsonWriter w;
        w.field("label", m.label);
        w.field("threads", m.threads);
        w.field("trefp_s", op.trefp);
        w.field("vdd_v", op.vdd);
        w.field("target_c", op.temperature);
        w.field("temp_c", m.achieved.temperature);
        w.field("run_seed", run_seed);
        w.field("wer", wer);
        w.field("epochs",
                static_cast<std::uint64_t>(m.run.werSeries.size()));
        w.field("crashed", m.run.crashed);
        if (m.run.crashed) {
            w.field("crash_epoch", m.run.crashEpoch);
            w.field("crash_device", m.run.crashDevice);
        }
        w.field("host_seconds", integrate_seconds);
        sink.emit("measurement", w);
    }
    obs::progress(
        m.label + " at " + op.label() + ": wer=" +
        detail::concat(wer) +
        (m.run.crashed
             ? " UE@min" + std::to_string(m.run.crashEpoch)
             : ""));
    // Cell latency goes straight to the registry, not through the
    // deferral: wall time is nondeterministic, so replaying a stale
    // duration on checkpoint resume would be worse than dropping it.
    obs::Registry::instance()
        .histogram("campaign.cell_ns",
                   "characterization cell wall-clock (nanoseconds)")
        .record(std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - cell_start)
                    .count());
    // Live progress for the telemetry sampler: immediate (the deferred
    // campaign.* twins above only land after the whole batch), counted
    // per attempt, and under the digest-excluded live.* prefix so
    // faulted retries cannot perturb provenance digests.
    auto &live = obs::Registry::instance();
    live.counter("live.campaign.cells_done",
                 "measurement attempts finished (live, incl. retries)")
        .inc();
    if (m.run.crashed)
        live.counter("live.campaign.crashes",
                     "measurement attempts ended by a UE (live)")
            .inc();
    if (wer > 0.0)
        live.gauge("live.campaign.wer_log10",
                   "log10 WER of the latest measurement (live)")
            .set(std::log10(wer));
    return m;
}

sys::Platform &
CharacterizationCampaign::slotPlatform()
{
    const int slot = par::Pool::currentSlot();
    if (slot <= 0)
        return platform_;
    DFAULT_ASSERT(static_cast<std::size_t>(slot) < replicas_.size(),
                  "pool slot without a replica array entry");
    auto &replica = replicas_[static_cast<std::size_t>(slot)];
    if (!replica)
        replica = platform_.clone();
    return *replica;
}

void
CharacterizationCampaign::prepareReplicas()
{
    const auto slots =
        static_cast<std::size_t>(par::Pool::global().slots());
    if (replicas_.size() < slots)
        replicas_.resize(slots);
}

std::vector<Measurement>
CharacterizationCampaign::sweep(
    const std::vector<workloads::WorkloadConfig> &suite,
    const std::vector<dram::OperatingPoint> &points)
{
    const obs::ScopedTimer sweep_timer("sweep");
    const std::size_t total = suite.size() * points.size();
    prepareReplicas();
    lastQuarantine_.clear();
    auto &pool = par::Pool::global();

    // Profile every workload before the cell loop. The cache fills
    // exactly once per config either way; doing it up front keeps the
    // platform.* / profile.* stats independent of which cells are
    // measured fresh, restored from a checkpoint, or quarantined.
    const par::CancelToken token = params_.cancelToken.valid()
                                       ? params_.cancelToken
                                       : par::rootCancelToken();
    {
        par::ResilienceOptions profile_opts;
        profile_opts.maxRetries = params_.taskRetries;
        profile_opts.failFast = true;
        profile_opts.token = token;
        pool.parallelForResilient(
            suite.size(),
            [&](std::size_t w, int) {
                features::ProfileCache::instance().get(
                    slotPlatform(), suite[w], params_.workload);
            },
            profile_opts);
    }

    CheckpointJournal journal;
    std::map<std::size_t, CheckpointCell> restored;
    if (!params_.checkpointDir.empty()) {
        journal.open(params_.checkpointDir,
                     sweepConfigDigest(params_, suite, points));
        restored = journal.load(total);
        if (!restored.empty())
            obs::progress("checkpoint: restoring " +
                          std::to_string(restored.size()) + "/" +
                          std::to_string(total) + " cells from " +
                          params_.checkpointDir);
    }

    // One task per (workload, point) cell, committed in cell order:
    // the result vector is identical whatever the worker schedule.
    std::vector<Measurement> out(total);
    std::vector<std::vector<obs::StatOp>> cell_ops(total);

    par::ResilienceOptions opts;
    opts.maxRetries = params_.taskRetries;
    opts.failFast = params_.failFast;
    opts.token = token;
    const auto failures = pool.parallelForResilient(
        total,
        [&](std::size_t i, int attempt) {
            if (restored.count(i) != 0)
                return; // committed after the batch, in cell order
            const auto &config = suite[i / points.size()];
            const auto &op = points[i % points.size()];
            obs::progress("experiment " + std::to_string(i + 1) + "/" +
                          std::to_string(total) + ": " + config.label +
                          " at " + op.label());
            // Buffer this cell's stat updates: a failed attempt must
            // contribute nothing, and a successful one is journaled
            // with the cell and applied post-batch in cell order.
            obs::StatsDeferral deferral;
            Measurement m = measureOn(slotPlatform(), config, op, 0,
                                      nullptr, attempt);
            std::vector<obs::StatOp> ops = deferral.take();
            if (journal.enabled()) {
                journal.store({i, m, ops});
                // Chaos testing: a kill between journal writes.
                fi::Injector::instance().maybeKill("sweep.kill", i);
            }
            out[i] = std::move(m);
            cell_ops[i] = std::move(ops);
        },
        opts);

    // Failed cells (only reachable when !failFast) are quarantined;
    // cancelled cells are a distinct disposition — marked but never
    // quarantined, reported or journaled, so a resumed sweep simply
    // re-measures them.
    std::size_t n_quarantined = 0;
    std::size_t n_cancelled = 0;
    for (const par::TaskFailure &f : failures) {
        const auto &config = suite[f.index / points.size()];
        const auto &op = points[f.index % points.size()];
        Measurement &m = out[f.index];
        m.label = config.label;
        m.threads = config.threads;
        m.requested = op;
        m.achieved = op;
        m.failure = f.error;
        if (f.disposition == par::TaskDisposition::Cancelled) {
            m.cancelled = true;
            ++n_cancelled;
            continue;
        }
        m.quarantined = true;
        ++n_quarantined;
        lastQuarantine_.push_back(
            {f.index, config.label, op.label(), f.attempts, f.error});
        DFAULT_WARN("sweep: quarantined cell ", f.index, " (",
                    config.label, " at ", op.label(), ") after ",
                    f.attempts, " attempt(s): ", f.error);
    }
    if (n_quarantined > 0)
        obs::Registry::instance()
            .counter("fi.quarantined_slots",
                     "sweep cells quarantined after exhausting retries")
            .inc(n_quarantined);
    if (n_cancelled > 0)
        DFAULT_INFORM("sweep: ", n_cancelled, " cell(s) cancelled (",
                      token.cancelled() ? token.reason()
                                        : std::string("task token"),
                      ")",
                      journal.enabled()
                          ? "; rerun with the same checkpoint dir to"
                            " finish them"
                          : "");

    // Restored cells: rebuild the measurement (profile pointer from
    // the cache warmed above) and queue their journaled stat ops.
    for (auto &[index, cell] : restored) {
        Measurement m = std::move(cell.measurement);
        m.profile = &features::ProfileCache::instance().get(
            platform_, suite[index / points.size()], params_.workload);
        out[index] = std::move(m);
        cell_ops[index] = std::move(cell.statOps);
    }
    if (!restored.empty())
        obs::Registry::instance()
            .counter("fi.checkpoint_restored",
                     "sweep cells restored from a checkpoint journal")
            .inc(restored.size());

    // Apply every cell's stats in cell order: fresh, restored and
    // resumed runs all reach the identical registry state.
    for (std::size_t i = 0; i < total; ++i)
        obs::applyStatOps(cell_ops[i]);

    return out;
}

double
CharacterizationCampaign::measurePue(
    const workloads::WorkloadConfig &config,
    const dram::OperatingPoint &op, int repeats)
{
    DFAULT_ASSERT(repeats > 0, "PUE needs at least one repeat");
    const obs::ScopedTimer pue_timer("pue");
    prepareReplicas();
    const auto crashed = par::Pool::global().parallelMap<char>(
        static_cast<std::size_t>(repeats), [&](std::size_t r) {
            const Measurement m =
                measureOn(slotPlatform(), config, op,
                          static_cast<std::uint64_t>(r) + 1, nullptr);
            return static_cast<char>(m.run.crashed ? 1 : 0);
        });
    int crashes = 0;
    for (const char c : crashed)
        crashes += c;
    return static_cast<double>(crashes) / static_cast<double>(repeats);
}

std::vector<dram::OperatingPoint>
werOperatingPoints()
{
    std::vector<dram::OperatingPoint> points;
    for (const Celsius temp : {50.0, 60.0}) {
        for (const Seconds trefp : dram::kWerTrefpLevels)
            points.push_back({trefp, dram::kMinVdd, temp});
    }
    // At 70 C only the two shortest TREFP levels stay UE-free (paper
    // §V-B); longer periods crash and contribute to the PUE study.
    points.push_back({0.618, dram::kMinVdd, 70.0});
    points.push_back({1.173, dram::kMinVdd, 70.0});
    return points;
}

std::vector<dram::OperatingPoint>
pueOperatingPoints()
{
    std::vector<dram::OperatingPoint> points;
    for (const Seconds trefp : dram::kUeTrefpLevels)
        points.push_back({trefp, dram::kMinVdd, 70.0});
    return points;
}

} // namespace dfault::core
