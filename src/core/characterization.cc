#include "core/characterization.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "dram/power.hh"
#include "obs/events.hh"
#include "obs/span.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"
#include "par/pool.hh"

namespace dfault::core {

CharacterizationCampaign::CharacterizationCampaign(sys::Platform &platform)
    : CharacterizationCampaign(platform, Params{})
{
}

CharacterizationCampaign::CharacterizationCampaign(sys::Platform &platform,
                                                   const Params &params)
    : platform_(platform), params_(params), integrator_(params.integrator)
{
}

Measurement
CharacterizationCampaign::measure(const workloads::WorkloadConfig &config,
                                  const dram::OperatingPoint &op,
                                  std::uint64_t run_seed,
                                  dram::ErrorLog *log)
{
    return measureOn(platform_, config, op, run_seed, log);
}

Measurement
CharacterizationCampaign::measureOn(sys::Platform &platform,
                                    const workloads::WorkloadConfig &config,
                                    const dram::OperatingPoint &op,
                                    std::uint64_t run_seed,
                                    dram::ErrorLog *log)
{
    op.validate();

    const features::WorkloadProfile &profile =
        features::ProfileCache::instance().get(platform, config,
                                               params_.workload);

    Measurement m;
    m.label = config.label;
    m.threads = config.threads;
    m.requested = op;
    m.achieved = op;
    m.profile = &profile;

    if (params_.useThermalLoop) {
        const obs::ScopedTimer settle_timer("thermal_settle");
        auto &thermal = platform.thermal();
        // Start from a reset testbed: the settle must not depend on
        // which experiment (if any) heated the DIMMs before this one.
        thermal.reset();
        // DRAM self-heating: each DIMM dissipates according to its
        // share of the workload's command activity; the PID loop has
        // to regulate around it, exactly as on the physical testbed.
        const dram::PowerModel power;
        const auto &geometry = platform.geometry();
        for (int dimm = 0; dimm < geometry.params().channels; ++dimm) {
            double act_rate = 0.0, cmd_rate = 0.0;
            for (int rank = 0; rank < geometry.params().ranksPerDimm;
                 ++rank) {
                const int dev = geometry.deviceIndex(
                    dram::DeviceId{dimm, rank});
                for (const auto &row : profile.deviceRows[dev]) {
                    act_rate += row.activationRate;
                    cmd_rate += row.accessRate;
                }
            }
            const double watts =
                power.rankPower(op, act_rate, cmd_rate).total() -
                power.rankPower(op, 0.0, 0.0).background;
            thermal.setDramPower(dimm, std::max(0.0, watts));
        }
        thermal.setTargetAll(op.temperature);
        if (!thermal.stepUntilSettled())
            DFAULT_FATAL("thermal testbed failed to settle at ",
                         op.temperature, " C");
        double achieved = 0.0;
        for (int d = 0; d < thermal.dimms(); ++d)
            achieved += thermal.temperature(d);
        m.achieved.temperature = achieved / thermal.dimms();
    }

    double integrate_seconds = 0.0;
    {
        const obs::ScopedTimer integrate_timer("integrate");
        // Name the measurement in the trace: the "integrate" span of
        // this cell shows which (workload, operating point) it ran.
        if (obs::SpanTracer::instance().enabled())
            obs::SpanTracer::instance().annotateCurrent(
                config.label + " @ " + op.label());
        m.run = integrator_.run(profile, m.achieved,
                                platform.geometry(),
                                platform.devices(), run_seed, log);
        integrate_seconds = integrate_timer.elapsed();
    }

    auto &reg = obs::Registry::instance();
    reg.counter("campaign.measurements",
                "characterization experiments completed")
        .inc();
    if (m.run.crashed)
        reg.counter("campaign.crashes", "experiments ended by a UE")
            .inc();
    const double wer = m.run.wer();
    if (wer > 0.0)
        reg.distribution("campaign.wer_log10", -14.0, 0.0, 28,
                         "log10 of measured aggregate WER")
            .record(std::log10(wer));

    auto &sink = obs::EventSink::instance();
    if (sink.enabled()) {
        obs::JsonWriter w;
        w.field("label", m.label);
        w.field("threads", m.threads);
        w.field("trefp_s", op.trefp);
        w.field("vdd_v", op.vdd);
        w.field("target_c", op.temperature);
        w.field("temp_c", m.achieved.temperature);
        w.field("run_seed", run_seed);
        w.field("wer", wer);
        w.field("epochs",
                static_cast<std::uint64_t>(m.run.werSeries.size()));
        w.field("crashed", m.run.crashed);
        if (m.run.crashed) {
            w.field("crash_epoch", m.run.crashEpoch);
            w.field("crash_device", m.run.crashDevice);
        }
        w.field("host_seconds", integrate_seconds);
        sink.emit("measurement", w);
    }
    obs::progress(
        m.label + " at " + op.label() + ": wer=" +
        detail::concat(wer) +
        (m.run.crashed
             ? " UE@min" + std::to_string(m.run.crashEpoch)
             : ""));
    return m;
}

sys::Platform &
CharacterizationCampaign::slotPlatform()
{
    const int slot = par::Pool::currentSlot();
    if (slot <= 0)
        return platform_;
    DFAULT_ASSERT(static_cast<std::size_t>(slot) < replicas_.size(),
                  "pool slot without a replica array entry");
    auto &replica = replicas_[static_cast<std::size_t>(slot)];
    if (!replica)
        replica = platform_.clone();
    return *replica;
}

void
CharacterizationCampaign::prepareReplicas()
{
    const auto slots =
        static_cast<std::size_t>(par::Pool::global().slots());
    if (replicas_.size() < slots)
        replicas_.resize(slots);
}

std::vector<Measurement>
CharacterizationCampaign::sweep(
    const std::vector<workloads::WorkloadConfig> &suite,
    const std::vector<dram::OperatingPoint> &points)
{
    const obs::ScopedTimer sweep_timer("sweep");
    const std::size_t total = suite.size() * points.size();
    prepareReplicas();
    // One task per (workload, point) cell, committed in cell order:
    // the result vector is identical whatever the worker schedule.
    return par::Pool::global().parallelMap<Measurement>(
        total, [&](std::size_t i) {
            const auto &config = suite[i / points.size()];
            const auto &op = points[i % points.size()];
            obs::progress("experiment " + std::to_string(i + 1) + "/" +
                          std::to_string(total) + ": " + config.label +
                          " at " + op.label());
            return measureOn(slotPlatform(), config, op, 0, nullptr);
        });
}

double
CharacterizationCampaign::measurePue(
    const workloads::WorkloadConfig &config,
    const dram::OperatingPoint &op, int repeats)
{
    DFAULT_ASSERT(repeats > 0, "PUE needs at least one repeat");
    const obs::ScopedTimer pue_timer("pue");
    prepareReplicas();
    const auto crashed = par::Pool::global().parallelMap<char>(
        static_cast<std::size_t>(repeats), [&](std::size_t r) {
            const Measurement m =
                measureOn(slotPlatform(), config, op,
                          static_cast<std::uint64_t>(r) + 1, nullptr);
            return static_cast<char>(m.run.crashed ? 1 : 0);
        });
    int crashes = 0;
    for (const char c : crashed)
        crashes += c;
    return static_cast<double>(crashes) / static_cast<double>(repeats);
}

std::vector<dram::OperatingPoint>
werOperatingPoints()
{
    std::vector<dram::OperatingPoint> points;
    for (const Celsius temp : {50.0, 60.0}) {
        for (const Seconds trefp : dram::kWerTrefpLevels)
            points.push_back({trefp, dram::kMinVdd, temp});
    }
    // At 70 C only the two shortest TREFP levels stay UE-free (paper
    // §V-B); longer periods crash and contribute to the PUE study.
    points.push_back({0.618, dram::kMinVdd, 70.0});
    points.push_back({1.173, dram::kMinVdd, 70.0});
    return points;
}

std::vector<dram::OperatingPoint>
pueOperatingPoints()
{
    std::vector<dram::OperatingPoint> points;
    for (const Seconds trefp : dram::kUeTrefpLevels)
        points.push_back({trefp, dram::kMinVdd, 70.0});
    return points;
}

} // namespace dfault::core
