#include "core/retention_profiler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "features/extractor.hh"
#include "par/cancel.hh"

namespace dfault::core {

double
ProfileMismatch::missRate()
    const
{
    return appErrorRows > 0
               ? static_cast<double>(missedByProfile) / appErrorRows
               : 0.0;
}

double
ProfileMismatch::falseAlarmRate() const
{
    return flaggedRows > 0
               ? static_cast<double>(falseAlarms) / flaggedRows
               : 0.0;
}

RetentionProfiler::RetentionProfiler(CharacterizationCampaign &campaign)
    : RetentionProfiler(campaign, Params{})
{
}

RetentionProfiler::RetentionProfiler(CharacterizationCampaign &campaign,
                                     const Params &params)
    : campaign_(campaign), params_(params)
{
    if (params_.levels.empty())
        DFAULT_FATAL("retention profiler: need at least one TREFP level");
    if (!std::is_sorted(params_.levels.begin(), params_.levels.end()))
        DFAULT_FATAL("retention profiler: levels must be ascending");
    if (params_.detectionLambda <= 0.0)
        DFAULT_FATAL("retention profiler: detection threshold must be "
                     "positive");
}

std::vector<RowIntensity>
RetentionProfiler::rowsUnder(const workloads::WorkloadConfig &config,
                             Seconds trefp, int device_index)
{
    auto &platform = campaign_.platform();
    const auto &profile = features::ProfileCache::instance().get(
        platform, config, campaign_.params().workload);
    const dram::OperatingPoint op{trefp, params_.vdd,
                                  params_.temperature};
    return campaign_.integrator().analyzeRows(
        profile, op, platform.geometry(),
        platform.devices().at(device_index), device_index);
}

DeviceRetentionProfile
RetentionProfiler::profileDevice(int device_index)
{
    const workloads::WorkloadConfig micro{"random", 8, "random"};

    DeviceRetentionProfile out;
    std::uint64_t touched_rows = 0;
    for (const Seconds trefp : params_.levels) {
        // Each level is a full row-space analysis; honour shutdown/
        // deadline cancellation at level boundaries.
        par::rootCancelToken().throwIfCancelled();
        const auto rows = rowsUnder(micro, trefp, device_index);
        touched_rows = std::max<std::uint64_t>(touched_rows,
                                               rows.size());
        for (const auto &row : rows) {
            if (row.ceLambda < params_.detectionLambda)
                continue;
            // Record the shortest failing level only.
            out.firstFailingTrefp.emplace(row.rowIndex, trefp);
        }
    }
    out.unflaggedRows = touched_rows - out.firstFailingTrefp.size();
    return out;
}

ProfileMismatch
RetentionProfiler::compare(const DeviceRetentionProfile &profile,
                           const workloads::WorkloadConfig &config,
                           Seconds trefp, int device_index)
{
    par::rootCancelToken().throwIfCancelled();
    ProfileMismatch mismatch;
    mismatch.flaggedRows = 0;
    for (const auto &[row, level] : profile.firstFailingTrefp)
        if (level <= trefp)
            ++mismatch.flaggedRows;

    std::uint64_t flagged_and_clean = mismatch.flaggedRows;
    for (const auto &row : rowsUnder(config, trefp, device_index)) {
        const bool app_error =
            row.ceLambda >= params_.detectionLambda;
        const auto it = profile.firstFailingTrefp.find(row.rowIndex);
        const bool flagged = it != profile.firstFailingTrefp.end() &&
                             it->second <= trefp;
        if (app_error) {
            ++mismatch.appErrorRows;
            if (!flagged)
                ++mismatch.missedByProfile;
        }
        if (flagged && app_error)
            --flagged_and_clean;
    }
    mismatch.falseAlarms = flagged_and_clean;
    return mismatch;
}

} // namespace dfault::core
