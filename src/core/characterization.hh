/**
 * @file
 * Characterization campaign: the paper's data-collection phase (Fig 3).
 *
 * A campaign couples the simulated platform (the "server"), the profile
 * cache (the profiling phase) and the error integrator (the 2-hour
 * characterization runs). Before each measurement the thermal testbed's
 * PID loop drives the DIMM heaters to the requested temperature and the
 * *achieved* temperature is what the DRAM experiences — exactly the
 * physical loop of the paper's testbed.
 */

#ifndef DFAULT_CORE_CHARACTERIZATION_HH
#define DFAULT_CORE_CHARACTERIZATION_HH

#include <vector>

#include "core/error_integrator.hh"
#include "features/extractor.hh"
#include "sys/platform.hh"
#include "workloads/registry.hh"

namespace dfault::core {

/** One characterization experiment: workload x operating point. */
struct Measurement
{
    std::string label;
    int threads = 0;
    dram::OperatingPoint requested; ///< configured operating point
    dram::OperatingPoint achieved;  ///< after the thermal control loop
    RunResult run;
    const features::WorkloadProfile *profile = nullptr; ///< cache-owned
};

/** See file comment. */
class CharacterizationCampaign
{
  public:
    struct Params
    {
        workloads::Workload::Params workload;
        ErrorIntegrator::Params integrator;
        /** Drive the PID thermal loop (false: temperatures are ideal). */
        bool useThermalLoop = true;
    };

    CharacterizationCampaign(sys::Platform &platform,
                             const Params &params);
    explicit CharacterizationCampaign(sys::Platform &platform);

    /**
     * Run one experiment: profile (cached), heat the DIMMs, integrate
     * errors over the 2-hour window.
     *
     * @param run_seed distinguishes repeats of the same experiment
     * @param log optional destination for sampled error records
     */
    Measurement measure(const workloads::WorkloadConfig &config,
                        const dram::OperatingPoint &op,
                        std::uint64_t run_seed = 0,
                        dram::ErrorLog *log = nullptr);

    /** Full sweep: every workload at every operating point. */
    std::vector<Measurement>
    sweep(const std::vector<workloads::WorkloadConfig> &suite,
          const std::vector<dram::OperatingPoint> &points);

    /**
     * Probability of a UE for each workload at @p op from @p repeats
     * independent runs (paper Eq. 3: crashes / experiments).
     */
    double measurePue(const workloads::WorkloadConfig &config,
                      const dram::OperatingPoint &op, int repeats);

    sys::Platform &platform() { return platform_; }
    const ErrorIntegrator &integrator() const { return integrator_; }
    const Params &params() const { return params_; }

  private:
    sys::Platform &platform_;
    Params params_;
    ErrorIntegrator integrator_;
};

/** The WER study's operating points: Fig 7's TREFP x temperature grid
 *  (70 C only at the two TREFP levels that do not crash; paper §V-B). */
std::vector<dram::OperatingPoint> werOperatingPoints();

/** The PUE study's operating points (Fig 9): 70 C, three TREFP levels. */
std::vector<dram::OperatingPoint> pueOperatingPoints();

} // namespace dfault::core

#endif // DFAULT_CORE_CHARACTERIZATION_HH
