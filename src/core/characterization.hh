/**
 * @file
 * Characterization campaign: the paper's data-collection phase (Fig 3).
 *
 * A campaign couples the simulated platform (the "server"), the profile
 * cache (the profiling phase) and the error integrator (the 2-hour
 * characterization runs). Before each measurement the thermal testbed's
 * PID loop drives the DIMM heaters to the requested temperature and the
 * *achieved* temperature is what the DRAM experiences — exactly the
 * physical loop of the paper's testbed.
 */

#ifndef DFAULT_CORE_CHARACTERIZATION_HH
#define DFAULT_CORE_CHARACTERIZATION_HH

#include <vector>

#include "core/error_integrator.hh"
#include "features/extractor.hh"
#include "par/cancel.hh"
#include "sys/platform.hh"
#include "workloads/registry.hh"

namespace dfault::core {

/** One characterization experiment: workload x operating point. */
struct Measurement
{
    std::string label;
    int threads = 0;
    dram::OperatingPoint requested; ///< configured operating point
    dram::OperatingPoint achieved;  ///< after the thermal control loop
    RunResult run;
    const features::WorkloadProfile *profile = nullptr; ///< cache-owned
    /** Slot failed every attempt of a degrade-and-report sweep; run
     *  is empty and failure holds the final error. */
    bool quarantined = false;
    /** Slot was skipped (or stopped) by cooperative cancellation; run
     *  is empty, failure holds the cancel reason. Unlike quarantine
     *  this is not a failure: the cell is neither journaled nor
     *  reported, so a resumed sweep re-measures it. */
    bool cancelled = false;
    std::string failure;
};

/** See file comment. */
class CharacterizationCampaign
{
  public:
    struct Params
    {
        workloads::Workload::Params workload;
        ErrorIntegrator::Params integrator;
        /** Drive the PID thermal loop (false: temperatures are ideal). */
        bool useThermalLoop = true;
        /** Retries granted to a failing sweep cell before quarantine.
         *  Results are attempt-independent (the measurement seed never
         *  depends on the attempt), so a recovered retry is
         *  bit-identical to a first-try success. */
        int taskRetries = 2;
        /** true: a cell that exhausts its retries aborts the sweep
         *  with par::BatchError (after siblings drain). false: the
         *  cell is quarantined into the returned Measurement and
         *  lastQuarantine(). */
        bool failFast = false;
        /** Non-empty: journal completed sweep cells here and resume
         *  from any found on the next run (see core/checkpoint.hh). */
        std::string checkpointDir;
        /** Cooperative cancellation source for sweeps and cells; an
         *  invalid (default) token falls back to rootCancelToken(), so
         *  signal-driven shutdown reaches every campaign unasked. */
        par::CancelToken cancelToken;
    };

    /** One sweep cell that failed all its attempts. */
    struct QuarantineEntry
    {
        std::size_t cell = 0;
        std::string label; ///< workload label
        std::string op;    ///< operating point label
        int attempts = 0;
        std::string error;
    };

    CharacterizationCampaign(sys::Platform &platform,
                             const Params &params);
    explicit CharacterizationCampaign(sys::Platform &platform);

    /**
     * Run one experiment: profile (cached), heat the DIMMs from a
     * reset testbed, integrate errors over the 2-hour window. The
     * testbed reset makes every measurement independent of campaign
     * history, which is what allows sweeps to run in any order — or
     * in parallel — with identical results.
     *
     * @param run_seed distinguishes repeats of the same experiment
     * @param log optional destination for sampled error records
     */
    Measurement measure(const workloads::WorkloadConfig &config,
                        const dram::OperatingPoint &op,
                        std::uint64_t run_seed = 0,
                        dram::ErrorLog *log = nullptr);

    /**
     * Full sweep: every workload at every operating point, fanned out
     * over the global par::Pool. Worker slots measure on per-slot
     * platform replicas (Platform::clone); results are committed in
     * (workload, point) order, so the returned vector is bit-identical
     * for any DFAULT_THREADS.
     *
     * Execution is resilient: a throwing cell is retried
     * params_.taskRetries times, then (unless failFast) quarantined —
     * its Measurement comes back with quarantined set and siblings
     * are unaffected. With params_.checkpointDir set, completed cells
     * are journaled and a re-run resumes from them (file comment of
     * core/checkpoint.hh).
     *
     * Cancellation (params_.cancelToken or the root token) drains the
     * sweep gracefully: in-flight cells finish or stop at their next
     * heartbeat, queued cells come back with Measurement.cancelled set
     * (distinct from quarantined — not journaled, not reported), and
     * a later resume re-measures exactly the missing cells, reaching a
     * stats digest bit-identical to an uninterrupted sweep.
     */
    std::vector<Measurement>
    sweep(const std::vector<workloads::WorkloadConfig> &suite,
          const std::vector<dram::OperatingPoint> &points);

    /** Cells quarantined by the most recent sweep(), in cell order. */
    const std::vector<QuarantineEntry> &lastQuarantine() const
    {
        return lastQuarantine_;
    }

    /**
     * Probability of a UE for each workload at @p op from @p repeats
     * independent runs (paper Eq. 3: crashes / experiments). Repeats
     * run in parallel, each seeded by its repeat index.
     */
    double measurePue(const workloads::WorkloadConfig &config,
                      const dram::OperatingPoint &op, int repeats);

    sys::Platform &platform() { return platform_; }
    const ErrorIntegrator &integrator() const { return integrator_; }
    const Params &params() const { return params_; }

  private:
    /** measure() against an explicit platform (a worker's replica).
     *  @p attempt keys the fault-injection schedule only — results
     *  never depend on it. */
    Measurement measureOn(sys::Platform &platform,
                          const workloads::WorkloadConfig &config,
                          const dram::OperatingPoint &op,
                          std::uint64_t run_seed, dram::ErrorLog *log,
                          int attempt = 0);

    /** The calling slot's platform: the campaign's own on the
     *  submitting thread, a lazily-built replica on pool workers. */
    sys::Platform &slotPlatform();

    /** Grow the replica array to the global pool's slot count. */
    void prepareReplicas();

    sys::Platform &platform_;
    Params params_;
    ErrorIntegrator integrator_;
    /** Per-slot platform replicas (index 0 unused: that is platform_). */
    std::vector<std::unique_ptr<sys::Platform>> replicas_;
    std::vector<QuarantineEntry> lastQuarantine_;
};

/** The WER study's operating points: Fig 7's TREFP x temperature grid
 *  (70 C only at the two TREFP levels that do not crash; paper §V-B). */
std::vector<dram::OperatingPoint> werOperatingPoints();

/** The PUE study's operating points (Fig 9): 70 C, three TREFP levels. */
std::vector<dram::OperatingPoint> pueOperatingPoints();

} // namespace dfault::core

#endif // DFAULT_CORE_CHARACTERIZATION_HH
