/**
 * @file
 * Conventional retention-time profiling and its blind spots.
 *
 * Prior refresh-relaxation schemes (RAIDR, AVATAR, REAPER — paper §II-C)
 * bin DRAM rows by retention class: run a worst-case data-pattern
 * micro-benchmark at a ladder of refresh periods and record, per row,
 * the shortest TREFP at which it manifests errors. Rows "safe" at a
 * given TREFP may then be refreshed lazily.
 *
 * The paper's §II-C warning, which this module quantifies, is that such
 * profiles are built from the micro-benchmark's error locations, while
 * *real applications* both (a) trigger errors in rows the profile deems
 * safe (interference from their access patterns) and (b) leave many
 * profiled-weak rows error-free (implicit refresh) — so retention-class
 * refresh schedules derived from the micro-benchmark can be both unsafe
 * and too pessimistic at the same time.
 */

#ifndef DFAULT_CORE_RETENTION_PROFILER_HH
#define DFAULT_CORE_RETENTION_PROFILER_HH

#include <map>
#include <vector>

#include "core/characterization.hh"

namespace dfault::core {

/** Retention profile of one device: row -> shortest failing TREFP. */
struct DeviceRetentionProfile
{
    /** Rows flagged at each profiling level (failing-cell intensity
     *  above the detection threshold), keyed by flat row index. */
    std::map<std::uint64_t, Seconds> firstFailingTrefp;

    /** Rows never flagged at any profiled level. */
    std::uint64_t unflaggedRows = 0;
};

/** Comparison of a profile against a real application's error rows. */
struct ProfileMismatch
{
    std::uint64_t appErrorRows = 0;     ///< rows error-prone under the app
    std::uint64_t missedByProfile = 0;  ///< ...of those, unflagged rows
    std::uint64_t flaggedRows = 0;      ///< rows the profile flagged
    std::uint64_t falseAlarms = 0;      ///< ...of those, app error-free

    double missRate() const;
    double falseAlarmRate() const;
};

/** See file comment. */
class RetentionProfiler
{
  public:
    struct Params
    {
        /** TREFP ladder used for profiling (ascending). */
        std::vector<Seconds> levels{0.618, 1.173, 1.727, 2.283};
        /**
         * A row counts as error-prone when its expected failing-cell
         * count over the characterization window exceeds this
         * threshold (at paper-scale exposure).
         */
        double detectionLambda = 0.05;
        Celsius temperature = 50.0;
        Volts vdd = dram::kMinVdd;
    };

    RetentionProfiler(CharacterizationCampaign &campaign,
                      const Params &params);
    explicit RetentionProfiler(CharacterizationCampaign &campaign);

    /**
     * Build the conventional profile of one device with the random
     * data-pattern micro-benchmark (the industry method).
     */
    DeviceRetentionProfile profileDevice(int device_index);

    /**
     * Compare the device's profile against the rows a real workload
     * makes error-prone at @p trefp: which app-error rows did the
     * profile miss, and which flagged rows stay clean under the app?
     */
    ProfileMismatch
    compare(const DeviceRetentionProfile &profile,
            const workloads::WorkloadConfig &config, Seconds trefp,
            int device_index);

    const Params &params() const { return params_; }

  private:
    CharacterizationCampaign &campaign_;
    Params params_;

    std::vector<RowIntensity>
    rowsUnder(const workloads::WorkloadConfig &config, Seconds trefp,
              int device_index);
};

} // namespace dfault::core

#endif // DFAULT_CORE_RETENTION_PROFILER_HH
