#include "core/input_sets.hh"

#include "common/logging.hh"
#include "features/catalog.hh"

namespace dfault::core {

std::string
inputSetName(InputSet set)
{
    switch (set) {
      case InputSet::Set1:
        return "Input set 1";
      case InputSet::Set2:
        return "Input set 2";
      case InputSet::Set3:
        return "Input set 3";
    }
    DFAULT_PANIC("unreachable input set");
}

std::vector<std::string>
inputSetFeatures(InputSet set)
{
    switch (set) {
      case InputSet::Set1:
        return {"wait_cycles_ratio", "mem_accesses_per_cycle",
                "hdp_entropy", "treuse_seconds"};
      case InputSet::Set2:
        return {"wait_cycles_ratio", "mem_accesses_per_cycle"};
      case InputSet::Set3:
        return features::FeatureCatalog::instance().names();
    }
    DFAULT_PANIC("unreachable input set");
}

} // namespace dfault::core
