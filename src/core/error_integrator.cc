#include "core/error_integrator.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/deferral.hh"
#include "obs/stats.hh"
#include "par/pool.hh"

namespace dfault::core {

namespace {

/** Pairs of cells per 72-bit ECC word. */
constexpr double kPairsPerWord = 72.0 * 71.0 / 2.0;
/** Triples of cells per 72-bit ECC word. */
constexpr double kTriplesPerWord = 72.0 * 71.0 * 70.0 / 6.0;
/** The paper's per-run allocation: 8 GiB of 64-bit words. */
constexpr double kPaperWords = 8.0 * 1024.0 * 1024.0 * 1024.0 / 8.0;
/** Cap on detailed records sampled into the error log per run. */
constexpr int kMaxLoggedRecords = 256;

std::uint64_t
hashOperatingPoint(const dram::OperatingPoint &op)
{
    std::uint64_t h = 0x9e37;
    h = dfault::hashCombine(h, std::llround(op.trefp * 1e6));
    h = dfault::hashCombine(h, std::llround(op.vdd * 1e6));
    h = dfault::hashCombine(h, std::llround(op.temperature * 1e3));
    return h;
}

} // namespace

double
RunResult::wer() const
{
    if (allocatedWords <= 0.0)
        return 0.0;
    double total = 0.0;
    for (const double ce : cePerDevice)
        total += ce;
    return total / allocatedWords;
}

double
RunResult::werForDevice(int device) const
{
    const double words = wordsPerDevice.at(device);
    if (words <= 0.0)
        return 0.0;
    return cePerDevice.at(device) / words;
}

ErrorIntegrator::ErrorIntegrator() : ErrorIntegrator(Params{}) {}

ErrorIntegrator::ErrorIntegrator(const Params &params)
    : params_(params), retention_(params.retention), vrt_(params.vrt),
      interference_(params.interference)
{
    if (params_.epochs <= 0)
        DFAULT_FATAL("integrator: epoch count must be positive");
    if (params_.epochLength <= 0.0)
        DFAULT_FATAL("integrator: epoch length must be positive");
}

std::vector<RowIntensity>
ErrorIntegrator::analyzeRows(const features::WorkloadProfile &profile,
                             const dram::OperatingPoint &op,
                             const dram::Geometry &geometry,
                             const dram::DramDevice &device,
                             int device_index) const
{
    const double exposure_words = params_.exposureWords > 0.0
                                      ? params_.exposureWords
                                      : kPaperWords;
    const double exposure_scale =
        exposure_words / static_cast<double>(
                             std::max<std::uint64_t>(
                                 profile.footprintWords, 1));

    const auto &rows = profile.deviceRows.at(device_index);
    std::vector<RowIntensity> out;
    out.reserve(rows.size());
    if (rows.empty())
        return out;

    double mean_p1 = 0.0;
    for (const double p : profile.bitOneProb)
        mean_p1 += p;
    mean_p1 /= 64.0;

    std::unordered_map<std::uint64_t, double> act_rate;
    act_rate.reserve(rows.size() * 2);
    for (const auto &row : rows)
        act_rate[row.rowIndex] = row.activationRate;

    const std::uint32_t rows_per_bank = geometry.params().rowsPerBank;

    for (const auto &row : rows) {
        RowIntensity info;
        info.rowIndex = row.rowIndex;

        if (row.longestGap > 0.0 && row.longestGap < op.trefp)
            info.suppression = std::pow(row.longestGap / op.trefp,
                                        params_.accessRefreshExponent);

        const std::uint64_t bank = row.rowIndex / rows_per_bank;
        const auto in_bank =
            static_cast<std::uint32_t>(row.rowIndex % rows_per_bank);
        const std::uint32_t phys = device.physicalRow(in_bank);
        double aggressor_rate = 0.0;
        for (const std::int64_t d : {-1, +1}) {
            const std::int64_t neighbour_phys =
                static_cast<std::int64_t>(phys) + d;
            if (neighbour_phys < 0 ||
                neighbour_phys >=
                    static_cast<std::int64_t>(rows_per_bank))
                continue;
            const std::uint32_t neighbour_logical = device.physicalRow(
                static_cast<std::uint32_t>(neighbour_phys));
            const auto it = act_rate.find(bank * rows_per_bank +
                                          neighbour_logical);
            if (it != act_rate.end())
                aggressor_rate += it->second;
        }
        info.interferenceDelta =
            interference_.thresholdWidening(aggressor_rate, op.trefp);

        const double p_disturbed = retention_.weakProbability(
            op.trefp * (1.0 + info.interferenceDelta), op,
            device.retentionScale());
        const double v =
            params_.dataPatternVulnerability
                ? (device.rowIsTrueCell(phys) ? mean_p1
                                              : 1.0 - mean_p1)
                : 0.5;
        info.ceLambda = row.touchedWords * exposure_scale *
                        units::totalBitsPerWord * p_disturbed *
                        info.suppression * v;
        out.push_back(info);
    }
    return out;
}

ErrorIntegrator::DeviceIntensity
ErrorIntegrator::computeIntensity(const features::WorkloadProfile &profile,
                                  const dram::OperatingPoint &op,
                                  const dram::Geometry &geometry,
                                  const dram::DramDevice &device,
                                  int device_index,
                                  double exposure_scale) const
{
    DeviceIntensity out;
    const auto &rows = profile.deviceRows.at(device_index);
    if (rows.empty())
        return out;

    // Data-pattern vulnerability: the average fraction of stored bits in
    // the charged (leak-capable) state for each cell orientation.
    double mean_p1 = 0.0;
    for (const double p : profile.bitOneProb)
        mean_p1 += p;
    mean_p1 /= 64.0;
    const double v_true = mean_p1;        // true cells leak 1 -> 0
    const double v_anti = 1.0 - mean_p1;  // anti cells leak 0 -> 1

    // Activation-rate lookup for neighbour (aggressor) rows.
    std::unordered_map<std::uint64_t, double> act_rate;
    act_rate.reserve(rows.size() * 2);
    for (const auto &row : rows)
        act_rate[row.rowIndex] = row.activationRate;

    const std::uint32_t rows_per_bank = geometry.params().rowsPerBank;
    const double pi_active = vrt_.stationaryActiveFraction();

    for (const auto &row : rows) {
        // Implicit refresh: a row the program re-accesses faster than
        // TREFP has its charge restored by the access stream itself.
        // The suppression is partial (see Params::accessRefreshExponent):
        // rows touched only once in the window get no implicit refresh.
        double suppression = 1.0;
        if (row.longestGap > 0.0 && row.longestGap < op.trefp) {
            suppression = std::pow(row.longestGap / op.trefp,
                                   params_.accessRefreshExponent);
        }

        // Aggressor activity: activation rates of the two physically
        // adjacent rows in the same bank (after vendor row scrambling).
        const std::uint64_t bank = row.rowIndex / rows_per_bank;
        const auto in_bank =
            static_cast<std::uint32_t>(row.rowIndex % rows_per_bank);
        const std::uint32_t phys = device.physicalRow(in_bank);
        double aggressor_rate = 0.0;
        for (const std::int64_t d : {-1, +1}) {
            const std::int64_t neighbour_phys =
                static_cast<std::int64_t>(phys) + d;
            if (neighbour_phys < 0 ||
                neighbour_phys >= static_cast<std::int64_t>(rows_per_bank))
                continue;
            const std::uint32_t neighbour_logical = device.physicalRow(
                static_cast<std::uint32_t>(neighbour_phys));
            const auto it = act_rate.find(bank * rows_per_bank +
                                          neighbour_logical);
            if (it != act_rate.end())
                aggressor_rate += it->second;
        }
        const double delta =
            interference_.thresholdWidening(aggressor_rate, op.trefp);

        // Base retention leakage against the refresh period, plus the
        // near-threshold cells pushed over by neighbour disturbance.
        const double p_base = retention_.weakProbability(
            op.trefp, op, device.retentionScale());
        const double p_disturbed =
            delta > 0.0 ? retention_.weakProbability(
                              op.trefp * (1.0 + delta), op,
                              device.retentionScale())
                        : p_base;
        const double p_weak = p_disturbed * suppression;
        if (p_weak <= 0.0)
            continue;

        const double v =
            params_.dataPatternVulnerability
                ? (device.rowIsTrueCell(phys) ? v_true : v_anti)
                : 0.5;
        const double p_cell = p_weak * v;
        if (p_cell <= 0.0)
            continue;

        const double words = row.touchedWords * exposure_scale;
        const double lambda_ce =
            words * units::totalBitsPerWord * p_cell;
        const double p_active = p_cell * pi_active;
        // A double-bit word needs a second simultaneously-failing cell;
        // disturbance is a single-cell mechanism, so the partner cell
        // fails at the base retention rate (interference enters the
        // pair linearly, not squared). The partner is typically a cell
        // of a *cold* word of the row (implicit refresh is per-word
        // access, per-row restore is partial), so the pair carries one
        // suppression factor, not two.
        const double p_active_base = p_base * v * pi_active;

        out.ceLambda += lambda_ce;
        out.uePerEpoch += words * kPairsPerWord * p_active *
                          p_active_base * params_.ueWordCoupling;
        out.sdcPerEpoch +=
            words * kTriplesPerWord * p_active * p_active_base *
            p_active_base;
        out.touchedWords += words;
        if (lambda_ce > 0.0)
            out.hotRows.emplace_back(row.rowIndex, lambda_ce);
    }

    // Keep only the heaviest rows for record sampling.
    std::sort(out.hotRows.begin(), out.hotRows.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (out.hotRows.size() > 64)
        out.hotRows.resize(64);
    return out;
}

RunResult
ErrorIntegrator::run(const features::WorkloadProfile &profile,
                     const dram::OperatingPoint &op,
                     const dram::Geometry &geometry,
                     const std::vector<dram::DramDevice> &devices,
                     std::uint64_t run_seed, dram::ErrorLog *log) const
{
    op.validate();
    DFAULT_ASSERT(static_cast<int>(devices.size()) ==
                      geometry.deviceCount(),
                  "device population does not match the geometry");
    DFAULT_ASSERT(profile.deviceRows.size() == devices.size(),
                  "profile does not match the device population");
    DFAULT_ASSERT(profile.footprintWords > 0,
                  "profile has an empty footprint");

    const double exposure_words = params_.exposureWords > 0.0
                                      ? params_.exposureWords
                                      : kPaperWords;
    const double exposure_scale =
        exposure_words / static_cast<double>(profile.footprintWords);

    const int n_dev = geometry.deviceCount();
    std::vector<DeviceIntensity> intensity;
    intensity.reserve(n_dev);
    for (int d = 0; d < n_dev; ++d)
        intensity.push_back(computeIntensity(profile, op, geometry,
                                             devices[d], d,
                                             exposure_scale));

    RunResult result;
    result.cePerDevice.assign(n_dev, 0.0);
    result.wordsPerDevice.resize(n_dev);
    for (int d = 0; d < n_dev; ++d)
        result.wordsPerDevice[d] = intensity[d].touchedWords;
    result.allocatedWords =
        static_cast<double>(profile.footprintWords) * exposure_scale;

    Rng rng(hashCombine(
        hashCombine(params_.seed, hashOperatingPoint(op)),
        hashCombine(run_seed,
                    std::hash<std::string>{}(profile.label))));

    const std::uint32_t rows_per_bank = geometry.params().rowsPerBank;
    int logged = 0;

    for (int epoch = 1; epoch <= params_.epochs; ++epoch) {
        // Heartbeat contract: one beat per simulated epoch keeps the
        // watchdog's view of a healthy cell fresh even under sanitizer
        // slowdowns (no-op outside a pool task).
        par::heartbeat();
        const double first_act = vrt_.firstActivationProbability(
            static_cast<std::uint64_t>(epoch));

        for (int d = 0; d < n_dev; ++d) {
            const DeviceIntensity &dev_int = intensity[d];

            // New unique CE word locations discovered this epoch.
            const double lambda = dev_int.ceLambda * first_act;
            const std::uint64_t new_ce = rng.poisson(lambda);
            result.cePerDevice[d] += static_cast<double>(new_ce);

            // Sample a few concrete records through the real SECDED
            // codec for the error log.
            if (log != nullptr && new_ce > 0 &&
                logged < kMaxLoggedRecords &&
                !dev_int.hotRows.empty()) {
                const auto &hot = dev_int.hotRows[rng.uniformInt(
                    static_cast<std::uint64_t>(dev_int.hotRows.size()))];
                const std::uint64_t payload = rng.next();
                dram::Codeword word = ecc_.encode(payload);
                const int bit =
                    static_cast<int>(rng.uniformInt(std::uint64_t{72}));
                dram::EccSecded::flipBit(word, bit);
                const auto decode =
                    ecc_.decodeKnownFlips(word, 1, payload);
                DFAULT_ASSERT(decode.outcome ==
                                  dram::EccOutcome::Corrected,
                              "SECDED failed to correct a single flip");
                dram::ErrorRecord record;
                record.device = geometry.deviceAt(d);
                record.bank = static_cast<int>(hot.first / rows_per_bank);
                record.row = static_cast<std::uint32_t>(hot.first %
                                                        rows_per_bank);
                record.column = static_cast<std::uint32_t>(
                    rng.uniformInt(std::uint64_t{
                        geometry.params().wordsPerRow}));
                record.type = dram::ErrorType::CE;
                record.epoch = static_cast<std::uint64_t>(epoch);
                record.bitsFlipped = 1;
                log->report(record);
                ++logged;
            }

            // Uncorrectable errors crash the machine.
            const double p_ue = 1.0 - std::exp(-dev_int.uePerEpoch);
            if (!result.crashed && rng.bernoulli(p_ue)) {
                result.crashed = true;
                result.crashEpoch = epoch;
                result.crashDevice = d;
                if (log != nullptr && !dev_int.hotRows.empty()) {
                    const auto &hot = dev_int.hotRows[0];
                    const std::uint64_t payload = rng.next();
                    dram::Codeword word = ecc_.encode(payload);
                    dram::EccSecded::flipBit(word, 3);
                    dram::EccSecded::flipBit(word, 47);
                    const auto decode =
                        ecc_.decodeKnownFlips(word, 2, payload);
                    DFAULT_ASSERT(
                        decode.outcome ==
                            dram::EccOutcome::Uncorrectable,
                        "SECDED failed to detect a double flip");
                    dram::ErrorRecord record;
                    record.device = geometry.deviceAt(d);
                    record.bank =
                        static_cast<int>(hot.first / rows_per_bank);
                    record.row = static_cast<std::uint32_t>(
                        hot.first % rows_per_bank);
                    record.column = 0;
                    record.type = dram::ErrorType::UE;
                    record.epoch = static_cast<std::uint64_t>(epoch);
                    record.bitsFlipped = 2;
                    log->report(record);
                }
            }

            result.expectedSdc += dev_int.sdcPerEpoch;
        }

        result.werSeries.push_back(result.wer());
        if (result.crashed)
            break;
    }

    // publish*() so campaign-cell deferrals (obs/deferral.hh) can
    // capture the run's stats transactionally; outside a deferral
    // these apply immediately, as before.
    obs::publishCounter("integrator.runs",
                        "characterization runs integrated");
    obs::publishCounter("integrator.epochs", "one-minute epochs simulated",
                        result.werSeries.size());
    double total_ce = 0.0;
    for (const double ce : result.cePerDevice)
        total_ce += ce;
    obs::publishCounter(
        "dram.ce_unique_words",
        "unique CE word locations (exposure-scaled)",
        static_cast<std::uint64_t>(std::llround(total_ce)));
    if (result.crashed)
        obs::publishCounter("dram.ue_crashes", "runs ended by a UE");
    obs::publishGaugeAdd("dram.sdc_expected",
                         "cumulative expected SDC events",
                         result.expectedSdc);

    return result;
}

} // namespace dfault::core
