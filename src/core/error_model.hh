/**
 * @file
 * The workload-aware DRAM error behavioural model — the paper's primary
 * deliverable (Eq. 1):
 *
 *   Merr = M(Ftrs, Dev, TREFP, VDD, TEMPDRAM)
 *
 * Trained on a characterization campaign, the model predicts the WER of
 * any workload on a specific (DIMM, rank) device, and the probability
 * of an uncorrectable error, from the workload's program features and
 * the DRAM operating parameters — in microseconds, without re-running
 * hours of characterization.
 *
 * The workload-unaware ConventionalModel (constant rates measured with
 * the random data-pattern micro-benchmark) is provided as the baseline
 * the paper compares against in Fig 13.
 */

#ifndef DFAULT_CORE_ERROR_MODEL_HH
#define DFAULT_CORE_ERROR_MODEL_HH

#include <map>
#include <memory>
#include <vector>

#include "core/characterization.hh"
#include "core/dataset_builder.hh"
#include "core/input_sets.hh"
#include "core/trainer.hh"
#include "ml/scaler.hh"

namespace dfault::core {

/** See file comment. */
class DramErrorModel
{
  public:
    struct Options
    {
        ModelKind kind = ModelKind::Knn; ///< most accurate (paper §VI)
        InputSet inputSet = InputSet::Set1;
        bool logTarget = true; ///< train WER in log10 space
    };

    /**
     * Train per-device WER predictors from campaign measurements.
     * Crashed runs are excluded.
     */
    static DramErrorModel trainWer(
        const std::vector<Measurement> &measurements, int device_count,
        const Options &options);

    /**
     * Train a PUE predictor (device-independent, as in the paper's
     * Fig 12 study). @p options.logTarget is ignored (linear target).
     */
    static DramErrorModel trainPue(CharacterizationCampaign &campaign,
                                   const std::vector<PueSample> &samples,
                                   const Options &options);

    /**
     * Predict the WER of a workload on one device.
     * @pre the model was trained with trainWer().
     */
    double predictWer(const features::WorkloadProfile &profile,
                      const dram::OperatingPoint &op, int device) const;

    /** WER aggregated over all devices (word-weighted mean). */
    double predictWerAggregate(const features::WorkloadProfile &profile,
                               const dram::OperatingPoint &op) const;

    /**
     * Predict the probability of a UE for a workload.
     * @pre the model was trained with trainPue().
     */
    double predictPue(const features::WorkloadProfile &profile,
                      const dram::OperatingPoint &op) const;

    const Options &options() const { return options_; }

  private:
    struct DeviceModel
    {
        ml::StandardScaler scaler;
        ml::RegressorPtr regressor;
        double wordsShare = 1.0;
        /** Training-target envelope; predictions are clamped to it. */
        double targetLo = 0.0;
        double targetHi = 0.0;
    };

    Options options_;
    std::vector<std::string> programFeatures_;
    std::vector<DeviceModel> werModels_;
    std::unique_ptr<DeviceModel> pueModel_;

    std::vector<double> makeRow(const features::WorkloadProfile &profile,
                                const dram::OperatingPoint &op) const;
};

/**
 * Conventional workload-unaware model: the per-operating-point WER of
 * the random data-pattern micro-benchmark, applied to every workload
 * (paper §VI-C).
 */
class ConventionalModel
{
  public:
    /** Characterize the micro-benchmark at the given operating points. */
    ConventionalModel(CharacterizationCampaign &campaign,
                      const std::vector<dram::OperatingPoint> &points);

    /** Constant WER for the operating point, whatever the workload. */
    double predictWer(const dram::OperatingPoint &op) const;

  private:
    std::vector<std::pair<dram::OperatingPoint, double>> table_;
};

} // namespace dfault::core

#endif // DFAULT_CORE_ERROR_MODEL_HH
