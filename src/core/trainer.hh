/**
 * @file
 * Model training and Leave-One-Benchmark-Out accuracy evaluation
 * (paper §VI-B, Figs 11/12).
 */

#ifndef DFAULT_CORE_TRAINER_HH
#define DFAULT_CORE_TRAINER_HH

#include <map>
#include <string>

#include "ml/dataset.hh"
#include "ml/regressor.hh"

namespace dfault::core {

/** The three supervised models the paper compares. */
enum class ModelKind
{
    Svm,
    Knn,
    Rdf,
};

inline constexpr ModelKind kAllModelKinds[] = {ModelKind::Svm,
                                               ModelKind::Knn,
                                               ModelKind::Rdf};

/** "SVM" / "KNN" / "RDF". */
std::string modelKindName(ModelKind kind);

/** Instantiate a fresh regressor of the given kind. */
ml::RegressorPtr makeModel(ModelKind kind);

/** Accuracy of one LOBO evaluation. */
struct EvaluationResult
{
    /** MPE averaged over held-out benchmarks (the figures' "Average"). */
    double mpe = 0.0;
    /** MPE per held-out benchmark (Fig 11 d-f). */
    std::map<std::string, double> mpePerGroup;
};

/**
 * Leave-One-Benchmark-Out evaluation of @p kind on @p data.
 *
 * Features are standardized per fold (fit on the training split).
 * WER spans decades, so with @p log_target the model is trained on
 * log10(max(y, floor)) and predictions are exponentiated before the
 * percentage error is computed; PUE uses the linear target. Groups
 * whose every measured target is zero cannot contribute a percentage
 * error and are skipped, as in the paper's protocol.
 */
EvaluationResult evaluateModel(const ml::Dataset &data, ModelKind kind,
                               bool log_target);

} // namespace dfault::core

#endif // DFAULT_CORE_TRAINER_HH
