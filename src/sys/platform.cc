#include "sys/platform.hh"

#include "common/logging.hh"
#include "obs/stats.hh"

namespace dfault::sys {

double
dilationForFootprint(std::uint64_t footprint_bytes)
{
    DFAULT_ASSERT(footprint_bytes > 0, "footprint must be positive");
    constexpr double reference_footprint = 16.0 * 1024.0 * 1024.0;
    constexpr double reference_dilation = 200.0;
    return reference_dilation * reference_footprint /
           static_cast<double>(footprint_bytes);
}

Platform::Platform() : Platform(Params{}) {}

Platform::Platform(const Params &params) : params_(params)
{
    geometry_ = std::make_unique<dram::Geometry>(params_.geometry);
    devices_ = dram::DeviceFactory(*geometry_, params_.devices).buildAll();
    hierarchy_ = std::make_unique<mem::MemoryHierarchy>(*geometry_,
                                                        params_.hierarchy);
    params_.thermal.dimms = params_.geometry.channels;
    thermal_ = std::make_unique<ThermalTestbed>(params_.thermal);
}

std::unique_ptr<Platform>
Platform::clone() const
{
    return std::make_unique<Platform>(params_);
}

const dram::DramDevice &
Platform::device(const dram::DeviceId &id) const
{
    return devices_.at(geometry_->deviceIndex(id));
}

ExecutionContext
Platform::startRun(int threads)
{
    DFAULT_ASSERT(threads > 0, "run needs at least one thread");
    obs::Registry::instance()
        .counter("platform.runs", "workload runs started")
        .inc();
    hierarchy_->reset();
    ExecutionContext::Params exec = params_.exec;
    exec.threads = threads;
    return ExecutionContext(*hierarchy_, bus_, exec);
}

} // namespace dfault::sys
