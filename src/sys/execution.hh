/**
 * @file
 * Workload execution context: the in-order core model workloads run on.
 *
 * The X-Gene2 in the paper is only a load generator and a performance-
 * counter source; accordingly the core model does cycle accounting, not
 * microarchitectural simulation. Each logical thread owns a core-like
 * counter set; loads and stores pass through the instrumentation bus
 * (DynamoRIO stand-in) and the cache hierarchy, and their latency is
 * charged to the issuing thread with a memory-level-parallelism
 * discount. Compute and branch instructions advance the cycle count
 * without touching memory.
 */

#ifndef DFAULT_SYS_EXECUTION_HH
#define DFAULT_SYS_EXECUTION_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "mem/hierarchy.hh"
#include "trace/access.hh"

namespace dfault::sys {

/** Per-thread (per-core) activity counters. */
struct CoreStats
{
    Cycles cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t intOps = 0;
    std::uint64_t fpOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMisses = 0;
    Cycles waitCycles = 0; ///< cycles stalled waiting for memory

    std::uint64_t memInstructions() const { return loads + stores; }
};

/**
 * Execution interface handed to workloads.
 *
 * Threads are logical: calls for different threads may be interleaved
 * arbitrarily by the workload; each thread's cycle clock advances
 * independently and the run's wall time is the maximum over threads.
 */
class ExecutionContext
{
  public:
    struct Params
    {
        int threads = 8;
        double clockHz = 2.4e9;        ///< X-Gene2 core clock
        double memoryLevelParallelism = 4.0;
        Cycles branchMissPenalty = 14;
        /**
         * Time dilation: each simulated instruction represents this many
         * real dynamic instructions (DESIGN.md §4). Workloads execute a
         * 1/dilation sample of the real instruction stream; all
         * wall-clock conversions (wallSeconds, reuse times, row access
         * rates) multiply by this factor so that second-scale quantities
         * like Treuse match the paper's regime without simulating 1e11
         * instructions.
         */
        double timeDilation = 200.0;
    };

    ExecutionContext(mem::MemoryHierarchy &hierarchy,
                     trace::InstrumentationBus &bus, const Params &params);
    ExecutionContext(mem::MemoryHierarchy &hierarchy,
                     trace::InstrumentationBus &bus);

    /** Number of logical threads configured for this run. */
    int threads() const { return params_.threads; }

    /**
     * Reserve @p bytes of simulated memory (64-byte aligned bump
     * allocation). fatal() when DRAM capacity is exhausted.
     */
    Addr allocate(std::uint64_t bytes);

    /** Bytes allocated so far (the workload footprint, MEMSIZE). */
    std::uint64_t footprintBytes() const { return brk_; }

    /**
     * Execute one load on @p thread and return the 64-bit word stored
     * at the (8-byte aligned-down) address. Memory is zero-initialized.
     */
    std::uint64_t load(int thread, Addr addr);

    /** Execute one store of @p value on @p thread. */
    void store(int thread, Addr addr, std::uint64_t value);

    /** Read simulated memory without executing an access (debug/tests). */
    std::uint64_t peek(Addr addr) const;

    /** Execute @p ops integer ALU instructions on @p thread. */
    void compute(int thread, std::uint64_t ops);

    /** Execute @p ops floating-point instructions on @p thread. */
    void computeFp(int thread, std::uint64_t ops);

    /** Execute one branch; a mispredict costs branchMissPenalty. */
    void branch(int thread, bool mispredicted);

    /** Per-thread counters. */
    const CoreStats &coreStats(int thread) const;

    /** Sum of counters over all threads. */
    CoreStats totalStats() const;

    /** Wall-clock cycles: maximum cycle count over threads. */
    Cycles wallCycles() const;

    /** Wall-clock seconds of the simulated run. */
    Seconds wallSeconds() const;

    /** perf-style CPI: sum of cycles over sum of instructions. */
    double cpi() const;

    /**
     * Wall seconds per dynamic instruction across all threads; the
     * conversion factor from reuse distances to reuse time.
     */
    double wallSecondsPerInstruction() const;

    /** Global dynamic instruction counter (across threads). */
    std::uint64_t globalInstructions() const { return globalInstr_; }

    /**
     * Publish this run's counters into the observability registry
     * (obs::Registry::instance()): per-thread counters accumulate under
     * "platform.core.<t>.*", aggregates under "platform.exec.*". Called
     * once per profiled run; the hot paths stay uninstrumented.
     */
    void publishStats() const;

    const Params &params() const { return params_; }
    mem::MemoryHierarchy &hierarchy() { return hierarchy_; }

  private:
    mem::MemoryHierarchy &hierarchy_;
    trace::InstrumentationBus &bus_;
    Params params_;
    std::vector<CoreStats> cores_;
    std::vector<std::uint64_t> backing_; ///< simulated memory contents
    Addr brk_ = 0;
    std::uint64_t globalInstr_ = 0;

    void memoryAccess(int thread, Addr addr, bool is_write,
                      std::uint64_t value);
    CoreStats &core(int thread);
};

} // namespace dfault::sys

#endif // DFAULT_SYS_EXECUTION_HH
