#include "sys/thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/deferral.hh"
#include "obs/events.hh"
#include "obs/stats.hh"

namespace dfault::sys {

PidController::PidController(const Gains &gains, double output_min,
                             double output_max)
    : gains_(gains), outputMin_(output_min), outputMax_(output_max)
{
    DFAULT_ASSERT(output_min <= output_max, "PID output bounds inverted");
}

double
PidController::step(double setpoint, double measurement, Seconds dt)
{
    DFAULT_ASSERT(dt > 0.0, "PID step needs positive dt");
    const double error = setpoint - measurement;

    const double derivative =
        hasPrev_ ? (error - prevError_) / dt : 0.0;
    prevError_ = error;
    hasPrev_ = true;

    // Tentative command with the current integral.
    double command = gains_.kp * error + gains_.ki * integral_ +
                     gains_.kd * derivative;

    // Conditional integration anti-windup: only integrate when the
    // command is not pushing further into saturation.
    const bool saturated_high = command >= outputMax_ && error > 0.0;
    const bool saturated_low = command <= outputMin_ && error < 0.0;
    if (!saturated_high && !saturated_low) {
        integral_ += error * dt;
        command = gains_.kp * error + gains_.ki * integral_ +
                  gains_.kd * derivative;
    }

    return std::clamp(command, outputMin_, outputMax_);
}

void
PidController::reset()
{
    integral_ = 0.0;
    prevError_ = 0.0;
    hasPrev_ = false;
}

ThermalTestbed::ThermalTestbed() : ThermalTestbed(Params{}) {}

ThermalTestbed::ThermalTestbed(const Params &params) : params_(params)
{
    if (params_.dimms <= 0)
        DFAULT_FATAL("thermal: dimm count must be positive");
    if (params_.heatCapacity <= 0.0 || params_.lossCoeff <= 0.0)
        DFAULT_FATAL("thermal: plant constants must be positive");

    temperature_.assign(params_.dimms, params_.ambient);
    target_.assign(params_.dimms, params_.ambient);
    dramPower_.assign(params_.dimms, 0.0);
    settledSteps_.assign(params_.dimms, 0);
    controllers_.reserve(params_.dimms);
    for (int d = 0; d < params_.dimms; ++d)
        controllers_.emplace_back(params_.gains, 0.0,
                                  params_.maxHeaterPower);
}

void
ThermalTestbed::reset()
{
    temperature_.assign(params_.dimms, params_.ambient);
    target_.assign(params_.dimms, params_.ambient);
    dramPower_.assign(params_.dimms, 0.0);
    settledSteps_.assign(params_.dimms, 0);
    for (auto &controller : controllers_)
        controller.reset();
}

void
ThermalTestbed::setTarget(int dimm, Celsius target)
{
    DFAULT_ASSERT(dimm >= 0 && dimm < params_.dimms, "dimm out of range");
    const double max_reachable =
        params_.ambient +
        (params_.maxHeaterPower + dramPower_[dimm]) / params_.lossCoeff;
    if (target > max_reachable)
        DFAULT_FATAL("thermal: target ", target,
                     " C unreachable with heater power budget (max ",
                     max_reachable, " C)");
    target_[dimm] = target;
    controllers_[dimm].reset();
    settledSteps_[dimm] = 0;
}

void
ThermalTestbed::setTargetAll(Celsius target)
{
    for (int d = 0; d < params_.dimms; ++d)
        setTarget(d, target);
}

void
ThermalTestbed::setDramPower(int dimm, double watts)
{
    DFAULT_ASSERT(dimm >= 0 && dimm < params_.dimms, "dimm out of range");
    DFAULT_ASSERT(watts >= 0.0, "DRAM power cannot be negative");
    dramPower_[dimm] = watts;
}

void
ThermalTestbed::step()
{
    for (int d = 0; d < params_.dimms; ++d) {
        const double heater =
            controllers_[d].step(target_[d], temperature_[d], params_.dt);
        const double net_power = heater + dramPower_[d] -
                                 params_.lossCoeff *
                                     (temperature_[d] - params_.ambient);
        temperature_[d] += params_.dt * net_power / params_.heatCapacity;

        if (std::abs(temperature_[d] - target_[d]) <= params_.tolerance)
            ++settledSteps_[d];
        else
            settledSteps_[d] = 0;
    }
}

bool
ThermalTestbed::stepUntilSettled(int max_steps)
{
    const int needed =
        std::max(1, static_cast<int>(std::ceil(1.0 / params_.dt)));
    bool settled = false;
    int steps = max_steps;
    for (int i = 0; i < max_steps && !settled; ++i) {
        step();
        bool all = true;
        for (int d = 0; d < params_.dimms; ++d)
            all = all && settledSteps_[d] >= needed;
        if (all) {
            settled = true;
            steps = i + 1;
        }
    }

    // publish*() so campaign-cell deferrals (obs/deferral.hh) can
    // capture the settle stats transactionally; outside a deferral
    // these apply immediately, as before.
    obs::publishCounter("thermal.settles", "PID settle attempts");
    obs::publishDistribution("thermal.settle_steps", 0.0, 20000.0, 40,
                             "control steps until the PID loop converged",
                             static_cast<double>(steps));
    if (!settled)
        obs::publishCounter("thermal.settle_failures",
                            "settle attempts that hit the step limit");
    auto &sink = obs::EventSink::instance();
    if (sink.enabled()) {
        double mean_temp = 0.0, mean_target = 0.0;
        for (int d = 0; d < params_.dimms; ++d) {
            mean_temp += temperature_[d];
            mean_target += target_[d];
        }
        obs::JsonWriter w;
        w.field("settled", settled);
        w.field("steps", static_cast<std::int64_t>(steps));
        w.field("sim_seconds", steps * params_.dt);
        w.field("target_c", mean_target / params_.dimms);
        w.field("temp_c", mean_temp / params_.dimms);
        sink.emit("thermal_settle", w);
    }
    return settled;
}

Celsius
ThermalTestbed::temperature(int dimm) const
{
    DFAULT_ASSERT(dimm >= 0 && dimm < params_.dimms, "dimm out of range");
    return temperature_[dimm];
}

Celsius
ThermalTestbed::target(int dimm) const
{
    DFAULT_ASSERT(dimm >= 0 && dimm < params_.dimms, "dimm out of range");
    return target_[dimm];
}

} // namespace dfault::sys
