/**
 * @file
 * DIMM thermal testbed: heating elements with closed-loop PID control.
 *
 * The paper's experimental framework clamps each DIMM to a target
 * temperature with a resistive heating element, a thermocouple, and a
 * per-DIMM PID controller on a Raspberry Pi (paper §IV-A, Figs 5/6).
 * This model reproduces that loop: a first-order thermal plant per DIMM
 * (lumped heat capacity, linear loss to ambient, plus the DRAM's own
 * activity-dependent dissipation) driven by a discrete PID controller
 * with anti-windup.
 */

#ifndef DFAULT_SYS_THERMAL_HH
#define DFAULT_SYS_THERMAL_HH

#include <vector>

#include "common/units.hh"

namespace dfault::sys {

/** Discrete PID controller with output clamping and anti-windup. */
class PidController
{
  public:
    struct Gains
    {
        double kp = 8.0;
        double ki = 0.8;
        double kd = 4.0;
    };

    PidController(const Gains &gains, double output_min, double output_max);

    /** One control step; returns the actuator command. */
    double step(double setpoint, double measurement, Seconds dt);

    /** Reset integral and derivative state. */
    void reset();

  private:
    Gains gains_;
    double outputMin_;
    double outputMax_;
    double integral_ = 0.0;
    double prevError_ = 0.0;
    bool hasPrev_ = false;
};

/**
 * Thermal testbed for all DIMMs on the board.
 *
 * Temperatures evolve under explicit-Euler integration of
 *   C dT/dt = P_heater + P_dram - k (T - T_ambient)
 */
class ThermalTestbed
{
  public:
    struct Params
    {
        int dimms = 4;
        Celsius ambient = 35.0;
        double heatCapacity = 60.0;   ///< J/K per DIMM assembly
        double lossCoeff = 0.8;       ///< W/K to ambient
        double maxHeaterPower = 40.0; ///< W
        Seconds dt = 0.25;            ///< control period
        PidController::Gains gains;
        Celsius tolerance = 0.5;      ///< settle band around the target
    };

    ThermalTestbed();
    explicit ThermalTestbed(const Params &params);

    /** Set the target temperature of one DIMM. */
    void setTarget(int dimm, Celsius target);

    /** Set the same target for every DIMM. */
    void setTargetAll(Celsius target);

    /**
     * Account DRAM self-heating: @p watts dissipated by DIMM activity
     * during subsequent steps.
     */
    void setDramPower(int dimm, double watts);

    /**
     * Return the testbed to its just-constructed state: every DIMM at
     * ambient, targets cleared, DRAM power zeroed, PID state reset.
     * Each characterization measurement starts from a reset testbed so
     * its result is independent of whatever ran before it — the
     * property that lets campaign measurements execute in any order
     * (or in parallel) with identical results.
     */
    void reset();

    /** Advance the plant + controllers by one control period. */
    void step();

    /**
     * Run the control loop until every DIMM has stayed within the
     * tolerance band for one second of simulated time.
     *
     * @return true if settled within @p max_steps steps.
     */
    bool stepUntilSettled(int max_steps = 20000);

    Celsius temperature(int dimm) const;
    Celsius target(int dimm) const;
    int dimms() const { return params_.dimms; }

  private:
    Params params_;
    std::vector<Celsius> temperature_;
    std::vector<Celsius> target_;
    std::vector<double> dramPower_;
    std::vector<PidController> controllers_;
    std::vector<int> settledSteps_;
};

} // namespace dfault::sys

#endif // DFAULT_SYS_THERMAL_HH
