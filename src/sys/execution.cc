#include "sys/execution.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"
#include "obs/stats.hh"

namespace dfault::sys {

ExecutionContext::ExecutionContext(mem::MemoryHierarchy &hierarchy,
                                   trace::InstrumentationBus &bus)
    : ExecutionContext(hierarchy, bus, Params{})
{
}

ExecutionContext::ExecutionContext(mem::MemoryHierarchy &hierarchy,
                                   trace::InstrumentationBus &bus,
                                   const Params &params)
    : hierarchy_(hierarchy), bus_(bus), params_(params)
{
    if (params_.threads <= 0)
        DFAULT_FATAL("execution: thread count must be positive");
    if (params_.memoryLevelParallelism < 1.0)
        DFAULT_FATAL("execution: MLP must be >= 1");
    cores_.resize(params_.threads);
}

Addr
ExecutionContext::allocate(std::uint64_t bytes)
{
    constexpr std::uint64_t align = 64;
    const std::uint64_t aligned = (bytes + align - 1) & ~(align - 1);
    if (brk_ + aligned > hierarchy_.geometry().capacityBytes())
        DFAULT_FATAL("workload footprint exceeds DRAM capacity: need ",
                     brk_ + aligned, " of ",
                     hierarchy_.geometry().capacityBytes(), " bytes");
    const Addr base = brk_;
    brk_ += aligned;
    backing_.resize(brk_ / units::bytesPerWord, 0);
    return base;
}

CoreStats &
ExecutionContext::core(int thread)
{
    DFAULT_ASSERT(thread >= 0 && thread < params_.threads,
                  "thread id out of range");
    return cores_[thread];
}

void
ExecutionContext::memoryAccess(int thread, Addr addr, bool is_write,
                               std::uint64_t value)
{
    CoreStats &c = core(thread);

    bus_.publish(trace::AccessEvent{thread, addr, is_write, value,
                                    globalInstr_});
    ++globalInstr_;
    ++c.instructions;
    if (is_write)
        ++c.stores;
    else
        ++c.loads;

    const int core_id = thread % hierarchy_.cores();
    const Cycles latency =
        hierarchy_.access(core_id, addr, is_write, c.cycles);

    // One issue cycle plus the exposed (MLP-discounted) stall.
    const auto stall = static_cast<Cycles>(
        static_cast<double>(latency > 1 ? latency - 1 : 0) /
        params_.memoryLevelParallelism);
    c.cycles += 1 + stall;
    c.waitCycles += stall;
}

std::uint64_t
ExecutionContext::load(int thread, Addr addr)
{
    memoryAccess(thread, addr, /*is_write=*/false, 0);
    return peek(addr);
}

void
ExecutionContext::store(int thread, Addr addr, std::uint64_t value)
{
    memoryAccess(thread, addr, /*is_write=*/true, value);
    const std::uint64_t word = addr / units::bytesPerWord;
    DFAULT_ASSERT(word < backing_.size(), "store beyond allocated memory");
    backing_[word] = value;
}

std::uint64_t
ExecutionContext::peek(Addr addr) const
{
    const std::uint64_t word = addr / units::bytesPerWord;
    DFAULT_ASSERT(word < backing_.size(), "load beyond allocated memory");
    return backing_[word];
}

void
ExecutionContext::compute(int thread, std::uint64_t ops)
{
    CoreStats &c = core(thread);
    c.instructions += ops;
    c.intOps += ops;
    c.cycles += ops;
    globalInstr_ += ops;
}

void
ExecutionContext::computeFp(int thread, std::uint64_t ops)
{
    CoreStats &c = core(thread);
    c.instructions += ops;
    c.fpOps += ops;
    c.cycles += ops;
    globalInstr_ += ops;
}

void
ExecutionContext::branch(int thread, bool mispredicted)
{
    CoreStats &c = core(thread);
    ++c.instructions;
    ++c.branches;
    ++c.cycles;
    ++globalInstr_;
    if (mispredicted) {
        ++c.branchMisses;
        c.cycles += params_.branchMissPenalty;
    }
}

const CoreStats &
ExecutionContext::coreStats(int thread) const
{
    DFAULT_ASSERT(thread >= 0 && thread < params_.threads,
                  "thread id out of range");
    return cores_[thread];
}

CoreStats
ExecutionContext::totalStats() const
{
    CoreStats total;
    for (const auto &c : cores_) {
        total.cycles += c.cycles;
        total.instructions += c.instructions;
        total.intOps += c.intOps;
        total.fpOps += c.fpOps;
        total.loads += c.loads;
        total.stores += c.stores;
        total.branches += c.branches;
        total.branchMisses += c.branchMisses;
        total.waitCycles += c.waitCycles;
    }
    return total;
}

Cycles
ExecutionContext::wallCycles() const
{
    Cycles wall = 0;
    for (const auto &c : cores_)
        wall = std::max(wall, c.cycles);
    return wall;
}

Seconds
ExecutionContext::wallSeconds() const
{
    return static_cast<double>(wallCycles()) * params_.timeDilation /
           params_.clockHz;
}

double
ExecutionContext::cpi() const
{
    const CoreStats total = totalStats();
    if (total.instructions == 0)
        return 0.0;
    return static_cast<double>(total.cycles) /
           static_cast<double>(total.instructions);
}

void
ExecutionContext::publishStats() const
{
    auto &reg = obs::Registry::instance();
    for (int t = 0; t < params_.threads; ++t) {
        const CoreStats &c = cores_[static_cast<std::size_t>(t)];
        const std::string p = "platform.core." + std::to_string(t) + ".";
        reg.counter(p + "instructions", "dynamic instructions executed")
            .inc(c.instructions);
        reg.counter(p + "cycles", "core cycles consumed")
            .inc(c.cycles);
        reg.counter(p + "loads", "load instructions").inc(c.loads);
        reg.counter(p + "stores", "store instructions").inc(c.stores);
        reg.counter(p + "branches", "branch instructions")
            .inc(c.branches);
        reg.counter(p + "branch_misses", "mispredicted branches")
            .inc(c.branchMisses);
        reg.counter(p + "wait_cycles", "cycles stalled on memory")
            .inc(c.waitCycles);
    }
    const CoreStats total = totalStats();
    reg.counter("platform.exec.instructions",
                "dynamic instructions, all threads")
        .inc(total.instructions);
    reg.counter("platform.exec.cycles", "core cycles, all threads")
        .inc(total.cycles);
    reg.counter("platform.exec.wall_cycles",
                "wall-clock cycles (max over threads)")
        .inc(wallCycles());
    reg.gauge("platform.exec.last_cpi", "CPI of the last published run")
        .set(cpi());
    reg.gauge("platform.exec.last_wall_seconds",
              "dilated wall seconds of the last published run")
        .set(wallSeconds());
    hierarchy_.publishStats();
}

double
ExecutionContext::wallSecondsPerInstruction() const
{
    const std::uint64_t instr = totalStats().instructions;
    if (instr == 0)
        return 0.0;
    return wallSeconds() / static_cast<double>(instr);
}

} // namespace dfault::sys
