/**
 * @file
 * The assembled experimental platform: the simulated X-Gene2 server.
 *
 * Owns the DRAM geometry, the per-(DIMM,rank) device population, the
 * cache/MCU hierarchy, the instrumentation bus, and the thermal testbed.
 * A Platform is the "hardware under test": constructing two Platforms
 * with the same seed yields identical simulated hardware.
 */

#ifndef DFAULT_SYS_PLATFORM_HH
#define DFAULT_SYS_PLATFORM_HH

#include <memory>
#include <vector>

#include "dram/device.hh"
#include "dram/geometry.hh"
#include "mem/hierarchy.hh"
#include "sys/execution.hh"
#include "sys/thermal.hh"
#include "trace/access.hh"

namespace dfault::sys {

/**
 * Time-dilation factor appropriate for a workload footprint.
 *
 * The default ExecutionContext dilation (200) is calibrated for the
 * standard 16 MiB scaled footprint; smaller footprints execute fewer
 * instructions per data sweep, so the dilation must grow inversely to
 * keep wall-clock quantities (reuse times, row re-open intervals vs
 * TREFP) invariant under footprint scaling (DESIGN.md §4).
 */
double dilationForFootprint(std::uint64_t footprint_bytes);

/** The full server assembly; see file comment. */
class Platform
{
  public:
    struct Params
    {
        dram::Geometry::Params geometry;
        dram::DeviceFactory::Params devices;
        mem::MemoryHierarchy::Params hierarchy;
        ExecutionContext::Params exec;
        ThermalTestbed::Params thermal;
    };

    Platform();
    explicit Platform(const Params &params);

    /**
     * Build an identical platform from this platform's parameters.
     * Construction is deterministic (the device population derives
     * from the master seed), so the replica's simulated hardware is
     * indistinguishable from this one's; parallel campaign workers
     * measure on per-slot replicas instead of sharing one platform.
     */
    std::unique_ptr<Platform> clone() const;

    const dram::Geometry &geometry() const { return *geometry_; }
    const std::vector<dram::DramDevice> &devices() const { return devices_; }
    const dram::DramDevice &device(const dram::DeviceId &id) const;

    mem::MemoryHierarchy &hierarchy() { return *hierarchy_; }
    const mem::MemoryHierarchy &hierarchy() const { return *hierarchy_; }

    trace::InstrumentationBus &bus() { return bus_; }
    ThermalTestbed &thermal() { return *thermal_; }

    /**
     * Begin a fresh workload run with @p threads logical threads:
     * caches, MCU statistics and counters are reset and a new execution
     * context is returned. The context references this platform and must
     * not outlive it.
     */
    ExecutionContext startRun(int threads);

    const Params &params() const { return params_; }

  private:
    Params params_;
    std::unique_ptr<dram::Geometry> geometry_;
    std::vector<dram::DramDevice> devices_;
    std::unique_ptr<mem::MemoryHierarchy> hierarchy_;
    trace::InstrumentationBus bus_;
    std::unique_ptr<ThermalTestbed> thermal_;
};

} // namespace dfault::sys

#endif // DFAULT_SYS_PLATFORM_HH
