#include "features/catalog.hh"

#include "common/logging.hh"

namespace dfault::features {

FeatureCatalog::FeatureCatalog()
{
    names_.reserve(kFeatureCount);
    auto add = [this](const std::string &name) { names_.push_back(name); };

    // 0..5: headline features (order must match HeadlineFeature).
    add("mem_accesses_per_cycle");
    add("wait_cycles_ratio");
    add("hdp_entropy");
    add("treuse_seconds");
    add("ipc");
    add("cpu_utilization");

    // Per-MCU command counters, per kilocycle (4 MCUs x 6).
    for (int m = 0; m < 4; ++m) {
        const std::string p = "mcu" + std::to_string(m) + "_";
        add(p + "read_cmds_per_kc");
        add(p + "write_cmds_per_kc");
        add(p + "activations_per_kc");
        add(p + "precharges_per_kc");
        add(p + "row_hits_per_kc");
        add(p + "row_misses_per_kc");
    }
    // Per-MCU ratios (4 x 2).
    for (int m = 0; m < 4; ++m) {
        const std::string p = "mcu" + std::to_string(m) + "_";
        add(p + "row_hit_ratio");
        add(p + "read_write_ratio");
    }

    // L1 aggregate (8).
    add("l1_read_accesses_per_kc");
    add("l1_write_accesses_per_kc");
    add("l1_read_misses_per_kc");
    add("l1_write_misses_per_kc");
    add("l1_writebacks_per_kc");
    add("l1_miss_ratio");
    add("l1_read_miss_ratio");
    add("l1_write_miss_ratio");

    // Per-core L1 (8 cores x 2).
    for (int c = 0; c < 8; ++c) {
        const std::string p = "core" + std::to_string(c) + "_l1_";
        add(p + "accesses_per_kc");
        add(p + "miss_ratio");
    }

    // L2 aggregate (8).
    add("l2_read_accesses_per_kc");
    add("l2_write_accesses_per_kc");
    add("l2_read_misses_per_kc");
    add("l2_write_misses_per_kc");
    add("l2_writebacks_per_kc");
    add("l2_miss_ratio");
    add("l2_read_miss_ratio");
    add("l2_write_miss_ratio");

    // Core totals (10).
    add("int_ops_per_cycle");
    add("fp_ops_per_cycle");
    add("loads_per_cycle");
    add("stores_per_cycle");
    add("branches_per_cycle");
    add("branch_miss_ratio");
    add("mem_instr_ratio");
    add("fp_instr_ratio");
    add("store_ratio");
    add("cpi");

    // Per-thread core stats (8 x 4).
    for (int t = 0; t < 8; ++t) {
        const std::string p = "thread" + std::to_string(t) + "_";
        add(p + "ipc");
        add(p + "mem_per_cycle");
        add(p + "wait_ratio");
        add(p + "fp_ratio");
    }

    // Reuse-distance statistics (4).
    add("reuse_distance_mean");
    add("reuse_distance_stddev");
    add("reuse_fraction");
    add("unique_words_per_instr");

    // Row-level aggregates (12).
    add("rows_touched_fraction");
    add("row_access_rate_mean");
    add("row_activation_rate_mean");
    add("row_interval_mean_s");
    add("row_interval_p50_s");
    add("row_interval_p90_s");
    add("row_words_touched_mean");
    add("dram_cmds_per_kc");
    add("dram_read_fraction");
    add("dram_act_per_cmd");
    add("dram_bytes_per_instr");
    add("dram_touch_rate");

    // Per-channel per-bank activation shares (4 x 8).
    for (int ch = 0; ch < 4; ++ch)
        for (int b = 0; b < 8; ++b)
            add("ch" + std::to_string(ch) + "_bank" + std::to_string(b) +
                "_act_share");

    // Per-device footprint shares and mean row intervals (8 x 2).
    for (int d = 0; d < 8; ++d)
        add("dev" + std::to_string(d) + "_words_touched_share");
    for (int d = 0; d < 8; ++d)
        add("dev" + std::to_string(d) + "_row_interval_s");

    // Data-pattern bit statistics (4).
    add("bit_one_prob_mean");
    add("bit_one_prob_stddev");
    add("bit_one_prob_min");
    add("bit_one_prob_max");

    // Per-bit-position write-one probabilities (64).
    for (int b = 0; b < 64; ++b)
        add("bit" + std::to_string(b) + "_one_prob");

    // Miscellaneous run descriptors (5).
    add("footprint_mwords");
    add("profile_wall_seconds");
    add("sampled_stores_per_kinstr");
    add("threads_active");
    add("global_instr_gops");

    DFAULT_ASSERT(names_.size() == kFeatureCount,
                  "feature catalog has ", names_.size(),
                  " entries, expected ", kFeatureCount);

    byName_.reserve(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i)
        byName_[names_[i]] = i;
}

const FeatureCatalog &
FeatureCatalog::instance()
{
    static const FeatureCatalog catalog;
    return catalog;
}

const std::string &
FeatureCatalog::name(std::size_t index) const
{
    DFAULT_ASSERT(index < names_.size(), "feature index out of range");
    return names_[index];
}

std::size_t
FeatureCatalog::index(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        DFAULT_FATAL("unknown feature '", name, "'");
    return it->second;
}

bool
FeatureCatalog::contains(const std::string &name) const
{
    return byName_.count(name) > 0;
}

double
FeatureVector::get(const std::string &name) const
{
    return values_[FeatureCatalog::instance().index(name)];
}

void
FeatureVector::set(const std::string &name, double value)
{
    values_[FeatureCatalog::instance().index(name)] = value;
}

} // namespace dfault::features
