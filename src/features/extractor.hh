/**
 * @file
 * The profiling phase: run a workload under instrumentation and distill
 * its WorkloadProfile (paper Fig 3, left column).
 */

#ifndef DFAULT_FEATURES_EXTRACTOR_HH
#define DFAULT_FEATURES_EXTRACTOR_HH

#include <map>

#include "features/profile.hh"
#include "sys/platform.hh"
#include "workloads/registry.hh"

namespace dfault::features {

/**
 * Execute @p config's kernel on @p platform with reuse-distance and
 * entropy instrumentation attached, then assemble the full profile:
 * all 249 program features plus the per-row DRAM activity statistics.
 *
 * The platform's caches and counters are reset before the run.
 */
WorkloadProfile extractProfile(sys::Platform &platform,
                               const workloads::WorkloadConfig &config,
                               const workloads::Workload::Params &wparams);

/**
 * Process-wide profile memoization keyed by (label, threads, footprint,
 * seed, workScale): campaigns and benchmark drivers re-profile the same
 * suite many times; the profile is deterministic so caching is exact.
 */
class ProfileCache
{
  public:
    static ProfileCache &instance();

    /** Get or compute the profile for @p config on @p platform. */
    const WorkloadProfile &
    get(sys::Platform &platform, const workloads::WorkloadConfig &config,
        const workloads::Workload::Params &wparams);

    /** Drop all cached profiles. */
    void clear();

  private:
    ProfileCache() = default;

    std::map<std::string, WorkloadProfile> entries_;
};

} // namespace dfault::features

#endif // DFAULT_FEATURES_EXTRACTOR_HH
