/**
 * @file
 * The profiling phase: run a workload under instrumentation and distill
 * its WorkloadProfile (paper Fig 3, left column).
 */

#ifndef DFAULT_FEATURES_EXTRACTOR_HH
#define DFAULT_FEATURES_EXTRACTOR_HH

#include <map>
#include <memory>
#include <mutex>

#include "features/profile.hh"
#include "sys/platform.hh"
#include "workloads/registry.hh"

namespace dfault::features {

/**
 * Execute @p config's kernel on @p platform with reuse-distance and
 * entropy instrumentation attached, then assemble the full profile:
 * all 249 program features plus the per-row DRAM activity statistics.
 *
 * The platform's caches and counters are reset before the run.
 */
WorkloadProfile extractProfile(sys::Platform &platform,
                               const workloads::WorkloadConfig &config,
                               const workloads::Workload::Params &wparams);

/**
 * Process-wide profile memoization keyed by (label, threads, footprint,
 * seed, workScale, platform params): campaigns and benchmark drivers
 * re-profile the same suite many times; the profile is deterministic so
 * caching is exact.
 *
 * The cache is safe for concurrent use from par::Pool workers. Each key
 * is computed exactly once, even under a concurrent first request from
 * many workers (the losers block until the winner's extraction
 * finishes), and entries live on the heap, so the returned references —
 * and any WorkloadProfile pointers taken from them — stay valid across
 * later insertions. clear() still invalidates everything.
 */
class ProfileCache
{
  public:
    static ProfileCache &instance();

    /**
     * Get or compute the profile for @p config on @p platform. The
     * extraction runs on the caller's platform; concurrent callers must
     * pass distinct Platform instances (pool workers use per-slot
     * replicas).
     */
    const WorkloadProfile &
    get(sys::Platform &platform, const workloads::WorkloadConfig &config,
        const workloads::Workload::Params &wparams);

    /** Drop all cached profiles (invalidates outstanding pointers). */
    void clear();

  private:
    struct Entry
    {
        std::once_flag once;
        WorkloadProfile profile;
    };

    ProfileCache() = default;

    std::mutex mutex_; ///< guards entries_ (the map, not the profiles)
    std::map<std::string, std::shared_ptr<Entry>> entries_;
};

} // namespace dfault::features

#endif // DFAULT_FEATURES_EXTRACTOR_HH
