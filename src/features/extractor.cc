#include "features/extractor.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "obs/events.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"
#include "stats/summary.hh"
#include "trace/entropy_sampler.hh"
#include "trace/reuse_tracker.hh"

namespace dfault::features {

namespace {

double
ratio(double num, double den)
{
    return den > 0.0 ? num / den : 0.0;
}

} // namespace

WorkloadProfile
extractProfile(sys::Platform &platform,
               const workloads::WorkloadConfig &config,
               const workloads::Workload::Params &wparams)
{
    const obs::ScopedTimer timer("profile");
    const auto &geometry = platform.geometry();

    // Instrumentation (the DynamoRIO stand-ins). The tracker range gets
    // a slack margin over the requested footprint because kernels round
    // array shapes to convenient sizes.
    trace::ReuseTracker reuse(wparams.footprintBytes +
                              (wparams.footprintBytes / 4) + (4 << 20));
    trace::EntropySampler entropy;
    platform.bus().attach(&reuse);
    platform.bus().attach(&entropy);

    auto workload = workloads::createWorkload(config.kernel, wparams);
    sys::ExecutionContext ctx = platform.startRun(config.threads);
    workload->run(ctx);

    platform.bus().detach(&reuse);
    platform.bus().detach(&entropy);

    const double clock_hz = ctx.params().clockHz;
    const double dilation = ctx.params().timeDilation;
    const auto totals = ctx.totalStats();
    const auto wall_cycles = static_cast<double>(ctx.wallCycles());
    const double total_cycles = static_cast<double>(totals.cycles);
    const double instr = static_cast<double>(totals.instructions);
    const double kc = wall_cycles / 1000.0;

    WorkloadProfile profile;
    profile.label = config.label;
    profile.threads = config.threads;
    profile.wallSeconds = ctx.wallSeconds();
    profile.footprintWords = ctx.footprintBytes() / units::bytesPerWord;
    profile.treuse =
        reuse.meanReuseDistance() * ctx.wallSecondsPerInstruction();
    profile.entropy = entropy.entropyBits();
    profile.bitOneProb = entropy.bitOneProbabilities();

    // ---- Per-row DRAM activity -------------------------------------
    profile.deviceRows.resize(geometry.deviceCount());
    const double wall_s = profile.wallSeconds;
    for (int ch = 0; ch < geometry.params().channels; ++ch) {
        const auto &mcu = platform.hierarchy().mcu(ch);
        for (int rank = 0; rank < geometry.params().ranksPerDimm; ++rank) {
            const int dev =
                geometry.deviceIndex(dram::DeviceId{ch, rank});
            const auto &rows = mcu.rowActivity(rank);
            for (std::uint64_t r = 0; r < rows.size(); ++r) {
                const auto &row = rows[r];
                if (row.accesses == 0)
                    continue;
                RowStat stat;
                stat.rowIndex = r;
                stat.accessRate =
                    ratio(static_cast<double>(row.accesses), wall_s);
                stat.activationRate =
                    ratio(static_cast<double>(row.activations), wall_s);
                // The implicit-refresh window is the longest stretch
                // the row went unaccessed: bursty patterns (scan +
                // writeback ping-pong) have many short gaps but the
                // decay happens in the long ones.
                stat.longestGap = static_cast<double>(row.maxGapCycles) *
                                  dilation / clock_hz;
                stat.touchedWords = row.touchedWords();
                profile.deviceRows[dev].push_back(stat);
            }
        }
    }

    // ---- Feature vector --------------------------------------------
    FeatureVector &f = profile.features;
    // The paper's strongest WER correlate: the rate of memory accesses
    // reaching DRAM. On the X-Gene2 this is observed through the MCU
    // read/write command counters (paper §VI-A notes the per-MCU
    // command rates correlate as strongly as the access rate); the
    // instruction-level load/store rates are exported separately as
    // loads_per_cycle / stores_per_cycle.
    std::uint64_t mcu_cmds = 0;
    for (int m = 0; m < platform.hierarchy().mcuCount(); ++m)
        mcu_cmds += platform.hierarchy().mcu(m).counters().totalCmds();
    f[kMemAccessesPerCycle] =
        ratio(static_cast<double>(mcu_cmds), wall_cycles);
    f[kWaitCyclesRatio] =
        ratio(static_cast<double>(totals.waitCycles), total_cycles);
    f[kHdpEntropy] = profile.entropy;
    f[kTreuseSeconds] = profile.treuse;
    f[kIpc] = ratio(instr, total_cycles);
    f[kCpuUtilization] =
        ratio(total_cycles,
              wall_cycles * platform.hierarchy().cores());

    // The catalog models the X-Gene2's four MCUs; smaller custom
    // geometries leave the missing channels' features at zero.
    const int mcu_count = std::min(4, platform.hierarchy().mcuCount());
    for (int m = 0; m < mcu_count; ++m) {
        const auto &c = platform.hierarchy().mcu(m).counters();
        const std::string p = "mcu" + std::to_string(m) + "_";
        f.set(p + "read_cmds_per_kc",
              ratio(static_cast<double>(c.readCmds), kc));
        f.set(p + "write_cmds_per_kc",
              ratio(static_cast<double>(c.writeCmds), kc));
        f.set(p + "activations_per_kc",
              ratio(static_cast<double>(c.activations), kc));
        f.set(p + "precharges_per_kc",
              ratio(static_cast<double>(c.precharges), kc));
        f.set(p + "row_hits_per_kc",
              ratio(static_cast<double>(c.rowHits), kc));
        f.set(p + "row_misses_per_kc",
              ratio(static_cast<double>(c.rowMisses), kc));
        f.set(p + "row_hit_ratio",
              ratio(static_cast<double>(c.rowHits),
                    static_cast<double>(c.rowHits + c.rowMisses)));
        f.set(p + "read_write_ratio",
              ratio(static_cast<double>(c.readCmds),
                    static_cast<double>(c.totalCmds())));
    }

    const auto l1 = platform.hierarchy().l1CountersTotal();
    f.set("l1_read_accesses_per_kc",
          ratio(static_cast<double>(l1.readAccesses), kc));
    f.set("l1_write_accesses_per_kc",
          ratio(static_cast<double>(l1.writeAccesses), kc));
    f.set("l1_read_misses_per_kc",
          ratio(static_cast<double>(l1.readMisses), kc));
    f.set("l1_write_misses_per_kc",
          ratio(static_cast<double>(l1.writeMisses), kc));
    f.set("l1_writebacks_per_kc",
          ratio(static_cast<double>(l1.writebacks), kc));
    f.set("l1_miss_ratio", l1.missRatio());
    f.set("l1_read_miss_ratio",
          ratio(static_cast<double>(l1.readMisses),
                static_cast<double>(l1.readAccesses)));
    f.set("l1_write_miss_ratio",
          ratio(static_cast<double>(l1.writeMisses),
                static_cast<double>(l1.writeAccesses)));

    for (int c = 0; c < 8; ++c) {
        const std::string p = "core" + std::to_string(c) + "_l1_";
        if (c < platform.hierarchy().cores()) {
            const auto &cc = platform.hierarchy().l1Counters(c);
            f.set(p + "accesses_per_kc",
                  ratio(static_cast<double>(cc.accesses()), kc));
            f.set(p + "miss_ratio", cc.missRatio());
        }
    }

    const auto &l2 = platform.hierarchy().l2Counters();
    f.set("l2_read_accesses_per_kc",
          ratio(static_cast<double>(l2.readAccesses), kc));
    f.set("l2_write_accesses_per_kc",
          ratio(static_cast<double>(l2.writeAccesses), kc));
    f.set("l2_read_misses_per_kc",
          ratio(static_cast<double>(l2.readMisses), kc));
    f.set("l2_write_misses_per_kc",
          ratio(static_cast<double>(l2.writeMisses), kc));
    f.set("l2_writebacks_per_kc",
          ratio(static_cast<double>(l2.writebacks), kc));
    f.set("l2_miss_ratio", l2.missRatio());
    f.set("l2_read_miss_ratio",
          ratio(static_cast<double>(l2.readMisses),
                static_cast<double>(l2.readAccesses)));
    f.set("l2_write_miss_ratio",
          ratio(static_cast<double>(l2.writeMisses),
                static_cast<double>(l2.writeAccesses)));

    f.set("int_ops_per_cycle",
          ratio(static_cast<double>(totals.intOps), total_cycles));
    f.set("fp_ops_per_cycle",
          ratio(static_cast<double>(totals.fpOps), total_cycles));
    f.set("loads_per_cycle",
          ratio(static_cast<double>(totals.loads), total_cycles));
    f.set("stores_per_cycle",
          ratio(static_cast<double>(totals.stores), total_cycles));
    f.set("branches_per_cycle",
          ratio(static_cast<double>(totals.branches), total_cycles));
    f.set("branch_miss_ratio",
          ratio(static_cast<double>(totals.branchMisses),
                static_cast<double>(totals.branches)));
    f.set("mem_instr_ratio",
          ratio(static_cast<double>(totals.memInstructions()), instr));
    f.set("fp_instr_ratio",
          ratio(static_cast<double>(totals.fpOps), instr));
    f.set("store_ratio",
          ratio(static_cast<double>(totals.stores),
                static_cast<double>(totals.memInstructions())));
    f.set("cpi", ratio(total_cycles, instr));

    for (int t = 0; t < 8; ++t) {
        const std::string p = "thread" + std::to_string(t) + "_";
        if (t < config.threads) {
            const auto &ts = ctx.coreStats(t);
            const auto tc = static_cast<double>(ts.cycles);
            f.set(p + "ipc",
                  ratio(static_cast<double>(ts.instructions), tc));
            f.set(p + "mem_per_cycle",
                  ratio(static_cast<double>(ts.memInstructions()), tc));
            f.set(p + "wait_ratio",
                  ratio(static_cast<double>(ts.waitCycles), tc));
            f.set(p + "fp_ratio",
                  ratio(static_cast<double>(ts.fpOps),
                        static_cast<double>(ts.instructions)));
        }
    }

    const auto &dist = reuse.distanceStats();
    f.set("reuse_distance_mean", dist.mean());
    f.set("reuse_distance_stddev", dist.stddev());
    f.set("reuse_fraction",
          ratio(static_cast<double>(reuse.reuseCount()),
                static_cast<double>(reuse.reuseCount() +
                                    reuse.uniqueWords())));
    f.set("unique_words_per_instr",
          ratio(static_cast<double>(reuse.uniqueWords()), instr));

    // ---- Row-level aggregates ---------------------------------------
    stats::RunningStats acc_rate, act_rate, interval, words_touched;
    std::vector<double> intervals;
    std::uint64_t touched_rows = 0;
    double bank_acts[4][8] = {};
    double chan_acts[4] = {};
    double dev_words[8] = {};
    stats::RunningStats dev_interval[8];
    double total_words_touched = 0.0;
    const auto rows_per_bank = geometry.params().rowsPerBank;

    for (int dev = 0; dev < geometry.deviceCount(); ++dev) {
        const auto id = geometry.deviceAt(dev);
        for (const auto &row : profile.deviceRows[dev]) {
            ++touched_rows;
            acc_rate.add(row.accessRate);
            act_rate.add(row.activationRate);
            if (row.longestGap > 0.0) {
                interval.add(row.longestGap);
                intervals.push_back(row.longestGap);
                if (dev < 8)
                    dev_interval[dev].add(row.longestGap);
            }
            words_touched.add(row.touchedWords);
            const auto bank = static_cast<int>(row.rowIndex /
                                               rows_per_bank);
            if (id.dimm < 4 && bank < 8) {
                bank_acts[id.dimm][bank] += row.activationRate;
                chan_acts[id.dimm] += row.activationRate;
            }
            if (dev < 8)
                dev_words[dev] += row.touchedWords;
            total_words_touched += row.touchedWords;
        }
    }

    const double total_rows =
        static_cast<double>(geometry.rowsPerDevice()) *
        geometry.deviceCount();
    f.set("rows_touched_fraction",
          ratio(static_cast<double>(touched_rows), total_rows));
    f.set("row_access_rate_mean", acc_rate.mean());
    f.set("row_activation_rate_mean", act_rate.mean());
    f.set("row_interval_mean_s", interval.mean());
    if (!intervals.empty()) {
        f.set("row_interval_p50_s", stats::quantile(intervals, 0.5));
        f.set("row_interval_p90_s", stats::quantile(intervals, 0.9));
    }
    f.set("row_words_touched_mean", words_touched.mean());

    std::uint64_t dram_cmds = 0, dram_reads = 0, dram_acts = 0;
    for (int m = 0; m < platform.hierarchy().mcuCount(); ++m) {
        const auto &c = platform.hierarchy().mcu(m).counters();
        dram_cmds += c.totalCmds();
        dram_reads += c.readCmds;
        dram_acts += c.activations;
    }
    f.set("dram_cmds_per_kc",
          ratio(static_cast<double>(dram_cmds), kc));
    f.set("dram_read_fraction",
          ratio(static_cast<double>(dram_reads),
                static_cast<double>(dram_cmds)));
    f.set("dram_act_per_cmd",
          ratio(static_cast<double>(dram_acts),
                static_cast<double>(dram_cmds)));
    f.set("dram_bytes_per_instr",
          ratio(static_cast<double>(dram_cmds) * 64.0, instr));
    f.set("dram_touch_rate",
          ratio(static_cast<double>(touched_rows), wall_s));

    for (int ch = 0; ch < 4; ++ch)
        for (int b = 0; b < 8; ++b)
            f.set("ch" + std::to_string(ch) + "_bank" +
                      std::to_string(b) + "_act_share",
                  ratio(bank_acts[ch][b], chan_acts[ch]));

    for (int d = 0; d < 8; ++d) {
        f.set("dev" + std::to_string(d) + "_words_touched_share",
              ratio(dev_words[d], total_words_touched));
        f.set("dev" + std::to_string(d) + "_row_interval_s",
              dev_interval[d].mean());
    }

    stats::RunningStats bit_stats;
    for (const double p : profile.bitOneProb)
        bit_stats.add(p);
    f.set("bit_one_prob_mean", bit_stats.mean());
    f.set("bit_one_prob_stddev", bit_stats.stddev());
    f.set("bit_one_prob_min", bit_stats.min());
    f.set("bit_one_prob_max", bit_stats.max());
    for (int b = 0; b < 64; ++b)
        f.set("bit" + std::to_string(b) + "_one_prob",
              profile.bitOneProb[b]);

    f.set("footprint_mwords",
          static_cast<double>(profile.footprintWords) / 1e6);
    f.set("profile_wall_seconds", profile.wallSeconds);
    f.set("sampled_stores_per_kinstr",
          ratio(static_cast<double>(entropy.sampledStores()) * 1000.0,
                instr));
    f.set("threads_active", config.threads);
    f.set("global_instr_gops", instr / 1e9);

    // ---- Telemetry --------------------------------------------------
    ctx.publishStats();
    obs::Registry::instance()
        .counter("profile.runs", "workload profiling runs")
        .inc();
    auto &sink = obs::EventSink::instance();
    if (sink.enabled()) {
        obs::JsonWriter w;
        w.field("label", profile.label);
        w.field("threads", profile.threads);
        w.field("instructions", totals.instructions);
        w.field("wall_seconds", profile.wallSeconds);
        w.field("treuse_s", profile.treuse);
        w.field("entropy_bits", profile.entropy);
        w.field("footprint_words", profile.footprintWords);
        w.field("host_seconds", timer.elapsed());
        sink.emit("profile", w);
    }
    obs::progress("profiled " + profile.label + " (" +
                  std::to_string(profile.threads) + " threads)");

    return profile;
}

ProfileCache &
ProfileCache::instance()
{
    static ProfileCache cache;
    return cache;
}

const WorkloadProfile &
ProfileCache::get(sys::Platform &platform,
                  const workloads::WorkloadConfig &config,
                  const workloads::Workload::Params &wparams)
{
    const std::string key =
        config.label + "/" + std::to_string(config.threads) + "/" +
        std::to_string(wparams.footprintBytes) + "/" +
        std::to_string(wparams.seed) + "/" +
        std::to_string(wparams.workScale) + "/" +
        std::to_string(platform.params().devices.masterSeed) + "/" +
        std::to_string(platform.params().exec.timeDilation) + "/" +
        std::to_string(platform.params().hierarchy.l1.sizeBytes) + "/" +
        std::to_string(platform.params().hierarchy.l2.sizeBytes) + "/" +
        std::to_string(platform.params().geometry.rowsPerBank);

    // Two-phase lookup: the map mutex is held only long enough to pin
    // the entry; the (expensive) extraction happens outside it, with
    // std::call_once giving each key exactly-one-computation semantics
    // even when several pool workers request it at the same moment.
    std::shared_ptr<Entry> entry;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        auto &slot = entries_[key];
        if (!slot)
            slot = std::make_shared<Entry>();
        entry = slot;
    }

    std::call_once(entry->once, [&] {
        DFAULT_INFORM("profiling ", config.label, " (", config.threads,
                      " threads)");
        entry->profile = extractProfile(platform, config, wparams);
    });
    return entry->profile;
}

void
ProfileCache::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

} // namespace dfault::features
