/**
 * @file
 * Workload profile: everything the "Profiling phase" (paper Fig 3)
 * learns about one benchmark configuration.
 *
 * A profile combines the 249 program features (the ML model inputs)
 * with the physical DRAM activity statistics (per-row access and
 * activation rates) that the error integrator needs for the
 * characterization phase. Profiles depend only on the program and the
 * platform, never on the DRAM operating point, so one profile serves
 * every (TREFP, VDD, temperature) combination of a campaign.
 */

#ifndef DFAULT_FEATURES_PROFILE_HH
#define DFAULT_FEATURES_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "features/catalog.hh"

namespace dfault::features {

/** Steady-state DRAM activity of one touched row. */
struct RowStat
{
    std::uint64_t rowIndex = 0;     ///< flat row index within the device
    double accessRate = 0.0;        ///< CAS commands per second
    double activationRate = 0.0;    ///< ACT commands per second
    /** Longest unaccessed stretch (charge-decay window); 0 if <2 accesses. */
    Seconds longestGap = 0.0;
    int touchedWords = 0;           ///< distinct columns referenced
};

/** See file comment. */
struct WorkloadProfile
{
    std::string label;
    int threads = 0;

    /** Program features (model inputs). */
    FeatureVector features;

    /** Profile window wall-clock time (dilated seconds). */
    Seconds wallSeconds = 0.0;

    /** 64-bit words allocated (MEMSIZE in paper Eq. 2). */
    std::uint64_t footprintWords = 0;

    /** Average DRAM reuse time in seconds (Table II). */
    Seconds treuse = 0.0;

    /** Data-pattern entropy in bits (Eq. 5). */
    double entropy = 0.0;

    /** Per-bit-position probability of a written 1. */
    std::array<double, 64> bitOneProb{};

    /** Touched-row statistics, indexed by device index. */
    std::vector<std::vector<RowStat>> deviceRows;
};

} // namespace dfault::features

#endif // DFAULT_FEATURES_PROFILE_HH
