/**
 * @file
 * The program-feature catalog: the 249 features of the paper.
 *
 * The paper extracts 249 program-inherent features per workload: the
 * DRAM reuse time and the data-pattern entropy (introduced in §III-D)
 * plus 247 metrics read from hardware performance counters (per-MCU
 * command rates, cache access/miss rates, IPC, utilization, ...). This
 * catalog enumerates our equivalent feature space, generated from the
 * same counter taxonomy of the simulated platform. The wide,
 * partially-irrelevant feature set matters: input set 3 of the ML study
 * trains on all of it and demonstrates overfitting (paper §VI-B).
 */

#ifndef DFAULT_FEATURES_CATALOG_HH
#define DFAULT_FEATURES_CATALOG_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dfault::features {

/** Total number of program features (matches the paper). */
constexpr std::size_t kFeatureCount = 249;

/** Indices of the headline features referenced by the input sets. */
enum HeadlineFeature : std::size_t
{
    kMemAccessesPerCycle = 0, ///< strongest WER correlate (Fig 10)
    kWaitCyclesRatio = 1,     ///< "wait cycles" in the paper
    kHdpEntropy = 2,          ///< data-pattern entropy HDP
    kTreuseSeconds = 3,       ///< DRAM reuse time Treuse
    kIpc = 4,
    kCpuUtilization = 5,
};

/**
 * Immutable name table of all kFeatureCount features.
 *
 * Singleton: the catalog is process-wide and the names are stable, so
 * datasets written by one component can be interpreted by any other.
 */
class FeatureCatalog
{
  public:
    /** The process-wide catalog instance. */
    static const FeatureCatalog &instance();

    /** Number of features (always kFeatureCount). */
    std::size_t size() const { return names_.size(); }

    /** Name of feature @p index. */
    const std::string &name(std::size_t index) const;

    /** Index of a feature by name; fatal() if unknown. */
    std::size_t index(const std::string &name) const;

    /** True if @p name is a known feature. */
    bool contains(const std::string &name) const;

    /** All names, in index order. */
    const std::vector<std::string> &names() const { return names_; }

  private:
    FeatureCatalog();

    std::vector<std::string> names_;
    std::unordered_map<std::string, std::size_t> byName_;
};

/** Dense feature vector aligned with the catalog. */
class FeatureVector
{
  public:
    FeatureVector() : values_(kFeatureCount, 0.0) {}

    double operator[](std::size_t i) const { return values_.at(i); }
    double &operator[](std::size_t i) { return values_.at(i); }

    /** Value by feature name (catalog lookup). */
    double get(const std::string &name) const;
    void set(const std::string &name, double value);

    std::size_t size() const { return values_.size(); }
    const std::vector<double> &values() const { return values_; }

  private:
    std::vector<double> values_;
};

} // namespace dfault::features

#endif // DFAULT_FEATURES_CATALOG_HH
