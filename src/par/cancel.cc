#include "par/cancel.hh"

#include <atomic>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace dfault::par {

CancelledError::CancelledError(std::string reason, std::string origin)
    : std::runtime_error("cancelled (" + origin + "): " + reason),
      reason_(std::move(reason)), origin_(std::move(origin))
{
}

struct CancelToken::State
{
    std::atomic<bool> cancelled{false};
    std::mutex mutex;
    // All below guarded by mutex.
    std::string reason;
    std::string origin;
    std::vector<std::weak_ptr<State>> children;

    void cancel(const std::string &why, const std::string &who)
    {
        std::vector<std::shared_ptr<State>> live;
        {
            std::lock_guard<std::mutex> lock(mutex);
            // First cancel wins; a child cancelled directly and then
            // again via its parent keeps the direct reason.
            if (!cancelled.load(std::memory_order_relaxed)) {
                reason = why;
                origin = who;
                cancelled.store(true, std::memory_order_release);
            }
            for (const auto &weak : children)
                if (auto child = weak.lock())
                    live.push_back(std::move(child));
            children.clear();
        }
        // Propagate outside the lock: child registration locks
        // parent-then-child, so descending with the parent lock held
        // could deadlock against a concurrent grandchild derivation.
        for (const auto &child : live)
            child->cancel(why, who);
    }
};

CancelToken
CancelToken::make()
{
    return CancelToken(std::make_shared<State>());
}

bool
CancelToken::cancelled() const
{
    return state_ != nullptr
           && state_->cancelled.load(std::memory_order_relaxed);
}

void
CancelToken::cancel(const std::string &reason, const std::string &origin)
{
    DFAULT_ASSERT(state_ != nullptr,
                  "cancel() on an invalid CancelToken");
    state_->cancel(reason, origin);
}

void
CancelToken::throwIfCancelled() const
{
    if (state_ == nullptr
        || !state_->cancelled.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(state_->mutex);
    throw CancelledError(state_->reason, state_->origin);
}

CancelToken
CancelToken::child() const
{
    DFAULT_ASSERT(state_ != nullptr,
                  "child() on an invalid CancelToken");
    auto child = std::make_shared<State>();
    bool parent_cancelled = false;
    std::string reason;
    std::string origin;
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        if (state_->cancelled.load(std::memory_order_relaxed)) {
            parent_cancelled = true;
            reason = state_->reason;
            origin = state_->origin;
        } else {
            // Compact dead siblings so a long-lived root does not
            // accumulate one weak_ptr per derived-and-discarded child.
            auto &kids = state_->children;
            std::erase_if(kids, [](const std::weak_ptr<State> &w) {
                return w.expired();
            });
            kids.push_back(child);
        }
    }
    if (parent_cancelled)
        child->cancel(reason, origin);
    return CancelToken(std::move(child));
}

std::string
CancelToken::reason() const
{
    if (state_ == nullptr)
        return "";
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->reason;
}

std::string
CancelToken::origin() const
{
    if (state_ == nullptr)
        return "";
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->origin;
}

CancelToken &
rootCancelToken()
{
    static CancelToken root = CancelToken::make();
    return root;
}

void
resetRootCancelToken()
{
    rootCancelToken() = CancelToken::make();
}

} // namespace dfault::par
