/**
 * @file
 * Hierarchical cooperative cancellation tokens.
 *
 * A CancelToken is a small shared handle that long-running work polls
 * to learn it should stop. Cancellation is *cooperative*: nothing is
 * interrupted preemptively — the pool checks the token before each
 * task index, campaign cells check it at phase boundaries, and a
 * cancelled check raises CancelledError, which the pool reports as a
 * distinct "cancelled" disposition (never "failed" or "quarantined").
 *
 * Tokens form a tree: child() derives a token that is cancelled
 * whenever its parent is (the reverse is not true), so a driver can
 * hand each campaign a child of the process root and cancel one sweep
 * without touching the others, while a SIGTERM cancels the root and
 * reaches everything.
 *
 *     rootCancelToken()            <- cancelled by signals / deadline
 *       |- campaign sweep token    <- Params::cancelToken
 *       |    `- (pool batches)     <- ResilienceOptions::token
 *       `- trainer / grid batches  <- default to the root
 *
 * The polling fast path is one relaxed atomic load of the token's own
 * flag (mirroring fi::Injector's unarmed check discipline): cancel()
 * pushes the flag down the registered children eagerly, so checks
 * never walk the parent chain.
 *
 * cancel() itself takes a mutex (reason/origin strings, child walk)
 * and is therefore NOT async-signal-safe; signal handlers must use the
 * self-pipe pattern in par/shutdown.hh and leave the actual cancel to
 * the monitor thread.
 *
 * Determinism: a cancelled-then-resumed sweep reaches the same stats
 * digest as an uninterrupted one because cancelled cells publish
 * nothing (their deferred stat ops are dropped) and are never
 * journaled — resume re-measures them from scratch.
 */

#ifndef DFAULT_PAR_CANCEL_HH
#define DFAULT_PAR_CANCEL_HH

#include <memory>
#include <stdexcept>
#include <string>

namespace dfault::par {

/** Thrown by throwIfCancelled(); carries the cancel reason + origin. */
class CancelledError : public std::runtime_error
{
  public:
    CancelledError(std::string reason, std::string origin);

    /** Why the token was cancelled ("received SIGTERM", ...). */
    const std::string &reason() const { return reason_; }

    /** Who cancelled it ("signal", "watchdog", "user", ...). */
    const std::string &origin() const { return origin_; }

  private:
    std::string reason_;
    std::string origin_;
};

/** See file comment. */
class CancelToken
{
  public:
    /** An *invalid* token: never cancelled, child() fatals. Callers
     *  that receive one fall back to rootCancelToken(). */
    CancelToken() = default;

    /** A fresh, independent (parentless) token. */
    static CancelToken make();

    /** True when this handle refers to a real token. */
    bool valid() const { return state_ != nullptr; }

    /**
     * True once this token (or any ancestor) was cancelled. One
     * relaxed atomic load; false for an invalid token.
     */
    bool cancelled() const;

    /**
     * Cancel this token and every descendant. The first cancel wins:
     * later calls are no-ops and do not overwrite reason/origin.
     * Thread-safe, but not async-signal-safe (see file comment).
     */
    void cancel(const std::string &reason, const std::string &origin);

    /** Throw CancelledError when cancelled(); no-op otherwise. */
    void throwIfCancelled() const;

    /**
     * Derive a child token: cancelled whenever this token is (already
     * cancelled parents yield already-cancelled children), while
     * cancelling the child leaves this token untouched.
     */
    CancelToken child() const;

    /** Reason of the winning cancel ("" while not cancelled). */
    std::string reason() const;

    /** Origin of the winning cancel ("" while not cancelled). */
    std::string origin() const;

  private:
    struct State;
    explicit CancelToken(std::shared_ptr<State> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<State> state_;
};

/**
 * The process-wide root token. Signal handlers (via the shutdown
 * monitor), deadlines and drivers cancel it; every pool batch without
 * an explicit token polls it.
 */
CancelToken &rootCancelToken();

/**
 * Replace the root with a fresh, uncancelled token. For test fixtures
 * and long-lived drivers that survive a cancelled run; must not be
 * called while work is in flight.
 */
void resetRootCancelToken();

} // namespace dfault::par

#endif // DFAULT_PAR_CANCEL_HH
