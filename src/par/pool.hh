/**
 * @file
 * Deterministic work-stealing thread pool.
 *
 * The experiment matrix is embarrassingly parallel (workloads x
 * operating points x repeats, LOGO folds, forest trees, bootstrap
 * resamples), so the hot drivers fan their loops out over a small
 * work-stealing pool. Determinism is preserved by construction:
 *
 *  - every task is keyed by its index in the submitted range and must
 *    derive any randomness from (base_seed, index) via the Rng
 *    splitmix helpers — never from a stream shared across tasks;
 *  - results are committed into index-addressed slots, so the output
 *    is independent of the order in which workers finish;
 *  - any cross-task reduction (sums, event emission) is performed by
 *    the caller in index order after the batch completes.
 *
 * Under this contract a run with DFAULT_THREADS=8 is bit-identical to
 * a run with DFAULT_THREADS=1 (see docs/parallelism.md).
 *
 * Structure: each execution slot owns a deque; the caller pushes
 * chunked index ranges round-robin, takes slot 0 itself, and workers
 * pop their own deque LIFO and steal from peers FIFO when empty. A
 * pool of 1 thread spawns no workers and runs everything inline, which
 * doubles as the serial reference implementation. Nested parallelFor
 * calls (e.g. forest training inside a cross-validation fold) execute
 * inline on the calling worker, so recursion can never deadlock.
 *
 * Pool activity is instrumented through the obs:: registry: tasks
 * queued/executed, steals, and per-phase task/wall seconds with a
 * derived "speedup" formula (visible in --stats-out dumps). When the
 * span tracer is enabled (obs/span.hh), every executed task records a
 * "task" span parented to the submitter's open span, plus a flow
 * event pair linking the moment the task was queued to the moment a
 * slot picked it up — so a Perfetto view of a --trace-events run
 * shows dispatch arrows from the submitting thread to the workers.
 */

#ifndef DFAULT_PAR_POOL_HH
#define DFAULT_PAR_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "par/cancel.hh"

namespace dfault::par {

/**
 * Why a task slot produced no result. Cancelled is deliberately
 * distinct from Failed: cancelled tasks are never retried, never
 * quarantined, and publish no stats, so a cancelled-then-resumed sweep
 * digest-matches an uninterrupted one.
 */
enum class TaskDisposition
{
    Failed,   ///< exhausted its retry budget on real errors
    Cancelled ///< skipped (or stopped) because a CancelToken fired
};

/** One task of a batch that produced no result. */
struct TaskFailure
{
    std::size_t index = 0; ///< index within the submitted [0, n) range
    int attempts = 0;      ///< executions performed (0 = never started)
    std::string error;     ///< what() of the final attempt
    TaskDisposition disposition = TaskDisposition::Failed;
};

/**
 * Thrown when a fail-fast batch had failing tasks. Unlike the old
 * first-exception-wins rethrow, every failed slot is reported: the
 * message leads with the failed/cancelled counts and lists each
 * affected index ([i] for failures, [i cancelled] for cancellations)
 * with its error, and failures() exposes them programmatically,
 * sorted by index. A batch whose only losses are cancellations throws
 * CancelledError instead (drivers catch the interrupt in one place).
 */
class BatchError : public std::runtime_error
{
  public:
    explicit BatchError(std::vector<TaskFailure> failures);

    const std::vector<TaskFailure> &failures() const { return failures_; }

  private:
    std::vector<TaskFailure> failures_;
};

/**
 * Raised out of par::heartbeat() after the watchdog flagged the
 * calling task as stalled. Travels the normal failure path: the task
 * is retried per its budget, then quarantined like any other failure.
 */
class TaskTimeoutError : public std::runtime_error
{
  public:
    explicit TaskTimeoutError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Failure policy for parallelForResilient(). */
struct ResilienceOptions
{
    /**
     * Extra attempts given to a failing index before it is
     * quarantined. The body sees the attempt number and must key any
     * *fault* randomness on it while keeping its *result* randomness
     * attempt-independent, so a recovered retry is bit-identical to a
     * first-try success.
     */
    int maxRetries = 0;

    /**
     * true: throw BatchError after the batch drains (siblings still
     * ran to completion). false: return the quarantined tasks and let
     * the caller degrade gracefully.
     */
    bool failFast = true;

    /**
     * Cooperative cancellation source for this batch. Checked with one
     * relaxed load before every index; an invalid (default) token
     * falls back to rootCancelToken(). Once cancelled, not-yet-started
     * indices are skipped with the Cancelled disposition and a body
     * that throws CancelledError is recorded the same way (no retry).
     */
    CancelToken token;
};

/**
 * Tuning for the pool watchdog thread (see enableWatchdog()). All
 * durations in seconds; 0 disables the respective check.
 */
struct WatchdogOptions
{
    /**
     * A monitored task whose last heartbeat is older than this is
     * flagged: a phase-stack diagnostic goes to stderr and the event
     * sink, and the task's next par::heartbeat() throws
     * TaskTimeoutError (feeding the regular retry/quarantine path).
     * Tasks are monitored between their heartbeats only, so code that
     * never beats is never failed by the watchdog — at most warned
     * about.
     */
    double taskTimeoutSeconds = 0.0;

    /** Whole-run budget from enableWatchdog(); on expiry the watchdog
     *  cancels deadlineToken (origin "deadline") exactly once. */
    double deadlineSeconds = 0.0;

    /** Poll cadence; 0 derives min(taskTimeout, deadline)/4, clamped
     *  to [10 ms, 1 s]. */
    double pollSeconds = 0.0;

    /** Token the deadline cancels; invalid = rootCancelToken(). */
    CancelToken deadlineToken;
};

/**
 * Threads a fresh pool uses by default: the DFAULT_THREADS environment
 * variable when set (a positive integer), otherwise the hardware
 * concurrency (at least 1).
 */
int defaultThreads();

/** See file comment. */
class Pool
{
  public:
    /** @param threads total execution slots (including the caller). */
    explicit Pool(int threads);
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /**
     * The process-wide pool, lazily created with defaultThreads().
     * Campaigns, trainers and stats helpers all share it.
     */
    static Pool &global();

    /**
     * Replace the global pool with one of @p threads slots. Must not
     * be called while work is in flight (intended for drivers parsing
     * a threads= override and for the determinism tests).
     */
    static void setGlobalThreads(int threads);

    /** Total execution slots: worker threads plus the caller. */
    int threads() const { return threads_; }

    /** Alias for threads(): per-slot state arrays are sized by this. */
    int slots() const { return threads_; }

    /**
     * Execution slot of the calling thread: 0 for the submitting
     * thread inside parallelFor, 1..threads-1 on workers, -1 outside
     * any pool execution. Callers use it to index per-slot replicas
     * (e.g. one sys::Platform per slot).
     */
    static int currentSlot();

    /**
     * Run body(i) for every i in [0, n) and block until all complete.
     *
     * The body must be safe to call concurrently for distinct indices
     * and must derive any randomness from its index (file comment).
     * A throwing index never aborts its siblings: the whole batch
     * drains, then a BatchError aggregating every failed index (not
     * just the first, as before) is thrown. Top-level calls are
     * serialized against each other; nested calls run inline.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * parallelFor with per-task failure isolation: a failing index is
     * retried up to opts.maxRetries times (the body receives the
     * attempt number), then quarantined. With opts.failFast the
     * drained batch throws BatchError; otherwise the quarantined
     * tasks are returned, sorted by index, and the caller decides
     * what a missing slot means. Either way sibling tasks always run
     * to completion.
     */
    std::vector<TaskFailure>
    parallelForResilient(std::size_t n,
                         const std::function<void(std::size_t, int)> &body,
                         const ResilienceOptions &opts = {});

    /**
     * parallelFor committing fn(i) into slot i of the returned vector.
     * T must be default-constructible and movable. Do not instantiate
     * with bool (std::vector<bool> slots are not independent).
     */
    template <typename T>
    std::vector<T>
    parallelMap(std::size_t n, const std::function<T(std::size_t)> &fn)
    {
        static_assert(!std::is_same_v<T, bool>,
                      "vector<bool> elements alias; map to char instead");
        std::vector<T> out(n);
        parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Start (or retune) the watchdog thread. It samples every slot's
     * heartbeat board each poll tick, dumps a diagnostic for stalled
     * tasks, and enforces the run deadline (see WatchdogOptions).
     * Watchdog state is advisory telemetry: it never appears in the
     * stats digest (par.* is excluded).
     */
    void enableWatchdog(const WatchdogOptions &opts);

    /** Stop and join the watchdog thread (idempotent). */
    void disableWatchdog();

  private:
    struct Task
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        std::uint64_t flowId = 0; ///< links queueing to execution in
                                  ///< the trace; 0 = tracing disabled
        struct Batch *batch = nullptr;
    };

    struct Slot
    {
        std::mutex mutex;
        std::deque<Task> queue;
    };

    void workerLoop(int slot);
    bool tryRun(int slot);
    void runTask(const Task &task);
    bool popOwn(int slot, Task &task);
    bool stealAny(int thief, Task &task);
    void watchdogLoop();
    void publishPhaseStats(const std::string &phase, double task_seconds,
                           double wall_seconds);

    const int threads_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::vector<std::unique_ptr<struct HeartbeatBoard>> boards_;
    std::vector<std::thread> workers_;

    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;
    std::atomic<std::size_t> pending_{0}; ///< queued, not yet popped
    std::atomic<bool> stop_{false};

    /** Serializes top-level parallelFor calls (slot 0 is exclusive). */
    std::mutex submitMutex_;

    std::mutex watchdogMutex_;
    std::condition_variable watchdogCv_;
    bool watchdogStop_ = false;   ///< guarded by watchdogMutex_
    WatchdogOptions watchdogOpts_; ///< guarded by watchdogMutex_
    std::thread watchdogThread_;
};

/**
 * Heartbeat contract (docs/parallelism.md): long-running task bodies
 * call heartbeat() at natural progress boundaries — campaign cells
 * beat at fault points and per integrator epoch. The first beat of an
 * attempt places the task under watchdog observation; if the watchdog
 * then sees no beat for task_timeout seconds it flags the task, and
 * the next heartbeat() throws TaskTimeoutError. Outside a pool task
 * (or with no pool board) heartbeat() is a no-op, so instrumented code
 * needs no caller-side guards.
 */
void heartbeat();

/**
 * Attach a human-readable label ("workload @ op") and the current
 * phase stack to this slot's heartbeat board; the watchdog includes
 * both in its stall diagnostic. No-op outside a pool task.
 */
void heartbeatAnnotate(const std::string &note);

} // namespace dfault::par

#endif // DFAULT_PAR_POOL_HH
