/**
 * @file
 * Graceful signal-driven shutdown (SIGINT/SIGTERM).
 *
 * installSignalHandlers() arms an async-signal-safe handler using the
 * self-pipe pattern:
 *
 *   first SIGINT/SIGTERM   record the signal in a lock-free atomic,
 *                          rawWrite() a preformatted notice to stderr,
 *                          poke one byte into a private pipe; a monitor
 *                          thread blocked on the read end then cancels
 *                          rootCancelToken() (which takes locks, so the
 *                          handler itself must never do it)
 *   second signal          _Exit(128 + sig) immediately — no draining,
 *                          no atexit, for when the drain itself wedges
 *
 * After the root token is cancelled, in-flight pool tasks finish (or
 * observe the token and stop), queued tasks are skipped with the
 * "cancelled" disposition, and the driver falls through to its normal
 * artifact epilogue, marking the manifest "interrupted": true and
 * exiting 128 + sig (130 for SIGINT, 143 for SIGTERM). The handler
 * body touches only write(2), lock-free atomics and _Exit — see the
 * async-signal-safety note in common/logging.hh.
 */

#ifndef DFAULT_PAR_SHUTDOWN_HH
#define DFAULT_PAR_SHUTDOWN_HH

namespace dfault::par {

/**
 * Install the SIGINT/SIGTERM handlers and start the monitor thread.
 * Idempotent; call once near the top of main().
 */
void installSignalHandlers();

/**
 * Restore the previous signal dispositions and join the monitor
 * thread. Pending shutdown state (signal number) is preserved.
 */
void uninstallSignalHandlers();

/** True once a shutdown signal was received. */
bool shutdownRequested();

/** The first shutdown signal received, or 0. */
int shutdownSignal();

/** Conventional exit code for the received signal (128+sig), or 0. */
int shutdownExitCode();

} // namespace dfault::par

#endif // DFAULT_PAR_SHUTDOWN_HH
