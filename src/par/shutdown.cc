#include "par/shutdown.hh"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"
#include "par/cancel.hh"

namespace dfault::par {

namespace {

// All handler-visible state is lock-free atomics or plain fds set up
// before sigaction() installs the handler.
std::atomic<int> g_signal{0};
int g_pipe[2] = {-1, -1};

std::mutex g_install_mutex;
bool g_installed = false;
std::thread g_monitor;
struct sigaction g_old_int;
struct sigaction g_old_term;

// Preformatted at compile time: handlers must not format.
constexpr char kNoticeInt[] =
    "\ninfo: SIGINT received - draining in-flight work"
    " (repeat to exit immediately)\n";
constexpr char kNoticeTerm[] =
    "\ninfo: SIGTERM received - draining in-flight work"
    " (repeat to exit immediately)\n";
constexpr char kNoticeSecond[] = "\ninfo: second signal - exiting now\n";

extern "C" void
shutdownHandler(int sig)
{
    int expected = 0;
    if (g_signal.compare_exchange_strong(expected, sig,
                                         std::memory_order_acq_rel)) {
        rawWrite(STDERR_FILENO,
                 sig == SIGINT ? kNoticeInt : kNoticeTerm,
                 sig == SIGINT ? sizeof(kNoticeInt) - 1
                               : sizeof(kNoticeTerm) - 1);
        const char byte = 1;
        rawWrite(g_pipe[1], &byte, 1);
    } else {
        rawWrite(STDERR_FILENO, kNoticeSecond, sizeof(kNoticeSecond) - 1);
        _Exit(128 + sig);
    }
}

/**
 * Blocks on the self-pipe; wakes on the first signal (byte 1, cancel
 * the root token) or on uninstall (byte 0, just exit).
 */
void
monitorLoop()
{
    char byte = 0;
    for (;;) {
        const ssize_t n = ::read(g_pipe[0], &byte, 1);
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    if (byte != 1)
        return;
    const int sig = g_signal.load(std::memory_order_acquire);
    rootCancelToken().cancel(sig == SIGINT ? "received SIGINT"
                                           : "received SIGTERM",
                             "signal");
}

} // namespace

void
installSignalHandlers()
{
    std::lock_guard<std::mutex> lock(g_install_mutex);
    if (g_installed)
        return;
    if (::pipe(g_pipe) != 0)
        DFAULT_FATAL("cannot create shutdown self-pipe: ",
                     std::strerror(errno));
    ::fcntl(g_pipe[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(g_pipe[1], F_SETFD, FD_CLOEXEC);
    g_monitor = std::thread(monitorLoop);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESTART: blocking syscalls in the drain path should see
    // EINTR and re-check the root token instead of blocking on.
    ::sigaction(SIGINT, &sa, &g_old_int);
    ::sigaction(SIGTERM, &sa, &g_old_term);
    g_installed = true;
}

void
uninstallSignalHandlers()
{
    std::lock_guard<std::mutex> lock(g_install_mutex);
    if (!g_installed)
        return;
    ::sigaction(SIGINT, &g_old_int, nullptr);
    ::sigaction(SIGTERM, &g_old_term, nullptr);
    // Wake the monitor if no signal ever arrived; if one did, the
    // monitor consumed the byte 1 and this byte 0 is left unread.
    const char byte = 0;
    rawWrite(g_pipe[1], &byte, 1);
    if (g_monitor.joinable())
        g_monitor.join();
    ::close(g_pipe[0]);
    ::close(g_pipe[1]);
    g_pipe[0] = g_pipe[1] = -1;
    g_installed = false;
}

bool
shutdownRequested()
{
    return g_signal.load(std::memory_order_acquire) != 0;
}

int
shutdownSignal()
{
    return g_signal.load(std::memory_order_acquire);
}

int
shutdownExitCode()
{
    const int sig = g_signal.load(std::memory_order_acquire);
    return sig == 0 ? 0 : 128 + sig;
}

} // namespace dfault::par
