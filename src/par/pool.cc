#include "par/pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/logging.hh"
#include "fi/injector.hh"
#include "obs/events.hh"
#include "obs/json.hh"
#include "obs/span.hh"
#include "obs/stats.hh"
#include "obs/timer.hh"

namespace dfault::par {

/**
 * Per-slot stall-detection state shared between the slot's task frame
 * (writer) and the watchdog thread (reader). beatNs == 0 means "not
 * monitored": boards activate at a task's first heartbeat and
 * deactivate when the attempt ends, so tasks that never beat can be
 * warned about but never failed.
 */
struct HeartbeatBoard
{
    std::atomic<std::uint64_t> beatNs{0};
    std::atomic<std::uint64_t> attemptStartNs{0};
    std::atomic<std::uint64_t> index{0};
    std::atomic<int> attempt{0};
    /** Set by the watchdog; the next heartbeat() throws and clears. */
    std::atomic<bool> expired{false};
    std::mutex noteMutex;
    // Guarded by noteMutex.
    std::string note;      ///< heartbeatAnnotate() label ("cell @ op")
    std::string phasePath; ///< phase stack captured at annotate time
};

namespace {

thread_local int t_slot = -1;
thread_local HeartbeatBoard *t_board = nullptr;
/** runIndex nesting depth: only the outermost frame (depth 1) owns the
 *  slot's heartbeat board; nested batches must not clobber it. */
thread_local int t_taskDepth = 0;

std::mutex g_globalMutex;
std::unique_ptr<Pool> g_globalPool;

/**
 * Live telemetry mirrors for the sampler: process-wide tallies of
 * queued-but-unpopped and currently executing tasks, summed over every
 * pool in the process. File-scope atomics — not Pool members — so the
 * par.queue_depth / par.inflight_tasks formulas capture objects whose
 * lifetime outlasts any pool (Registry::formula keeps the first
 * callback forever; capturing a Pool would dangle after
 * setGlobalThreads rebuilds it). par.* is digest-excluded, so these
 * instantaneous values never perturb provenance.
 */
std::atomic<std::int64_t> g_queueDepth{0};
std::atomic<std::int64_t> g_inFlight{0};

void
registerLivePoolStats()
{
    static const bool once = [] {
        auto &reg = obs::Registry::instance();
        reg.formula(
            "par.queue_depth",
            [] {
                return static_cast<double>(
                    g_queueDepth.load(std::memory_order_relaxed));
            },
            "tasks queued and not yet popped, all pools (live)");
        reg.formula(
            "par.inflight_tasks",
            [] {
                return static_cast<double>(
                    g_inFlight.load(std::memory_order_relaxed));
            },
            "tasks currently executing, all pools (live)");
        return true;
    }();
    (void)once;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

std::uint64_t
steadyNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

/** One submitted parallelFor: shared body plus completion tracking. */
struct Batch
{
    const std::function<void(std::size_t, int)> *body = nullptr;
    /** Submitter's phase path; workers adopt it so nested ScopedTimers
     *  land under the same stats paths as the serial execution. */
    std::string phasePath;
    /** Submitter's open span; workers adopt it so their task spans
     *  (and any spans opened inside the body) parent correctly across
     *  the dispatch boundary. 0 when tracing is disabled. */
    std::uint64_t parentSpan = 0;
    int maxRetries = 0;
    /** Resolved cancellation source (opts.token or the root). */
    CancelToken token;
    std::atomic<std::size_t> remaining{0};
    std::atomic<std::uint64_t> taskNanos{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<TaskFailure> failures; ///< guarded by mutex
};

namespace {

std::string
batchErrorMessage(const std::vector<TaskFailure> &failures)
{
    std::size_t n_failed = 0;
    std::size_t n_cancelled = 0;
    for (const TaskFailure &f : failures)
        (f.disposition == TaskDisposition::Cancelled ? n_cancelled
                                                     : n_failed)++;
    std::string msg =
        "parallel batch: " + std::to_string(n_failed) + " task(s) failed";
    if (n_cancelled > 0)
        msg += ", " + std::to_string(n_cancelled) + " cancelled";
    msg += ":";
    std::size_t shown = 0;
    for (const TaskFailure &f : failures) {
        if (shown++ == 8) {
            msg += " ...";
            break;
        }
        msg += " [" + std::to_string(f.index) +
               (f.disposition == TaskDisposition::Cancelled ? " cancelled]"
                                                            : "]") +
               " " + f.error + ";";
    }
    return msg;
}

/** RAII for the runIndex nesting depth (exceptions cannot happen, but
 *  early returns abound). */
struct DepthGuard
{
    DepthGuard() { ++t_taskDepth; }
    ~DepthGuard() { --t_taskDepth; }
};

/**
 * Execute one index with the batch's retry budget. Never throws: a
 * fully failed index is recorded in batch.failures instead, so one bad
 * task cannot take its chunk siblings down with it, and a cancelled
 * index is recorded with the Cancelled disposition (never retried).
 */
void
runIndex(Batch &batch, std::size_t i)
{
    auto &inj = fi::Injector::instance();
    // Only the outermost task frame owns the slot's heartbeat board.
    HeartbeatBoard *board = t_taskDepth == 0 ? t_board : nullptr;
    DepthGuard depth;
    const auto deactivate = [board] {
        if (board != nullptr)
            board->beatNs.store(0, std::memory_order_relaxed);
    };
    for (int attempt = 0;; ++attempt) {
        // One relaxed load on the fast path; once the token fires,
        // not-yet-started indices and would-be retries drain instantly
        // with the Cancelled disposition.
        if (batch.token.cancelled()) {
            std::lock_guard<std::mutex> lock(batch.mutex);
            batch.failures.push_back(
                {i, attempt,
                 "cancelled (" + batch.token.origin() +
                     "): " + batch.token.reason(),
                 TaskDisposition::Cancelled});
            return;
        }
        if (board != nullptr) {
            board->index.store(i, std::memory_order_relaxed);
            board->attempt.store(attempt, std::memory_order_relaxed);
            board->attemptStartNs.store(steadyNanos(),
                                        std::memory_order_relaxed);
            board->expired.store(false, std::memory_order_relaxed);
            board->beatNs.store(0, std::memory_order_relaxed);
        }
        std::string error;
        try {
            if (inj.armed())
                inj.maybeThrow("task.throw",
                               static_cast<std::uint64_t>(i), attempt);
            (*batch.body)(i, attempt);
            deactivate();
            return;
        } catch (const CancelledError &e) {
            // The body observed a token mid-run: same disposition as a
            // never-started index, and never retried.
            deactivate();
            std::lock_guard<std::mutex> lock(batch.mutex);
            batch.failures.push_back(
                {i, attempt + 1, e.what(), TaskDisposition::Cancelled});
            return;
        } catch (const std::exception &e) {
            error = e.what();
        } catch (...) {
            error = "non-standard exception";
        }
        deactivate();
        if (attempt < batch.maxRetries) {
            obs::Registry::instance()
                .counter("par.task_retries",
                         "task attempts retried after a failure")
                .inc();
            continue;
        }
        std::lock_guard<std::mutex> lock(batch.mutex);
        batch.failures.push_back({i, attempt + 1, std::move(error),
                                  TaskDisposition::Failed});
        return;
    }
}

/**
 * Post-drain bookkeeping shared by the inline and pooled paths:
 * deterministic failure order, failure/cancellation stats, fail-fast
 * throw. Pure cancellation (no real failures) surfaces as
 * CancelledError so drivers can funnel every interrupt through one
 * catch; any real failure keeps the aggregated BatchError.
 */
std::vector<TaskFailure>
finishBatch(Batch &batch, const ResilienceOptions &opts)
{
    std::vector<TaskFailure> failures = std::move(batch.failures);
    if (failures.empty())
        return failures;
    std::sort(failures.begin(), failures.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    std::size_t n_failed = 0;
    std::size_t n_cancelled = 0;
    for (const TaskFailure &f : failures)
        (f.disposition == TaskDisposition::Cancelled ? n_cancelled
                                                     : n_failed)++;
    auto &reg = obs::Registry::instance();
    if (n_failed > 0)
        reg.counter("par.task_failures",
                    "tasks quarantined after exhausting retries")
            .inc(n_failed);
    if (n_cancelled > 0)
        reg.counter("par.cancelled_tasks",
                    "tasks skipped or stopped by cancellation")
            .inc(n_cancelled);
    if (opts.failFast) {
        if (n_failed == 0) {
            if (batch.token.cancelled())
                throw CancelledError(batch.token.reason(),
                                     batch.token.origin());
            throw CancelledError("task cancelled", "task");
        }
        throw BatchError(std::move(failures));
    }
    return failures;
}

} // namespace

BatchError::BatchError(std::vector<TaskFailure> failures)
    : std::runtime_error(batchErrorMessage(failures)),
      failures_(std::move(failures))
{
}

int
defaultThreads()
{
    if (const char *env = std::getenv("DFAULT_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || v < 1 || v > 1024)
            DFAULT_FATAL("DFAULT_THREADS must be an integer in [1, 1024],"
                         " got '", env, "'");
        return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

Pool::Pool(int threads) : threads_(threads)
{
    if (threads < 1 || threads > 1024)
        DFAULT_FATAL("pool size must be in [1, 1024], got ", threads);
    registerLivePoolStats();
    slots_.reserve(threads_);
    for (int s = 0; s < threads_; ++s)
        slots_.push_back(std::make_unique<Slot>());
    boards_.reserve(threads_);
    for (int s = 0; s < threads_; ++s)
        boards_.push_back(std::make_unique<HeartbeatBoard>());
    workers_.reserve(threads_ - 1);
    for (int s = 1; s < threads_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

Pool::~Pool()
{
    disableWatchdog();
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    sleepCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

Pool &
Pool::global()
{
    std::lock_guard<std::mutex> lock(g_globalMutex);
    if (!g_globalPool)
        g_globalPool = std::make_unique<Pool>(defaultThreads());
    return *g_globalPool;
}

void
Pool::setGlobalThreads(int threads)
{
    std::lock_guard<std::mutex> lock(g_globalMutex);
    g_globalPool.reset(); // joins any previous workers
    g_globalPool = std::make_unique<Pool>(threads);
}

int
Pool::currentSlot()
{
    return t_slot;
}

void
Pool::parallelFor(std::size_t n,
                  const std::function<void(std::size_t)> &body)
{
    const std::function<void(std::size_t, int)> wrapped =
        [&body](std::size_t i, int) { body(i); };
    parallelForResilient(n, wrapped, ResilienceOptions{});
}

std::vector<TaskFailure>
Pool::parallelForResilient(std::size_t n,
                           const std::function<void(std::size_t, int)> &body,
                           const ResilienceOptions &opts)
{
    if (n == 0)
        return {};

    auto &reg = obs::Registry::instance();
    const std::string phase = obs::ScopedTimer::currentPath();

    // Nested calls (already on a pool slot) and 1-thread pools run the
    // loop inline: this is the serial reference execution, and it makes
    // recursive parallelism (forest training inside a fold) safe.
    if (t_slot >= 0 || threads_ == 1) {
        const bool adopt_slot = t_slot < 0;
        if (adopt_slot) {
            t_slot = 0;
            t_board = boards_[0].get();
        }
        Batch batch;
        batch.body = &body;
        batch.phasePath = phase;
        batch.maxRetries = opts.maxRetries;
        batch.token = opts.token.valid() ? opts.token : rootCancelToken();
        const auto start = std::chrono::steady_clock::now();
        {
            // The whole inline range counts as one executed task (it
            // increments par.tasks_executed once below), so it also
            // records exactly one task span. runIndex never throws,
            // so the loop always drains the full range.
            std::optional<obs::ScopedSpan> span;
            if (adopt_slot && obs::SpanTracer::instance().enabled())
                span.emplace("task", phase);
            for (std::size_t i = 0; i < n; ++i)
                runIndex(batch, i);
        }
        if (adopt_slot) {
            t_slot = -1;
            t_board = nullptr;
            const double wall = secondsSince(start);
            reg.counter("par.batches", "parallelFor batches submitted")
                .inc();
            reg.counter("par.tasks_executed", "pool tasks executed")
                .inc();
            reg.histogram("par.task_ns",
                          "pool task wall-clock latency (nanoseconds)")
                .record(wall * 1e9);
            publishPhaseStats(phase, wall, wall);
        }
        return finishBatch(batch, opts);
    }

    std::lock_guard<std::mutex> submit(submitMutex_);
    t_slot = 0;
    t_board = boards_[0].get();
    const auto start = std::chrono::steady_clock::now();

    auto &tracer = obs::SpanTracer::instance();
    Batch batch;
    batch.body = &body;
    batch.phasePath = phase;
    batch.maxRetries = opts.maxRetries;
    batch.token = opts.token.valid() ? opts.token : rootCancelToken();
    if (tracer.enabled())
        batch.parentSpan = obs::SpanTracer::currentSpan();

    // Chunk the range: enough tasks for stealing to balance uneven
    // costs, few enough that queue traffic stays negligible.
    const std::size_t max_chunks =
        static_cast<std::size_t>(threads_) * 4;
    const std::size_t chunks = std::min(n, max_chunks);
    const std::size_t chunk = (n + chunks - 1) / chunks;

    std::size_t count = 0;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        Task task;
        task.begin = begin;
        task.end = std::min(n, begin + chunk);
        task.batch = &batch;
        batch.remaining.fetch_add(1, std::memory_order_relaxed);
        if (tracer.enabled()) {
            // Flow arrow origin: this task leaving the submitter.
            task.flowId = tracer.newId();
            tracer.flowEvent(obs::TraceKind::FlowBegin, task.flowId,
                             phase);
        }
        Slot &slot = *slots_[count % static_cast<std::size_t>(threads_)];
        {
            std::lock_guard<std::mutex> lock(slot.mutex);
            pending_.fetch_add(1, std::memory_order_relaxed);
            g_queueDepth.fetch_add(1, std::memory_order_relaxed);
            slot.queue.push_back(task);
        }
        ++count;
    }
    sleepCv_.notify_all();
    reg.counter("par.batches", "parallelFor batches submitted").inc();
    reg.counter("par.tasks_queued", "pool tasks queued")
        .inc(static_cast<std::uint64_t>(count));

    // Help drain: run our own share, then steal stragglers. Once the
    // queues look empty, wait for in-flight tasks under batch.mutex —
    // completion is only ever observed under that mutex (see runTask),
    // so the stack-allocated Batch cannot be torn down while a worker
    // is still signalling it.
    while (tryRun(0)) {
    }
    {
        std::unique_lock<std::mutex> lock(batch.mutex);
        batch.cv.wait(lock, [&] {
            return batch.remaining.load(std::memory_order_acquire) == 0;
        });
    }
    t_slot = -1;
    t_board = nullptr;

    const double wall = secondsSince(start);
    publishPhaseStats(
        phase,
        static_cast<double>(
            batch.taskNanos.load(std::memory_order_relaxed)) *
            1e-9,
        wall);

    return finishBatch(batch, opts);
}

void
Pool::workerLoop(int slot)
{
    t_slot = slot;
    t_board = boards_[static_cast<std::size_t>(slot)].get();
    for (;;) {
        if (tryRun(slot))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        sleepCv_.wait(lock, [&] {
            return stop_.load(std::memory_order_relaxed) ||
                   pending_.load(std::memory_order_relaxed) > 0;
        });
        if (stop_.load(std::memory_order_relaxed))
            return;
    }
}

bool
Pool::tryRun(int slot)
{
    Task task;
    if (popOwn(slot, task) || stealAny(slot, task)) {
        runTask(task);
        return true;
    }
    return false;
}

bool
Pool::popOwn(int slot, Task &task)
{
    Slot &own = *slots_[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (own.queue.empty())
        return false;
    task = own.queue.back(); // LIFO: cache-warm end of the range
    own.queue.pop_back();
    pending_.fetch_sub(1, std::memory_order_relaxed);
    g_queueDepth.fetch_sub(1, std::memory_order_relaxed);
    return true;
}

bool
Pool::stealAny(int thief, Task &task)
{
    for (int k = 1; k < threads_; ++k) {
        const int victim = (thief + k) % threads_;
        Slot &other = *slots_[static_cast<std::size_t>(victim)];
        std::lock_guard<std::mutex> lock(other.mutex);
        if (other.queue.empty())
            continue;
        task = other.queue.front(); // FIFO: take the coldest chunk
        other.queue.pop_front();
        pending_.fetch_sub(1, std::memory_order_relaxed);
        g_queueDepth.fetch_sub(1, std::memory_order_relaxed);
        obs::Registry::instance()
            .counter("par.steals", "tasks stolen from another slot")
            .inc();
        return true;
    }
    return false;
}

void
Pool::runTask(const Task &task)
{
    Batch &batch = *task.batch;
    const auto start = std::chrono::steady_clock::now();
    g_inFlight.fetch_add(1, std::memory_order_relaxed);

    // Workers inherit the submitter's phase stack so their nested
    // timers accumulate under the same dotted paths as a serial run;
    // the submitting thread (slot 0) already carries it. Span
    // parentage crosses the dispatch boundary the same way: workers
    // adopt the submitter's open span (slot 0 already has it open).
    std::optional<obs::PhaseAdoption> adopted;
    if (t_slot > 0 && !batch.phasePath.empty())
        adopted.emplace(batch.phasePath);
    std::optional<obs::SpanAdoption> span_parent;
    if (t_slot > 0 && batch.parentSpan != 0)
        span_parent.emplace(batch.parentSpan);

    {
        std::optional<obs::ScopedSpan> span;
        if (obs::SpanTracer::instance().enabled()) {
            span.emplace("task", batch.phasePath);
            if (task.flowId != 0) {
                // Flow arrow target, timestamped inside the task span
                // so Perfetto binds it to the enclosing slice.
                obs::SpanTracer::instance().flowEvent(
                    obs::TraceKind::FlowEnd, task.flowId,
                    batch.phasePath);
            }
        }
        // runIndex never throws: each index retries, then quarantines
        // into batch.failures, so the chunk always runs to completion.
        for (std::size_t i = task.begin; i < task.end; ++i)
            runIndex(batch, i);
    }
    span_parent.reset();
    adopted.reset();
    g_inFlight.fetch_sub(1, std::memory_order_relaxed);

    const double task_ns = secondsSince(start) * 1e9;
    batch.taskNanos.fetch_add(static_cast<std::uint64_t>(task_ns),
                              std::memory_order_relaxed);
    obs::Registry::instance()
        .counter("par.tasks_executed", "pool tasks executed")
        .inc();
    obs::Registry::instance()
        .histogram("par.task_ns",
                   "pool task wall-clock latency (nanoseconds)")
        .record(task_ns);

    // Decrement and notify under batch.mutex. The submitter only
    // concludes the batch is done while holding the same mutex, so by
    // the time it can destroy the Batch the last worker has finished
    // touching the condition variable (no use-after-free on the cv).
    {
        std::lock_guard<std::mutex> lock(batch.mutex);
        if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
            batch.cv.notify_all();
    }
}

void
Pool::enableWatchdog(const WatchdogOptions &opts)
{
    disableWatchdog();
    if (opts.taskTimeoutSeconds < 0.0 || opts.deadlineSeconds < 0.0 ||
        opts.pollSeconds < 0.0)
        DFAULT_FATAL("watchdog durations must be >= 0");
    if (opts.taskTimeoutSeconds == 0.0 && opts.deadlineSeconds == 0.0)
        return; // nothing to watch
    {
        std::lock_guard<std::mutex> lock(watchdogMutex_);
        watchdogStop_ = false;
        watchdogOpts_ = opts;
    }
    watchdogThread_ = std::thread([this] { watchdogLoop(); });
}

void
Pool::disableWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(watchdogMutex_);
        watchdogStop_ = true;
    }
    watchdogCv_.notify_all();
    if (watchdogThread_.joinable())
        watchdogThread_.join();
}

void
Pool::watchdogLoop()
{
    WatchdogOptions opts;
    {
        std::lock_guard<std::mutex> lock(watchdogMutex_);
        opts = watchdogOpts_;
    }
    double poll = opts.pollSeconds;
    if (poll <= 0.0) {
        double base = opts.taskTimeoutSeconds;
        if (opts.deadlineSeconds > 0.0)
            base = base > 0.0 ? std::min(base, opts.deadlineSeconds)
                              : opts.deadlineSeconds;
        poll = std::clamp(base / 4.0, 0.01, 1.0);
    }
    const std::uint64_t started = steadyNanos();
    const auto timeout_ns = static_cast<std::uint64_t>(
        opts.taskTimeoutSeconds * 1e9);
    const auto deadline_ns =
        static_cast<std::uint64_t>(opts.deadlineSeconds * 1e9);
    bool deadline_fired = false;

    auto &reg = obs::Registry::instance();
    auto &sink = obs::EventSink::instance();
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(watchdogMutex_);
            watchdogCv_.wait_for(
                lock, std::chrono::duration<double>(poll),
                [&] { return watchdogStop_; });
            if (watchdogStop_)
                return;
        }
        const std::uint64_t now = steadyNanos();

        if (deadline_ns > 0 && !deadline_fired && now - started >= deadline_ns) {
            deadline_fired = true;
            CancelToken token = opts.deadlineToken.valid()
                                    ? opts.deadlineToken
                                    : rootCancelToken();
            token.cancel("run deadline of " +
                             std::to_string(opts.deadlineSeconds) +
                             " s exceeded",
                         "deadline");
            reg.counter("par.deadline_cancels",
                        "runs cancelled by the watchdog deadline")
                .inc();
            DFAULT_WARN("watchdog: run deadline of ",
                        opts.deadlineSeconds,
                        " s exceeded - cancelling, draining in-flight"
                        " work");
            if (sink.enabled()) {
                obs::JsonWriter fields;
                fields.field("deadline_seconds", opts.deadlineSeconds);
                sink.emit("watchdog_deadline", fields);
            }
        }

        if (timeout_ns == 0)
            continue;
        for (int s = 0; s < threads_; ++s) {
            HeartbeatBoard &board =
                *boards_[static_cast<std::size_t>(s)];
            const std::uint64_t beat =
                board.beatNs.load(std::memory_order_acquire);
            if (beat == 0 || now - beat < timeout_ns)
                continue;
            if (board.expired.exchange(true, std::memory_order_acq_rel))
                continue; // already flagged, one diagnostic per stall
            // Stack-of-spans diagnostic: everything the stalled worker
            // last told us about itself. The task itself cannot be
            // interrupted here; its next heartbeat() raises
            // TaskTimeoutError into the retry/quarantine machinery.
            std::string note;
            std::string phase;
            {
                std::lock_guard<std::mutex> lock(board.noteMutex);
                note = board.note;
                phase = board.phasePath;
            }
            const auto idx = board.index.load(std::memory_order_relaxed);
            const int att =
                board.attempt.load(std::memory_order_relaxed);
            const double stalled = static_cast<double>(now - beat) * 1e-9;
            const double elapsed =
                static_cast<double>(
                    now - board.attemptStartNs.load(
                              std::memory_order_relaxed)) *
                1e-9;
            reg.counter("par.watchdog_stalls",
                        "tasks flagged as stalled by the watchdog")
                .inc();
            DFAULT_WARN("watchdog: slot ", s, " stalled in task ", idx,
                        " attempt ", att + 1, ": no heartbeat for ",
                        stalled, " s (task_timeout ",
                        opts.taskTimeoutSeconds, " s); phase [",
                        phase.empty() ? "<none>" : phase, "], cell [",
                        note.empty() ? "<unlabelled>" : note,
                        "], attempt elapsed ", elapsed, " s");
            if (sink.enabled()) {
                obs::JsonWriter fields;
                fields.field("slot", s);
                fields.field("index",
                             static_cast<std::uint64_t>(idx));
                fields.field("attempt", att + 1);
                fields.field("phase", phase);
                fields.field("cell", note);
                fields.field("stalled_seconds", stalled);
                fields.field("elapsed_seconds", elapsed);
                fields.field("task_timeout_seconds",
                             opts.taskTimeoutSeconds);
                sink.emit("watchdog_stall", fields);
            }
        }
    }
}

void
heartbeat()
{
    HeartbeatBoard *board = t_board;
    if (board == nullptr || t_taskDepth != 1)
        return;
    if (board->expired.load(std::memory_order_acquire)) {
        board->expired.store(false, std::memory_order_relaxed);
        board->beatNs.store(0, std::memory_order_relaxed);
        std::string note;
        {
            std::lock_guard<std::mutex> lock(board->noteMutex);
            note = board->note;
        }
        // No timing figures in the message: it lands in quarantine
        // reports that must replay identically across runs.
        throw TaskTimeoutError(
            "watchdog: task exceeded task_timeout" +
            (note.empty() ? std::string() : " (" + note + ")"));
    }
    board->beatNs.store(steadyNanos(), std::memory_order_release);
}

void
heartbeatAnnotate(const std::string &note)
{
    HeartbeatBoard *board = t_board;
    if (board == nullptr || t_taskDepth != 1)
        return;
    const std::string phase = obs::ScopedTimer::currentPath();
    std::lock_guard<std::mutex> lock(board->noteMutex);
    board->note = note;
    board->phasePath = phase;
}

void
Pool::publishPhaseStats(const std::string &phase, double task_seconds,
                        double wall_seconds)
{
    auto &reg = obs::Registry::instance();
    const std::string base =
        "par.phase." + (phase.empty() ? std::string("main") : phase);
    obs::Gauge &task = reg.gauge(base + ".task_seconds",
                                 "summed task seconds inside " + base);
    obs::Gauge &wall = reg.gauge(base + ".wall_seconds",
                                 "submitter wall seconds inside " + base);
    task.add(task_seconds);
    wall.add(wall_seconds);
    reg.formula(
        base + ".speedup",
        [&task, &wall] {
            const double w = wall.value();
            return w > 0.0 ? task.value() / w : 0.0;
        },
        "parallel speedup (task seconds / wall seconds)");
}

} // namespace dfault::par
