#include "ml/knn.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dfault::ml {

KnnRegressor::KnnRegressor() : KnnRegressor(Params{}) {}

KnnRegressor::KnnRegressor(const Params &params) : params_(params)
{
    if (params_.k <= 0)
        DFAULT_FATAL("knn: k must be positive");
}

void
KnnRegressor::fit(const Matrix &x, std::span<const double> y)
{
    DFAULT_ASSERT(x.size() == y.size(), "knn: x/y size mismatch");
    DFAULT_ASSERT(!x.empty(), "knn: empty training set");
    x_ = x;
    y_.assign(y.begin(), y.end());
}

double
KnnRegressor::predict(std::span<const double> row) const
{
    DFAULT_ASSERT(!x_.empty(), "knn: predict before fit");

    // Squared Euclidean distance to every training row.
    std::vector<std::pair<double, std::size_t>> dist;
    dist.reserve(x_.size());
    for (std::size_t i = 0; i < x_.size(); ++i) {
        DFAULT_ASSERT(x_[i].size() == row.size(),
                      "knn: feature width mismatch");
        double d2 = 0.0;
        for (std::size_t j = 0; j < row.size(); ++j) {
            const double d = x_[i][j] - row[j];
            d2 += d * d;
        }
        dist.emplace_back(d2, i);
    }

    const auto k = std::min<std::size_t>(params_.k, dist.size());
    std::partial_sort(dist.begin(), dist.begin() + k, dist.end());

    if (!params_.distanceWeighted) {
        double sum = 0.0;
        for (std::size_t n = 0; n < k; ++n)
            sum += y_[dist[n].second];
        return sum / static_cast<double>(k);
    }

    // Inverse-distance weights; an exact match dominates entirely.
    constexpr double eps = 1e-12;
    double wsum = 0.0, acc = 0.0;
    for (std::size_t n = 0; n < k; ++n) {
        const double d = std::sqrt(dist[n].first);
        if (d < eps)
            return y_[dist[n].second];
        const double w = 1.0 / d;
        wsum += w;
        acc += w * y_[dist[n].second];
    }
    return acc / wsum;
}

} // namespace dfault::ml
