#include "ml/knn.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/logging.hh"

namespace dfault::ml {

KnnRegressor::KnnRegressor() : KnnRegressor(Params{}) {}

KnnRegressor::KnnRegressor(const Params &params) : params_(params)
{
    if (params_.k <= 0)
        DFAULT_FATAL("knn: k must be positive");
}

void
KnnRegressor::fit(const Matrix &x, std::span<const double> y)
{
    DFAULT_ASSERT(x.size() == y.size(), "knn: x/y size mismatch");
    DFAULT_ASSERT(!x.empty(), "knn: empty training set");
    rows_ = x.size();
    cols_ = x[0].size();
    flat_.clear();
    flat_.reserve(rows_ * cols_);
    for (const auto &sample : x) {
        DFAULT_ASSERT(sample.size() == cols_,
                      "knn: feature width mismatch");
        flat_.insert(flat_.end(), sample.begin(), sample.end());
    }
    y_.assign(y.begin(), y.end());
}

double
KnnRegressor::predict(std::span<const double> row) const
{
    DFAULT_ASSERT(rows_ > 0, "knn: predict before fit");
    DFAULT_ASSERT(row.size() == cols_, "knn: feature width mismatch");

    // Squared Euclidean distance to every training row. Four rows
    // advance together with independent accumulators, so the compiler
    // vectorizes across rows; each row's feature sum still runs in
    // plain j order, keeping results bit-identical to the scalar scan.
    std::vector<double> d2(rows_);
    const double *flat = flat_.data();
    const double *q = row.data();
    std::size_t i = 0;
    for (; i + 4 <= rows_; i += 4) {
        const double *r0 = flat + i * cols_;
        const double *r1 = r0 + cols_;
        const double *r2 = r1 + cols_;
        const double *r3 = r2 + cols_;
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (std::size_t j = 0; j < cols_; ++j) {
            const double v = q[j];
            const double t0 = r0[j] - v;
            const double t1 = r1[j] - v;
            const double t2 = r2[j] - v;
            const double t3 = r3[j] - v;
            a0 += t0 * t0;
            a1 += t1 * t1;
            a2 += t2 * t2;
            a3 += t3 * t3;
        }
        d2[i] = a0;
        d2[i + 1] = a1;
        d2[i + 2] = a2;
        d2[i + 3] = a3;
    }
    for (; i < rows_; ++i) {
        const double *r = flat + i * cols_;
        double acc = 0.0;
        for (std::size_t j = 0; j < cols_; ++j) {
            const double t = r[j] - q[j];
            acc += t * t;
        }
        d2[i] = acc;
    }

    // Select the k nearest with nth_element + a partial sort of the
    // winners (O(n + k log k), not O(n log k) over all rows). Exact
    // distance ties break deterministically toward the lower training
    // index, matching the lexicographic (distance, index) order the
    // full sort produced.
    std::vector<std::uint32_t> idx(rows_);
    std::iota(idx.begin(), idx.end(), 0);
    const auto closer = [&](std::uint32_t a, std::uint32_t b) {
        return d2[a] != d2[b] ? d2[a] < d2[b] : a < b;
    };
    const auto k = std::min<std::size_t>(params_.k, rows_);
    if (k < rows_)
        std::nth_element(idx.begin(), idx.begin() + k, idx.end(),
                         closer);
    std::sort(idx.begin(), idx.begin() + k, closer);

    if (!params_.distanceWeighted) {
        double sum = 0.0;
        for (std::size_t n = 0; n < k; ++n)
            sum += y_[idx[n]];
        return sum / static_cast<double>(k);
    }

    // Inverse-distance weights; an exact match dominates entirely.
    constexpr double eps = 1e-12;
    double wsum = 0.0, acc = 0.0;
    for (std::size_t n = 0; n < k; ++n) {
        const double d = std::sqrt(d2[idx[n]]);
        if (d < eps)
            return y_[idx[n]];
        const double w = 1.0 / d;
        wsum += w;
        acc += w * y_[idx[n]];
    }
    return acc / wsum;
}

} // namespace dfault::ml
