#include "ml/svr.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dfault::ml {

SvrRegressor::SvrRegressor() : SvrRegressor(Params{}) {}

SvrRegressor::SvrRegressor(const Params &params) : params_(params)
{
    if (params_.c <= 0.0)
        DFAULT_FATAL("svr: C must be positive");
    if (params_.epsilon < 0.0)
        DFAULT_FATAL("svr: epsilon must be non-negative");
}

double
SvrRegressor::kernel(std::span<const double> a,
                     std::span<const double> b) const
{
    double d2 = 0.0;
    for (std::size_t j = 0; j < a.size(); ++j) {
        const double d = a[j] - b[j];
        d2 += d * d;
    }
    return std::exp(-gamma_ * d2);
}

void
SvrRegressor::fit(const Matrix &x, std::span<const double> y)
{
    DFAULT_ASSERT(x.size() == y.size(), "svr: x/y size mismatch");
    DFAULT_ASSERT(!x.empty(), "svr: empty training set");
    x_ = x;
    const std::size_t n = x_.size();
    const std::size_t p = x_[0].size();

    // scikit-learn's gamma="scale": 1 / (p * Var(X)) over all entries.
    if (params_.gamma > 0.0) {
        gamma_ = params_.gamma;
    } else {
        double mean = 0.0, sq = 0.0, count = 0.0;
        for (const auto &row : x_)
            for (const double v : row) {
                mean += v;
                sq += v * v;
                count += 1.0;
            }
        mean /= count;
        const double var = std::max(sq / count - mean * mean, 1e-12);
        gamma_ = params_.gammaScale / (static_cast<double>(p) * var);
    }

    // Dense kernel matrix.
    Matrix k(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            k[i][j] = k[j][i] = kernel(x_[i], x_[j]);

    beta_.assign(n, 0.0);
    double mean_y = 0.0;
    for (const double v : y)
        mean_y += v;
    bias_ = mean_y / static_cast<double>(n);

    // f_i = sum_j beta_j K_ij, maintained incrementally.
    std::vector<double> f(n, 0.0);

    for (int sweep = 0; sweep < params_.maxSweeps; ++sweep) {
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            // Residual excluding i's own contribution.
            const double r = y[i] - bias_ - (f[i] - beta_[i] * k[i][i]);
            // Soft-threshold by the tube, then box-clip.
            double target = 0.0;
            if (r > params_.epsilon)
                target = (r - params_.epsilon) / k[i][i];
            else if (r < -params_.epsilon)
                target = (r + params_.epsilon) / k[i][i];
            target = std::clamp(target, -params_.c, params_.c);

            const double delta = target - beta_[i];
            if (delta != 0.0) {
                for (std::size_t j = 0; j < n; ++j)
                    f[j] += delta * k[i][j];
                beta_[i] = target;
                max_delta = std::max(max_delta, std::abs(delta));
            }
        }

        // Re-estimate the bias from free (unclipped) support vectors.
        double acc = 0.0;
        int free_svs = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (beta_[i] == 0.0 || std::abs(beta_[i]) >= params_.c)
                continue;
            const double margin =
                beta_[i] > 0.0 ? params_.epsilon : -params_.epsilon;
            acc += y[i] - f[i] - margin;
            ++free_svs;
        }
        if (free_svs > 0)
            bias_ = acc / free_svs;

        if (max_delta < params_.tolerance)
            break;
    }
}

double
SvrRegressor::predict(std::span<const double> row) const
{
    DFAULT_ASSERT(!x_.empty(), "svr: predict before fit");
    double out = bias_;
    for (std::size_t i = 0; i < x_.size(); ++i) {
        if (beta_[i] == 0.0)
            continue;
        out += beta_[i] * kernel(x_[i], row);
    }
    return out;
}

std::size_t
SvrRegressor::supportVectorCount() const
{
    std::size_t count = 0;
    for (const double b : beta_)
        count += b != 0.0;
    return count;
}

} // namespace dfault::ml
