/**
 * @file
 * Epsilon-insensitive Support Vector Regression with an RBF kernel.
 *
 * The dual problem is solved by exact cyclic coordinate maximization
 * over the combined coefficients beta_i = alpha_i - alpha_i^* in
 * [-C, C]: for each i the subproblem has the closed-form
 * soft-threshold solution
 *
 *   beta_i = clip( S_eps(y_i - b - sum_{j != i} beta_j K_ij) / K_ii )
 *
 * where S_eps is soft-thresholding by the tube width. The bias is
 * re-estimated each sweep from the free support vectors' residuals.
 * Training sets in this study are small (tens to hundreds of rows), so
 * the dense kernel matrix is cached.
 */

#ifndef DFAULT_ML_SVR_HH
#define DFAULT_ML_SVR_HH

#include "ml/regressor.hh"

namespace dfault::ml {

/** See file comment. */
class SvrRegressor : public Regressor
{
  public:
    struct Params
    {
        double c = 2.0;        ///< box constraint
        double epsilon = 0.1;  ///< insensitive-tube half width
        /**
         * RBF width; <= 0 selects gammaScale / (n_features * var(X)),
         * i.e. the scikit "scale" heuristic times gammaScale.
         */
        double gamma = -1.0;
        /** Multiplier on the "scale" heuristic (sharper locality). */
        double gammaScale = 4.0;
        int maxSweeps = 200;
        double tolerance = 1e-5;
    };

    SvrRegressor();
    explicit SvrRegressor(const Params &params);

    void fit(const Matrix &x, std::span<const double> y) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "SVM"; }

    /** Number of support vectors (non-zero duals) after fit. */
    std::size_t supportVectorCount() const;

  private:
    Params params_;
    Matrix x_;
    std::vector<double> beta_;
    double bias_ = 0.0;
    double gamma_ = 1.0;

    double kernel(std::span<const double> a,
                  std::span<const double> b) const;
};

} // namespace dfault::ml

#endif // DFAULT_ML_SVR_HH
