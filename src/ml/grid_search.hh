/**
 * @file
 * Hyperparameter selection by grouped cross-validation.
 *
 * The paper trains scikit-learn models with their default parameters;
 * a production pipeline tunes them. GridSearch evaluates candidate
 * model factories under the same Leave-One-Group-Out protocol the
 * study uses, so the selected configuration is the one that
 * generalizes to unseen benchmarks rather than the one that memorizes
 * the training set.
 */

#ifndef DFAULT_ML_GRID_SEARCH_HH
#define DFAULT_ML_GRID_SEARCH_HH

#include <functional>
#include <string>
#include <vector>

#include "ml/dataset.hh"
#include "ml/regressor.hh"

namespace dfault::ml {

/** One candidate configuration: a label and a model factory. */
struct GridCandidate
{
    std::string label;
    std::function<RegressorPtr()> make;
};

/** Result of evaluating one candidate. */
struct GridResult
{
    std::string label;
    /** Mean RMSE over the LOGO folds (log-space if the caller
     *  transformed targets). */
    double meanRmse = 0.0;
};

/**
 * Evaluate every candidate with Leave-One-Group-Out cross-validation
 * on @p data (features should already be comparable in scale; a
 * per-fold StandardScaler is applied internally).
 *
 * @return results in candidate order; best() picks the minimum.
 */
std::vector<GridResult> gridSearch(const Dataset &data,
                                   const std::vector<GridCandidate> &grid);

/** Index of the lowest-RMSE result. @pre results not empty. */
std::size_t bestCandidate(const std::vector<GridResult> &results);

} // namespace dfault::ml

#endif // DFAULT_ML_GRID_SEARCH_HH
