#include "ml/forest.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "par/pool.hh"

namespace dfault::ml {

namespace {

/** AoS node used only while growing a tree; flattened to SoA after. */
struct Node
{
    // Leaf when feature < 0.
    int feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    int left = -1;
    int right = -1;
};

} // namespace

RandomForestRegressor::RandomForestRegressor()
    : RandomForestRegressor(Params{})
{
}

RandomForestRegressor::RandomForestRegressor(const Params &params)
    : params_(params)
{
    if (params_.trees <= 0)
        DFAULT_FATAL("forest: tree count must be positive");
    if (params_.minSamplesLeaf == 0)
        DFAULT_FATAL("forest: minSamplesLeaf must be >= 1");
}

void
RandomForestRegressor::fit(const Matrix &x, std::span<const double> y)
{
    DFAULT_ASSERT(x.size() == y.size(), "forest: x/y size mismatch");
    DFAULT_ASSERT(!x.empty(), "forest: empty training set");

    const std::size_t n = x.size();
    const std::size_t p = x[0].size();
    const std::size_t mtry =
        params_.maxFeatures > 0
            ? std::min(params_.maxFeatures, p)
            : std::max<std::size_t>(1, p / 3);

    std::vector<std::vector<Node>> grown(params_.trees);

    // Each tree draws from its own RNG stream, derived from the forest
    // seed and the tree index — not from one generator shared across
    // the loop. That makes every tree's randomness independent of how
    // work is scheduled, so trees can be grown in parallel (or in any
    // order) and the fitted forest is identical.
    par::Pool::global().parallelFor(grown.size(), [&](std::size_t t) {
        std::vector<Node> &nodes = grown[t];
        Rng rng(hashCombine(params_.seed,
                            static_cast<std::uint64_t>(t)));

        std::vector<std::size_t> feature_pool(p);
        std::iota(feature_pool.begin(), feature_pool.end(), 0);

        // Bootstrap sample.
        std::vector<std::size_t> rows(n);
        for (auto &r : rows)
            r = rng.uniformInt(static_cast<std::uint64_t>(n));

        // Iterative recursion via an explicit stack of work items.
        struct Item
        {
            std::vector<std::size_t> rows;
            int depth;
            int nodeIndex;
        };
        nodes.push_back(Node{});
        std::vector<Item> stack;
        stack.push_back({std::move(rows), 0, 0});

        while (!stack.empty()) {
            Item item = std::move(stack.back());
            stack.pop_back();
            Node &node = nodes[item.nodeIndex];

            double sum = 0.0, sq = 0.0;
            for (const std::size_t r : item.rows) {
                sum += y[r];
                sq += y[r] * y[r];
            }
            const double count = static_cast<double>(item.rows.size());
            const double node_mean = sum / count;
            const double node_sse = sq - sum * sum / count;

            const bool stop = item.depth >= params_.maxDepth ||
                              item.rows.size() < 2 * params_.minSamplesLeaf ||
                              node_sse <= 1e-12;
            if (stop) {
                node.feature = -1;
                node.value = node_mean;
                continue;
            }

            // Choose mtry candidate features at random (partial
            // Fisher-Yates on this tree's pool).
            for (std::size_t k = 0; k < mtry; ++k) {
                const std::size_t pick =
                    k + rng.uniformInt(
                            static_cast<std::uint64_t>(p - k));
                std::swap(feature_pool[k], feature_pool[pick]);
            }

            int best_feature = -1;
            double best_threshold = 0.0;
            double best_sse = node_sse;

            std::vector<std::size_t> order = item.rows;
            for (std::size_t k = 0; k < mtry; ++k) {
                const std::size_t feat = feature_pool[k];
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                              return x[a][feat] < x[b][feat];
                          });
                // Prefix scan of sums for O(n) split evaluation.
                double left_sum = 0.0, left_sq = 0.0;
                for (std::size_t i = 0; i + 1 < order.size(); ++i) {
                    const double v = y[order[i]];
                    left_sum += v;
                    left_sq += v * v;
                    const double xv = x[order[i]][feat];
                    const double xn = x[order[i + 1]][feat];
                    if (xv == xn)
                        continue;
                    const std::size_t nl = i + 1;
                    const std::size_t nr = order.size() - nl;
                    if (nl < params_.minSamplesLeaf ||
                        nr < params_.minSamplesLeaf)
                        continue;
                    const double right_sum = sum - left_sum;
                    const double right_sq = sq - left_sq;
                    const double sse =
                        (left_sq - left_sum * left_sum / nl) +
                        (right_sq - right_sum * right_sum / nr);
                    if (sse < best_sse) {
                        best_sse = sse;
                        best_feature = static_cast<int>(feat);
                        best_threshold = 0.5 * (xv + xn);
                    }
                }
            }

            if (best_feature < 0) {
                node.feature = -1;
                node.value = node_mean;
                continue;
            }

            std::vector<std::size_t> left_rows, right_rows;
            for (const std::size_t r : item.rows) {
                if (x[r][best_feature] <= best_threshold)
                    left_rows.push_back(r);
                else
                    right_rows.push_back(r);
            }

            const int left_index = static_cast<int>(nodes.size());
            nodes.push_back(Node{});
            const int right_index = static_cast<int>(nodes.size());
            nodes.push_back(Node{});
            // `node` may be dangling after push_back; reindex.
            Node &parent = nodes[item.nodeIndex];
            parent.feature = best_feature;
            parent.threshold = best_threshold;
            parent.left = left_index;
            parent.right = right_index;

            stack.push_back({std::move(left_rows), item.depth + 1,
                             left_index});
            stack.push_back({std::move(right_rows), item.depth + 1,
                             right_index});
        }
    });

    // Flatten every grown tree into one contiguous packed-node array,
    // rebasing child indices by the tree's offset. Growth pushes each
    // split's children back to back, so right == left + 1 always
    // holds and only the left index is stored; leaves park their
    // value in the threshold slot.
    std::size_t total = 0;
    for (const auto &nodes : grown)
        total += nodes.size();
    nodes_.clear();
    nodes_.reserve(total);
    treeRoots_.clear();
    treeRoots_.reserve(grown.size());
    for (const auto &nodes : grown) {
        const auto base = static_cast<std::int32_t>(nodes_.size());
        treeRoots_.push_back(base);
        for (const Node &node : nodes) {
            PackedNode packed;
            packed.feature = node.feature;
            if (node.feature < 0) {
                packed.threshold = node.value;
            } else {
                DFAULT_ASSERT(node.right == node.left + 1,
                              "forest: split children not adjacent");
                packed.threshold = node.threshold;
                packed.child = base + node.left;
            }
            nodes_.push_back(packed);
        }
    }
}

double
RandomForestRegressor::predictTree(std::int32_t root,
                                   std::span<const double> row) const
{
    const PackedNode *nodes = nodes_.data();
    const PackedNode *node = nodes + root;
    while (node->feature >= 0)
        node = nodes + node->child +
               (row[node->feature] <= node->threshold ? 0 : 1);
    return node->threshold;
}

double
RandomForestRegressor::predict(std::span<const double> row) const
{
    DFAULT_ASSERT(!treeRoots_.empty(), "forest: predict before fit");
    double acc = 0.0;
    for (const std::int32_t root : treeRoots_)
        acc += predictTree(root, row);
    return acc / static_cast<double>(treeRoots_.size());
}

void
RandomForestRegressor::predictMany(const Matrix &rows,
                                   std::vector<double> &out) const
{
    DFAULT_ASSERT(!treeRoots_.empty(), "forest: predict before fit");
    out.assign(rows.size(), 0.0);
    // Trees outer, rows inner: each tree's nodes are walked once per
    // batch, and four rows descend a tree together. A single
    // traversal is a chain of dependent loads, but different rows of
    // the same tree are independent, so interleaving them keeps four
    // loads in flight instead of one. Per-row sums still accumulate
    // in tree order, so every entry matches predict() bit for bit.
    const PackedNode *nodes = nodes_.data();
    for (const std::int32_t root : treeRoots_) {
        std::size_t i = 0;
        for (; i + 4 <= rows.size(); i += 4) {
            const PackedNode *n0 = nodes + root;
            const PackedNode *n1 = n0;
            const PackedNode *n2 = n0;
            const PackedNode *n3 = n0;
            std::span<const double> r0 = rows[i];
            std::span<const double> r1 = rows[i + 1];
            std::span<const double> r2 = rows[i + 2];
            std::span<const double> r3 = rows[i + 3];
            for (;;) {
                bool active = false;
                if (n0->feature >= 0) {
                    n0 = nodes + n0->child +
                         (r0[n0->feature] <= n0->threshold ? 0 : 1);
                    active = true;
                }
                if (n1->feature >= 0) {
                    n1 = nodes + n1->child +
                         (r1[n1->feature] <= n1->threshold ? 0 : 1);
                    active = true;
                }
                if (n2->feature >= 0) {
                    n2 = nodes + n2->child +
                         (r2[n2->feature] <= n2->threshold ? 0 : 1);
                    active = true;
                }
                if (n3->feature >= 0) {
                    n3 = nodes + n3->child +
                         (r3[n3->feature] <= n3->threshold ? 0 : 1);
                    active = true;
                }
                if (!active)
                    break;
            }
            out[i] += n0->threshold;
            out[i + 1] += n1->threshold;
            out[i + 2] += n2->threshold;
            out[i + 3] += n3->threshold;
        }
        for (; i < rows.size(); ++i)
            out[i] += predictTree(root, rows[i]);
    }
    const double scale = static_cast<double>(treeRoots_.size());
    for (double &v : out)
        v /= scale;
}

double
RandomForestRegressor::predictFirstTrees(std::span<const double> row,
                                         std::size_t trees) const
{
    DFAULT_ASSERT(!treeRoots_.empty(), "forest: predict before fit");
    if (trees == 0)
        DFAULT_FATAL("forest: predictFirstTrees needs trees >= 1 "
                     "(a 0-tree slice has no prediction)");
    const std::size_t n = std::min(trees, treeRoots_.size());
    double acc = 0.0;
    for (std::size_t t = 0; t < n; ++t)
        acc += predictTree(treeRoots_[t], row);
    return acc / static_cast<double>(n);
}

ForestSliceRegressor::ForestSliceRegressor(
    const RandomForestRegressor &forest, std::size_t trees)
    : forest_(forest), trees_(trees)
{
    if (trees == 0)
        DFAULT_FATAL("ForestSliceRegressor: trees must be >= 1, got 0");
}

void
ForestSliceRegressor::fit(const Matrix &, std::span<const double>)
{
    DFAULT_FATAL("ForestSliceRegressor is a view over an already-fitted "
                 "forest; fit the underlying RandomForestRegressor");
}

double
ForestSliceRegressor::predict(std::span<const double> row) const
{
    return forest_.predictFirstTrees(row, trees_);
}

void
ForestSliceRegressor::predictMany(const Matrix &rows,
                                  std::vector<double> &out) const
{
    out.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        out[i] = forest_.predictFirstTrees(rows[i], trees_);
}

} // namespace dfault::ml
