#include "ml/forest.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "par/pool.hh"

namespace dfault::ml {

double
RandomForestRegressor::Tree::predict(std::span<const double> row) const
{
    int node = 0;
    for (;;) {
        const Node &n = nodes[node];
        if (n.feature < 0)
            return n.value;
        node = row[n.feature] <= n.threshold ? n.left : n.right;
    }
}

RandomForestRegressor::RandomForestRegressor()
    : RandomForestRegressor(Params{})
{
}

RandomForestRegressor::RandomForestRegressor(const Params &params)
    : params_(params)
{
    if (params_.trees <= 0)
        DFAULT_FATAL("forest: tree count must be positive");
    if (params_.minSamplesLeaf == 0)
        DFAULT_FATAL("forest: minSamplesLeaf must be >= 1");
}

void
RandomForestRegressor::fit(const Matrix &x, std::span<const double> y)
{
    DFAULT_ASSERT(x.size() == y.size(), "forest: x/y size mismatch");
    DFAULT_ASSERT(!x.empty(), "forest: empty training set");

    const std::size_t n = x.size();
    const std::size_t p = x[0].size();
    const std::size_t mtry =
        params_.maxFeatures > 0
            ? std::min(params_.maxFeatures, p)
            : std::max<std::size_t>(1, p / 3);

    trees_.clear();
    trees_.resize(params_.trees);

    // Each tree draws from its own RNG stream, derived from the forest
    // seed and the tree index — not from one generator shared across
    // the loop. That makes every tree's randomness independent of how
    // work is scheduled, so trees can be grown in parallel (or in any
    // order) and the fitted forest is identical.
    par::Pool::global().parallelFor(trees_.size(), [&](std::size_t t) {
        Tree &tree = trees_[t];
        Rng rng(hashCombine(params_.seed,
                            static_cast<std::uint64_t>(t)));

        std::vector<std::size_t> feature_pool(p);
        std::iota(feature_pool.begin(), feature_pool.end(), 0);

        // Bootstrap sample.
        std::vector<std::size_t> rows(n);
        for (auto &r : rows)
            r = rng.uniformInt(static_cast<std::uint64_t>(n));

        // Iterative recursion via an explicit stack of work items.
        struct Item
        {
            std::vector<std::size_t> rows;
            int depth;
            int nodeIndex;
        };
        tree.nodes.push_back(Node{});
        std::vector<Item> stack;
        stack.push_back({std::move(rows), 0, 0});

        while (!stack.empty()) {
            Item item = std::move(stack.back());
            stack.pop_back();
            Node &node = tree.nodes[item.nodeIndex];

            double sum = 0.0, sq = 0.0;
            for (const std::size_t r : item.rows) {
                sum += y[r];
                sq += y[r] * y[r];
            }
            const double count = static_cast<double>(item.rows.size());
            const double node_mean = sum / count;
            const double node_sse = sq - sum * sum / count;

            const bool stop = item.depth >= params_.maxDepth ||
                              item.rows.size() < 2 * params_.minSamplesLeaf ||
                              node_sse <= 1e-12;
            if (stop) {
                node.feature = -1;
                node.value = node_mean;
                continue;
            }

            // Choose mtry candidate features at random (partial
            // Fisher-Yates on this tree's pool).
            for (std::size_t k = 0; k < mtry; ++k) {
                const std::size_t pick =
                    k + rng.uniformInt(
                            static_cast<std::uint64_t>(p - k));
                std::swap(feature_pool[k], feature_pool[pick]);
            }

            int best_feature = -1;
            double best_threshold = 0.0;
            double best_sse = node_sse;

            std::vector<std::size_t> order = item.rows;
            for (std::size_t k = 0; k < mtry; ++k) {
                const std::size_t feat = feature_pool[k];
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                              return x[a][feat] < x[b][feat];
                          });
                // Prefix scan of sums for O(n) split evaluation.
                double left_sum = 0.0, left_sq = 0.0;
                for (std::size_t i = 0; i + 1 < order.size(); ++i) {
                    const double v = y[order[i]];
                    left_sum += v;
                    left_sq += v * v;
                    const double xv = x[order[i]][feat];
                    const double xn = x[order[i + 1]][feat];
                    if (xv == xn)
                        continue;
                    const std::size_t nl = i + 1;
                    const std::size_t nr = order.size() - nl;
                    if (nl < params_.minSamplesLeaf ||
                        nr < params_.minSamplesLeaf)
                        continue;
                    const double right_sum = sum - left_sum;
                    const double right_sq = sq - left_sq;
                    const double sse =
                        (left_sq - left_sum * left_sum / nl) +
                        (right_sq - right_sum * right_sum / nr);
                    if (sse < best_sse) {
                        best_sse = sse;
                        best_feature = static_cast<int>(feat);
                        best_threshold = 0.5 * (xv + xn);
                    }
                }
            }

            if (best_feature < 0) {
                node.feature = -1;
                node.value = node_mean;
                continue;
            }

            std::vector<std::size_t> left_rows, right_rows;
            for (const std::size_t r : item.rows) {
                if (x[r][best_feature] <= best_threshold)
                    left_rows.push_back(r);
                else
                    right_rows.push_back(r);
            }

            const int left_index = static_cast<int>(tree.nodes.size());
            tree.nodes.push_back(Node{});
            const int right_index = static_cast<int>(tree.nodes.size());
            tree.nodes.push_back(Node{});
            // `node` may be dangling after push_back; reindex.
            Node &parent = tree.nodes[item.nodeIndex];
            parent.feature = best_feature;
            parent.threshold = best_threshold;
            parent.left = left_index;
            parent.right = right_index;

            stack.push_back({std::move(left_rows), item.depth + 1,
                             left_index});
            stack.push_back({std::move(right_rows), item.depth + 1,
                             right_index});
        }
    });
}

double
RandomForestRegressor::predict(std::span<const double> row) const
{
    DFAULT_ASSERT(!trees_.empty(), "forest: predict before fit");
    double acc = 0.0;
    for (const auto &tree : trees_)
        acc += tree.predict(row);
    return acc / static_cast<double>(trees_.size());
}

} // namespace dfault::ml
