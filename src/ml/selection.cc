#include "ml/selection.hh"

#include <algorithm>
#include <cmath>

#include "stats/correlation.hh"

namespace dfault::ml {

std::vector<FeatureCorrelation>
correlateFeatures(const Dataset &data)
{
    std::vector<FeatureCorrelation> out;
    out.reserve(data.featureCount());
    for (std::size_t j = 0; j < data.featureCount(); ++j) {
        FeatureCorrelation fc;
        fc.featureIndex = j;
        fc.name = data.featureNames()[j];
        fc.rs = stats::spearman(data.column(j), data.y());
        out.push_back(std::move(fc));
    }
    return out;
}

std::vector<FeatureCorrelation>
rankFeatures(const Dataset &data)
{
    auto out = correlateFeatures(data);
    std::stable_sort(out.begin(), out.end(),
                     [](const FeatureCorrelation &a,
                        const FeatureCorrelation &b) {
                         return std::abs(a.rs) > std::abs(b.rs);
                     });
    return out;
}

} // namespace dfault::ml
