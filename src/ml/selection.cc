#include "ml/selection.hh"

#include <algorithm>
#include <cmath>

#include "stats/correlation.hh"

namespace dfault::ml {

std::vector<FeatureCorrelation>
correlateFeatures(const Dataset &data)
{
    // Spearman rs is the Pearson correlation of midranks, so the
    // target is ranked exactly once per dataset — not re-ranked inside
    // every (feature, target) pair as spearman() would — and every
    // column reuses one gather buffer and one argsort scratch instead
    // of allocating per pair.
    const std::vector<double> target_ranks = stats::ranks(data.y());
    std::vector<double> col, col_ranks;
    std::vector<std::size_t> order;

    std::vector<FeatureCorrelation> out;
    out.reserve(data.featureCount());
    for (std::size_t j = 0; j < data.featureCount(); ++j) {
        data.columnInto(j, col);
        stats::ranksInto(col, order, col_ranks);
        FeatureCorrelation fc;
        fc.featureIndex = j;
        fc.name = data.featureNames()[j];
        fc.rs = stats::pearson(col_ranks, target_ranks);
        out.push_back(std::move(fc));
    }
    return out;
}

std::vector<FeatureCorrelation>
rankFeatures(const Dataset &data)
{
    auto out = correlateFeatures(data);
    std::stable_sort(out.begin(), out.end(),
                     [](const FeatureCorrelation &a,
                        const FeatureCorrelation &b) {
                         return std::abs(a.rs) > std::abs(b.rs);
                     });
    return out;
}

} // namespace dfault::ml
