/**
 * @file
 * Random decision forest regression: bagged CART trees with per-split
 * feature subsampling (Breiman-style).
 */

#ifndef DFAULT_ML_FOREST_HH
#define DFAULT_ML_FOREST_HH

#include <cstdint>

#include "ml/regressor.hh"

namespace dfault::ml {

/** See file comment. */
class RandomForestRegressor : public Regressor
{
  public:
    struct Params
    {
        int trees = 100;
        int maxDepth = 12;
        std::size_t minSamplesLeaf = 2;
        /** Features tried per split; 0 selects p/3 (regression default). */
        std::size_t maxFeatures = 0;
        std::uint64_t seed = 1234;
    };

    RandomForestRegressor();
    explicit RandomForestRegressor(const Params &params);

    void fit(const Matrix &x, std::span<const double> y) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "RDF"; }

  private:
    struct Node
    {
        // Leaf when feature < 0.
        int feature = -1;
        double threshold = 0.0;
        double value = 0.0;
        int left = -1;
        int right = -1;
    };

    struct Tree
    {
        std::vector<Node> nodes;
        double predict(std::span<const double> row) const;
    };

    Params params_;
    std::vector<Tree> trees_;
};

} // namespace dfault::ml

#endif // DFAULT_ML_FOREST_HH
