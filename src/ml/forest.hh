/**
 * @file
 * Random decision forest regression: bagged CART trees with per-split
 * feature subsampling (Breiman-style).
 */

#ifndef DFAULT_ML_FOREST_HH
#define DFAULT_ML_FOREST_HH

#include <cstdint>

#include "ml/regressor.hh"

namespace dfault::ml {

/** See file comment. */
class RandomForestRegressor : public Regressor
{
  public:
    struct Params
    {
        int trees = 100;
        int maxDepth = 12;
        std::size_t minSamplesLeaf = 2;
        /** Features tried per split; 0 selects p/3 (regression default). */
        std::size_t maxFeatures = 0;
        std::uint64_t seed = 1234;
    };

    RandomForestRegressor();
    explicit RandomForestRegressor(const Params &params);

    void fit(const Matrix &x, std::span<const double> y) override;
    double predict(std::span<const double> row) const override;
    /**
     * Batched traversal over the SoA node arrays: one pass per tree
     * over all rows, so the tree's nodes stay hot in cache across the
     * batch. Bit-identical to predict() row by row (per-row tree sums
     * accumulate in the same tree order).
     */
    void predictMany(const Matrix &rows,
                     std::vector<double> &out) const override;
    std::string name() const override { return "RDF"; }

    /** Trees grown by the last fit() (0 before fit). */
    std::size_t treeCount() const { return treeRoots_.size(); }

    /**
     * Prediction of the first min(@p trees, treeCount()) trees only —
     * the cheap degraded-mode estimate behind ForestSliceRegressor.
     * Bagging makes every tree an unbiased (if noisy) estimate of the
     * ensemble, so a prefix slice is the natural accuracy/cost dial.
     * @p trees == 0 is a named fatal error; @p trees > treeCount()
     * clamps to the whole forest.
     */
    double predictFirstTrees(std::span<const double> row,
                             std::size_t trees) const;

  private:
    /**
     * One traversal node packed to 16 bytes — half the growth node —
     * so twice as many fit per cache line and a tree hop touches one
     * line. Children are allocated in pairs during growth, so only
     * the left child index is stored; the right child is always
     * child + 1. Leaves have feature -1 and keep their value in the
     * threshold slot.
     */
    struct PackedNode
    {
        std::int32_t feature = -1;
        std::int32_t child = -1;
        double threshold = 0.0;
    };

    /** All trees' nodes flattened into one contiguous array. */
    std::vector<PackedNode> nodes_;
    /** Root node index of each tree within nodes_. */
    std::vector<std::int32_t> treeRoots_;

    double predictTree(std::int32_t root,
                       std::span<const double> row) const;

    Params params_;
};

/**
 * Read-only view over the first N trees of a fitted forest, exposed as
 * a Regressor so it can stand in as a cheap degraded-mode fallback
 * (serve::PredictionService). Does not own the forest; the forest must
 * outlive the slice and stay fitted. fit() is a hard error.
 */
class ForestSliceRegressor : public Regressor
{
  public:
    /**
     * @p trees == 0 is a named fatal error (a 0-tree slice has no
     * prediction); @p trees > forest.treeCount() clamps to the whole
     * forest at predict time, so an over-wide slice predicts exactly
     * what the full ensemble does.
     */
    explicit ForestSliceRegressor(const RandomForestRegressor &forest,
                                  std::size_t trees = 1);

    void fit(const Matrix &x, std::span<const double> y) override;
    double predict(std::span<const double> row) const override;
    void predictMany(const Matrix &rows,
                     std::vector<double> &out) const override;
    std::string name() const override { return "RDF-slice"; }

    std::size_t trees() const { return trees_; }

  private:
    const RandomForestRegressor &forest_;
    std::size_t trees_;
};

} // namespace dfault::ml

#endif // DFAULT_ML_FOREST_HH
