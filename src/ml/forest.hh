/**
 * @file
 * Random decision forest regression: bagged CART trees with per-split
 * feature subsampling (Breiman-style).
 */

#ifndef DFAULT_ML_FOREST_HH
#define DFAULT_ML_FOREST_HH

#include <cstdint>

#include "ml/regressor.hh"

namespace dfault::ml {

/** See file comment. */
class RandomForestRegressor : public Regressor
{
  public:
    struct Params
    {
        int trees = 100;
        int maxDepth = 12;
        std::size_t minSamplesLeaf = 2;
        /** Features tried per split; 0 selects p/3 (regression default). */
        std::size_t maxFeatures = 0;
        std::uint64_t seed = 1234;
    };

    RandomForestRegressor();
    explicit RandomForestRegressor(const Params &params);

    void fit(const Matrix &x, std::span<const double> y) override;
    double predict(std::span<const double> row) const override;
    /**
     * Batched traversal over the SoA node arrays: one pass per tree
     * over all rows, so the tree's nodes stay hot in cache across the
     * batch. Bit-identical to predict() row by row (per-row tree sums
     * accumulate in the same tree order).
     */
    void predictMany(const Matrix &rows,
                     std::vector<double> &out) const override;
    std::string name() const override { return "RDF"; }

  private:
    /**
     * One traversal node packed to 16 bytes — half the growth node —
     * so twice as many fit per cache line and a tree hop touches one
     * line. Children are allocated in pairs during growth, so only
     * the left child index is stored; the right child is always
     * child + 1. Leaves have feature -1 and keep their value in the
     * threshold slot.
     */
    struct PackedNode
    {
        std::int32_t feature = -1;
        std::int32_t child = -1;
        double threshold = 0.0;
    };

    /** All trees' nodes flattened into one contiguous array. */
    std::vector<PackedNode> nodes_;
    /** Root node index of each tree within nodes_. */
    std::vector<std::int32_t> treeRoots_;

    double predictTree(std::int32_t root,
                       std::span<const double> row) const;

    Params params_;
};

} // namespace dfault::ml

#endif // DFAULT_ML_FOREST_HH
