/**
 * @file
 * Leave-One-Group-Out cross-validation (paper §III-F, Fig 3 right).
 *
 * For every benchmark, one fold holds out all samples of that benchmark
 * as the test set and trains on everything else; the reported accuracy
 * is averaged over folds. This is the protocol that makes the study a
 * test of *generalization to unseen workloads* rather than of
 * interpolation.
 */

#ifndef DFAULT_ML_CROSS_VALIDATION_HH
#define DFAULT_ML_CROSS_VALIDATION_HH

#include <string>
#include <vector>

#include "ml/dataset.hh"

namespace dfault::ml {

/** One train/test split of a leave-one-group-out protocol. */
struct Fold
{
    std::string heldOutGroup;
    std::vector<std::size_t> trainRows;
    std::vector<std::size_t> testRows;
};

/** All folds of the leave-one-group-out protocol over @p data. */
std::vector<Fold> leaveOneGroupOut(const Dataset &data);

} // namespace dfault::ml

#endif // DFAULT_ML_CROSS_VALIDATION_HH
