#include "ml/grid_search.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ml/cross_validation.hh"
#include "ml/metrics.hh"
#include "ml/scaler.hh"

namespace dfault::ml {

std::vector<GridResult>
gridSearch(const Dataset &data, const std::vector<GridCandidate> &grid)
{
    DFAULT_ASSERT(!data.empty(), "grid search needs data");
    DFAULT_ASSERT(!grid.empty(), "grid search needs candidates");

    const auto folds = leaveOneGroupOut(data);
    DFAULT_ASSERT(folds.size() >= 2,
                  "grid search needs at least two groups");

    std::vector<GridResult> results;
    results.reserve(grid.size());
    for (const auto &candidate : grid) {
        double rmse_sum = 0.0;
        int fold_count = 0;
        for (const Fold &fold : folds) {
            if (fold.trainRows.empty() || fold.testRows.empty())
                continue;
            const Dataset train = data.subset(fold.trainRows);
            const Dataset test = data.subset(fold.testRows);

            StandardScaler scaler;
            scaler.fit(train.x());
            auto model = candidate.make();
            model->fit(scaler.transform(train.x()), train.y());

            std::vector<double> predicted;
            predicted.reserve(test.size());
            for (const auto &row : test.x())
                predicted.push_back(
                    model->predict(scaler.transform(row)));
            rmse_sum += rmse(test.y(), predicted);
            ++fold_count;
        }
        GridResult result;
        result.label = candidate.label;
        result.meanRmse =
            fold_count > 0 ? rmse_sum / fold_count : 0.0;
        results.push_back(std::move(result));
    }
    return results;
}

std::size_t
bestCandidate(const std::vector<GridResult> &results)
{
    DFAULT_ASSERT(!results.empty(), "no grid results to rank");
    std::size_t best = 0;
    for (std::size_t i = 1; i < results.size(); ++i)
        if (results[i].meanRmse < results[best].meanRmse)
            best = i;
    return best;
}

} // namespace dfault::ml
