#include "ml/grid_search.hh"

#include <algorithm>

#include "common/logging.hh"
#include "ml/cross_validation.hh"
#include "ml/metrics.hh"
#include "ml/scaler.hh"
#include "obs/span.hh"
#include "obs/timer.hh"
#include "par/pool.hh"

namespace dfault::ml {

std::vector<GridResult>
gridSearch(const Dataset &data, const std::vector<GridCandidate> &grid)
{
    DFAULT_ASSERT(!data.empty(), "grid search needs data");
    DFAULT_ASSERT(!grid.empty(), "grid search needs candidates");

    const auto folds = leaveOneGroupOut(data);
    DFAULT_ASSERT(folds.size() >= 2,
                  "grid search needs at least two groups");

    // Every (candidate, fold) cell is an independent fit: flatten the
    // two loops into one task list so even a small grid saturates the
    // pool. Per-candidate means are reduced below in fold order, so
    // the RMSE sums match a serial run bit for bit.
    struct Cell
    {
        double rmse = 0.0;
        char contributed = 0;
    };
    const obs::ScopedTimer timer("grid_search");
    const std::size_t n_folds = folds.size();
    const auto cells = par::Pool::global().parallelMap<Cell>(
        grid.size() * n_folds, [&](std::size_t i) {
            // Honour shutdown/deadline cancellation between fits.
            par::rootCancelToken().throwIfCancelled();
            const auto &candidate = grid[i / n_folds];
            const Fold &fold = folds[i % n_folds];
            // Name the cell in the trace by candidate and held-out
            // fold, so a slow grid cell is identifiable in Perfetto.
            if (obs::SpanTracer::instance().enabled())
                obs::SpanTracer::instance().annotateCurrent(
                    candidate.label + " holdout " + fold.heldOutGroup);
            if (fold.trainRows.empty() || fold.testRows.empty())
                return Cell{};
            const Dataset train = data.subset(fold.trainRows);
            const Dataset test = data.subset(fold.testRows);

            StandardScaler scaler;
            scaler.fit(train.x());
            auto model = candidate.make();
            model->fit(scaler.transform(train.x()), train.y());

            std::vector<double> predicted;
            model->predictMany(scaler.transform(test.x()), predicted);
            return Cell{rmse(test.y(), predicted), 1};
        });

    std::vector<GridResult> results;
    results.reserve(grid.size());
    for (std::size_t c = 0; c < grid.size(); ++c) {
        double rmse_sum = 0.0;
        int fold_count = 0;
        for (std::size_t f = 0; f < n_folds; ++f) {
            const Cell &cell = cells[c * n_folds + f];
            if (!cell.contributed)
                continue;
            rmse_sum += cell.rmse;
            ++fold_count;
        }
        GridResult result;
        result.label = grid[c].label;
        result.meanRmse =
            fold_count > 0 ? rmse_sum / fold_count : 0.0;
        results.push_back(std::move(result));
    }
    return results;
}

std::size_t
bestCandidate(const std::vector<GridResult> &results)
{
    DFAULT_ASSERT(!results.empty(), "no grid results to rank");
    std::size_t best = 0;
    for (std::size_t i = 1; i < results.size(); ++i)
        if (results[i].meanRmse < results[best].meanRmse)
            best = i;
    return best;
}

} // namespace dfault::ml
