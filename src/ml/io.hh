/**
 * @file
 * Dataset serialization.
 *
 * The paper's authors released their characterization data and model
 * publicly; this is the equivalent facility — campaign datasets round-
 * trip through CSV so they can be consumed by external tooling
 * (pandas, scikit-learn, gnuplot) or re-loaded into this library.
 *
 * Format: one header row `feature1,...,featureN,target,group`, then
 * one data row per sample. Values use maximal precision; group labels
 * must not contain commas or newlines.
 */

#ifndef DFAULT_ML_IO_HH
#define DFAULT_ML_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "ml/dataset.hh"

namespace dfault::ml {

/** Serialize @p data as CSV to a stream. */
void writeCsv(const Dataset &data, std::ostream &out);

/**
 * Serialize @p data as CSV to @p path; fatal() on I/O failure. The
 * file is written atomically (write-temp, fsync, rename), so a crash
 * mid-write never leaves a truncated dataset behind.
 */
void writeCsvFile(const Dataset &data, const std::string &path);

/**
 * Parse a dataset from CSV; fatal() on malformed input, including
 * rows whose features or target are NaN/inf (the diagnostic names the
 * offending column and line).
 */
Dataset readCsv(std::istream &in);

/** Parse a dataset from the CSV file at @p path. */
Dataset readCsvFile(const std::string &path);

/**
 * Non-fatal load: returns std::nullopt — with a one-line description
 * in @p error when non-null — instead of aborting, for callers that
 * can degrade when a dataset file is missing, truncated, or garbage.
 */
std::optional<Dataset> tryReadCsvFile(const std::string &path,
                                      std::string *error = nullptr);

} // namespace dfault::ml

#endif // DFAULT_ML_IO_HH
