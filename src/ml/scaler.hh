/**
 * @file
 * Feature standardization (zero mean, unit variance), fit on training
 * data only and applied to both splits — the scikit-learn convention
 * the paper's pipeline uses.
 */

#ifndef DFAULT_ML_SCALER_HH
#define DFAULT_ML_SCALER_HH

#include <span>
#include <vector>

#include "ml/dataset.hh"

namespace dfault::ml {

/** See file comment. */
class StandardScaler
{
  public:
    /** Learn per-column mean and standard deviation. */
    void fit(const Matrix &x);

    /** Standardize one row. @pre fitted and matching width. */
    std::vector<double> transform(std::span<const double> row) const;

    /** Standardize a whole matrix. */
    Matrix transform(const Matrix &x) const;

    bool fitted() const { return !mean_.empty(); }

  private:
    std::vector<double> mean_;
    std::vector<double> scale_; ///< stddev, 1.0 for constant columns
};

} // namespace dfault::ml

#endif // DFAULT_ML_SCALER_HH
