#include "ml/dataset.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dfault::ml {

std::optional<std::size_t>
firstNonFinite(std::span<const double> row)
{
    for (std::size_t j = 0; j < row.size(); ++j)
        if (!std::isfinite(row[j]))
            return j;
    return std::nullopt;
}

Dataset::Dataset(std::vector<std::string> feature_names)
    : featureNames_(std::move(feature_names))
{
}

void
Dataset::addSample(std::vector<double> features, double target,
                   std::string group)
{
    DFAULT_ASSERT(features.size() == featureNames_.size(),
                  "sample width does not match the dataset schema");
    features_.push_back(std::move(features));
    targets_.push_back(target);
    groups_.push_back(std::move(group));
}

std::vector<double>
Dataset::column(std::size_t j) const
{
    std::vector<double> out;
    columnInto(j, out);
    return out;
}

void
Dataset::columnInto(std::size_t j, std::vector<double> &out) const
{
    DFAULT_ASSERT(j < featureCount(), "column index out of range");
    out.clear();
    out.reserve(size());
    for (const auto &row : features_)
        out.push_back(row[j]);
}

std::vector<std::string>
Dataset::distinctGroups() const
{
    std::vector<std::string> out;
    for (const auto &g : groups_)
        if (std::find(out.begin(), out.end(), g) == out.end())
            out.push_back(g);
    return out;
}

Dataset
Dataset::subset(std::span<const std::size_t> rows) const
{
    Dataset out(featureNames_);
    for (const std::size_t r : rows) {
        DFAULT_ASSERT(r < size(), "row index out of range");
        out.addSample(features_[r], targets_[r], groups_[r]);
    }
    return out;
}

Dataset
Dataset::project(std::span<const std::size_t> columns) const
{
    std::vector<std::string> names;
    names.reserve(columns.size());
    for (const std::size_t c : columns) {
        DFAULT_ASSERT(c < featureCount(), "column index out of range");
        names.push_back(featureNames_[c]);
    }
    Dataset out(std::move(names));
    for (std::size_t r = 0; r < size(); ++r) {
        std::vector<double> row;
        row.reserve(columns.size());
        for (const std::size_t c : columns)
            row.push_back(features_[r][c]);
        out.addSample(std::move(row), targets_[r], groups_[r]);
    }
    return out;
}

} // namespace dfault::ml
