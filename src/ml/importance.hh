/**
 * @file
 * Permutation feature importance.
 *
 * Complements the Spearman screening of paper §VI-A with a model-based
 * view: after fitting a regressor, each feature column of a held-out
 * set is shuffled in turn and the increase in prediction error is the
 * feature's importance. Features the model ignores score ~0; features
 * it relies on score high — the standard diagnosis for the input-set-3
 * overfitting the paper reports.
 */

#ifndef DFAULT_ML_IMPORTANCE_HH
#define DFAULT_ML_IMPORTANCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hh"
#include "ml/regressor.hh"

namespace dfault::ml {

/** Importance of one feature: error inflation when it is shuffled. */
struct FeatureImportance
{
    std::size_t featureIndex = 0;
    std::string name;
    /** rmse(shuffled) - rmse(intact); <= 0 means the feature is unused
     *  (or actively harmful). */
    double rmseIncrease = 0.0;
};

/**
 * Permutation importances of a fitted model on an evaluation set.
 *
 * @param model fitted regressor
 * @param eval  evaluation samples (same feature space the model was
 *              fit on, already scaled the same way)
 * @param repeats shuffles per feature (averaged)
 * @param seed  shuffle seed
 * @return importances in feature order
 */
std::vector<FeatureImportance>
permutationImportance(const Regressor &model, const Dataset &eval,
                      int repeats = 5, std::uint64_t seed = 17);

/** The same importances sorted by decreasing rmseIncrease. */
std::vector<FeatureImportance>
rankImportance(const Regressor &model, const Dataset &eval,
               int repeats = 5, std::uint64_t seed = 17);

} // namespace dfault::ml

#endif // DFAULT_ML_IMPORTANCE_HH
