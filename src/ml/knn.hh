/**
 * @file
 * K-nearest-neighbours regression with inverse-distance weighting.
 *
 * The paper finds KNN the most accurate of the three models for both
 * WER and PUE prediction (§VI-B); predictions complete "within 300 ms"
 * on the paper's setup and within microseconds here.
 */

#ifndef DFAULT_ML_KNN_HH
#define DFAULT_ML_KNN_HH

#include "ml/regressor.hh"

namespace dfault::ml {

/** See file comment. */
class KnnRegressor : public Regressor
{
  public:
    struct Params
    {
        int k = 3;
        /** Inverse-distance weighting (scikit "distance"); false = mean. */
        bool distanceWeighted = true;
    };

    KnnRegressor();
    explicit KnnRegressor(const Params &params);

    void fit(const Matrix &x, std::span<const double> y) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "KNN"; }

  private:
    Params params_;
    /**
     * Training rows flattened row-major into one contiguous buffer
     * (rows_ x cols_): the distance scan walks it linearly, and the
     * blocked inner loop vectorizes across rows.
     */
    std::vector<double> flat_;
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> y_;
};

} // namespace dfault::ml

#endif // DFAULT_ML_KNN_HH
