#include "ml/io.hh"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"
#include "fi/durable.hh"

namespace dfault::ml {

namespace {

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream stream(line);
    while (std::getline(stream, field, ','))
        fields.push_back(field);
    if (!line.empty() && line.back() == ',')
        fields.emplace_back();
    return fields;
}

/**
 * Shared parser core behind readCsv (fatal) and tryReadCsvFile
 * (non-fatal): true on success, false with a one-line description in
 * @p error otherwise.
 */
bool
parseCsv(std::istream &in, Dataset *out, std::string *error)
{
    std::string line;
    if (!std::getline(in, line)) {
        *error = "missing header row";
        return false;
    }

    auto header = splitCsvLine(line);
    if (header.size() < 2 || header[header.size() - 2] != "target" ||
        header.back() != "group") {
        *error = "header must end in 'target,group'";
        return false;
    }
    header.pop_back(); // group
    header.pop_back(); // target

    Dataset data(header);
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto fields = splitCsvLine(line);
        if (fields.size() != header.size() + 2) {
            *error = detail::concat("line ", line_no, " has ",
                                    fields.size(), " fields, expected ",
                                    header.size() + 2);
            return false;
        }
        std::vector<double> row;
        row.reserve(header.size());
        for (std::size_t j = 0; j < header.size(); ++j) {
            char *end = nullptr;
            row.push_back(std::strtod(fields[j].c_str(), &end));
            if (end == fields[j].c_str()) {
                *error = detail::concat("line ", line_no,
                                        ": bad number '", fields[j],
                                        "'");
                return false;
            }
        }
        if (const auto bad = firstNonFinite(row)) {
            *error = detail::concat("line ", line_no, ": feature '",
                                    header[*bad], "' is not finite (",
                                    fields[*bad], ")");
            return false;
        }
        char *end = nullptr;
        const double target =
            std::strtod(fields[header.size()].c_str(), &end);
        if (end == fields[header.size()].c_str()) {
            *error = detail::concat("line ", line_no, ": bad target");
            return false;
        }
        if (!std::isfinite(target)) {
            *error = detail::concat("line ", line_no,
                                    ": target is not finite (",
                                    fields[header.size()], ")");
            return false;
        }
        data.addSample(std::move(row), target, fields.back());
    }
    *out = std::move(data);
    return true;
}

} // namespace

void
writeCsv(const Dataset &data, std::ostream &out)
{
    for (const auto &name : data.featureNames()) {
        if (name.find(',') != std::string::npos)
            DFAULT_FATAL("csv: feature name contains a comma: ", name);
        out << name << ',';
    }
    out << "target,group\n";

    out << std::setprecision(17);
    for (std::size_t i = 0; i < data.size(); ++i) {
        for (const double v : data.x()[i])
            out << v << ',';
        const std::string &group = data.groups()[i];
        if (group.find(',') != std::string::npos ||
            group.find('\n') != std::string::npos) {
            DFAULT_FATAL("csv: group label contains a separator: ",
                         group);
        }
        out << data.y()[i] << ',' << group << '\n';
    }
}

void
writeCsvFile(const Dataset &data, const std::string &path)
{
    std::ostringstream out;
    writeCsv(data, out);
    if (!out)
        DFAULT_FATAL("csv: formatting rows for '", path, "' failed");
    if (!fi::atomicWriteFile(path, out.str()))
        DFAULT_FATAL("csv: write to '", path, "' failed");
}

Dataset
readCsv(std::istream &in)
{
    Dataset data;
    std::string error;
    if (!parseCsv(in, &data, &error))
        DFAULT_FATAL("csv: ", error);
    return data;
}

Dataset
readCsvFile(const std::string &path)
{
    std::string error;
    auto body = fi::readFile(path, &error);
    if (!body)
        DFAULT_FATAL("csv: ", error);
    std::istringstream in(*body);
    Dataset data;
    if (!parseCsv(in, &data, &error))
        DFAULT_FATAL("csv: '", path, "': ", error);
    return data;
}

std::optional<Dataset>
tryReadCsvFile(const std::string &path, std::string *error)
{
    std::string why;
    auto body = fi::readFile(path, &why);
    if (!body) {
        if (error)
            *error = why;
        return std::nullopt;
    }
    std::istringstream in(*body);
    Dataset data;
    if (!parseCsv(in, &data, &why)) {
        if (error)
            *error = detail::concat("'", path, "': ", why);
        return std::nullopt;
    }
    return data;
}

} // namespace dfault::ml
