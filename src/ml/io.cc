#include "ml/io.hh"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace dfault::ml {

namespace {

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream stream(line);
    while (std::getline(stream, field, ','))
        fields.push_back(field);
    if (!line.empty() && line.back() == ',')
        fields.emplace_back();
    return fields;
}

} // namespace

void
writeCsv(const Dataset &data, std::ostream &out)
{
    for (const auto &name : data.featureNames()) {
        if (name.find(',') != std::string::npos)
            DFAULT_FATAL("csv: feature name contains a comma: ", name);
        out << name << ',';
    }
    out << "target,group\n";

    out << std::setprecision(17);
    for (std::size_t i = 0; i < data.size(); ++i) {
        for (const double v : data.x()[i])
            out << v << ',';
        const std::string &group = data.groups()[i];
        if (group.find(',') != std::string::npos ||
            group.find('\n') != std::string::npos) {
            DFAULT_FATAL("csv: group label contains a separator: ",
                         group);
        }
        out << data.y()[i] << ',' << group << '\n';
    }
}

void
writeCsvFile(const Dataset &data, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        DFAULT_FATAL("csv: cannot open '", path, "' for writing");
    writeCsv(data, out);
    if (!out)
        DFAULT_FATAL("csv: write to '", path, "' failed");
}

Dataset
readCsv(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        DFAULT_FATAL("csv: missing header row");

    auto header = splitCsvLine(line);
    if (header.size() < 2 || header[header.size() - 2] != "target" ||
        header.back() != "group") {
        DFAULT_FATAL("csv: header must end in 'target,group'");
    }
    header.pop_back(); // group
    header.pop_back(); // target

    Dataset data(header);
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto fields = splitCsvLine(line);
        if (fields.size() != header.size() + 2)
            DFAULT_FATAL("csv: line ", line_no, " has ", fields.size(),
                         " fields, expected ", header.size() + 2);
        std::vector<double> row;
        row.reserve(header.size());
        for (std::size_t j = 0; j < header.size(); ++j) {
            char *end = nullptr;
            row.push_back(std::strtod(fields[j].c_str(), &end));
            if (end == fields[j].c_str())
                DFAULT_FATAL("csv: line ", line_no,
                             ": bad number '", fields[j], "'");
        }
        char *end = nullptr;
        const double target =
            std::strtod(fields[header.size()].c_str(), &end);
        if (end == fields[header.size()].c_str())
            DFAULT_FATAL("csv: line ", line_no, ": bad target");
        data.addSample(std::move(row), target, fields.back());
    }
    return data;
}

Dataset
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DFAULT_FATAL("csv: cannot open '", path, "' for reading");
    return readCsv(in);
}

} // namespace dfault::ml
