#include "ml/scaler.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfault::ml {

void
StandardScaler::fit(const Matrix &x)
{
    DFAULT_ASSERT(!x.empty(), "cannot fit scaler on an empty matrix");
    const std::size_t cols = x[0].size();
    mean_.assign(cols, 0.0);
    scale_.assign(cols, 0.0);

    const double n = static_cast<double>(x.size());
    for (const auto &row : x) {
        DFAULT_ASSERT(row.size() == cols, "ragged matrix");
        for (std::size_t j = 0; j < cols; ++j)
            mean_[j] += row[j];
    }
    for (auto &m : mean_)
        m /= n;
    for (const auto &row : x)
        for (std::size_t j = 0; j < cols; ++j) {
            const double d = row[j] - mean_[j];
            scale_[j] += d * d;
        }
    for (auto &s : scale_) {
        s = std::sqrt(s / n);
        if (s <= 0.0)
            s = 1.0; // constant column: leave centred at zero
    }
}

std::vector<double>
StandardScaler::transform(std::span<const double> row) const
{
    DFAULT_ASSERT(fitted(), "scaler used before fit()");
    DFAULT_ASSERT(row.size() == mean_.size(), "row width mismatch");
    std::vector<double> out(row.size());
    for (std::size_t j = 0; j < row.size(); ++j)
        out[j] = (row[j] - mean_[j]) / scale_[j];
    return out;
}

Matrix
StandardScaler::transform(const Matrix &x) const
{
    Matrix out;
    out.reserve(x.size());
    for (const auto &row : x)
        out.push_back(transform(row));
    return out;
}

} // namespace dfault::ml
