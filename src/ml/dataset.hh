/**
 * @file
 * Training datasets: rows of (feature vector, target, group label).
 *
 * The group label is the benchmark name; the paper's Leave-One-Out
 * protocol (Fig 3, right) holds out all samples of one benchmark per
 * fold, so samples must remember which benchmark produced them.
 */

#ifndef DFAULT_ML_DATASET_HH
#define DFAULT_ML_DATASET_HH

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dfault::ml {

/** Row-major numeric matrix. */
using Matrix = std::vector<std::vector<double>>;

/**
 * Index of the first NaN/inf entry in @p row, or nullopt when every
 * value is finite. A non-finite feature silently poisons every model
 * that trains on it (distances, gains, and means all become NaN), so
 * builders and loaders screen rows with this before ingesting them and
 * report the offending feature by name.
 */
std::optional<std::size_t> firstNonFinite(std::span<const double> row);

/** See file comment. */
class Dataset
{
  public:
    Dataset() = default;
    explicit Dataset(std::vector<std::string> feature_names);

    /** Append one sample. @pre features.size() == featureCount(). */
    void addSample(std::vector<double> features, double target,
                   std::string group);

    std::size_t size() const { return targets_.size(); }
    bool empty() const { return targets_.empty(); }
    std::size_t featureCount() const { return featureNames_.size(); }

    const Matrix &x() const { return features_; }
    const std::vector<double> &y() const { return targets_; }
    const std::vector<std::string> &groups() const { return groups_; }
    const std::vector<std::string> &featureNames() const
    {
        return featureNames_;
    }

    /** Column @p j as a contiguous vector. */
    std::vector<double> column(std::size_t j) const;

    /**
     * Gather column @p j into @p out, reusing its capacity. Loops that
     * visit every column (feature selection) call this with one
     * persistent buffer instead of allocating a fresh vector per
     * column via column().
     */
    void columnInto(std::size_t j, std::vector<double> &out) const;

    /** Distinct group labels in first-appearance order. */
    std::vector<std::string> distinctGroups() const;

    /** Subset by row indices (copies). */
    Dataset subset(std::span<const std::size_t> rows) const;

    /** Project onto a subset of feature columns (copies). */
    Dataset project(std::span<const std::size_t> columns) const;

  private:
    std::vector<std::string> featureNames_;
    Matrix features_;
    std::vector<double> targets_;
    std::vector<std::string> groups_;
};

} // namespace dfault::ml

#endif // DFAULT_ML_DATASET_HH
