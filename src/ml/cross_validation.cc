#include "ml/cross_validation.hh"

namespace dfault::ml {

std::vector<Fold>
leaveOneGroupOut(const Dataset &data)
{
    std::vector<Fold> folds;
    for (const std::string &group : data.distinctGroups()) {
        Fold fold;
        fold.heldOutGroup = group;
        for (std::size_t i = 0; i < data.size(); ++i) {
            if (data.groups()[i] == group)
                fold.testRows.push_back(i);
            else
                fold.trainRows.push_back(i);
        }
        folds.push_back(std::move(fold));
    }
    return folds;
}

} // namespace dfault::ml
