/**
 * @file
 * Regression accuracy metrics.
 *
 * The paper reports the mean percentage error (MPE) of WER and PUE
 * estimates: mean over samples of |predicted - measured| / measured.
 */

#ifndef DFAULT_ML_METRICS_HH
#define DFAULT_ML_METRICS_HH

#include <span>

namespace dfault::ml {

/**
 * Mean absolute percentage error in percent. Samples whose measured
 * value is zero are skipped (no percentage is defined for them);
 * returns 0 when no sample qualifies.
 */
double meanPercentageError(std::span<const double> measured,
                           std::span<const double> predicted);

/** Absolute percentage error of one (measured, predicted) pair. */
double percentageError(double measured, double predicted);

/** Root mean squared error. */
double rmse(std::span<const double> measured,
            std::span<const double> predicted);

/**
 * Geometric-mean error factor: exp(mean |ln(pred/meas)|); the "2.9x"
 * style multiplicative error the paper quotes for the conventional
 * workload-unaware model (Fig 13).
 */
double errorFactor(std::span<const double> measured,
                   std::span<const double> predicted);

} // namespace dfault::ml

#endif // DFAULT_ML_METRICS_HH
