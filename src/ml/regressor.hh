/**
 * @file
 * Common interface of the supervised models compared in the paper
 * (§III-B): SVM, KNN and Random Decision Forests.
 */

#ifndef DFAULT_ML_REGRESSOR_HH
#define DFAULT_ML_REGRESSOR_HH

#include <memory>
#include <span>
#include <string>

#include "ml/dataset.hh"

namespace dfault::ml {

/** Supervised regression model. */
class Regressor
{
  public:
    virtual ~Regressor() = default;

    /** Train on (x, y). Replaces any previous fit. */
    virtual void fit(const Matrix &x, std::span<const double> y) = 0;

    /** Predict the target for one feature row. @pre fitted. */
    virtual double predict(std::span<const double> row) const = 0;

    /**
     * Predict every row of @p rows into @p out (resized to match).
     * Results equal predict() applied row by row; models with batched
     * kernels (the forest's SoA traversal) override this to amortize
     * per-call overhead across the batch.
     */
    virtual void predictMany(const Matrix &rows,
                             std::vector<double> &out) const
    {
        out.resize(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i)
            out[i] = predict(rows[i]);
    }

    /** Short model name ("KNN", "SVM", "RDF"). */
    virtual std::string name() const = 0;
};

using RegressorPtr = std::unique_ptr<Regressor>;

} // namespace dfault::ml

#endif // DFAULT_ML_REGRESSOR_HH
