#include "ml/metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace dfault::ml {

double
percentageError(double measured, double predicted)
{
    DFAULT_ASSERT(measured != 0.0, "percentage error of zero baseline");
    return 100.0 * std::abs(predicted - measured) / std::abs(measured);
}

double
meanPercentageError(std::span<const double> measured,
                    std::span<const double> predicted)
{
    DFAULT_ASSERT(measured.size() == predicted.size(),
                  "metric inputs differ in length");
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] == 0.0)
            continue;
        acc += percentageError(measured[i], predicted[i]);
        ++n;
    }
    return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

double
rmse(std::span<const double> measured, std::span<const double> predicted)
{
    DFAULT_ASSERT(measured.size() == predicted.size(),
                  "metric inputs differ in length");
    if (measured.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < measured.size(); ++i) {
        const double d = predicted[i] - measured[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(measured.size()));
}

double
errorFactor(std::span<const double> measured,
            std::span<const double> predicted)
{
    DFAULT_ASSERT(measured.size() == predicted.size(),
                  "metric inputs differ in length");
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] <= 0.0 || predicted[i] <= 0.0)
            continue;
        acc += std::abs(std::log(predicted[i] / measured[i]));
        ++n;
    }
    return n == 0 ? 1.0 : std::exp(acc / static_cast<double>(n));
}

} // namespace dfault::ml
