/**
 * @file
 * Feature selection by Spearman rank correlation (paper §VI-A, Fig 10).
 */

#ifndef DFAULT_ML_SELECTION_HH
#define DFAULT_ML_SELECTION_HH

#include <string>
#include <vector>

#include "ml/dataset.hh"

namespace dfault::ml {

/** Correlation of one feature with the prediction target. */
struct FeatureCorrelation
{
    std::size_t featureIndex = 0;
    std::string name;
    double rs = 0.0; ///< Spearman's rank correlation coefficient
};

/**
 * Spearman rs of every feature column against the target, in feature
 * order.
 */
std::vector<FeatureCorrelation> correlateFeatures(const Dataset &data);

/**
 * The same correlations sorted by |rs| descending — the ranking used to
 * assemble the paper's strongly-correlated input sets.
 */
std::vector<FeatureCorrelation> rankFeatures(const Dataset &data);

} // namespace dfault::ml

#endif // DFAULT_ML_SELECTION_HH
