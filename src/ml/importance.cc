#include "ml/importance.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "ml/metrics.hh"

namespace dfault::ml {

namespace {

double
evalRmse(const Regressor &model, const Matrix &x,
         std::span<const double> y)
{
    std::vector<double> predicted;
    model.predictMany(x, predicted);
    return rmse(y, predicted);
}

} // namespace

std::vector<FeatureImportance>
permutationImportance(const Regressor &model, const Dataset &eval,
                      int repeats, std::uint64_t seed)
{
    DFAULT_ASSERT(!eval.empty(), "importance needs evaluation samples");
    DFAULT_ASSERT(repeats > 0, "importance needs at least one repeat");

    const double baseline = evalRmse(model, eval.x(), eval.y());
    Rng rng(seed);

    std::vector<FeatureImportance> out;
    out.reserve(eval.featureCount());
    for (std::size_t j = 0; j < eval.featureCount(); ++j) {
        FeatureImportance fi;
        fi.featureIndex = j;
        fi.name = eval.featureNames()[j];

        double inflated = 0.0;
        for (int rep = 0; rep < repeats; ++rep) {
            Matrix shuffled = eval.x();
            // Fisher-Yates over column j only.
            for (std::size_t i = shuffled.size(); i > 1; --i) {
                const std::size_t k = rng.uniformInt(
                    static_cast<std::uint64_t>(i));
                std::swap(shuffled[i - 1][j], shuffled[k][j]);
            }
            inflated += evalRmse(model, shuffled, eval.y());
        }
        fi.rmseIncrease = inflated / repeats - baseline;
        out.push_back(std::move(fi));
    }
    return out;
}

std::vector<FeatureImportance>
rankImportance(const Regressor &model, const Dataset &eval, int repeats,
               std::uint64_t seed)
{
    auto out = permutationImportance(model, eval, repeats, seed);
    std::stable_sort(out.begin(), out.end(),
                     [](const FeatureImportance &a,
                        const FeatureImportance &b) {
                         return a.rmseIncrease > b.rmseIncrease;
                     });
    return out;
}

} // namespace dfault::ml
