#include "obs/trace_writer.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.hh"
#include "fi/durable.hh"
#include "obs/json.hh"
#include "obs/stats.hh"

namespace dfault::obs {

namespace {

struct SpanAgg
{
    std::uint32_t tid = 0;
    double seconds = 0.0;
    double childSeconds = 0.0;
};

double
spanSeconds(const TraceEntry &e)
{
    return e.endNs >= e.startNs
               ? static_cast<double>(e.endNs - e.startNs) * 1e-9
               : 0.0;
}

/** Attribution key: task spans report under their phase path. */
const std::string &
pathOf(const TraceEntry &e)
{
    return e.path.empty() ? e.name : e.path;
}

} // namespace

std::vector<ExclusiveTime>
exclusiveTimes(const std::vector<TraceEntry> &entries)
{
    // Pass 1: per-span durations; pass 2: charge each span's duration
    // to its parent's child-sum, but only when both ran on the same
    // thread (a cross-thread child overlaps its parent in wall time).
    std::unordered_map<std::uint64_t, SpanAgg> spans;
    spans.reserve(entries.size());
    for (const TraceEntry &e : entries)
        if (e.kind == TraceKind::Span)
            spans[e.id] = SpanAgg{e.tid, spanSeconds(e), 0.0};
    for (const TraceEntry &e : entries) {
        if (e.kind != TraceKind::Span || e.parent == 0)
            continue;
        const auto parent = spans.find(e.parent);
        if (parent != spans.end() && parent->second.tid == e.tid)
            parent->second.childSeconds += spanSeconds(e);
    }

    std::map<std::string, ExclusiveTime> by_path;
    for (const TraceEntry &e : entries) {
        if (e.kind != TraceKind::Span)
            continue;
        const SpanAgg &agg = spans[e.id];
        ExclusiveTime &row = by_path[pathOf(e)];
        row.path = pathOf(e);
        row.inclusiveSeconds += agg.seconds;
        // Clock jitter can make a child's reading exceed its
        // parent's; clamp rather than report negative time.
        row.exclusiveSeconds +=
            std::max(0.0, agg.seconds - agg.childSeconds);
        ++row.spans;
    }

    std::vector<ExclusiveTime> rows;
    rows.reserve(by_path.size());
    for (auto &kv : by_path)
        rows.push_back(std::move(kv.second));
    std::sort(rows.begin(), rows.end(),
              [](const ExclusiveTime &a, const ExclusiveTime &b) {
                  return a.exclusiveSeconds > b.exclusiveSeconds;
              });
    return rows;
}

double
threadRootSeconds(const std::vector<TraceEntry> &entries)
{
    std::unordered_map<std::uint64_t, std::uint32_t> tids;
    for (const TraceEntry &e : entries)
        if (e.kind == TraceKind::Span)
            tids[e.id] = e.tid;
    double total = 0.0;
    for (const TraceEntry &e : entries) {
        if (e.kind != TraceKind::Span)
            continue;
        const auto parent = tids.find(e.parent);
        const bool root =
            e.parent == 0 || parent == tids.end() ||
            parent->second != e.tid;
        if (root)
            total += spanSeconds(e);
    }
    return total;
}

std::string
traceJson(const std::vector<TraceEntry> &entries)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto append = [&](const std::string &event) {
        if (!first)
            out += ',';
        first = false;
        out += event;
    };

    append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
           "\"args\":{\"name\":\"dfault\"}}");
    std::uint32_t max_tid = 0;
    for (const TraceEntry &e : entries)
        max_tid = std::max(max_tid, e.tid);
    for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
        JsonWriter meta;
        meta.field("name", "thread_name");
        meta.field("ph", "M");
        meta.field("pid", 0);
        meta.field("tid", static_cast<std::uint64_t>(tid));
        JsonWriter args;
        args.field("name", tid == 0 ? std::string("main")
                                    : "thread " + std::to_string(tid));
        meta.fieldRaw("args", args.str());
        append(meta.str());
    }

    for (const TraceEntry &e : entries) {
        JsonWriter w;
        switch (e.kind) {
          case TraceKind::Span: {
            w.field("name", e.name);
            w.field("cat", e.name == "task" ? "task" : "phase");
            w.field("ph", "X");
            w.field("pid", 0);
            w.field("tid", static_cast<std::uint64_t>(e.tid));
            w.field("ts", static_cast<double>(e.startNs) * 1e-3);
            w.field("dur", spanSeconds(e) * 1e6);
            JsonWriter args;
            args.field("path", pathOf(e));
            args.field("id", e.id);
            if (e.parent != 0)
                args.field("parent", e.parent);
            if (!e.detail.empty())
                args.field("detail", e.detail);
            w.fieldRaw("args", args.str());
            break;
          }
          case TraceKind::FlowBegin:
          case TraceKind::FlowEnd: {
            w.field("name", "task dispatch");
            w.field("cat", "par");
            w.field("ph", e.kind == TraceKind::FlowBegin ? "s" : "f");
            if (e.kind == TraceKind::FlowEnd)
                w.field("bp", "e"); // bind to the enclosing task slice
            w.field("id", e.id);
            w.field("pid", 0);
            w.field("tid", static_cast<std::uint64_t>(e.tid));
            w.field("ts", static_cast<double>(e.startNs) * 1e-3);
            break;
          }
          case TraceKind::CounterSample: {
            w.field("name", e.name);
            w.field("ph", "C");
            w.field("pid", 0);
            w.field("ts", static_cast<double>(e.startNs) * 1e-3);
            JsonWriter args;
            args.field("value", e.value);
            w.fieldRaw("args", args.str());
            break;
          }
        }
        append(w.str());
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

bool
writeTraceFile(const std::string &path,
               const std::vector<TraceEntry> &entries)
{
    return fi::atomicWriteFile(path, traceJson(entries) + "\n");
}

void
printCriticalPath(std::FILE *out,
                  const std::vector<ExclusiveTime> &rows, int top_k)
{
    if (rows.empty())
        return;
    double total = 0.0;
    for (const ExclusiveTime &row : rows)
        total += row.exclusiveSeconds;

    auto &reg = Registry::instance();
    std::fprintf(out, "%-36s %10s %6s %10s %8s %8s\n", "critical path",
                 "excl s", "%run", "incl s", "spans", "speedup");
    const int limit = std::min<int>(top_k, static_cast<int>(rows.size()));
    for (int i = 0; i < limit; ++i) {
        const ExclusiveTime &row = rows[i];
        const double pct =
            total > 0.0 ? 100.0 * row.exclusiveSeconds / total : 0.0;
        std::fprintf(out, "%-36s %10.3f %5.1f%% %10.3f %8llu",
                     row.path.c_str(), row.exclusiveSeconds, pct,
                     row.inclusiveSeconds,
                     static_cast<unsigned long long>(row.spans));
        // Realized speedup for paths that submitted pool batches.
        const std::string base = "par.phase." + row.path;
        if (reg.has(base + ".task_seconds") &&
            reg.has(base + ".wall_seconds")) {
            const double wall = reg.value(base + ".wall_seconds");
            const double task = reg.value(base + ".task_seconds");
            if (wall > 0.0)
                std::fprintf(out, " %7.2fx", task / wall);
        }
        std::fputc('\n', out);
    }
    std::fprintf(out,
                 "total exclusive (thread-root) time %.3f s over %d "
                 "path%s\n",
                 total, static_cast<int>(rows.size()),
                 rows.size() == 1 ? "" : "s");
}

} // namespace dfault::obs
