/**
 * @file
 * Structured run telemetry: a JSONL event sink plus progress lines.
 *
 * The sink streams one JSON object per line to a file or stderr — the
 * software analogue of the X-Gene2 testbed's SLIMpro error log and the
 * offline telemetry the paper's methodology is built on. Producers are
 * spread across the pipeline (campaign measurements, DRAM error
 * records, thermal settles, ML folds); each guards its emission with
 * enabled(), so a disabled sink costs one relaxed atomic load per
 * would-be event and allocates nothing.
 *
 * Every line carries "type", a monotonically increasing "seq" and "t"
 * (seconds since the sink was opened), followed by the producer's
 * fields:
 *
 *   {"type":"measurement","seq":12,"t":3.4,"label":"srad(par)",...}
 *
 * Progress lines are human-oriented one-liners on stderr, enabled by
 * --progress / progress=true and additionally gated by the global quiet
 * flag (detail::setQuiet silences them along with warn()/inform()).
 */

#ifndef DFAULT_OBS_EVENTS_HH
#define DFAULT_OBS_EVENTS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hh"

namespace dfault::obs {

/** See file comment. */
class EventSink
{
  public:
    /** The process-wide sink shared by all instrumented components. */
    static EventSink &instance();

    EventSink() = default;
    ~EventSink();
    EventSink(const EventSink &) = delete;
    EventSink &operator=(const EventSink &) = delete;

    /**
     * Start streaming to @p path ("-" selects stderr). Replaces any
     * previously attached destination. fatal() if the file cannot be
     * created (a user-supplied path).
     */
    void open(const std::string &path);

    /** Detach and flush; emit() becomes a no-op again. */
    void close();

    /** Cheap producer-side guard; see file comment. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append one record. The line is fully formatted first and written
     * with a single fwrite under the sink lock, so concurrent emitters
     * never interleave.
     */
    void emit(std::string_view type, const JsonWriter &fields);

    /** Records written since the sink was last opened. */
    std::uint64_t emitted() const
    {
        return emitted_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> emitted_{0};
    mutable std::mutex mutex_;
    std::FILE *out_ = nullptr;
    bool owned_ = false;
    std::chrono::steady_clock::time_point opened_;
};

/** Enable or disable progress lines (default: disabled). */
void setProgress(bool enabled);

/** True if progress lines are enabled and not silenced by setQuiet(). */
bool progressEnabled();

/**
 * Print one progress line ("progress: <msg>") to stderr as a single
 * write. No-op unless progressEnabled().
 */
void progress(const std::string &msg);

} // namespace dfault::obs

#endif // DFAULT_OBS_EVENTS_HH
