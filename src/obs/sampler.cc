#include "obs/sampler.hh"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "fi/durable.hh"
#include "obs/events.hh"
#include "obs/json.hh"

namespace dfault::obs {

std::optional<double>
parseDurationSeconds(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || !std::isfinite(value) || value < 0.0)
        return std::nullopt;
    const std::string unit(end);
    if (unit.empty() || unit == "s")
        return value;
    if (unit == "ms")
        return value * 1e-3;
    if (unit == "us")
        return value * 1e-6;
    if (unit == "ns")
        return value * 1e-9;
    return std::nullopt;
}

Sampler &
Sampler::instance()
{
    static Sampler sampler;
    return sampler;
}

Sampler::~Sampler()
{
    stop();
}

bool
Sampler::start(const SamplerOptions &opts)
{
    if (running())
        return false;
    if (opts.intervalSeconds <= 0.0)
        DFAULT_FATAL("sample interval must be > 0, got ",
                     opts.intervalSeconds);

    opts_ = opts;
    store_ = TimeSeriesStore(opts.ringCapacity);
    slo_ = SloTracker();
    for (const SloTarget &t : opts.sloTargets)
        slo_.addTarget(t);
    ticks_ = 0;

    if (opts_.metricsPort >= 0) {
        const Registry *reg = opts_.registry;
        server_.start(opts_.metricsPort,
                      [reg] { return openMetricsText(reg); });
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopRequested_ = false;
    }
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
Sampler::stop()
{
    if (running()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopRequested_ = true;
        }
        cv_.notify_all();
        thread_.join();
        // Final flush tick on the caller's thread: the run's last
        // stats always reach the metrics file and the SLO verdicts,
        // even when the run was cut short before the next cadence.
        tick();
    }
    server_.stop();
}

void
Sampler::loop()
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait_for(
                lock,
                std::chrono::duration<double>(opts_.intervalSeconds),
                [&] { return stopRequested_; });
            if (stopRequested_)
                return;
        }
        tick();
    }
}

void
Sampler::tick()
{
    const Registry &reg =
        opts_.registry != nullptr ? *opts_.registry : Registry::instance();
    auto &global = Registry::instance();
    const std::uint64_t tick_index = ticks_++;

    const std::vector<StatSample> samples = reg.sample();

    // Feed the rings. The sampler's own ts.*/slo.* bookkeeping is not
    // fed back in, so sampling the sampler cannot oscillate.
    for (const StatSample &s : samples) {
        if (s.name.rfind("ts.", 0) == 0 || s.name.rfind("slo.", 0) == 0)
            continue;
        store_.series(s.name).push(tick_index, s.value);
    }

    const std::vector<SloBreach> breaches = slo_.evaluate(
        tick_index, samples, store_, opts_.intervalSeconds,
        opts_.sloWindow);
    if (!breaches.empty()) {
        auto &sink = EventSink::instance();
        for (const SloBreach &b : breaches) {
            global.counter("slo.breaches",
                           "SLO evaluations that violated their target")
                .inc();
            if (b.entered)
                global.counter("slo.breach_episodes",
                               "transitions from meeting an SLO to "
                               "breaching it")
                    .inc();
            if (sink.enabled()) {
                JsonWriter fields;
                fields.field("spec", b.spec);
                fields.field("stat", b.stat);
                fields.field("agg", b.agg);
                fields.field("observed", b.observed);
                fields.field("threshold", b.threshold);
                fields.field("tick", b.tick);
                fields.field("entered", b.entered);
                sink.emit("slo_breach", fields);
            }
        }
    }

    global.counter("ts.sampler.ticks", "telemetry sampler ticks").inc();
    global.gauge("ts.sampler.series",
                 "stat series held in the sampler rings")
        .set(static_cast<double>(store_.size()));
    if (server_.running())
        global.gauge("ts.sampler.scrapes",
                     "GET /metrics requests served")
            .set(static_cast<double>(server_.requestsServed()));

    if (!opts_.metricsOutPath.empty()) {
        if (!fi::atomicWriteFile(opts_.metricsOutPath,
                                 openMetricsText(samples)))
            DFAULT_WARN("sampler: cannot write metrics snapshot to ",
                        opts_.metricsOutPath);
    }
}

std::string
Sampler::sloSummaryJson() const
{
    if (slo_.empty())
        return "";
    return slo_.summaryJson();
}

} // namespace dfault::obs
