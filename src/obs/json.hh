/**
 * @file
 * Minimal one-line JSON object builder for telemetry records.
 *
 * The observability layer emits flat JSON objects (JSONL stream lines,
 * stats dumps); this builder covers exactly that: string/number/bool
 * fields with correct escaping, no nesting beyond what the caller
 * composes by embedding a raw sub-object. Not a general JSON library.
 */

#ifndef DFAULT_OBS_JSON_HH
#define DFAULT_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace dfault::obs {

/** Escape @p raw for use inside a JSON string literal (no quotes added). */
std::string jsonEscape(std::string_view raw);

/** Format a double as JSON (finite shortest round-trip; NaN/inf -> null). */
std::string jsonNumber(double value);

/** Builds one flat JSON object, field by field, in insertion order. */
class JsonWriter
{
  public:
    JsonWriter &field(std::string_view key, std::string_view value);
    JsonWriter &field(std::string_view key, const char *value);
    JsonWriter &field(std::string_view key, const std::string &value);
    JsonWriter &field(std::string_view key, double value);
    JsonWriter &field(std::string_view key, std::int64_t value);
    JsonWriter &field(std::string_view key, std::uint64_t value);
    JsonWriter &field(std::string_view key, int value);
    JsonWriter &field(std::string_view key, bool value);

    /** Insert an already-serialized JSON value (object, array, ...). */
    JsonWriter &fieldRaw(std::string_view key, std::string_view json);

    /** The complete object, e.g. {"a":1,"b":"x"}. */
    std::string str() const { return "{" + body_ + "}"; }

    bool empty() const { return body_.empty(); }

  private:
    void key(std::string_view k);

    std::string body_;
};

} // namespace dfault::obs

#endif // DFAULT_OBS_JSON_HH
