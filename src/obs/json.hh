/**
 * @file
 * Minimal JSON support for telemetry records.
 *
 * The observability layer emits flat JSON objects (JSONL stream lines,
 * stats dumps, trace-event files); this module covers exactly that: a
 * one-line object builder with correct escaping, and a small
 * recursive-descent parser used to validate what the layer itself
 * wrote (trace exports, manifests, event lines). Not a general JSON
 * library — no comments, no trailing commas, UTF-8 passed through
 * untouched.
 */

#ifndef DFAULT_OBS_JSON_HH
#define DFAULT_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dfault::obs {

/** Escape @p raw for use inside a JSON string literal (no quotes added). */
std::string jsonEscape(std::string_view raw);

/** Format a double as JSON (finite shortest round-trip; NaN/inf -> null). */
std::string jsonNumber(double value);

/** Builds one flat JSON object, field by field, in insertion order. */
class JsonWriter
{
  public:
    JsonWriter &field(std::string_view key, std::string_view value);
    JsonWriter &field(std::string_view key, const char *value);
    JsonWriter &field(std::string_view key, const std::string &value);
    JsonWriter &field(std::string_view key, double value);
    JsonWriter &field(std::string_view key, std::int64_t value);
    JsonWriter &field(std::string_view key, std::uint64_t value);
    JsonWriter &field(std::string_view key, int value);
    JsonWriter &field(std::string_view key, bool value);

    /** Insert an already-serialized JSON value (object, array, ...). */
    JsonWriter &fieldRaw(std::string_view key, std::string_view json);

    /** The complete object, e.g. {"a":1,"b":"x"}. */
    std::string str() const { return "{" + body_ + "}"; }

    bool empty() const { return body_.empty(); }

  private:
    void key(std::string_view k);

    std::string body_;
};

/**
 * Parsed JSON value. Objects preserve no duplicate keys (the last one
 * wins) and are sorted by key, which is all the validating consumers
 * need.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member by key, or nullptr when absent / not an object. */
    const JsonValue *find(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

/**
 * Parse one complete JSON document. Returns std::nullopt on malformed
 * input (trailing garbage included) and, when @p error is non-null,
 * stores a one-line description with the byte offset.
 */
std::optional<JsonValue> jsonParse(std::string_view text,
                                   std::string *error = nullptr);

} // namespace dfault::obs

#endif // DFAULT_OBS_JSON_HH
