/**
 * @file
 * Chrome trace-event export and exclusive-time attribution for the
 * span layer.
 *
 * traceJson() turns drained SpanTracer entries into the Chrome
 * trace-event JSON object format — complete ("X") slices per span,
 * flow arrows ("s"/"f") linking pool task submission to execution,
 * counter ("C") tracks from the stats samples, and thread-name
 * metadata — loadable in Perfetto (ui.perfetto.dev) and
 * chrome://tracing. Timestamps are microseconds since the tracer was
 * enabled.
 *
 * exclusiveTimes() computes where wall-clock actually goes: a span's
 * exclusive time is its duration minus the durations of its same-
 * thread children (a child dispatched to another thread runs
 * concurrently, so it belongs to that thread's timeline, not the
 * parent's). Summing exclusive time over all spans therefore equals
 * the summed duration of the thread-root spans — the invariant the
 * obs tests pin down — and ranking paths by exclusive time names the
 * phases on the critical path, which inclusive phaseTimes() cannot do
 * (a parent always dominates its children there).
 */

#ifndef DFAULT_OBS_TRACE_WRITER_HH
#define DFAULT_OBS_TRACE_WRITER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "obs/span.hh"

namespace dfault::obs {

/** Per-path aggregate of span time, exclusive vs inclusive. */
struct ExclusiveTime
{
    std::string path;       ///< dotted phase path ("task" spans keep
                            ///< their submitting phase's path)
    double inclusiveSeconds = 0.0;
    double exclusiveSeconds = 0.0;
    std::uint64_t spans = 0;
};

/**
 * Aggregate drained entries into per-path inclusive/exclusive time,
 * sorted by descending exclusive time. See file comment for the
 * attribution rule.
 */
std::vector<ExclusiveTime>
exclusiveTimes(const std::vector<TraceEntry> &entries);

/** Summed duration of thread-root spans (= total exclusive time). */
double threadRootSeconds(const std::vector<TraceEntry> &entries);

/** The full trace as one Chrome trace-event JSON document. */
std::string traceJson(const std::vector<TraceEntry> &entries);

/**
 * Write traceJson() to @p path. Returns false when the file cannot be
 * created.
 */
bool writeTraceFile(const std::string &path,
                    const std::vector<TraceEntry> &entries);

/**
 * Print the critical-path summary: the top @p top_k paths by
 * exclusive time with their share of the summed exclusive time, span
 * counts, and — for paths that ran pool batches — queued task counts
 * and realized speedup pulled from the par.phase.* stats of the
 * global registry.
 */
void printCriticalPath(std::FILE *out,
                       const std::vector<ExclusiveTime> &rows,
                       int top_k = 10);

} // namespace dfault::obs

#endif // DFAULT_OBS_TRACE_WRITER_HH
