/**
 * @file
 * Hardware performance-counter sampling via perf_event_open(2).
 *
 * A PerfCounters instance opens one perf event *group* — a leader
 * (cycles) plus siblings (instructions, cache-misses, branch-misses) —
 * scoped to the calling thread, so a single read(2) returns a
 * consistent snapshot of all four counts taken at the same instant.
 * ScopedCounters brackets a region with two such snapshots and
 * publishes the delta under "perf.<scope>.*" gauges, together with
 * derived formulas:
 *
 *   perf.<scope>.cycles / .instructions / .cache_misses / .branch_misses
 *   perf.<scope>.ipc                    instructions per cycle
 *   perf.<scope>.cache_miss_per_kinstr  cache misses per 1000 instrs
 *   perf.<scope>.branch_miss_per_kinstr
 *
 * Availability is probed once per thread. perf_event_open commonly
 * fails — ENOENT (no PMU: VMs, containers), EACCES/EPERM
 * (perf_event_paranoid), ENOSYS (seccomp) — and every failure mode
 * degrades to the same graceful no-op: samples come back with
 * valid == false and zero counts, ScopedCounters still registers its
 * stats (so consumers see zeros, not absent names), and nothing
 * throws. DFAULT_PERF_DISABLE=1 in the environment forces this
 * fallback, which is how tests pin down the unavailable path on hosts
 * that do have a PMU.
 *
 * Counters are per-thread (pid == 0, cpu == -1, inherit off): a
 * ScopedCounters around a parallel region measures only the calling
 * thread's share. Per-phase attribution across pool workers instead
 * rides on ScopedTimer, which brackets each worker-side phase when
 * PerfCounters::setPhaseProfiling(true) is set and accumulates into
 * "perf.phase.<path>.*".
 *
 * All perf.* stats are excluded from manifest digests and stats_diff
 * comparisons by name prefix: readings are host- and build-dependent,
 * and zero where the syscall is unavailable.
 */

#ifndef DFAULT_OBS_PERF_COUNTERS_HH
#define DFAULT_OBS_PERF_COUNTERS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dfault::obs {

class Registry;

/** One consistent snapshot of the default counter group. */
struct PerfSample
{
    bool valid = false; ///< false: syscall unavailable, counts all zero
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t branchMisses = 0;

    /** Per-field saturating difference; valid only if both sides are. */
    PerfSample deltaSince(const PerfSample &start) const;
};

/** See file comment. */
class PerfCounters
{
  public:
    /** One event to place in the group (perf_event_attr type/config). */
    struct EventSpec
    {
        std::uint32_t type = 0;
        std::uint64_t config = 0;
        std::string name;
    };

    /** Open the default hardware group (cycles leader + 3 siblings). */
    PerfCounters();

    /**
     * Open an explicit event group — the test seam: software events
     * (e.g. PERF_TYPE_SOFTWARE/PERF_COUNT_SW_TASK_CLOCK) work on hosts
     * whose PMU is hidden, so the group-read machinery can be
     * exercised even where the hardware group cannot open.
     */
    explicit PerfCounters(const std::vector<EventSpec> &events);

    ~PerfCounters();
    PerfCounters(const PerfCounters &) = delete;
    PerfCounters &operator=(const PerfCounters &) = delete;

    /** True when at least the group leader opened. */
    bool available() const { return leaderFd_ >= 0; }

    /** Human-readable reason when !available() ("" otherwise). */
    const std::string &unavailableReason() const { return reason_; }

    /** Event names that actually opened, in group-read order. */
    std::vector<std::string> liveEvents() const;

    /**
     * Read the group in one syscall into @p out (group-read order,
     * live events only). Returns false — leaving @p out empty — when
     * unavailable or the read fails.
     */
    bool readValues(std::vector<std::uint64_t> &out) const;

    /**
     * Snapshot mapped onto the default group's named fields. Events
     * that failed to open individually read as zero; an unavailable
     * instance returns an all-zero sample with valid == false.
     */
    PerfSample sample() const;

    /** Lazily-opened per-thread instance of the default group. */
    static PerfCounters &threadInstance();

    /** True when DFAULT_PERF_DISABLE forces the unavailable path. */
    static bool forcedOff();

    /**
     * Globally request per-phase counter attribution: every
     * ScopedTimer brackets its phase and accumulates the delta under
     * "perf.phase.<path>.*". Off by default (two extra read(2) calls
     * per phase).
     */
    static void setPhaseProfiling(bool on);
    static bool phaseProfiling();

  private:
    void openGroup(const std::vector<EventSpec> &events);

    int leaderFd_ = -1;
    std::vector<int> fds_;          ///< leader + open siblings
    std::vector<std::string> names_; ///< parallel to fds_
    std::vector<int> fieldIndex_;    ///< fds_ slot -> default-field index
    std::string reason_;
};

/**
 * RAII region bracket: snapshots the calling thread's counters at
 * construction and publishes the delta under "perf.<scope>.*" on
 * destruction (zeros when the syscall is unavailable, so the stats
 * are registered either way). Also annotates the current span with
 * the delta when tracing is enabled.
 */
class ScopedCounters
{
  public:
    explicit ScopedCounters(std::string_view scope,
                            Registry *registry = nullptr);
    ~ScopedCounters();

    ScopedCounters(const ScopedCounters &) = delete;
    ScopedCounters &operator=(const ScopedCounters &) = delete;

  private:
    Registry &registry_;
    std::string scope_;
    PerfSample start_;
};

/**
 * Accumulate @p delta under "<prefix>.*" gauges in @p registry and
 * register the derived ipc / miss-rate formulas (idempotent). Used by
 * ScopedCounters ("perf.<scope>") and the ScopedTimer phase-profiling
 * hook ("perf.phase.<path>").
 */
void publishPerfDelta(Registry &registry, const std::string &prefix,
                      const PerfSample &delta);

/**
 * Print an aligned per-scope table of every "perf.<scope>.cycles"
 * family in @p registry (default: the global registry) to @p out:
 * scope, cycles, instructions, IPC, cache/branch misses per kinstr.
 * Prints a one-line availability note instead when every scope is
 * zero because the syscall is unavailable.
 */
void printPerfTable(std::FILE *out, const Registry *registry = nullptr);

} // namespace dfault::obs

#endif // DFAULT_OBS_PERF_COUNTERS_HH
