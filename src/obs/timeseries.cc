#include "obs/timeseries.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dfault::obs {

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2))
{
    ring_.reserve(capacity_);
}

void
TimeSeries::push(std::uint64_t tick, double value)
{
    DFAULT_ASSERT(size_ == 0 || tick >= latest().tick,
                  "time-series ticks must be non-decreasing");
    if (ring_.size() < capacity_) {
        ring_.push_back({tick, value});
        ++size_;
    } else {
        ring_[head_] = {tick, value};
    }
    head_ = (head_ + 1) % capacity_;
    ++total_;
}

TsSample
TimeSeries::at(std::size_t i) const
{
    DFAULT_ASSERT(i < size_, "time-series index out of range");
    if (size_ < capacity_)
        return ring_[i];
    return ring_[(head_ + i) % capacity_];
}

TsSample
TimeSeries::latest() const
{
    DFAULT_ASSERT(size_ > 0, "latest() on an empty time series");
    return at(size_ - 1);
}

double
TimeSeries::windowMin(std::size_t window) const
{
    if (size_ == 0)
        return 0.0;
    const std::size_t n = std::min(window, size_);
    double out = at(size_ - n).value;
    for (std::size_t i = size_ - n + 1; i < size_; ++i)
        out = std::min(out, at(i).value);
    return out;
}

double
TimeSeries::windowMax(std::size_t window) const
{
    if (size_ == 0)
        return 0.0;
    const std::size_t n = std::min(window, size_);
    double out = at(size_ - n).value;
    for (std::size_t i = size_ - n + 1; i < size_; ++i)
        out = std::max(out, at(i).value);
    return out;
}

double
TimeSeries::ratePerSecond(std::size_t window,
                          double interval_seconds) const
{
    if (size_ < 2 || interval_seconds <= 0.0)
        return 0.0;
    const std::size_t n = std::min(std::max<std::size_t>(window, 2),
                                   size_);
    const TsSample first = at(size_ - n);
    const TsSample last = at(size_ - 1);
    if (last.tick <= first.tick)
        return 0.0;
    const double delta = last.value - first.value;
    if (delta < 0.0)
        return 0.0; // counter reset
    const double span =
        static_cast<double>(last.tick - first.tick) * interval_seconds;
    return delta / span;
}

double
TimeSeries::ewma(double alpha) const
{
    if (size_ == 0)
        return 0.0;
    alpha = std::clamp(alpha, 0.0, 1.0);
    double out = at(0).value;
    for (std::size_t i = 1; i < size_; ++i)
        out = alpha * at(i).value + (1.0 - alpha) * out;
    return out;
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2))
{
}

TimeSeries &
TimeSeriesStore::series(const std::string &name)
{
    const auto it = map_.find(name);
    if (it != map_.end())
        return it->second;
    return map_.emplace(name, TimeSeries(capacity_)).first->second;
}

const TimeSeries *
TimeSeriesStore::find(const std::string &name) const
{
    const auto it = map_.find(name);
    return it == map_.end() ? nullptr : &it->second;
}

std::vector<std::string>
TimeSeriesStore::names() const
{
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto &kv : map_)
        out.push_back(kv.first);
    return out;
}

} // namespace dfault::obs
