/**
 * @file
 * Low-overhead span tracing with per-thread bounded ring buffers.
 *
 * A span is one timed interval on one thread: begin/end timestamps
 * (nanoseconds since the tracer was enabled), the thread that ran it,
 * and the span that encloses it. ScopedTimer opens a span for every
 * phase automatically when tracing is enabled, and par::Pool opens one
 * "task" span per executed task, parented to the submitting thread's
 * span via SpanAdoption (the span analogue of PhaseAdoption). Pool
 * task dispatch additionally records flow events linking the moment a
 * task was queued on the submitter to the moment a worker picked it
 * up, so the Perfetto view shows arrows from submission to execution.
 *
 * Recording is wait-free with respect to other threads: each thread
 * owns a bounded ring (default 64 Ki entries) guarded by a mutex that
 * is only ever contended by drain(), which runs once at export time.
 * When a ring is full the *oldest* entries are overwritten, so a trace
 * always keeps the newest spans and reports how many were dropped.
 *
 * At drain time any span still open (a timer alive during export, or
 * a region that threw past a manual begin) is finalized with the drain
 * timestamp instead of being leaked; its later real end is discarded.
 *
 * A disabled tracer costs one relaxed atomic load per would-be span.
 * See trace_writer.hh for the Chrome trace-event JSON exporter and the
 * exclusive-time attribution built on the drained entries.
 */

#ifndef DFAULT_OBS_SPAN_HH
#define DFAULT_OBS_SPAN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dfault::obs {

class Registry;

/** What one ring-buffer record describes. */
enum class TraceKind : std::uint8_t
{
    Span,          ///< completed (or drain-finalized) interval
    FlowBegin,     ///< pool task queued on the submitting thread
    FlowEnd,       ///< the same task picked up by an executing thread
    CounterSample, ///< cumulative stat value at a phase boundary
};

/** One drained trace record; field use depends on kind. */
struct TraceEntry
{
    TraceKind kind = TraceKind::Span;
    std::uint32_t tid = 0;     ///< tracer-assigned thread index
    std::uint64_t id = 0;      ///< span id, or flow id for flow events
    std::uint64_t parent = 0;  ///< enclosing span id (0 = thread root)
    std::uint64_t startNs = 0; ///< since the tracer was enabled
    std::uint64_t endNs = 0;   ///< spans only
    std::string name;          ///< phase segment / counter name
    std::string path;          ///< full dotted phase path at begin
    std::string detail;        ///< free-form annotation (args.detail)
    double value = 0.0;        ///< counter samples only
};

/** See file comment. */
class SpanTracer
{
  public:
    static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

    /** The process-wide tracer shared by timers and the pool. */
    static SpanTracer &instance();

    SpanTracer() = default;
    SpanTracer(const SpanTracer &) = delete;
    SpanTracer &operator=(const SpanTracer &) = delete;

    /**
     * Start recording. @p ring_capacity bounds the entries kept *per
     * thread*; older entries are overwritten once a ring fills.
     * Re-enabling resets the epoch and discards prior entries.
     */
    void enable(std::size_t ring_capacity = kDefaultRingCapacity);

    /** Stop recording (drained entries remain until the next enable). */
    void disable();

    /** Cheap producer-side guard: one relaxed atomic load. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Fresh process-unique id for a span or flow arrow. */
    std::uint64_t newId();

    /**
     * Open a span named @p name (dotted @p path for reports) under the
     * calling thread's current span. Returns the span id, 0 when
     * disabled.
     */
    std::uint64_t beginSpan(std::string_view name, std::string_view path);

    /** Close span @p id (0 is ignored). Must nest per thread. */
    void endSpan(std::uint64_t id);

    /**
     * Attach a free-form annotation to the calling thread's innermost
     * open span (exported as args.detail — e.g. which workload a
     * "measure" span instance ran). No-op when disabled or outside
     * any span; the last annotation wins.
     */
    void annotateCurrent(std::string_view detail);

    /** Record one side of a submission->execution flow arrow. */
    void flowEvent(TraceKind kind, std::uint64_t flow_id,
                   std::string_view path);

    /**
     * Record the cumulative value of every Counter in @p registry as a
     * CounterSample (drawn as counter tracks in Perfetto). ScopedTimer
     * calls this when a top-level phase ends.
     */
    void sampleCounters(const Registry &registry);

    /**
     * Innermost open span id of the calling thread (the adopted parent
     * if none is open locally, 0 outside any span).
     */
    static std::uint64_t currentSpan();

    /**
     * Copy out every recorded entry, oldest first per thread, merged
     * and sorted by startNs. Spans still open are finalized at the
     * drain timestamp (their later real end is discarded, not
     * recorded twice).
     */
    std::vector<TraceEntry> drain();

    /** Entries overwritten by ring wraparound since enable(). */
    std::uint64_t dropped() const;

    /** Completed span records currently held across all rings. */
    std::uint64_t spanCount() const;

    /** Nanoseconds since enable() (0 when never enabled). */
    std::uint64_t nowNs() const;

  private:
    friend class SpanAdoption;

    struct OpenSpan
    {
        std::uint64_t id = 0;
        std::uint64_t parent = 0;
        std::uint64_t startNs = 0;
        std::string name;
        std::string path;
        std::string detail;
        bool exported = false; ///< finalized by drain(); drop real end
    };

    /** Per-thread state; shared_ptr keeps it alive past thread exit. */
    struct ThreadRing
    {
        std::mutex mutex;
        std::uint32_t tid = 0;
        std::vector<TraceEntry> ring; ///< capacity fixed at enable
        std::size_t next = 0;         ///< overwrite cursor (oldest)
        std::uint64_t dropped = 0;
        std::vector<OpenSpan> open;   ///< innermost last
        std::uint64_t adoptedParent = 0;
    };

    ThreadRing &localRing();
    void push(ThreadRing &ring, TraceEntry entry);

    static thread_local std::shared_ptr<ThreadRing> t_ring_;

    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> nextId_{1};
    std::chrono::steady_clock::time_point epoch_{};
    mutable std::mutex mutex_; ///< guards rings_
    std::vector<std::shared_ptr<ThreadRing>> rings_;
    std::atomic<std::size_t> capacity_{kDefaultRingCapacity};
};

/** RAII span; a no-op (id 0) when the tracer is disabled. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string_view name,
                        std::string_view path = "");
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    std::uint64_t id() const { return id_; }

  private:
    std::uint64_t id_ = 0;
};

/**
 * Make @p parent_span the calling thread's span parent while alive —
 * pool workers adopt the submitting thread's span around each task so
 * cross-thread parentage survives dispatch, exactly as PhaseAdoption
 * carries the phase stack. Restores the previous parent on
 * destruction.
 */
class SpanAdoption
{
  public:
    explicit SpanAdoption(std::uint64_t parent_span);
    ~SpanAdoption();

    SpanAdoption(const SpanAdoption &) = delete;
    SpanAdoption &operator=(const SpanAdoption &) = delete;

  private:
    std::uint64_t saved_ = 0;
    bool active_ = false;
};

} // namespace dfault::obs

#endif // DFAULT_OBS_SPAN_HH
