/**
 * @file
 * Prometheus / OpenMetrics text exposition of the stats registry.
 *
 * openMetricsText() renders a registry sample as an OpenMetrics 1.0
 * document: counters become `<name>_total`, gauges and formulas plain
 * gauges, and both linear Distributions and log-bucketed Histograms
 * become OpenMetrics histograms with cumulative `le`-labelled buckets,
 * `_sum` and `_count`. Log-bucketed histograms additionally expose
 * their streaming quantiles and extrema as companion gauge families
 * (`<name>_p50/_p90/_p99/_p999/_min/_max`), since one family cannot be
 * both a histogram and a summary. Dotted stat paths are sanitized to
 * the OpenMetrics name grammar (dots become underscores), and the
 * document always ends with the spec's `# EOF` terminator —
 * tools/metrics_lint validates all of this in CI.
 *
 * The sampler writes this text atomically (fi::atomicWriteFile) to
 * --metrics-out on every tick, which is the Prometheus node-exporter
 * "textfile collector" pattern: a scraper reads either the previous
 * complete snapshot or the new complete snapshot, never a torn one.
 * MetricsServer optionally serves the same text over a localhost-only
 * `GET /metrics` endpoint for live scraping.
 */

#ifndef DFAULT_OBS_OPENMETRICS_HH
#define DFAULT_OBS_OPENMETRICS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.hh"

namespace dfault::obs {

/** Sanitize a dotted stat path to the OpenMetrics name grammar
 *  ([a-zA-Z_:][a-zA-Z0-9_:]*): dots map to underscores and a leading
 *  digit is prefixed with '_'. */
std::string openMetricsName(const std::string &stat_name);

/** Render @p samples (Registry::sample() order) as one complete
 *  OpenMetrics text document, `# EOF` included. */
std::string openMetricsText(const std::vector<StatSample> &samples);

/** Convenience: openMetricsText(reg.sample()); defaults to the global
 *  registry. */
std::string openMetricsText(const Registry *registry = nullptr);

/**
 * Minimal localhost-only HTTP server for live scraping. One thread
 * accepts connections on 127.0.0.1:<port> and answers every request
 * with the renderer's current output (the request line is read and
 * ignored — `GET /metrics` and `GET /` behave identically). Not a web
 * server: one request per connection, no keep-alive, no TLS; the bind
 * address is hardwired to loopback so the endpoint is never reachable
 * off-host.
 */
class MetricsServer
{
  public:
    using Renderer = std::function<std::string()>;

    MetricsServer() = default;
    ~MetricsServer();
    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 picks an ephemeral port, reported by
     * port()) and start the accept thread. Returns false — with a
     * warning, not a fatal — when the socket cannot be created or
     * bound, so a busy port degrades to file-only exposition.
     */
    bool start(int port, Renderer renderer);

    /** Stop the accept thread and close the socket (idempotent). */
    void stop();

    bool running() const { return thread_.joinable(); }

    /** The bound port (differs from the requested one when 0 was
     *  passed); -1 when the server is not running. */
    int port() const { return port_; }

    /** Requests answered since start(). */
    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    void serveLoop();

    Renderer renderer_;
    int listenFd_ = -1;
    int port_ = -1;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::thread thread_;
};

} // namespace dfault::obs

#endif // DFAULT_OBS_OPENMETRICS_HH
