/**
 * @file
 * Opt-in per-phase heap allocation attribution.
 *
 * Global operator new/delete replacements (alloc_tracker.cc) tally
 * allocation count and bytes into thread-local counters whenever the
 * tracker is enabled; disabled, the hook costs one relaxed atomic
 * load per allocation and touches nothing else. The tally counts
 * *allocation volume* (bytes requested over time), not live bytes —
 * frees are not subtracted, so a phase's number answers "how much did
 * this phase allocate", which is the question when hunting allocation
 * churn in hot loops.
 *
 * ScopedTimer brackets each phase with two threadTotals() snapshots
 * when the tracker is enabled and accumulates the delta under
 *
 *   alloc.phase.<path>.bytes    (Gauge)    bytes allocated inside
 *   alloc.phase.<path>.allocs   (Counter)  allocations inside
 *
 * Totals are per-thread: a parallel phase's stats sum each worker's
 * own allocations (workers adopt the submitter's phase path), so the
 * attribution is complete without any cross-thread synchronization on
 * the allocation path.
 *
 * All alloc.* stats are excluded from manifest digests and stats_diff
 * comparisons: allocator behavior is build- and libc-dependent.
 */

#ifndef DFAULT_OBS_ALLOC_TRACKER_HH
#define DFAULT_OBS_ALLOC_TRACKER_HH

#include <cstdint>

namespace dfault::obs {

/** See file comment. */
class AllocTracker
{
  public:
    struct Totals
    {
        std::uint64_t bytes = 0;
        std::uint64_t allocs = 0;
    };

    /** Start tallying on every thread (one relaxed store). */
    static void enable();

    /** Stop tallying; existing totals are kept until resetThread(). */
    static void disable();

    /** True when allocations are being tallied. */
    static bool enabled();

    /** The calling thread's cumulative totals since thread start. */
    static Totals threadTotals();

    /** Zero the calling thread's totals (test isolation). */
    static void resetThread();
};

} // namespace dfault::obs

#endif // DFAULT_OBS_ALLOC_TRACKER_HH
