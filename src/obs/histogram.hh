/**
 * @file
 * Log-bucketed (HDR-style) mergeable histograms with streaming
 * quantiles.
 *
 * The registry's linear Distribution is the right tool for values with
 * a known narrow range (log10 WER in [-14, 0]); it is the wrong tool
 * for latencies, which span six orders of magnitude and whose serving
 * contract is the tail, not the mean. Histogram covers that case:
 *
 *  - buckets are logarithmic — each power-of-two octave is split into
 *    32 linear sub-buckets, bounding the relative error of any
 *    reported quantile at ~3% while covering [2^-64, 2^64) in a fixed
 *    4096-bucket table;
 *  - recording is one thread-local shard update (no lock, no CAS):
 *    each thread gets its own shard on first record, and shards are
 *    merged in deterministic creation order at read time. Bucket
 *    counts are integer adds, so the merged buckets — and every
 *    quantile derived from them — are bit-identical for the same
 *    recorded multiset at any thread count and any schedule;
 *  - quantiles (p50/p90/p99/p999) are computed from the merged bucket
 *    table: the reporting value of the bucket containing the requested
 *    rank, i.e. a deterministic function of the bucket counts.
 *
 * Histograms register in the stats Registry under dotted paths like
 * any other stat (Registry::histogram()). They are *always* excluded
 * from manifest digests and stats_diff comparisons, like time.* and
 * par.*: their primary use is latency, and even for deterministic
 * values their mean/sum moments are float accumulations whose shard
 * partition depends on scheduling. The bucket counts and quantiles of
 * a deterministic value stream do reproduce exactly; CI compares them
 * across 1/2/8-thread runs.
 */

#ifndef DFAULT_OBS_HISTOGRAM_HH
#define DFAULT_OBS_HISTOGRAM_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dfault::obs {

/**
 * Immutable merged view of a Histogram at one point in time. All
 * quantile math happens here, on plain integers, so two snapshots of
 * the same recorded multiset compare equal field for field (except
 * sum/mean, see file comment).
 */
struct HistogramSnapshot
{
    std::uint64_t count = 0; ///< all records, including non-positive
    std::uint64_t zeros = 0; ///< records <= 0 (kept out of buckets)
    double sum = 0.0;        ///< shard-order float sum (not digest-safe)
    double min = 0.0;        ///< exact smallest recorded value
    double max = 0.0;        ///< exact largest recorded value

    /** Non-empty buckets, ascending: {bucket index, count}. */
    std::vector<std::pair<int, std::uint64_t>> buckets;

    double mean() const;

    /**
     * Value at quantile @p q in [0, 1]: the reporting value (geometric
     * bucket midpoint) of the bucket holding rank ceil(q * count).
     * Non-positive records rank below every bucket and report 0.
     * Returns 0 when empty; q=0 reports the exact min, q=1 the bucket
     * value covering the max.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }
};

/** See file comment. */
class Histogram
{
  public:
    /** Sub-buckets per power-of-two octave (32 -> ~3% rel. error). */
    static constexpr int kSubBuckets = 32;
    /** Binary exponents covered: [-kMinExp2, kMinExp2). */
    static constexpr int kMinExp2 = 64;
    static constexpr int kBucketCount = 2 * kMinExp2 * kSubBuckets;

    Histogram();
    ~Histogram();
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /**
     * Record one sample. Values <= 0 (and NaN) count toward count()
     * and the zero bin but not the log buckets; values outside the
     * covered range clamp to the first/last bucket. Thread-safe and
     * lock-free: touches only the calling thread's shard.
     */
    void record(double value);

    /** Bucket index a positive value lands in (clamped). */
    static int bucketIndex(double value);

    /** Reporting value of bucket @p index (geometric midpoint). */
    static double bucketValue(int index);

    /** Lower edge of bucket @p index. */
    static double bucketLowerEdge(int index);

    /** Merge every shard (deterministic shard order) into a snapshot. */
    HistogramSnapshot snapshot() const;

    /** Total records across all shards. */
    std::uint64_t count() const { return snapshot().count; }

    /** Convenience: snapshot().quantile(q). */
    double quantile(double q) const { return snapshot().quantile(q); }

    /** Zero every shard (for Registry::resetAll and tests). */
    void reset();

  private:
    struct Shard;

    Shard &localShard();

    /** Process-unique id: keys the thread-local shard cache, so a
     *  histogram address reused after destruction cannot alias a
     *  stale cache entry. */
    const std::uint64_t id_;

    mutable std::mutex mutex_; ///< guards shards_ growth and snapshot
    std::vector<std::unique_ptr<Shard>> shards_; ///< creation order
};

} // namespace dfault::obs

#endif // DFAULT_OBS_HISTOGRAM_HH
