#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dfault::obs {

std::string
jsonEscape(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, value);
        double parsed = 0.0;
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == value)
            return shorter;
    }
    return buf;
}

void
JsonWriter::key(std::string_view k)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += jsonEscape(k);
    body_ += "\":";
}

JsonWriter &
JsonWriter::field(std::string_view k, std::string_view value)
{
    key(k);
    body_ += '"';
    body_ += jsonEscape(value);
    body_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, const char *value)
{
    return field(k, std::string_view(value));
}

JsonWriter &
JsonWriter::field(std::string_view k, const std::string &value)
{
    return field(k, std::string_view(value));
}

JsonWriter &
JsonWriter::field(std::string_view k, double value)
{
    key(k);
    body_ += jsonNumber(value);
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, std::int64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, std::uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, int value)
{
    return field(k, static_cast<std::int64_t>(value));
}

JsonWriter &
JsonWriter::field(std::string_view k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::fieldRaw(std::string_view k, std::string_view json)
{
    key(k);
    body_ += json;
    return *this;
}

namespace {

/** Recursive-descent parser over a string_view; reports by offset. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue> run()
    {
        skipWs();
        JsonValue value;
        if (!parseValue(value))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            return std::nullopt;
        }
        return value;
    }

  private:
    void fail(const std::string &what)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = what + " at offset " + std::to_string(pos_);
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word) {
            fail("invalid literal");
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        switch (text_[pos_]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                fail("expected ':' after object key");
                return false;
            }
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.object[std::move(key)] = std::move(value);
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated object");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size()) {
                fail("unterminated array");
                return false;
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= text_.size()) {
                fail("unterminated escape");
                return false;
            }
            const char esc = text_[pos_ + 1];
            pos_ += 2;
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return false;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_ + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("invalid \\u escape");
                        return false;
                    }
                }
                pos_ += 4;
                // The writer only emits \u00xx for control bytes;
                // encode the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) {
            fail("expected a value");
            return false;
        }
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0') {
            fail("malformed number");
            return false;
        }
        out.kind = JsonValue::Kind::Number;
        out.number = value;
        return true;
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<JsonValue>
jsonParse(std::string_view text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    return Parser(text, error).run();
}

} // namespace dfault::obs
