#include "obs/json.hh"

#include <cmath>
#include <cstdio>

namespace dfault::obs {

std::string
jsonEscape(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", prec, value);
        double parsed = 0.0;
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == value)
            return shorter;
    }
    return buf;
}

void
JsonWriter::key(std::string_view k)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += jsonEscape(k);
    body_ += "\":";
}

JsonWriter &
JsonWriter::field(std::string_view k, std::string_view value)
{
    key(k);
    body_ += '"';
    body_ += jsonEscape(value);
    body_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, const char *value)
{
    return field(k, std::string_view(value));
}

JsonWriter &
JsonWriter::field(std::string_view k, const std::string &value)
{
    return field(k, std::string_view(value));
}

JsonWriter &
JsonWriter::field(std::string_view k, double value)
{
    key(k);
    body_ += jsonNumber(value);
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, std::int64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, std::uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(std::string_view k, int value)
{
    return field(k, static_cast<std::int64_t>(value));
}

JsonWriter &
JsonWriter::field(std::string_view k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::fieldRaw(std::string_view k, std::string_view json)
{
    key(k);
    body_ += json;
    return *this;
}

} // namespace dfault::obs
