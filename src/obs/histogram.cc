#include "obs/histogram.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/logging.hh"

namespace dfault::obs {

namespace {

std::atomic<std::uint64_t> g_nextHistogramId{1};

} // namespace

/**
 * One thread's private tally. The owning thread is the only writer
 * (plain stores would do; relaxed atomics keep the concurrent
 * snapshot() reader well-defined without ordering cost).
 */
struct Histogram::Shard
{
    Shard()
    {
        for (auto &c : counts)
            c.store(0, std::memory_order_relaxed);
    }

    std::array<std::atomic<std::uint64_t>, kBucketCount> counts;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> zeros{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

Histogram::Histogram()
    : id_(g_nextHistogramId.fetch_add(1, std::memory_order_relaxed))
{
}

Histogram::~Histogram() = default;

Histogram::Shard &
Histogram::localShard()
{
    // Keyed by the process-unique histogram id, not the address: a
    // short-lived histogram (test-local registry) whose address is
    // reused can never alias another histogram's cached shard. Stale
    // entries for dead histograms are never looked up again.
    thread_local std::unordered_map<std::uint64_t, Shard *> t_shards;
    auto it = t_shards.find(id_);
    if (it != t_shards.end())
        return *it->second;
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::make_unique<Shard>());
    Shard *shard = shards_.back().get();
    t_shards.emplace(id_, shard);
    return *shard;
}

int
Histogram::bucketIndex(double value)
{
    DFAULT_ASSERT(value > 0.0, "bucketIndex needs a positive value");
    int exp = 0;
    const double mantissa = std::frexp(value, &exp); // [0.5, 1)
    const int octave = exp - 1;                      // value in [2^o, 2^o+1)
    if (octave < -kMinExp2)
        return 0;
    if (octave >= kMinExp2)
        return kBucketCount - 1;
    const int sub = static_cast<int>((mantissa * 2.0 - 1.0) *
                                     static_cast<double>(kSubBuckets));
    return (octave + kMinExp2) * kSubBuckets +
           std::min(sub, kSubBuckets - 1);
}

double
Histogram::bucketLowerEdge(int index)
{
    DFAULT_ASSERT(index >= 0 && index < kBucketCount,
                  "histogram bucket index out of range");
    const int octave = index / kSubBuckets - kMinExp2;
    const int sub = index % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                      octave);
}

double
Histogram::bucketValue(int index)
{
    DFAULT_ASSERT(index >= 0 && index < kBucketCount,
                  "histogram bucket index out of range");
    const int octave = index / kSubBuckets - kMinExp2;
    const int sub = index % kSubBuckets;
    const double lo = 1.0 + static_cast<double>(sub) / kSubBuckets;
    const double hi = 1.0 + static_cast<double>(sub + 1) / kSubBuckets;
    return std::ldexp(std::sqrt(lo * hi), octave);
}

void
Histogram::record(double value)
{
    Shard &s = localShard();
    s.count.store(s.count.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
    if (std::isnan(value)) {
        s.zeros.store(s.zeros.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
        return;
    }
    s.sum.store(s.sum.load(std::memory_order_relaxed) + value,
                std::memory_order_relaxed);
    if (value < s.min.load(std::memory_order_relaxed))
        s.min.store(value, std::memory_order_relaxed);
    if (value > s.max.load(std::memory_order_relaxed))
        s.max.store(value, std::memory_order_relaxed);
    if (value <= 0.0) {
        s.zeros.store(s.zeros.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
        return;
    }
    auto &bucket = s.counts[static_cast<std::size_t>(bucketIndex(value))];
    bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    std::vector<std::uint64_t> merged(
        static_cast<std::size_t>(kBucketCount), 0);
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Shard creation order is the one merge order, so repeated
        // snapshots of an idle histogram are identical; bucket counts
        // are integer adds and do not depend on the order at all.
        for (const auto &shard : shards_) {
            snap.count += shard->count.load(std::memory_order_relaxed);
            snap.zeros += shard->zeros.load(std::memory_order_relaxed);
            snap.sum += shard->sum.load(std::memory_order_relaxed);
            min = std::min(min,
                           shard->min.load(std::memory_order_relaxed));
            max = std::max(max,
                           shard->max.load(std::memory_order_relaxed));
            for (int i = 0; i < kBucketCount; ++i) {
                const std::uint64_t c = shard->counts[
                    static_cast<std::size_t>(i)]
                        .load(std::memory_order_relaxed);
                merged[static_cast<std::size_t>(i)] += c;
            }
        }
    }
    snap.min = std::isinf(min) ? 0.0 : min;
    snap.max = std::isinf(max) ? 0.0 : max;
    for (int i = 0; i < kBucketCount; ++i)
        if (merged[static_cast<std::size_t>(i)] > 0)
            snap.buckets.emplace_back(
                i, merged[static_cast<std::size_t>(i)]);
    return snap;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &shard : shards_) {
        for (auto &c : shard->counts)
            c.store(0, std::memory_order_relaxed);
        shard->count.store(0, std::memory_order_relaxed);
        shard->zeros.store(0, std::memory_order_relaxed);
        shard->sum.store(0.0, std::memory_order_relaxed);
        shard->min.store(std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
        shard->max.store(-std::numeric_limits<double>::infinity(),
                         std::memory_order_relaxed);
    }
}

double
HistogramSnapshot::mean() const
{
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    if (q == 0.0)
        return min;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
    // Non-positive (and NaN) records rank below every log bucket.
    if (target <= zeros)
        return min < 0.0 ? min : 0.0;
    std::uint64_t cumulative = zeros;
    for (const auto &[index, n] : buckets) {
        cumulative += n;
        if (cumulative >= target)
            return Histogram::bucketValue(index);
    }
    return max; // rounding fell past the last bucket
}

} // namespace dfault::obs
