/**
 * @file
 * Declarative service-level objectives over live telemetry.
 *
 * An SLO target is a one-line spec evaluated by the sampler once per
 * tick against the freshly pushed time-series window:
 *
 *     <stat>:<agg><op><threshold>[unit]
 *
 *     campaign.cell_ns:p99<5ms      per-cell p99 latency under 5 ms
 *     par.task_failures:rate<0.01/s failure rate under 0.01 per second
 *     live.campaign.cells_done:rate>1000/s  sustained throughput floor
 *
 * Aggregations: p50/p90/p99/p999 (log-histogram streaming quantiles),
 * rate (per-second counter growth over the evaluation window), value
 * (latest sample), min/max (window extrema). Operators: `<` means the
 * observation must stay below the threshold (breach when it exceeds
 * it), `>` the mirror image. Thresholds accept duration suffixes
 * ns/us/ms/s — scaled to nanoseconds to match the *_ns histograms —
 * and a cosmetic `/s` for rates.
 *
 * SloTracker holds one SloState per target: evaluation and breach
 * counts, the current breach flag, first/last breach tick and the last
 * observation. evaluate() returns the tick's *new* breach records so
 * the caller (the sampler) can emit one JSONL event per breach
 * transition and bump the slo.* breach counters; summaryJson() renders
 * the end-of-run verdicts embedded in the manifest's `slo` section.
 *
 * Like the time-series store, the tracker is single-threaded by
 * contract: only the sampler thread evaluates, and summary readers run
 * after the sampler has joined. Evaluations key off sampler ticks, so
 * verdicts are deterministic for a deterministic sample stream.
 */

#ifndef DFAULT_OBS_SLO_HH
#define DFAULT_OBS_SLO_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/stats.hh"
#include "obs/timeseries.hh"

namespace dfault::obs {

/** How one SLO condenses a stat's window into a scalar. */
enum class SloAgg
{
    P50,
    P90,
    P99,
    P999,
    Rate,
    Value,
    Min,
    Max,
};

std::string sloAggName(SloAgg agg);

/** Direction of the bound: Below = stay under, Above = stay over. */
enum class SloOp
{
    Below,
    Above,
};

/** One parsed target. */
struct SloTarget
{
    std::string spec;      ///< original spec text, verbatim
    std::string stat;      ///< dotted stat path
    SloAgg agg = SloAgg::Value;
    SloOp op = SloOp::Below;
    double threshold = 0.0; ///< unit-scaled (durations in ns)
};

/**
 * Parse one spec; on failure returns nullopt and, when @p error is
 * non-null, a human-readable reason.
 */
std::optional<SloTarget> parseSloTarget(const std::string &spec,
                                        std::string *error = nullptr);

/** Live evaluation state of one target. */
struct SloState
{
    SloTarget target;
    std::uint64_t evaluations = 0; ///< ticks where the stat existed
    std::uint64_t breaches = 0;    ///< evaluations that violated
    bool breachedNow = false;      ///< verdict of the latest evaluation
    double lastObserved = 0.0;
    std::uint64_t firstBreachTick = 0;
    std::uint64_t lastBreachTick = 0;
};

/** One violation observed at one tick (returned per evaluate()). */
struct SloBreach
{
    std::string spec;
    std::string stat;
    std::string agg;
    double observed = 0.0;
    double threshold = 0.0;
    std::uint64_t tick = 0;
    bool entered = false; ///< first breached tick of a breach episode
};

/** See file comment. */
class SloTracker
{
  public:
    void addTarget(SloTarget target);

    bool empty() const { return states_.empty(); }
    std::size_t size() const { return states_.size(); }
    const std::vector<SloState> &states() const { return states_; }

    /**
     * Evaluate every target against this tick's registry sample and
     * the time-series windows (which the sampler has already pushed
     * this tick's values into). @p interval_seconds is the configured
     * sampling interval, @p window the number of ticks a rate/extrema
     * aggregation looks back over. Returns this tick's violations.
     * Targets whose stat (or required histogram) is absent are skipped
     * without counting an evaluation.
     */
    std::vector<SloBreach> evaluate(std::uint64_t tick,
                                    const std::vector<StatSample> &samples,
                                    const TimeSeriesStore &store,
                                    double interval_seconds,
                                    std::size_t window);

    /** Breaching evaluations summed over every target. */
    std::uint64_t totalBreaches() const;

    /** Targets currently in breach. */
    std::size_t breachedTargets() const;

    /** JSON array of per-target verdicts, for the manifest. */
    std::string summaryJson() const;

  private:
    std::vector<SloState> states_;
};

} // namespace dfault::obs

#endif // DFAULT_OBS_SLO_HH
