/**
 * @file
 * Deferred (transactional) stat publication.
 *
 * A retried task must not leave half of a failed attempt's stats in
 * the registry, and a checkpointed campaign cell must be able to
 * replay its stat mutations on resume without re-running the
 * measurement. Both need the same primitive: capture a region's stat
 * updates as data instead of applying them immediately.
 *
 * Publication sites call the publish*() helpers below instead of
 * touching Registry stats directly. With no StatsDeferral active the
 * helpers apply the update immediately — identical behavior to
 * before. Inside a StatsDeferral scope the update is buffered as a
 * StatOp; the owner then either drops the buffer (failed attempt),
 * applies it (successful attempt), or serializes it into a checkpoint
 * cell and replays it on resume. Ops serialize to/from JSON with
 * round-trip-exact doubles, so a replayed campaign reaches a
 * bit-identical stats digest.
 *
 * The active deferral is thread-local: a pool worker's deferral only
 * captures stats published from that worker's task body.
 */

#ifndef DFAULT_OBS_DEFERRAL_HH
#define DFAULT_OBS_DEFERRAL_HH

#include <string>
#include <vector>

#include "obs/json.hh"

namespace dfault::obs {

class Registry;

/** One captured stat mutation. */
struct StatOp
{
    enum class Kind
    {
        CounterInc,
        GaugeAdd,
        GaugeSet,
        DistRecord,
        HistRecord,
    };

    Kind kind = Kind::CounterInc;
    std::string name;
    std::string description;
    double value = 0.0; ///< increment / delta / new value / sample
    double lo = 0.0;    ///< DistRecord histogram range
    double hi = 0.0;
    int buckets = 0;
};

/**
 * RAII scope that buffers this thread's publish*() calls. Nests: the
 * innermost active deferral captures; an op is never seen twice.
 */
class StatsDeferral
{
  public:
    StatsDeferral();
    ~StatsDeferral();
    StatsDeferral(const StatsDeferral &) = delete;
    StatsDeferral &operator=(const StatsDeferral &) = delete;

    /** Move the captured ops out (the buffer is left empty). */
    std::vector<StatOp> take();

    /** True when a deferral is active on this thread. */
    static bool active();

  private:
    friend void deferralCapture(StatOp op);

    std::vector<StatOp> ops_;
    StatsDeferral *prev_;
};

/** Increment a counter, or buffer the increment under a deferral. */
void publishCounter(const std::string &name, const std::string &description,
                    std::uint64_t n = 1);

/** Accumulate into a gauge, or buffer the delta under a deferral. */
void publishGaugeAdd(const std::string &name, const std::string &description,
                     double delta);

/** Set a gauge, or buffer the write under a deferral. */
void publishGaugeSet(const std::string &name, const std::string &description,
                     double value);

/** Record into a distribution, or buffer the sample under a deferral. */
void publishDistribution(const std::string &name, double lo, double hi,
                         int buckets, const std::string &description,
                         double sample);

/**
 * Record into a log-bucketed histogram (obs/histogram.hh), or buffer
 * the sample under a deferral.
 */
void publishHistogram(const std::string &name,
                      const std::string &description, double sample);

/** Apply @p ops to @p registry (default: the global registry), in order. */
void applyStatOps(const std::vector<StatOp> &ops,
                  Registry *registry = nullptr);

/** Serialize @p ops as a JSON array. */
std::string statOpsJson(const std::vector<StatOp> &ops);

/**
 * Parse a statOpsJson() array back. Returns false (and sets @p error)
 * on malformed input; @p out is untouched in that case.
 */
bool statOpsFromJson(const JsonValue &array, std::vector<StatOp> &out,
                     std::string *error = nullptr);

} // namespace dfault::obs

#endif // DFAULT_OBS_DEFERRAL_HH
