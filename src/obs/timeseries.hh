/**
 * @file
 * Fixed-capacity per-stat sample rings for live telemetry.
 *
 * The registry is snapshot-at-exit by design; the sampler thread
 * (obs/sampler.hh) turns it into a stream by pushing one sample per
 * stat per tick into this store. Samples are keyed by *sample index*
 * (the sampler's tick counter), never by wall clock, so a replayed run
 * fed the same value sequence produces the same series, aggregates and
 * SLO verdicts — the same determinism contract the rest of the
 * telemetry stack keeps.
 *
 * Each series is a ring of the most recent `capacity` samples; pushes
 * past capacity overwrite the oldest sample (the stream's history of
 * record is the metrics scrape, not this buffer). Windowed aggregates
 * — rate per second, EWMA, window min/max — are computed on demand
 * from the retained samples, folded oldest to newest, so they are a
 * pure function of the pushed sequence.
 *
 * Neither class locks: the store belongs to the sampler thread, which
 * is the only writer and the only reader while running. Tests and
 * post-stop consumers read it after the sampler has joined.
 */

#ifndef DFAULT_OBS_TIMESERIES_HH
#define DFAULT_OBS_TIMESERIES_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dfault::obs {

/** One sample: the sampler tick it was taken at, and the value. */
struct TsSample
{
    std::uint64_t tick = 0;
    double value = 0.0;
};

/** See file comment. */
class TimeSeries
{
  public:
    explicit TimeSeries(std::size_t capacity);

    /** Append one sample, evicting the oldest when full. Ticks must be
     *  non-decreasing (the sampler's counter only moves forward). */
    void push(std::uint64_t tick, double value);

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    /** Samples ever pushed, including evicted ones. */
    std::uint64_t totalPushed() const { return total_; }

    /** Sample @p i of the retained window; 0 is the oldest held. */
    TsSample at(std::size_t i) const;

    /** Most recent sample; size() must be > 0. */
    TsSample latest() const;

    /** Smallest / largest value among the last min(window, size())
     *  samples. 0 when the series is empty. */
    double windowMin(std::size_t window) const;
    double windowMax(std::size_t window) const;

    /**
     * Per-second growth rate of a cumulative counter over the last
     * min(window, size()) samples: (last - first) / (tick span *
     * @p interval_seconds). Tick spacing stands in for wall clock, so
     * the rate is deterministic for a deterministic sample sequence.
     * Returns 0 with fewer than two samples, a zero tick span, or a
     * negative delta (counter reset).
     */
    double ratePerSecond(std::size_t window, double interval_seconds) const;

    /**
     * Exponentially weighted moving average over the whole retained
     * window, folded oldest to newest: ewma = alpha*v + (1-alpha)*ewma,
     * seeded with the oldest sample. 0 when empty.
     */
    double ewma(double alpha) const;

  private:
    std::size_t capacity_;
    std::vector<TsSample> ring_;
    std::size_t head_ = 0; ///< next write position
    std::size_t size_ = 0;
    std::uint64_t total_ = 0;
};

/** Name-keyed collection of series sharing one ring capacity. */
class TimeSeriesStore
{
  public:
    explicit TimeSeriesStore(std::size_t capacity = 512);

    /** Find or create the series for @p name. */
    TimeSeries &series(const std::string &name);

    /** The series for @p name, or nullptr when never pushed. */
    const TimeSeries *find(const std::string &name) const;

    std::vector<std::string> names() const;
    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t capacity_;
    std::map<std::string, TimeSeries> map_;
};

} // namespace dfault::obs

#endif // DFAULT_OBS_TIMESERIES_HH
