/**
 * @file
 * RAII scoped timers with a per-thread phase stack.
 *
 * Entering a phase pushes its name onto a thread-local stack; the full
 * dotted path ("cross_validate.fold.train") names the accumulation
 * target in the stats registry:
 *
 *   time.<path>.seconds   (Gauge)    total wall-clock inside the phase
 *   time.<path>.calls     (Counter)  times the phase was entered
 *
 * Nested phases therefore report *inclusive* time: the parent's seconds
 * contain the children's. Timing uses the steady clock; one timer costs
 * two clock reads plus two relaxed atomic updates, negligible at the
 * phase granularity used here (per measurement / per fold, never per
 * access).
 *
 * When the SpanTracer is enabled (obs/span.hh), every timer also
 * opens a span, so a --trace-events run records each phase *instance*
 * with begin/end timestamps and thread parentage; when a top-level
 * phase ends the tracer additionally samples the registry's counters
 * into Perfetto counter tracks. Exclusive-time attribution over those
 * spans lives in obs/trace_writer.hh.
 *
 * Two further opt-in attributions ride on the same phase bracket:
 * with PerfCounters::setPhaseProfiling(true) each timer snapshots the
 * calling thread's hardware counters and accumulates the delta under
 * perf.phase.<path>.* (obs/perf_counters.hh); with
 * AllocTracker::enable() it does the same for heap allocation volume
 * under alloc.phase.<path>.bytes/.allocs (obs/alloc_tracker.hh). Both
 * are inclusive like the timings, and both stat families are excluded
 * from manifest digests.
 */

#ifndef DFAULT_OBS_TIMER_HH
#define DFAULT_OBS_TIMER_HH

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "obs/alloc_tracker.hh"
#include "obs/perf_counters.hh"
#include "obs/stats.hh"

namespace dfault::obs {

/** Accumulated timing of one phase path, for reports. */
struct PhaseTime
{
    std::string path;    ///< dotted phase path, e.g. "profile"
    double seconds = 0.0;
    std::uint64_t calls = 0;
};

/** See file comment. */
class ScopedTimer
{
  public:
    /**
     * Enter phase @p phase (a single path segment, no dots) of
     * @p registry; the destructor leaves the phase and accumulates the
     * elapsed wall time. Defaults to the global registry.
     */
    explicit ScopedTimer(std::string_view phase,
                         Registry *registry = nullptr);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Elapsed seconds since this timer started. */
    double elapsed() const;

    /** Dotted path of the calling thread's current phase stack ("" at
     *  top level). */
    static std::string currentPath();

  private:
    Registry &registry_;
    std::string path_;
    std::uint64_t spanId_ = 0; ///< 0 when tracing is disabled
    std::chrono::steady_clock::time_point start_;
    PerfSample perfStart_;          ///< used when perfActive_
    AllocTracker::Totals allocStart_; ///< used when allocActive_
    bool perfActive_ = false;  ///< phase profiling was on at entry
    bool allocActive_ = false; ///< alloc tracking was on at entry
};

/**
 * Temporarily replace the calling thread's phase stack with @p path
 * (a dotted path, possibly empty). Pool workers adopt the submitting
 * thread's phase path while executing its tasks, so timers started
 * inside parallel work accumulate under the same dotted paths as a
 * serial execution. The previous stack is restored on destruction.
 */
class PhaseAdoption
{
  public:
    explicit PhaseAdoption(const std::string &path);
    ~PhaseAdoption();

    PhaseAdoption(const PhaseAdoption &) = delete;
    PhaseAdoption &operator=(const PhaseAdoption &) = delete;

  private:
    std::vector<std::string> saved_;
};

/**
 * All phases recorded in @p registry (stats named time.<path>.seconds),
 * sorted by path. Defaults to the global registry.
 */
std::vector<PhaseTime> phaseTimes(const Registry *registry = nullptr);

} // namespace dfault::obs

#endif // DFAULT_OBS_TIMER_HH
