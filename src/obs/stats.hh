/**
 * @file
 * Hierarchical statistics registry (gem5-style).
 *
 * Stats live under dotted paths ("platform.mem.l2.miss_rate") in a
 * process-wide (or test-local) Registry. Four kinds are supported:
 *
 *  - Counter       monotonically increasing integer (events, commands);
 *  - Gauge         last-written / accumulated floating-point value;
 *  - Distribution  fixed-width linear histogram with under/overflow
 *                  bins plus count/sum/min/max moments;
 *  - Formula       value derived from other stats at dump time
 *                  (ratios, rates), evaluated lazily;
 *  - Histogram     log-bucketed mergeable latency/value histogram with
 *                  streaming quantiles (obs/histogram.hh), recorded
 *                  via thread-local shards and always excluded from
 *                  manifest digests and stats_diff comparisons.
 *
 * Instrumented components resolve their stats once (construction or
 * first publish) and then touch plain atomics, so the steady-state cost
 * of an update is one relaxed atomic op; components that keep their own
 * internal counters (caches, MCUs, cores) instead publish snapshots
 * after each run, leaving their hot paths untouched.
 *
 * Registration is idempotent: requesting an existing name with the same
 * kind returns the existing stat; a kind mismatch is a library bug and
 * panics. Names must be non-empty dotted paths of [A-Za-z0-9_] segments.
 */

#ifndef DFAULT_OBS_STATS_HH
#define DFAULT_OBS_STATS_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/histogram.hh"

namespace dfault::obs {

/** Discriminates the stat kinds a Registry can hold. */
enum class StatKind
{
    Counter,
    Gauge,
    Distribution,
    Formula,
    Histogram,
};

/** "counter" / "gauge" / "distribution" / "formula" / "histogram". */
std::string statKindName(StatKind kind);

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    Counter &operator++()
    {
        inc();
        return *this;
    }
    Counter &operator+=(std::uint64_t n)
    {
        inc(n);
        return *this;
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written (or accumulated) floating-point value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** Atomic accumulate (used by timers). */
    void add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
        }
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/** Consistent point-in-time view of one Distribution (one lock). */
struct DistributionSnapshot
{
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0; ///< 0 when empty
    double max = 0.0; ///< 0 when empty
};

/**
 * Linear fixed-width histogram over [lo, hi) with @p buckets bins plus
 * dedicated underflow/overflow bins, and running count/sum/min/max.
 */
class Distribution
{
  public:
    Distribution(double lo, double hi, int buckets);

    void record(double x);

    /** All moments and buckets under one lock acquisition, so the
     *  counts are mutually consistent even under concurrent record()
     *  (count always equals underflow + buckets + overflow). */
    DistributionSnapshot snapshot() const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    int bucketCount() const { return static_cast<int>(buckets_.size()); }

    std::uint64_t count() const;
    double sum() const;
    double mean() const;
    double minSeen() const; ///< +inf until the first record()
    double maxSeen() const; ///< -inf until the first record()
    std::uint64_t bucket(int i) const;
    std::uint64_t underflow() const;
    std::uint64_t overflow() const;

    void reset();

  private:
    const double lo_;
    const double hi_;
    mutable std::mutex mutex_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_;
    double max_;
};

/**
 * One stat as seen by a telemetry consumer (the sampler, the
 * OpenMetrics writer): name, kind, description and a scalar view,
 * plus the full snapshot for distribution/histogram kinds. Produced
 * by Registry::sample().
 */
struct StatSample
{
    std::string name;
    StatKind kind = StatKind::Counter;
    std::string description;
    /** Counter/gauge/formula value; distribution and histogram mean. */
    double value = 0.0;
    std::optional<DistributionSnapshot> dist;
    std::optional<HistogramSnapshot> hist;
};

/** Value derived from other stats; evaluated on read. */
class Formula
{
  public:
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    std::function<double()> fn_;
};

/** See file comment. */
class Registry
{
  public:
    /** The process-wide registry used by instrumented components. */
    static Registry &instance();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Look up or create a stat. Panics if @p name is already registered
     * with a different kind, or if the name is not a valid dotted path.
     * Returned references stay valid for the registry's lifetime.
     */
    Counter &counter(const std::string &name,
                     const std::string &description = "");
    Gauge &gauge(const std::string &name,
                 const std::string &description = "");
    Distribution &distribution(const std::string &name, double lo,
                               double hi, int buckets,
                               const std::string &description = "");
    Formula &formula(const std::string &name, std::function<double()> fn,
                     const std::string &description = "");
    Histogram &histogram(const std::string &name,
                         const std::string &description = "");

    bool has(const std::string &name) const;
    StatKind kindOf(const std::string &name) const; ///< panics if absent
    std::size_t size() const;

    /** All registered names in sorted (hierarchical) order. */
    std::vector<std::string> names() const;

    /** Scalar value of a stat (a Distribution reports its mean). */
    double value(const std::string &name) const;

    /**
     * One StatSample per registered stat, in name order. The whole
     * pass holds the registry mutex (like dumpText), so the *set* of
     * stats is consistent; individual values are the usual relaxed
     * reads. Formulas must not touch the registry from their
     * callbacks (they capture stat references instead — see
     * perf_counters.cc), or this would self-deadlock.
     */
    std::vector<StatSample> sample() const;

    /** Zero every counter/gauge/distribution; formulas re-derive. */
    void resetAll();

    /**
     * gem5-style text dump: one "name  value  # description" line per
     * stat in hierarchical order; distributions expand into .count/
     * .mean/.min/.max lines plus one line per non-empty bucket.
     */
    void dumpText(std::FILE *out) const;

    /** The whole registry as one JSON object keyed by stat name. */
    std::string toJson() const;

    /**
     * Write the registry to @p path: JSON when the path ends in
     * ".json", text dump otherwise. Returns false if the file cannot
     * be opened.
     */
    bool writeFile(const std::string &path) const;

  private:
    struct Entry
    {
        StatKind kind;
        std::string description;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Distribution> distribution;
        std::unique_ptr<Formula> formula;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &findOrCreate(const std::string &name, StatKind kind,
                        const std::string &description);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

} // namespace dfault::obs

#endif // DFAULT_OBS_STATS_HH
