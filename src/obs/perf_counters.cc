#include "obs/perf_counters.hh"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/span.hh"
#include "obs/stats.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace dfault::obs {

namespace {

std::atomic<bool> g_phaseProfiling{false};

#if defined(__linux__)

long
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

std::vector<PerfCounters::EventSpec>
defaultEvents()
{
    return {
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache_misses"},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch_misses"},
    };
}

#else

std::vector<PerfCounters::EventSpec>
defaultEvents()
{
    return {};
}

#endif

/** Default-field slot for publishing (0 cycles .. 3 branch_misses). */
int
defaultFieldIndex(const std::string &name)
{
    if (name == "cycles")
        return 0;
    if (name == "instructions")
        return 1;
    if (name == "cache_misses")
        return 2;
    if (name == "branch_misses")
        return 3;
    return -1;
}

std::uint64_t
saturatingSub(std::uint64_t a, std::uint64_t b)
{
    return a >= b ? a - b : 0;
}

} // namespace

PerfSample
PerfSample::deltaSince(const PerfSample &start) const
{
    PerfSample d;
    d.valid = valid && start.valid;
    d.cycles = saturatingSub(cycles, start.cycles);
    d.instructions = saturatingSub(instructions, start.instructions);
    d.cacheMisses = saturatingSub(cacheMisses, start.cacheMisses);
    d.branchMisses = saturatingSub(branchMisses, start.branchMisses);
    return d;
}

PerfCounters::PerfCounters()
{
    openGroup(defaultEvents());
}

PerfCounters::PerfCounters(const std::vector<EventSpec> &events)
{
    openGroup(events);
}

void
PerfCounters::openGroup(const std::vector<EventSpec> &events)
{
    if (forcedOff()) {
        reason_ = "disabled by DFAULT_PERF_DISABLE";
        return;
    }
    if (events.empty()) {
        reason_ = "perf_event_open unsupported on this platform";
        return;
    }
#if defined(__linux__)
    for (const EventSpec &ev : events) {
        perf_event_attr attr{};
        attr.size = sizeof(attr);
        attr.type = ev.type;
        attr.config = ev.config;
        attr.read_format = PERF_FORMAT_GROUP;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.disabled = leaderFd_ < 0 ? 1 : 0;
        const long fd = perfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1,
                                      /*group_fd=*/leaderFd_,
                                      PERF_FLAG_FD_CLOEXEC);
        if (fd < 0) {
            if (leaderFd_ < 0) {
                // No leader, no group: the whole instance degrades.
                reason_ = std::string("perf_event_open(") + ev.name +
                          ") failed: " + std::strerror(errno);
                return;
            }
            // A sibling the host lacks (e.g. cache-misses behind a
            // partial PMU) just reads as zero; keep the rest.
            continue;
        }
        fds_.push_back(static_cast<int>(fd));
        names_.push_back(ev.name);
        fieldIndex_.push_back(defaultFieldIndex(ev.name));
        if (leaderFd_ < 0)
            leaderFd_ = static_cast<int>(fd);
    }
    ioctl(leaderFd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(leaderFd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#else
    (void)events;
    reason_ = "perf_event_open unsupported on this platform";
#endif
}

PerfCounters::~PerfCounters()
{
#if defined(__linux__)
    for (int fd : fds_)
        close(fd);
#endif
}

std::vector<std::string>
PerfCounters::liveEvents() const
{
    return names_;
}

bool
PerfCounters::readValues(std::vector<std::uint64_t> &out) const
{
    out.clear();
    if (!available())
        return false;
#if defined(__linux__)
    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; } in the
    // order the events were attached to the group.
    std::vector<std::uint64_t> buf(1 + fds_.size());
    const ssize_t want =
        static_cast<ssize_t>(buf.size() * sizeof(std::uint64_t));
    const ssize_t got = ::read(leaderFd_, buf.data(), want);
    if (got < static_cast<ssize_t>(sizeof(std::uint64_t)) ||
        buf[0] != fds_.size())
        return false;
    out.assign(buf.begin() + 1, buf.begin() + 1 + fds_.size());
    return true;
#else
    return false;
#endif
}

PerfSample
PerfCounters::sample() const
{
    PerfSample s;
    std::vector<std::uint64_t> values;
    if (!readValues(values))
        return s;
    s.valid = true;
    for (std::size_t i = 0; i < values.size(); ++i) {
        switch (i < fieldIndex_.size() ? fieldIndex_[i] : -1) {
          case 0:
            s.cycles = values[i];
            break;
          case 1:
            s.instructions = values[i];
            break;
          case 2:
            s.cacheMisses = values[i];
            break;
          case 3:
            s.branchMisses = values[i];
            break;
          default:
            break; // custom event outside the named fields
        }
    }
    return s;
}

PerfCounters &
PerfCounters::threadInstance()
{
    thread_local PerfCounters t_counters;
    return t_counters;
}

bool
PerfCounters::forcedOff()
{
    const char *env = std::getenv("DFAULT_PERF_DISABLE");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
}

void
PerfCounters::setPhaseProfiling(bool on)
{
    g_phaseProfiling.store(on, std::memory_order_relaxed);
}

bool
PerfCounters::phaseProfiling()
{
    return g_phaseProfiling.load(std::memory_order_relaxed);
}

ScopedCounters::ScopedCounters(std::string_view scope, Registry *registry)
    : registry_(registry != nullptr ? *registry : Registry::instance()),
      scope_(scope),
      start_(PerfCounters::threadInstance().sample())
{
}

ScopedCounters::~ScopedCounters()
{
    const PerfSample delta =
        PerfCounters::threadInstance().sample().deltaSince(start_);
    publishPerfDelta(registry_, "perf." + scope_, delta);
    if (delta.valid && SpanTracer::instance().enabled()) {
        char note[160];
        std::snprintf(note, sizeof(note),
                      "cycles=%" PRIu64 " instr=%" PRIu64
                      " cache_miss=%" PRIu64 " branch_miss=%" PRIu64,
                      delta.cycles, delta.instructions, delta.cacheMisses,
                      delta.branchMisses);
        SpanTracer::instance().annotateCurrent(note);
    }
}

void
publishPerfDelta(Registry &registry, const std::string &prefix,
                 const PerfSample &delta)
{
    // Zeros are published even when invalid so the fallback path still
    // registers every stat a counter-enabled host would.
    Gauge &cycles =
        registry.gauge(prefix + ".cycles", "CPU cycles inside " + prefix);
    cycles.add(static_cast<double>(delta.cycles));
    Gauge &instructions =
        registry.gauge(prefix + ".instructions",
                       "instructions retired inside " + prefix);
    instructions.add(static_cast<double>(delta.instructions));
    Gauge &cacheMisses = registry.gauge(
        prefix + ".cache_misses", "cache misses inside " + prefix);
    cacheMisses.add(static_cast<double>(delta.cacheMisses));
    Gauge &branchMisses = registry.gauge(
        prefix + ".branch_misses", "branch misses inside " + prefix);
    branchMisses.add(static_cast<double>(delta.branchMisses));
    registry.gauge("perf.available",
                   "1 when perf_event_open counters are live")
        .set(PerfCounters::threadInstance().available() ? 1.0 : 0.0);

    // Formulas capture the gauges, not the registry: Registry::value()
    // evaluates a formula under the registry mutex, so a lambda that
    // called back into the registry would self-deadlock.
    registry.formula(
        prefix + ".ipc",
        [&cycles, &instructions]() {
            const double c = cycles.value();
            return c > 0.0 ? instructions.value() / c : 0.0;
        },
        "instructions per cycle inside " + prefix);
    registry.formula(
        prefix + ".cache_miss_per_kinstr",
        [&instructions, &cacheMisses]() {
            const double i = instructions.value();
            return i > 0.0 ? cacheMisses.value() / i * 1e3 : 0.0;
        },
        "cache misses per 1000 instructions inside " + prefix);
    registry.formula(
        prefix + ".branch_miss_per_kinstr",
        [&instructions, &branchMisses]() {
            const double i = instructions.value();
            return i > 0.0 ? branchMisses.value() / i * 1e3 : 0.0;
        },
        "branch misses per 1000 instructions inside " + prefix);
}

void
printPerfTable(std::FILE *out, const Registry *registry)
{
    const Registry &reg =
        registry != nullptr ? *registry : Registry::instance();
    constexpr std::string_view prefix = "perf.";
    constexpr std::string_view suffix = ".cycles";
    std::vector<std::string> scopes;
    for (const std::string &name : reg.names())
        if (name.starts_with(prefix) && name.ends_with(suffix))
            scopes.push_back(name.substr(
                prefix.size(), name.size() - prefix.size() - suffix.size()));
    if (scopes.empty())
        return;
    std::fprintf(out, "\nPerformance counters\n");
    if (reg.has("perf.available") && reg.value("perf.available") == 0.0) {
        std::fprintf(out,
                     "  (perf_event_open unavailable on this host; all "
                     "counts read as zero)\n");
    }
    std::fprintf(out, "  %-32s %14s %14s %7s %10s %10s\n", "scope",
                 "cycles", "instructions", "ipc", "cm/kinstr",
                 "bm/kinstr");
    for (const std::string &scope : scopes) {
        const std::string base = std::string(prefix) + scope;
        std::fprintf(out,
                     "  %-32s %14.0f %14.0f %7.2f %10.3f %10.3f\n",
                     scope.c_str(), reg.value(base + ".cycles"),
                     reg.value(base + ".instructions"),
                     reg.has(base + ".ipc") ? reg.value(base + ".ipc")
                                            : 0.0,
                     reg.has(base + ".cache_miss_per_kinstr")
                         ? reg.value(base + ".cache_miss_per_kinstr")
                         : 0.0,
                     reg.has(base + ".branch_miss_per_kinstr")
                         ? reg.value(base + ".branch_miss_per_kinstr")
                         : 0.0);
    }
}

} // namespace dfault::obs
