#include "obs/slo.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/json.hh"

namespace dfault::obs {

std::string
sloAggName(SloAgg agg)
{
    switch (agg) {
      case SloAgg::P50:
        return "p50";
      case SloAgg::P90:
        return "p90";
      case SloAgg::P99:
        return "p99";
      case SloAgg::P999:
        return "p999";
      case SloAgg::Rate:
        return "rate";
      case SloAgg::Value:
        return "value";
      case SloAgg::Min:
        return "min";
      case SloAgg::Max:
        return "max";
    }
    return "value";
}

namespace {

bool
parseAgg(const std::string &name, SloAgg &out)
{
    if (name == "p50")
        out = SloAgg::P50;
    else if (name == "p90")
        out = SloAgg::P90;
    else if (name == "p99")
        out = SloAgg::P99;
    else if (name == "p999")
        out = SloAgg::P999;
    else if (name == "rate")
        out = SloAgg::Rate;
    else if (name == "value")
        out = SloAgg::Value;
    else if (name == "min")
        out = SloAgg::Min;
    else if (name == "max")
        out = SloAgg::Max;
    else
        return false;
    return true;
}

/** Threshold suffix -> multiplier; durations scale to nanoseconds. */
bool
unitMultiplier(const std::string &unit, double &out)
{
    if (unit.empty() || unit == "ns" || unit == "/s")
        out = 1.0;
    else if (unit == "us")
        out = 1e3;
    else if (unit == "ms")
        out = 1e6;
    else if (unit == "s")
        out = 1e9;
    else
        return false;
    return true;
}

void
setError(std::string *error, const std::string &what)
{
    if (error != nullptr)
        *error = what;
}

} // namespace

std::optional<SloTarget>
parseSloTarget(const std::string &spec, std::string *error)
{
    SloTarget target;
    target.spec = spec;

    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0) {
        setError(error, "expected '<stat>:<agg><op><threshold>'");
        return std::nullopt;
    }
    target.stat = spec.substr(0, colon);

    const std::string rest = spec.substr(colon + 1);
    const std::size_t op_pos = rest.find_first_of("<>");
    if (op_pos == std::string::npos || op_pos == 0 ||
        op_pos + 1 >= rest.size()) {
        setError(error, "expected '<' or '>' between aggregation and "
                        "threshold in '" + spec + "'");
        return std::nullopt;
    }
    if (!parseAgg(rest.substr(0, op_pos), target.agg)) {
        setError(error, "unknown aggregation '" + rest.substr(0, op_pos) +
                        "' (want p50/p90/p99/p999/rate/value/min/max)");
        return std::nullopt;
    }
    target.op = rest[op_pos] == '<' ? SloOp::Below : SloOp::Above;

    const std::string number = rest.substr(op_pos + 1);
    char *end = nullptr;
    const double value = std::strtod(number.c_str(), &end);
    if (end == number.c_str() || !std::isfinite(value)) {
        setError(error, "malformed threshold in '" + spec + "'");
        return std::nullopt;
    }
    double scale = 1.0;
    if (!unitMultiplier(std::string(end), scale)) {
        setError(error, "unknown threshold unit '" + std::string(end) +
                        "' (want ns/us/ms/s or /s)");
        return std::nullopt;
    }
    target.threshold = value * scale;
    return target;
}

void
SloTracker::addTarget(SloTarget target)
{
    SloState state;
    state.target = std::move(target);
    states_.push_back(std::move(state));
}

std::vector<SloBreach>
SloTracker::evaluate(std::uint64_t tick,
                     const std::vector<StatSample> &samples,
                     const TimeSeriesStore &store,
                     double interval_seconds, std::size_t window)
{
    std::vector<SloBreach> out;
    for (SloState &state : states_) {
        const SloTarget &t = state.target;

        // Locate this tick's sample of the targeted stat.
        const StatSample *sample = nullptr;
        for (const StatSample &s : samples) {
            if (s.name == t.stat) {
                sample = &s;
                break;
            }
        }

        double observed = 0.0;
        bool have = false;
        switch (t.agg) {
          case SloAgg::P50:
          case SloAgg::P90:
          case SloAgg::P99:
          case SloAgg::P999:
            if (sample != nullptr && sample->hist &&
                sample->hist->count > 0) {
                const double q = t.agg == SloAgg::P50    ? 0.50
                                 : t.agg == SloAgg::P90  ? 0.90
                                 : t.agg == SloAgg::P99  ? 0.99
                                                         : 0.999;
                observed = sample->hist->quantile(q);
                have = true;
            }
            break;
          case SloAgg::Rate:
            if (const TimeSeries *ts = store.find(t.stat)) {
                if (ts->size() >= 2) {
                    observed =
                        ts->ratePerSecond(window, interval_seconds);
                    have = true;
                }
            }
            break;
          case SloAgg::Value:
            if (sample != nullptr) {
                observed = sample->value;
                have = true;
            }
            break;
          case SloAgg::Min:
          case SloAgg::Max:
            if (const TimeSeries *ts = store.find(t.stat)) {
                if (ts->size() > 0) {
                    observed = t.agg == SloAgg::Min
                                   ? ts->windowMin(window)
                                   : ts->windowMax(window);
                    have = true;
                }
            }
            break;
        }
        if (!have)
            continue;

        ++state.evaluations;
        state.lastObserved = observed;
        const bool breached = t.op == SloOp::Below
                                  ? observed > t.threshold
                                  : observed < t.threshold;
        if (breached) {
            if (state.breaches == 0)
                state.firstBreachTick = tick;
            SloBreach breach;
            breach.spec = t.spec;
            breach.stat = t.stat;
            breach.agg = sloAggName(t.agg);
            breach.observed = observed;
            breach.threshold = t.threshold;
            breach.tick = tick;
            breach.entered = !state.breachedNow;
            out.push_back(std::move(breach));
            ++state.breaches;
            state.lastBreachTick = tick;
        }
        state.breachedNow = breached;
    }
    return out;
}

std::uint64_t
SloTracker::totalBreaches() const
{
    std::uint64_t out = 0;
    for (const SloState &s : states_)
        out += s.breaches;
    return out;
}

std::size_t
SloTracker::breachedTargets() const
{
    std::size_t out = 0;
    for (const SloState &s : states_)
        out += s.breachedNow ? 1 : 0;
    return out;
}

std::string
SloTracker::summaryJson() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const SloState &s = states_[i];
        if (i > 0)
            out += ',';
        JsonWriter w;
        w.field("spec", s.target.spec);
        w.field("stat", s.target.stat);
        w.field("agg", sloAggName(s.target.agg));
        w.field("op", s.target.op == SloOp::Below ? "<" : ">");
        w.field("threshold", s.target.threshold);
        w.field("evaluations", s.evaluations);
        w.field("breaches", s.breaches);
        w.field("breached", s.breachedNow || s.breaches > 0);
        w.field("last_observed", s.lastObserved);
        if (s.breaches > 0) {
            w.field("first_breach_tick", s.firstBreachTick);
            w.field("last_breach_tick", s.lastBreachTick);
        }
        out += w.str();
    }
    out += ']';
    return out;
}

} // namespace dfault::obs
